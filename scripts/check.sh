#!/usr/bin/env sh
# Full local check: formatting, vet, build, and the test suite under
# the race detector. The parallel summarization engine (internal/par
# and its callers) and the observability layer's atomics are exactly
# the kind of code -race exists for, so this is the gate to run before
# sending changes.
set -e
cd "$(dirname "$0")/.."

# Formatting gate: fail loudly instead of letting drift accumulate.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...

# Project-specific invariants: determinism (no wall clock / global RNG /
# unsorted map walks in reproducible packages), obs disabled-path
# allocation freedom, atomic-access discipline, wire decode robustness,
# encoder/decoder symmetry (encdec), locks held across blocking
# operations (lockheld), and hot-path allocations (hotalloc). Any
# finding fails the build; reviewed exceptions carry a
# //jaalvet:ignore <analyzer> — <reason> comment (//jaal:alloc-ok with
# a reason for hotalloc). Stale suppressions print as warnings.
# -summary prints per-analyzer finding/suppression counts so a PR diff
# of this output shows where new exceptions crept in. See DESIGN.md
# ("Static analysis"). The run covers internal/analysis itself: the
# analyzers are not exempt from their own invariants.
go run ./cmd/jaal-vet -summary ./...

# The determinism invariants first: these fail fast and carry the most
# signal when instrumentation touches a hot path. The trace golden test
# locks the epoch-trace topology (which spans each stage emits, per
# process and monitor, timestamps scrubbed) against
# internal/core/testdata/trace_topology.golden; regenerate with
# -update-trace-golden after an intentional instrumentation change.
go test -race -run 'TestPipelineParallelDeterminism|TestPipelineObsDeterminism|TestPipelineTraceDeterminism|TestPipelineTraceGolden' ./internal/core/

# Detection accuracy gate: the scoreboard report must be byte-identical
# across worker counts, and the quick-profile scores must stay within
# the tolerance bands of internal/scenario/testdata/scoreboard.golden;
# regenerate with -update-scoreboard-golden after an intentional
# detection change. See EXPERIMENTS.md ("Scenario scoreboard").
go test -race -run 'TestScoreboardWorkerDeterminism|TestScoreboardGolden' ./internal/scenario/

go test -race ./...
