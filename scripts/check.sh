#!/usr/bin/env sh
# Full local check: vet, build, and the test suite under the race
# detector. The parallel summarization engine (internal/par and its
# callers) is exactly the kind of code -race exists for, so this is the
# gate to run before sending changes.
set -e
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
