#!/usr/bin/env bash
# Long-run soak: drives the seeded wire pipeline for SOAK_DURATION
# (default 2m) while scraping its /metrics endpoint, and fails on
# goroutine growth, unbounded arena chunk allocation, or heap growth.
#
# Usage:
#   ./scripts/soak.sh              # 2-minute soak
#   SOAK_DURATION=10m ./scripts/soak.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export SOAK_DURATION="${SOAK_DURATION:-2m}"
echo "== soak: ${SOAK_DURATION} =="
go test -tags soak -run TestSoakSteadyState -v -timeout 0 ./internal/core/
