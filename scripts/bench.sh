#!/usr/bin/env sh
# Run every benchmark in the module and capture the results as JSON so
# regressions are diffable across commits.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME   passed to -benchtime (default 1s; set e.g. 100x for a
#               quick smoke run)
#   BENCHFILTER passed to -bench (default ., i.e. everything)
#
# The output is one JSON object with the toolchain, date and a list of
# benchmark records: {"name": ..., "iterations": N, "metrics":
# {"ns/op": ..., "B/op": ..., "allocs/op": ...}}. The committed
# baseline lives at BENCH_baseline.json.
set -e
cd "$(dirname "$0")/.."

out="${1:-BENCH_baseline.json}"
benchtime="${BENCHTIME:-1s}"
filter="${BENCHFILTER:-.}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" ./... | tee "$raw"

awk -v goversion="$(go version)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
	printf "{\n  \"go\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [", goversion, date
	n = 0
}
/^pkg: / { pkg = $2 }
/^Benchmark/ && NF >= 4 {
	if (n++) printf ","
	printf "\n    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"metrics\": {", pkg, $1, $2
	m = 0
	for (i = 3; i + 1 <= NF; i += 2) {
		if (m++) printf ", "
		printf "\"%s\": %s", $(i + 1), $i
	}
	printf "}}"
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

echo "wrote $out"
