// DDoS detection across an ISP topology with the feedback loop.
//
// This example exercises the full Jaal story on the Abovenet-like
// topology: monitors placed at core routers, flows assigned greedily,
// a distributed SYN flood injected from ~200 sources, and two-stage
// inference (τ_d1/τ_d2) that pulls raw packets for uncertain centroids
// before alerting — with the communication accounting the paper reports.
//
// Run with:
//
//	go run ./examples/ddos
package main

import (
	"fmt"
	"log"
	"net/netip"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

func main() {
	// ISP substrate: the paper's topology 1 analogue with 25 monitors.
	top := topology.Abovenet()
	monitors, err := top.PlaceMonitors(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %q: %d routers, %d links; %d monitors at core routers\n",
		top.Name, top.NumNodes(), top.NumEdges(), len(monitors))

	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		log.Fatal(err)
	}
	const epochVolume = 8000
	feedback := make(map[rules.AttackID]inference.FeedbackConfig, len(questions))
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(epochVolume)
		// The Fig. 6 knee: τ_d1 tight (low FPR), stage 2 moderately
		// sensitized; between them the controller fetches raw packets
		// (§5.3).
		feedback[id] = inference.FeedbackConfig{
			TauD1:       q.EffectiveTau(0.015),
			TauD2:       q.EffectiveTau(0.12),
			CountScale2: 0.55,
		}
	}

	pipeline, err := core.NewPipeline(core.PipelineConfig{
		NumMonitors: 8, // 8 of the 25 tap points see this traffic mix
		Summary:     summary.Config{BatchSize: 1000, Rank: 12, Centroids: 200, MinBatch: 600, Seed: 7},
		Controller: core.ControllerConfig{
			Env: env, Questions: questions,
			Feedback: feedback, UseFeedback: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(2))
	attack, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 2, Victim: 0x0A00002A, Sources: 200})
	if err != nil {
		log.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, attack, trafficgen.MixConfig{Seed: 2})

	// Three epochs: clean, attack, clean.
	for epoch := 0; epoch < 3; epoch++ {
		var src interface {
			Next() trafficgen.LabeledPacket
		}
		if epoch == 1 {
			src = mix
		} else {
			src = trafficgen.NewMixer(trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(int64(20+epoch))), nil, trafficgen.MixConfig{})
		}
		for i := 0; i < epochVolume; i++ {
			if err := pipeline.Ingest(src.Next().Header); err != nil {
				log.Fatal(err)
			}
		}
		alerts, err := pipeline.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nepoch %d (%s):\n", epoch, map[bool]string{true: "attack injected", false: "clean"}[epoch == 1])
		if len(alerts) == 0 {
			fmt.Println("  no alerts")
		}
		for _, a := range alerts {
			fmt.Printf("  %s\n", a)
		}
	}

	st := pipeline.Controller.Stats()
	fmt.Printf("\ncommunication accounting over %d epochs:\n", st.Epochs)
	fmt.Printf("  packets summarized:   %d\n", st.PacketsSummarized)
	fmt.Printf("  summary bytes:        %d\n", st.SummaryBytes())
	fmt.Printf("  feedback raw bytes:   %d (%d headers fetched)\n", st.FeedbackBytes(), st.RawPacketsFetched)
	fmt.Printf("  raw-transfer baseline %d bytes\n", st.RawHeaderBytes())
	fmt.Printf("  => overhead %.1f%% of raw; summaries alone %.1f%% (paper: ≈35%% steady state —\n",
		100*st.OverheadFraction(), 100*float64(st.SummaryBytes())/float64(st.RawHeaderBytes()))
	fmt.Printf("     the attack epoch pays extra raw confirmation, amortized as clean epochs accumulate)\n")
}
