// Quickstart: the smallest end-to-end Jaal pipeline.
//
// One monitor summarizes a batch of traffic containing a SYN flood; the
// controller aggregates the summary, evaluates the translated rule
// library, and prints the alerts — all in-process.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

func main() {
	// 1. Declare the monitored network and translate the rule library
	//    into question vectors.
	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Count thresholds are calibrated per 1000 packets; this example
	// aggregates 4000 per epoch.
	const epochVolume = 4000
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(epochVolume)
	}

	// 2. Build the pipeline: 2 monitors with the paper's summarization
	//    operating point (n=1000, r=12, k=200) and one controller.
	pipeline, err := core.NewPipeline(core.PipelineConfig{
		NumMonitors: 2,
		Summary:     summary.DefaultConfig(),
		Controller:  core.ControllerConfig{Env: env, Questions: questions},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Generate an epoch of backbone traffic with a distributed SYN
	//    flood mixed in at the paper's 10 % cap.
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(1))
	attack, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 1, Victim: 0x0A000001}) // 10.0.0.1
	if err != nil {
		log.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, attack, trafficgen.MixConfig{Seed: 1})
	for _, lp := range mix.Batch(epochVolume) {
		if err := pipeline.Ingest(lp.Header); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Run one inference epoch and report.
	alerts, err := pipeline.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	if len(alerts) == 0 {
		fmt.Println("no alerts (unexpected: the flood should be caught)")
		return
	}
	for _, a := range alerts {
		fmt.Println(a)
	}
	st := pipeline.Controller.Stats()
	fmt.Printf("\nsummaries stood for %d packets; transfer cost %.1f%% of shipping raw headers\n",
		st.PacketsSummarized, 100*st.OverheadFraction())
}
