// Payload keyword detection — the §10 extension of the paper.
//
// "One approach to detect the presence and/or count of certain keywords
// (e.g., a specific malicious website, or the term '.exe' ...) is to
// construct a term frequency matrix using a batch of packets ... This
// matrix can then be treated the same way as the headers-only batch."
//
// The example builds a batch of HTTP-ish payloads where a fraction carry
// a dropper download, summarizes the term-frequency matrix through the
// same SVD + k-means pipeline the header path uses, and matches a
// keyword rule against the centroids.
//
// Run with:
//
//	go run ./examples/payload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/payload"
)

func main() {
	vocab := payload.DefaultVocabulary()
	fmt.Printf("monitoring %d keywords: %v ...\n\n", vocab.Size(), vocab.Terms()[:6])

	rng := rand.New(rand.NewSource(1))
	build := func(dropperFrac float64) [][]byte {
		batch := make([][]byte, 1000)
		for i := range batch {
			if rng.Float64() < dropperFrac {
				batch[i] = []byte(fmt.Sprintf(
					"GET /updates/patch%d.exe HTTP/1.1\r\nHost: cdn%d.example\r\nUser-Agent: updater\r\n",
					i, rng.Intn(8)))
			} else {
				batch[i] = []byte(fmt.Sprintf(
					"GET /articles/%d.html HTTP/1.1\r\nHost: www%d.example\r\nAccept: text/html\r\n",
					i, rng.Intn(8)))
			}
		}
		return batch
	}

	rule := payload.KeywordRule{Term: ".exe", MinFrequency: 0.05, MinPackets: 30}

	for _, scenario := range []struct {
		name string
		frac float64
	}{
		{"clean browsing", 0},
		{"dropper campaign (8% of packets)", 0.08},
	} {
		batch := build(scenario.frac)
		s, err := payload.Summarize(vocab, batch, 8, 100, rng)
		if err != nil {
			log.Fatal(err)
		}
		count, fired, err := rule.Match(s)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "quiet"
		if fired {
			verdict = "ALERT"
		}
		fmt.Printf("%-34s → %s (≈%d packets carrying %q)\n", scenario.name, verdict, count, rule.Term)
	}

	fmt.Println("\nthe summary carries k=100 term profiles instead of 1000 payloads —")
	fmt.Println("the same compression economics as the header path (§4), applied to content (§10)")
}
