// Mirai case study (Fig. 8 of the paper): an epidemic telnet scan
// spreading through vulnerable devices, with and without Jaal detecting
// infected scanners and having the administrator shut them off.
//
// The example runs both emulations and also demonstrates the detection
// side concretely: a batch of backbone traffic with the Mirai scan mixed
// in is summarized and pushed through the inference engine, showing the
// scan being caught from summaries alone.
//
// Run with:
//
//	go run ./examples/mirai
package main

import (
	"fmt"
	"log"
	"net/netip"

	"repro/internal/core"
	"repro/internal/mirai"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

func main() {
	// Part 1: detection. Mirai bots scan TCP 23/2323 across random
	// addresses; the translated rule flags the port-23 SYN mass with
	// high destination-IP variance (§8's "high variation in destination
	// IP for common target ports").
	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		log.Fatal(err)
	}
	const epochVolume = 4000
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(epochVolume)
	}
	pipeline, err := core.NewPipeline(core.PipelineConfig{
		NumMonitors: 2,
		Summary:     summary.DefaultConfig(),
		Controller:  core.ControllerConfig{Env: env, Questions: questions},
	})
	if err != nil {
		log.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(3))
	scan, err := trafficgen.NewAttack(rules.AttackMiraiScan, trafficgen.AttackConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, scan, trafficgen.MixConfig{Seed: 3})
	for _, lp := range mix.Batch(epochVolume) {
		if err := pipeline.Ingest(lp.Header); err != nil {
			log.Fatal(err)
		}
	}
	alerts, err := pipeline.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— detection —")
	detected := false
	for _, a := range alerts {
		fmt.Println(a)
		if a.Attack == rules.AttackMiraiScan {
			detected = true
		}
	}
	if !detected {
		fmt.Println("scan not flagged in this epoch")
	}

	// Part 2: response. Replay the Fig. 8 epidemic: 150 vulnerable
	// devices; detection within 3 s at 95 % leads to shutoff.
	fmt.Println("\n— epidemic (Fig. 8) —")
	unchecked, err := mirai.Run(mirai.DefaultConfig(false), 120, 1)
	if err != nil {
		log.Fatal(err)
	}
	protected, err := mirai.Run(mirai.DefaultConfig(true), 120, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s  %10s  %10s  %8s\n", "t(s)", "unchecked", "with-jaal", "shutoff")
	for i := 0; i < len(unchecked.Samples); i += 15 {
		u, p := unchecked.Samples[i], protected.Samples[i]
		fmt.Printf("%6.0f  %10d  %10d  %8d\n", u.Time, u.Infected, p.Infected, p.Shutoff)
	}
	fmt.Printf("\nfinal infections: unchecked %d, with Jaal %d (%.1fx reduction)\n",
		unchecked.TotalInfected, protected.TotalInfected,
		float64(unchecked.TotalInfected)/float64(max(1, protected.TotalInfected)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
