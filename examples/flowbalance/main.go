// Flow assignment demo (Fig. 9 of the paper): greedy least-loaded
// assignment vs the Robin-Hood optimum vs random placement, on the
// Abovenet-like topology with 25 monitors.
//
// Flows between random gateway pairs arrive and terminate over time;
// each flow must be watched by exactly one monitor on its path. The
// demo prints the max/avg load profile of each strategy.
//
// Run with:
//
//	go run ./examples/flowbalance
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/flowassign"
	"repro/internal/topology"
)

func main() {
	top := topology.Abovenet()
	monitorNodes, err := top.PlaceMonitors(25)
	if err != nil {
		log.Fatal(err)
	}
	monitorSet := make(map[topology.NodeID]bool)
	idOf := make(map[topology.NodeID]flowassign.MonitorID)
	for i, m := range monitorNodes {
		monitorSet[m] = true
		idOf[m] = flowassign.MonitorID(i)
	}

	// Flow groups: gateway pairs sharing a path share a monitor group.
	rng := rand.New(rand.NewSource(1))
	gws := top.Gateways()
	table := flowassign.NewGroupTable()
	var keys []flowassign.GroupKey
	for len(keys) < 30 {
		src, dst := gws[rng.Intn(len(gws))], gws[rng.Intn(len(gws))]
		if src == dst {
			continue
		}
		path, err := top.ShortestPath(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		on := topology.MonitorsOnPath(path, monitorSet)
		if len(on) == 0 {
			continue
		}
		ids := make([]flowassign.MonitorID, len(on))
		for i, n := range on {
			ids[i] = idOf[n]
		}
		key := flowassign.GroupKey(fmt.Sprintf("%d>%d", src, dst))
		if err := table.Define(key, ids); err != nil {
			log.Fatal(err)
		}
		keys = append(keys, key)
	}
	fmt.Printf("%d flow groups over %d monitors\n\n", table.Len(), len(monitorNodes))

	greedy := flowassign.NewGreedy()
	robin := flowassign.NewRobinHood(len(monitorNodes))
	random := flowassign.NewRandom(rand.New(rand.NewSource(2)))
	strategies := []flowassign.Strategy{greedy, robin, random}

	// Arrivals with heavy-tailed weights; departures keep ~400 live.
	var live []flowassign.FlowID
	next := flowassign.FlowID(0)
	for step := 0; step < 3000; step++ {
		key := keys[rng.Intn(len(keys))]
		group, _ := table.MonitorGroup(key)
		w := math.Exp(rng.NormFloat64() * 0.8)
		for _, s := range strategies {
			if _, err := s.Assign(next, group, w); err != nil {
				log.Fatal(err)
			}
		}
		live = append(live, next)
		next++
		for len(live) > 400 {
			i := rng.Intn(len(live))
			f := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			for _, s := range strategies {
				if err := s.Remove(f); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	all := make([]flowassign.MonitorID, len(monitorNodes))
	for i := range all {
		all[i] = flowassign.MonitorID(i)
	}
	fmt.Printf("%-10s  %8s  %8s  %8s\n", "strategy", "max", "mean", "max/mean")
	for _, s := range strategies {
		loads := flowassign.SortedLoads(s, all)
		var sum float64
		for _, l := range loads {
			sum += l
		}
		mean := sum / float64(len(loads))
		fmt.Printf("%-10s  %8.1f  %8.1f  %8.2f\n", s.Name(), loads[0], mean, loads[0]/mean)
	}
	fmt.Println("\npaper shape (Fig. 9): greedy tracks Robin-Hood closely; random is clearly unbalanced")
}
