// Command jaal-rules inspects rule translation: it parses a Snort-style
// rules file and prints, for each rule, the question vector the
// inference engine will match against summaries — the operator-facing
// view of §5.2's translator.
//
// Usage:
//
//	jaal-rules [-home 10.0.0.0/8] [-file rules.txt]
//	jaal-rules gen [-n 10000] [-seed 1] [-base-sid 3000000] [-o rules.txt]
//
// Without -file, the built-in attack library is shown. The gen
// subcommand emits a seeded synthetic Snort-subset library (ISSUE 6's
// 10k-rule scale workload); every emitted line re-parses and
// round-trips through the canonical writer.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"sort"

	"repro/internal/packet"
	"repro/internal/rules"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "gen" {
		runGen(os.Args[2:])
		return
	}
	home := flag.String("home", "10.0.0.0/8", "HOME_NET prefix")
	file := flag.String("file", "", "rules file (empty = built-in attack library)")
	tauD := flag.Float64("taud", 0.05, "default distance threshold τ_d")
	flag.Parse()

	prefix, err := netip.ParsePrefix(*home)
	if err != nil {
		log.Fatalf("jaal-rules: bad -home: %v", err)
	}
	env := rules.NewEnvironment()
	env.Set("HOME_NET", prefix)
	cfg := rules.TranslateConfig{DefaultDistanceThreshold: *tauD, VarianceThreshold: 0.003}

	if *file == "" {
		qs, err := rules.LibraryQuestions(env, cfg)
		if err != nil {
			log.Fatalf("jaal-rules: %v", err)
		}
		ids := make([]string, 0, len(qs))
		for id := range qs {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			printQuestion(id, qs[rules.AttackID(id)])
		}
		return
	}

	f, err := os.Open(*file)
	if err != nil {
		log.Fatalf("jaal-rules: %v", err)
	}
	defer f.Close()
	rs, err := rules.ParseAll(f)
	if err != nil {
		log.Fatalf("jaal-rules: %v", err)
	}
	for _, r := range rs {
		q, err := rules.Translate(r, env, cfg)
		if err != nil {
			log.Printf("sid %d: %v", r.SID, err)
			continue
		}
		printQuestion(fmt.Sprintf("sid %d", r.SID), q)
	}
}

// runGen implements `jaal-rules gen`: write a seeded synthetic library
// to -o (stdout by default).
func runGen(args []string) {
	fs := flag.NewFlagSet("jaal-rules gen", flag.ExitOnError)
	n := fs.Int("n", 10000, "number of rules to generate")
	seed := fs.Int64("seed", 1, "generator seed")
	baseSID := fs.Int("base-sid", 3000000, "first SID to assign")
	out := fs.String("o", "", "output file (empty = stdout)")
	fs.Parse(args)

	text := rules.GenerateText(rules.GenConfig{Rules: *n, Seed: *seed, BaseSID: *baseSID})
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		log.Fatalf("jaal-rules gen: %v", err)
	}
}

func printQuestion(label string, q *rules.Question) {
	fmt.Printf("%s: %q\n", label, q.Rule.Msg)
	fmt.Printf("  τ_d=%.5g  τ_c=%d", q.DistanceThreshold, q.CountThreshold)
	if q.TrackBy >= 0 {
		fmt.Printf("  tracked by %s", packet.FieldIndex(q.TrackBy))
	}
	if q.Variance != nil {
		fmt.Printf("  variance(%s) ≥ %g", q.Variance.Field, q.Variance.Threshold)
	}
	fmt.Println()
	for i, v := range q.Vector {
		if v != rules.Irrelevant {
			fmt.Printf("  q[%-12s] = %.6g  (raw %.6g)\n",
				packet.FieldIndex(i), v, packet.Denormalize(packet.FieldIndex(i), v))
		}
	}
	fmt.Println()
}
