// Command jaal-monitor runs one Jaal monitor: it generates (or, in a
// real deployment, would capture) traffic, summarizes batches, and
// serves the controller's wire-protocol requests — load queries, summary
// polls and raw-batch fetches (§7).
//
// Usage:
//
//	jaal-monitor -listen :7101 -id 0 [-batch 1000] [-rank 12] [-k 200]
//	             [-trace-seed 1] [-attack distributed_syn_flood] [-pps 5000]
//	             [-obs :9101] [-epochlog monitor.jsonl] [-trace]
//	             [-sketch] [-shed-watermark 0]
//
// -obs enables metric collection and serves Prometheus-text
// GET /metrics plus net/http/pprof on the given address (default off).
// -epochlog appends one JSON record per summary poll with stage
// timings and queue depths.
//
// -trace stamps capture/summarize/collect/encode spans on each batch
// and ships them to the controller inside the summary frames (a
// version-tolerant trailer old controllers ignore), where they join the
// controller's per-epoch timeline at /trace. Off by default; off means
// wire frames identical to pre-trace builds.
//
// -sketch runs the count-min/HLL ingest pass and ships a compact
// volumetric digest with each epoch's first summary frame (another
// version-tolerant trailer old controllers skip). -shed-watermark
// additionally arms load shedding: past that many admitted packets per
// epoch only heavy-hitter traffic and a 1-in-8 mice subsample reach the
// batch slab, and past twice the watermark nothing does. Setting
// -shed-watermark implies -sketch.
//
// The monitor synthesizes background traffic continuously (standing in
// for a tap on a production link) and optionally mixes in a labeled
// attack, so a controller pointed at it observes realistic summaries.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/sketch"
	"repro/internal/summary"
	"repro/internal/trace"
	"repro/internal/trafficgen"
)

func main() {
	var (
		listen    = flag.String("listen", ":7101", "address to serve the controller on")
		id        = flag.Int("id", 0, "monitor ID")
		batch     = flag.Int("batch", 1000, "batch size n")
		rank      = flag.Int("rank", 12, "retained SVD rank r")
		k         = flag.Int("k", 200, "number of centroids k")
		nmin      = flag.Int("nmin", 600, "minimum batch size n_min")
		traceSeed = flag.Int64("trace-seed", 1, "background trace seed (1 or 2)")
		traceOn   = flag.Bool("trace", false, "stamp per-stage spans and ship them with each summary")
		attack    = flag.String("attack", "", "attack to inject (empty = clean traffic)")
		pps       = flag.Int("pps", 5000, "synthesized packets per second")
		sketchOn  = flag.Bool("sketch", false, "run the count-min/HLL ingest sketch and ship a volumetric digest with each summary")
		shedMark  = flag.Int("shed-watermark", 0, "per-epoch admitted-packet budget; past it mice flows are shed/subsampled and past 2x everything is (0 = sketch only, never shed; implies -sketch when set)")
		obsAddr   = flag.String("obs", "", "serve /metrics and /debug/pprof on this address (empty = observability off)")
		epochLog  = flag.String("epochlog", "", "append JSON-lines epoch log to this file (empty = off)")
		writeTO   = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline; a stalled controller cannot wedge a serving goroutine (0 = none)")
	)
	flag.Parse()

	if *traceOn {
		trace.SetEnabled(true)
		log.Printf("epoch tracing on: shipping spans with each summary")
	}
	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Fatalf("jaal-monitor: obs: %v", err)
		}
		log.Printf("observability on %s (/metrics, /debug/pprof)", addr)
	}
	var epochLogger *obs.EpochLogger
	if *epochLog != "" {
		f, err := os.OpenFile(*epochLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("jaal-monitor: epochlog: %v", err)
		}
		defer f.Close()
		epochLogger = obs.NewEpochLogger(f)
	}

	scfg := sketch.Config{Enabled: *sketchOn || *shedMark > 0, ShedWatermark: *shedMark}
	mon, err := core.NewMonitorSketch(*id, summary.Config{
		BatchSize: *batch, Rank: *rank, Centroids: *k, MinBatch: *nmin, Seed: int64(*id) + 1,
	}, scfg)
	if err != nil {
		log.Fatalf("jaal-monitor: %v", err)
	}
	if scfg.Enabled {
		log.Printf("sketch ingest on (shed watermark %d)", *shedMark)
	}

	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(*traceSeed))
	var atk trafficgen.Attack
	if *attack != "" {
		atk, err = trafficgen.NewAttack(rules.AttackID(*attack), trafficgen.AttackConfig{Seed: int64(*id) + 100})
		if err != nil {
			log.Fatalf("jaal-monitor: %v", err)
		}
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: int64(*id) + 7})

	// Ingest loop: synthesize traffic at the requested rate.
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		per := *pps / 10
		for range tick.C {
			for i := 0; i < per; i++ {
				if err := mon.Ingest(mix.Next().Header); err != nil {
					log.Printf("jaal-monitor: ingest: %v", err)
				}
			}
		}
	}()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("jaal-monitor: %v", err)
	}
	log.Printf("jaal-monitor %d listening on %s (batch=%d rank=%d k=%d attack=%q)",
		*id, ln.Addr(), *batch, *rank, *k, *attack)

	srv := &core.MonitorServer{Monitor: mon, EpochLog: epochLogger, WriteTimeout: *writeTO}
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("jaal-monitor: accept: %v", err)
		}
		go func(c net.Conn) {
			defer c.Close()
			log.Printf("controller connected from %s", c.RemoteAddr())
			if err := srv.Serve(c); err != nil {
				log.Printf("session ended: %v", err)
			} else {
				fmt.Println("controller disconnected")
			}
		}(conn)
	}
}
