// Command jaal-benchdiff compares two scripts/bench.sh JSON captures
// and reports per-benchmark drift, so a PR's perf delta is one readable
// table instead of two files to eyeball.
//
// Usage:
//
//	jaal-benchdiff [-threshold 0.15] [-fail] old.json new.json
//
// Benchmarks are joined on (pkg, name). For each pair the ns/op and
// allocs/op deltas are printed; a delta beyond -threshold (relative,
// default 15%) is marked as drift. Benchmarks present on only one side
// are listed as added/removed. The default exit status is 0 even with
// drift — CI runs this warn-only, because shared runners make wall
// clock noisy — while -fail turns drift into exit 1 for local
// before/after checks on a quiet machine. allocs/op is deterministic,
// so even the warn-only output is trustworthy there.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type benchFile struct {
	Go         string  `json:"go"`
	Date       string  `json:"date"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Pkg     string             `json:"pkg"`
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

type key struct{ pkg, name string }

func load(path string) (*benchFile, map[key]bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[key]bench, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		m[key{b.Pkg, b.Name}] = b
	}
	return &f, m, nil
}

// delta returns the relative change cur vs base for metric name, and
// whether both sides carry it.
func delta(base, cur bench, metric string) (float64, bool) {
	ov, ok1 := base.Metrics[metric]
	nv, ok2 := cur.Metrics[metric]
	if !ok1 || !ok2 || ov == 0 {
		return 0, false
	}
	return (nv - ov) / ov, true
}

// report writes the per-benchmark comparison and returns how many
// benchmarks drifted beyond the threshold.
func report(w io.Writer, oldBy, newBy map[key]bench, threshold float64) int {
	var keys []key
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, ok := oldBy[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].name < keys[j].name
	})

	drifted := 0
	for _, k := range keys {
		o, haveOld := oldBy[k]
		n, haveNew := newBy[k]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "ADDED    %s %s\n", k.pkg, k.name)
			continue
		case !haveNew:
			fmt.Fprintf(w, "REMOVED  %s %s\n", k.pkg, k.name)
			continue
		}
		var cols string
		mark := false
		for _, metric := range [2]string{"ns/op", "allocs/op"} {
			d, ok := delta(o, n, metric)
			if !ok {
				continue
			}
			cols += fmt.Sprintf("  %s %+.1f%%", metric, 100*d)
			if d > threshold {
				mark = true
			}
		}
		status := "ok"
		if mark {
			status = "DRIFT"
			drifted++
		}
		fmt.Fprintf(w, "%-8s %s %s%s\n", status, k.pkg, k.name, cols)
	}
	return drifted
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "relative drift that counts as a regression")
	fail := flag.Bool("fail", false, "exit 1 when any benchmark drifts beyond the threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: jaal-benchdiff [-threshold 0.15] [-fail] old.json new.json")
		os.Exit(2)
	}
	oldFile, oldBy, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaal-benchdiff:", err)
		os.Exit(2)
	}
	newFile, newBy, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaal-benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n", flag.Arg(0), oldFile.Date, flag.Arg(1), newFile.Date)

	drifted := report(os.Stdout, oldBy, newBy, *threshold)
	if drifted > 0 {
		fmt.Printf("\n%d benchmark(s) drifted beyond %.0f%%\n", drifted, 100**threshold)
		if *fail {
			os.Exit(1)
		}
	}
}
