package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkBench(pkg, name string, ns, allocs float64) bench {
	return bench{Pkg: pkg, Name: name, Iters: 100,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestLoadBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	data := `{"go":"go1.24","date":"2026-08-06T00:00:00Z","benchmarks":[
		{"pkg":"repro","name":"BenchmarkX","iterations":7,"metrics":{"ns/op":120.5,"B/op":64,"allocs/op":2}}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	f, by, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Go != "go1.24" || len(by) != 1 {
		t.Fatalf("loaded %+v", f)
	}
	b := by[key{"repro", "BenchmarkX"}]
	if b.Iters != 7 || b.Metrics["ns/op"] != 120.5 {
		t.Fatalf("benchmark decoded as %+v", b)
	}
	if _, _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestDelta(t *testing.T) {
	old := mkBench("p", "B", 100, 10)
	cur := mkBench("p", "B", 130, 10)
	if d, ok := delta(old, cur, "ns/op"); !ok || d != 0.3 {
		t.Fatalf("ns/op delta = %v, %v", d, ok)
	}
	if d, ok := delta(old, cur, "allocs/op"); !ok || d != 0 {
		t.Fatalf("allocs/op delta = %v, %v", d, ok)
	}
	if _, ok := delta(old, cur, "B/op"); ok {
		t.Fatal("metric absent on both sides must report !ok")
	}
	if _, ok := delta(mkBench("p", "B", 0, 0), cur, "ns/op"); ok {
		t.Fatal("zero baseline must report !ok (no divide)")
	}
}

func TestReport(t *testing.T) {
	oldBy := map[key]bench{
		{"p", "BenchmarkSame"}:    mkBench("p", "BenchmarkSame", 100, 5),
		{"p", "BenchmarkSlow"}:    mkBench("p", "BenchmarkSlow", 100, 5),
		{"p", "BenchmarkFast"}:    mkBench("p", "BenchmarkFast", 100, 5),
		{"p", "BenchmarkRemoved"}: mkBench("p", "BenchmarkRemoved", 100, 5),
	}
	newBy := map[key]bench{
		{"p", "BenchmarkSame"}:  mkBench("p", "BenchmarkSame", 101, 5),
		{"p", "BenchmarkSlow"}:  mkBench("p", "BenchmarkSlow", 200, 5), // +100% ns/op: drift
		{"p", "BenchmarkFast"}:  mkBench("p", "BenchmarkFast", 50, 5),  // improvement: not drift
		{"p", "BenchmarkAdded"}: mkBench("p", "BenchmarkAdded", 10, 1),
	}
	var sb strings.Builder
	drifted := report(&sb, oldBy, newBy, 0.15)
	out := sb.String()
	if drifted != 1 {
		t.Fatalf("drifted = %d, want 1\n%s", drifted, out)
	}
	for _, want := range []string{
		"ADDED    p BenchmarkAdded",
		"REMOVED  p BenchmarkRemoved",
		"DRIFT    p BenchmarkSlow",
		"ok       p BenchmarkFast",
		"ok       p BenchmarkSame",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Output must be sorted, so repeated runs diff cleanly.
	if strings.Index(out, "BenchmarkAdded") > strings.Index(out, "BenchmarkFast") {
		t.Errorf("report not in sorted order:\n%s", out)
	}
}
