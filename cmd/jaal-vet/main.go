// Command jaal-vet is the project's multichecker: it runs the custom
// static analyzers of internal/analysis/... over the repo and exits
// non-zero on any finding. It is part of scripts/check.sh and CI, so an
// invariant violation fails the build mechanically.
//
// Usage:
//
//	jaal-vet [-checks detrand,mapiter,...] [-list] [packages]
//
// Packages default to ./..., resolved in the current module. Findings
// print one per line as file:line:col: analyzer: message. A finding is
// silenced — after review, with a reason — by an inline
// //jaalvet:ignore comment; see internal/analysis and DESIGN.md
// ("Static analysis").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/linearscan"
	"repro/internal/analysis/lockcopy"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/obshot"
	"repro/internal/analysis/spanend"
	"repro/internal/analysis/unusedhelper"
	"repro/internal/analysis/wireerr"
)

// all registers every analyzer, in the order findings are attributed.
var all = []*analysis.Analyzer{
	atomicmix.Analyzer,
	detrand.Analyzer,
	linearscan.Analyzer,
	lockcopy.Analyzer,
	mapiter.Analyzer,
	obshot.Analyzer,
	spanend.Analyzer,
	unusedhelper.Analyzer,
	wireerr.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *checks != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "jaal-vet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaal-vet:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaal-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "jaal-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
