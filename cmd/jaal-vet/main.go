// Command jaal-vet is the project's multichecker: it runs the custom
// static analyzers of internal/analysis/... over the repo and exits
// non-zero on any finding. It is part of scripts/check.sh and CI, so an
// invariant violation fails the build mechanically.
//
// Usage:
//
//	jaal-vet [-checks detrand,mapiter,...] [-list] [-summary] [packages]
//
// Packages default to ./..., resolved in the current module. Findings
// print one per line as file:line:col: analyzer: message. A finding is
// silenced — after review, with a reason — by an inline
// //jaalvet:ignore comment; see internal/analysis and DESIGN.md
// ("Static analysis"). A suppression that no longer silences anything
// is reported as a warning (stale suppressions hide nothing but rot
// into misdocumentation); -summary prints per-analyzer finding and
// suppression counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/encdec"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/linearscan"
	"repro/internal/analysis/lockcopy"
	"repro/internal/analysis/lockheld"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/obshot"
	"repro/internal/analysis/spanend"
	"repro/internal/analysis/unusedhelper"
	"repro/internal/analysis/wireerr"
)

// all registers every analyzer, in the order findings are attributed.
var all = []*analysis.Analyzer{
	atomicmix.Analyzer,
	detrand.Analyzer,
	encdec.Analyzer,
	hotalloc.Analyzer,
	linearscan.Analyzer,
	lockcopy.Analyzer,
	lockheld.Analyzer,
	mapiter.Analyzer,
	obshot.Analyzer,
	spanend.Analyzer,
	unusedhelper.Analyzer,
	wireerr.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	summary := flag.Bool("summary", false, "print per-analyzer finding/suppression counts to stderr")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *checks != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "jaal-vet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaal-vet:", err)
		os.Exit(2)
	}
	res, err := analysis.RunDetailed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaal-vet:", err)
		os.Exit(2)
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	// Stale suppressions warn rather than fail: the code is clean, but
	// the comment now documents a finding that no longer exists.
	for _, f := range res.Stale {
		fmt.Fprintf(os.Stderr, "jaal-vet: warning: %s\n", f)
	}
	if *summary {
		names := make([]string, 0, len(res.Stats))
		for name := range res.Stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := res.Stats[name]
			fmt.Fprintf(os.Stderr, "jaal-vet: %-12s %d finding(s), %d suppressed\n",
				name, st.Findings, st.Suppressed)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "jaal-vet: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}
