// Command jaal-controller runs Jaal's central analysis-and-inference
// engine: it maintains long-lived TCP connections to a set of monitors,
// polls them for summaries every epoch (2 s by default, as deployed in
// §7), aggregates, evaluates the translated rule library, and logs
// alerts.
//
// Usage:
//
//	jaal-controller -monitors host1:7101,host2:7101 [-epoch 2s]
//	                [-home 10.0.0.0/8] [-feedback]
//	                [-adapt] [-adapt-budget 65536] [-adapt-target-uncertain 0.25]
//	                [-adapt-step 0.1] [-adapt-widen-after 3]
//	                [-adapt-max-tau2 0.4] [-adapt-min-tau1 0.001] [-adapt-seed 0]
//	                [-timeout 10s] [-retries 5] [-backoff 100ms] [-backoff-max 5s]
//	                [-alert-addr host:7200]
//	                [-obs :9100] [-epochlog controller.jsonl]
//	                [-trace] [-trace-out epochs.trace.json]
//	                [-trace-ring 64] [-trace-slow 250ms]
//
// Every wire exchange runs under -timeout and survives connection loss:
// a failed poll backs off (capped exponential, jittered), redials,
// re-handshakes and retries up to -retries times. Monitors that stay
// unreachable degrade the epoch — inference proceeds on whatever
// arrived — rather than stalling it. -alert-addr ships each alert as a
// MsgAlert frame to an alert sink (see core.AlertSink) under the same
// retry policy.
//
// -adapt turns on the adaptive threshold controller (internal/adapt):
// each epoch the per-attack feedback thresholds are nudged from the
// epoch's verdict mix and deduplicated raw-fetch bytes toward
// -adapt-budget and -adapt-target-uncertain, within hard floors and
// ceilings. Off by default; with it off the engine's output is
// byte-identical to previous releases. The live thresholds are exported
// as jaal_adapt_tau_d1/tau_d2/count_scale2 gauges per attack.
//
// -obs enables metric collection and serves Prometheus-text
// GET /metrics plus net/http/pprof on the given address (default off);
// the jaal_controller_compression_ratio gauge there is the live
// Fig. 12 overhead-vs-raw view. -epochlog appends one JSON record per
// inference round.
//
// -trace records one causal timeline per epoch — capture/summarize/
// encode spans shipped by tracing monitors inside their summary frames,
// plus the controller's ship/decode/infer/alert spans — retained in a
// ring served as JSON at GET /trace on the -obs address. -trace-out
// additionally writes the ring as a Chrome trace-event file on
// SIGINT/SIGTERM; load it in Perfetto (ui.perfetto.dev) to see the
// per-monitor lanes. Tracing never alters alerts: frames from
// tracing-off monitors are byte-identical to pre-trace builds, and the
// disabled path costs one atomic load.
package main

import (
	"flag"
	"log"
	"math/rand"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/trace"
)

func main() {
	var (
		monitorList = flag.String("monitors", "127.0.0.1:7101", "comma-separated monitor addresses")
		epoch       = flag.Duration("epoch", 2*time.Second, "summary polling period P")
		home        = flag.String("home", "10.0.0.0/8", "HOME_NET prefix for rule translation")
		feedback    = flag.Bool("feedback", true, "enable the two-threshold feedback loop")
		tau1        = flag.Float64("tau1", 0.015, "feedback first-stage threshold τ_d1")
		tau2        = flag.Float64("tau2", 0.12, "feedback second-stage threshold τ_d2")
		count2      = flag.Float64("count2", 0.55, "feedback second-stage τ_c relaxation (0–1]")
		adaptOn     = flag.Bool("adapt", false, "adapt the feedback thresholds from live telemetry (requires -feedback)")
		adaptBudget = flag.Int("adapt-budget", 64<<10, "per-epoch raw-fetch byte budget the adapter steers toward (0 = unbounded)")
		adaptTarget = flag.Float64("adapt-target-uncertain", 0.25, "per-attack uncertain-verdict rate the adapter tolerates")
		adaptStep   = flag.Float64("adapt-step", 0.10, "relative threshold nudge per adjustment (0 freezes the adapter)")
		adaptWiden  = flag.Int("adapt-widen-after", 3, "consecutive idle epochs before the uncertain band widens")
		adaptMax2   = flag.Float64("adapt-max-tau2", 0.4, "hard ceiling for the adapted τ_d2")
		adaptMin1   = flag.Float64("adapt-min-tau1", 0.001, "hard floor for the adapted τ_d1")
		adaptSeed   = flag.Int64("adapt-seed", 0, "seed for the adapter's deterministic step dither")
		volume      = flag.Int("volume", 4000, "expected packets per epoch (scales volumetric count thresholds)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-exchange wire deadline (0 = none)")
		retries     = flag.Int("retries", 5, "attempts per wire exchange, reconnects included")
		backoff     = flag.Duration("backoff", 100*time.Millisecond, "backoff before the first retry")
		backoffMax  = flag.Duration("backoff-max", 5*time.Second, "cap on the exponential backoff")
		alertAddr   = flag.String("alert-addr", "", "ship alerts as MsgAlert frames to this sink address (empty = log only)")
		obsAddr     = flag.String("obs", "", "serve /metrics and /debug/pprof on this address (empty = observability off)")
		epochLog    = flag.String("epochlog", "", "append JSON-lines epoch log to this file (empty = off)")
		traceOn     = flag.Bool("trace", false, "record per-epoch stage timelines (serve them at /trace on the -obs address)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event file (Perfetto-loadable) on shutdown; implies -trace")
		traceRing   = flag.Int("trace-ring", 0, "epoch traces retained for /trace and -trace-out (0 = default 64)")
		traceSlow   = flag.Duration("trace-slow", 0, "pin epochs slower than this as exemplars (0 = default 250ms, negative = off)")
	)
	flag.Parse()

	retry := core.RetryConfig{
		Timeout:     *timeout,
		Attempts:    *retries,
		BackoffBase: *backoff,
		BackoffMax:  *backoffMax,
		// A live deployment wants desynchronized retries, not
		// reproducibility; chaos tests inject their own seeded source.
		Jitter: rand.New(rand.NewSource(time.Now().UnixNano())),
	}

	if *traceOut != "" {
		*traceOn = true
	}
	if *traceOn {
		trace.Configure(trace.Config{RingSize: *traceRing, SlowThreshold: *traceSlow})
		trace.SetEnabled(true)
		log.Printf("epoch tracing on")
	}
	if *obsAddr != "" {
		addr, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Fatalf("jaal-controller: obs: %v", err)
		}
		log.Printf("observability on %s (/metrics, /debug/pprof, /trace)", addr)
	}
	if *traceOut != "" {
		// Flush the timeline file on SIGINT/SIGTERM — the natural end of
		// a daemon run.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := trace.WriteTraceFile(*traceOut); err != nil {
				log.Printf("jaal-controller: trace-out: %v", err)
				os.Exit(1)
			}
			log.Printf("wrote epoch trace to %s", *traceOut)
			os.Exit(0)
		}()
	}
	var epochLogger *obs.EpochLogger
	if *epochLog != "" {
		f, err := os.OpenFile(*epochLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("jaal-controller: epochlog: %v", err)
		}
		defer f.Close()
		epochLogger = obs.NewEpochLogger(f)
	}

	prefix, err := netip.ParsePrefix(*home)
	if err != nil {
		log.Fatalf("jaal-controller: bad -home: %v", err)
	}
	env := rules.NewEnvironment()
	env.Set("HOME_NET", prefix)

	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.08,
		VarianceThreshold:        0.005,
	})
	if err != nil {
		log.Fatalf("jaal-controller: %v", err)
	}
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(*volume)
	}
	fb := make(map[rules.AttackID]inference.FeedbackConfig, len(questions))
	for id, q := range questions {
		fb[id] = inference.FeedbackConfig{
			TauD1:       q.EffectiveTau(*tau1),
			TauD2:       q.EffectiveTau(*tau2),
			CountScale2: *count2,
		}
	}

	var adaptCfg *adapt.Config
	if *adaptOn {
		if !*feedback {
			log.Fatal("jaal-controller: -adapt requires -feedback")
		}
		ac := adapt.DefaultConfig(*adaptBudget)
		ac.TargetUncertain = *adaptTarget
		ac.Step = *adaptStep
		ac.WidenAfter = *adaptWiden
		ac.Limits.MaxTauD2 = *adaptMax2
		ac.Limits.MinTauD1 = *adaptMin1
		ac.Seed = *adaptSeed
		adaptCfg = &ac
	}

	ctrl, err := core.NewController(core.ControllerConfig{
		Env: env, Questions: questions, Feedback: fb, UseFeedback: *feedback,
		Adapt: adaptCfg,
	})
	if err != nil {
		log.Fatalf("jaal-controller: %v", err)
	}
	if adaptCfg != nil {
		log.Printf("adaptive thresholds on: budget %d B/epoch, target uncertain %.2f, step %.2f",
			adaptCfg.RawByteBudget, adaptCfg.TargetUncertain, adaptCfg.Step)
	}

	var remotes []*core.RemoteMonitor
	for _, addr := range strings.Split(*monitorList, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
		rm, err := core.DialMonitorRetry(dial, retry)
		if err != nil {
			log.Fatalf("jaal-controller: dial %s: %v", addr, err)
		}
		ctrl.RegisterSource(rm.ID(), rm)
		remotes = append(remotes, rm)
		log.Printf("connected to monitor %d at %s", rm.ID(), addr)
	}
	if len(remotes) == 0 {
		log.Fatal("jaal-controller: no monitors")
	}

	var alertWriter *core.AlertWriter
	if *alertAddr != "" {
		dial := func() (net.Conn, error) { return net.Dial("tcp", *alertAddr) }
		alertWriter = core.NewAlertWriter(dial, retry)
		defer alertWriter.Close()
		log.Printf("shipping alerts to %s", *alertAddr)
	}

	poller := &core.Poller{Remotes: remotes}
	log.Printf("polling %d monitors every %v (feedback=%v, timeout=%v, retries=%d)",
		len(remotes), *epoch, *feedback, *timeout, *retries)
	ticker := time.NewTicker(*epoch)
	defer ticker.Stop()
	for range ticker.C {
		epochN := ctrl.Epoch()
		pollStart := time.Now()
		res := poller.Poll(epochN)
		for _, d := range res.Declines {
			if d.Unreachable() {
				log.Printf("monitor %d unreachable for epoch %d: %v", d.MonitorID, d.Epoch, d.Err)
			}
		}
		if res.Degraded {
			log.Printf("epoch %d degraded: proceeding with %d summaries", epochN, len(res.Summaries))
		}
		pollDur := time.Since(pollStart)
		// Volumetric verdicts ride the digest trailers sketching monitors
		// append to their summary frames: merged and logged here, no raw
		// fetch involved. Sketchless monitors ship none and this is a
		// no-op.
		if rep := ctrl.ObserveDigests(epochN, res.Digests); rep != nil {
			for _, v := range rep.Verdicts {
				log.Printf("epoch %d volumetric: %s %s drawing %.1f%% of %d offered packets (~%d flows, shed %.1f%%)",
					epochN, v.Dimension, ipString(v.Addr), 100*v.Share, rep.Offered, rep.Flows, 100*rep.ShedFraction())
			}
		}
		inferStart := time.Now()
		alerts, err := ctrl.ProcessEpoch(res.Summaries)
		if err != nil {
			log.Printf("inference: %v", err)
			trace.FinishEpoch(epochN, 0)
			continue
		}
		for _, a := range alerts {
			log.Printf("%s", a)
			if alertWriter != nil {
				if err := alertWriter.Send(a); err != nil {
					log.Printf("alert delivery: %v", err)
				}
			}
		}
		// Seal the epoch's timeline: every span staged for this epoch —
		// local ship/infer plus the monitors' wire-shipped contexts — is
		// assembled, the critical path computed, and the trace ringed.
		trace.FinishEpoch(epochN, len(alerts))
		st := ctrl.Stats()
		// Guarded (obshot): the KV literals and boxed values would
		// allocate every epoch even with logging disabled.
		if epochLogger != nil {
			epochLogger.Log("controller", ctrl.Epoch()-1,
				obs.KV{K: "summaries", V: len(res.Summaries)},
				obs.KV{K: "declines", V: len(res.Declines)},
				obs.KV{K: "degraded", V: res.Degraded},
				obs.KV{K: "alerts", V: len(alerts)},
				obs.KV{K: "poll_ms", V: pollDur},
				obs.KV{K: "infer_ms", V: time.Since(inferStart)},
				obs.KV{K: "overhead_fraction", V: st.OverheadFraction()})
		}
		log.Printf("epoch %d: %d summaries, %d packets summarized, overhead %.1f%% of raw",
			ctrl.Epoch()-1, len(res.Summaries), st.PacketsSummarized, 100*st.OverheadFraction())
	}
}

// ipString renders a uint32 IPv4 address as a dotted quad for logs.
func ipString(v uint32) string {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}).String()
}
