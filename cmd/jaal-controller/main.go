// Command jaal-controller runs Jaal's central analysis-and-inference
// engine: it maintains long-lived TCP connections to a set of monitors,
// polls them for summaries every epoch (2 s by default, as deployed in
// §7), aggregates, evaluates the translated rule library, and logs
// alerts.
//
// Usage:
//
//	jaal-controller -monitors host1:7101,host2:7101 [-epoch 2s]
//	                [-home 10.0.0.0/8] [-feedback]
package main

import (
	"flag"
	"log"
	"net"
	"net/netip"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/rules"
	"repro/internal/summary"
)

func main() {
	var (
		monitorList = flag.String("monitors", "127.0.0.1:7101", "comma-separated monitor addresses")
		epoch       = flag.Duration("epoch", 2*time.Second, "summary polling period P")
		home        = flag.String("home", "10.0.0.0/8", "HOME_NET prefix for rule translation")
		feedback    = flag.Bool("feedback", true, "enable the two-threshold feedback loop")
		tau1        = flag.Float64("tau1", 0.015, "feedback first-stage threshold τ_d1")
		tau2        = flag.Float64("tau2", 0.12, "feedback second-stage threshold τ_d2")
		count2      = flag.Float64("count2", 0.55, "feedback second-stage τ_c relaxation (0–1]")
		volume      = flag.Int("volume", 4000, "expected packets per epoch (scales volumetric count thresholds)")
	)
	flag.Parse()

	prefix, err := netip.ParsePrefix(*home)
	if err != nil {
		log.Fatalf("jaal-controller: bad -home: %v", err)
	}
	env := rules.NewEnvironment()
	env.Set("HOME_NET", prefix)

	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.08,
		VarianceThreshold:        0.005,
	})
	if err != nil {
		log.Fatalf("jaal-controller: %v", err)
	}
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(*volume)
	}
	fb := make(map[rules.AttackID]inference.FeedbackConfig, len(questions))
	for id, q := range questions {
		fb[id] = inference.FeedbackConfig{
			TauD1:       q.EffectiveTau(*tau1),
			TauD2:       q.EffectiveTau(*tau2),
			CountScale2: *count2,
		}
	}

	ctrl, err := core.NewController(core.ControllerConfig{
		Env: env, Questions: questions, Feedback: fb, UseFeedback: *feedback,
	})
	if err != nil {
		log.Fatalf("jaal-controller: %v", err)
	}

	var remotes []*core.RemoteMonitor
	for _, addr := range strings.Split(*monitorList, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			log.Fatalf("jaal-controller: dial %s: %v", addr, err)
		}
		rm, err := core.DialMonitor(conn)
		if err != nil {
			log.Fatalf("jaal-controller: hello %s: %v", addr, err)
		}
		ctrl.RegisterSource(rm.ID(), rm)
		remotes = append(remotes, rm)
		log.Printf("connected to monitor %d at %s", rm.ID(), addr)
	}
	if len(remotes) == 0 {
		log.Fatal("jaal-controller: no monitors")
	}

	log.Printf("polling %d monitors every %v (feedback=%v)", len(remotes), *epoch, *feedback)
	ticker := time.NewTicker(*epoch)
	defer ticker.Stop()
	for range ticker.C {
		var all []*summary.Summary
		for _, rm := range remotes {
			ss, err := rm.PollSummaries(ctrl.Epoch())
			if err != nil {
				log.Printf("poll monitor %d: %v", rm.ID(), err)
				continue
			}
			all = append(all, ss...)
		}
		alerts, err := ctrl.ProcessEpoch(all)
		if err != nil {
			log.Printf("inference: %v", err)
			continue
		}
		for _, a := range alerts {
			log.Printf("%s", a)
		}
		st := ctrl.Stats()
		log.Printf("epoch %d: %d summaries, %d packets summarized, overhead %.1f%% of raw",
			ctrl.Epoch()-1, len(all), st.PacketsSummarized, 100*st.OverheadFraction())
	}
}
