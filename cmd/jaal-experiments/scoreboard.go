package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// runScoreboard implements the `scoreboard` subcommand: run the
// labelled scenario corpus through the full pipeline, print the
// per-scenario accuracy table, and gate the result against the
// tolerance-banded golden.
//
// Usage:
//
//	jaal-experiments scoreboard [-profile quick|full] [-workers N]
//	                            [-golden path] [-update] [-json path]
//
// With -update the golden is rewritten from this run. Otherwise, when
// the golden exists, the run is compared against it within the
// tolerance bands and any violation exits non-zero — the CI detection
// regression gate (job scoreboard-quick).
func runScoreboard(args []string) error {
	fs := flag.NewFlagSet("scoreboard", flag.ExitOnError)
	profileName := fs.String("profile", "quick", "scoreboard profile: quick (CI) or full (paper scale)")
	workers := fs.Int("workers", 0, "worker bound for scenario fan-out and pipelines (0 = GOMAXPROCS); the report is identical for every value")
	goldenPath := fs.String("golden", "internal/scenario/testdata/scoreboard.golden", "tolerance-banded golden to gate against (quick profile only)")
	update := fs.Bool("update", false, "rewrite the golden from this run instead of comparing")
	jsonPath := fs.String("json", "", "also write the JSON report to this path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := scenario.ProfileByName(*profileName)
	if err != nil {
		return err
	}
	rep, err := scenario.RunAll(p, *workers)
	if err != nil {
		return err
	}
	fmt.Print(experiments.ScoreboardTable(rep).Render())

	if *jsonPath != "" {
		b, err := scenario.Marshal(rep)
		if err != nil {
			return err
		}
		if *jsonPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			return err
		}
	}

	// The golden pins the quick profile; a full-profile run prints its
	// table and JSON without gating.
	if p.Name != "quick" {
		return nil
	}
	if *update {
		if err := scenario.WriteGolden(*goldenPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scoreboard: golden updated: %s\n", *goldenPath)
		return nil
	}
	want, err := scenario.LoadGolden(*goldenPath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "scoreboard: no golden at %s (run with -update to create it)\n", *goldenPath)
			return nil
		}
		return err
	}
	if violations := scenario.Compare(rep, want); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "scoreboard: violation: %s\n", v)
		}
		return fmt.Errorf("%d tolerance-band violation(s) against %s", len(violations), *goldenPath)
	}
	fmt.Fprintf(os.Stderr, "scoreboard: within tolerance of %s\n", *goldenPath)
	return nil
}
