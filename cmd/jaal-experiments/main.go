// Command jaal-experiments regenerates the tables and figures of the
// paper's evaluation (§8). Each subcommand prints the corresponding
// table/series as aligned text.
//
// Usage:
//
//	jaal-experiments [-quick] <experiment>
//
// where <experiment> is one of: fig4 fig5 fig6 fig7 fig8 fig9 fig10
// fig11 table1 headline varest adaptive adapt multiwindow encoding
// coverage sketchcost batchsize overload matchscale all. ("adaptive"
// is the evasive-attacker ablation; "adapt" is the adaptive-threshold
// trajectory of ISSUE 5; "matchscale" is the ISSUE 6 indexed-matching
// harness and is excluded from "all" because its numbers are wall-clock
// timings; "overload" is the sketch-assisted load-shedding grid at
// 1×/5×/10× offered load, excluded from "all" because it has its own
// warn-only CI job.)
//
// -quick reduces trial counts for a fast smoke run; the default scale
// mirrors the paper's averaging (15 runs per point).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/topology"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale for a fast smoke pass")
	stats := flag.Bool("stats", false, "collect runtime metrics and print the observability summary table to stderr")
	topoNum := flag.Int("topology", 1, "topology for fig7/fig9: 1 (Abovenet-like) or 2 (Exodus-like)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jaal-experiments [-quick] <fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|table1|headline|varest|adaptive|adapt|multiwindow|encoding|coverage|sketchcost|batchsize|overload|matchscale|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() >= 1 && flag.Arg(0) == "scoreboard" {
		if err := runScoreboard(flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "jaal-experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	sc := experiments.FullScale()
	if *quick {
		sc = experiments.QuickScale()
	}

	var top *topology.Topology
	switch *topoNum {
	case 1:
		top = topology.Abovenet()
	case 2:
		top = topology.Exodus()
	default:
		fmt.Fprintf(os.Stderr, "jaal-experiments: -topology must be 1 or 2\n")
		os.Exit(2)
	}

	// Metrics are a write-only side channel: -stats never changes the
	// tables printed on stdout, only appends the summary on stderr.
	obs.SetEnabled(*stats)

	if err := run(flag.Arg(0), sc, *quick, top); err != nil {
		fmt.Fprintf(os.Stderr, "jaal-experiments: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		obs.WriteTable(os.Stderr)
	}
}

func run(name string, sc experiments.Scale, quick bool, top *topology.Topology) error {
	switch name {
	case "fig4":
		_, tbl, err := experiments.Fig4VaryK(sc)
		return render(tbl, err)
	case "fig5":
		_, tbl, err := experiments.Fig5VaryRank(sc)
		return render(tbl, err)
	case "fig6":
		_, tbl, err := experiments.Fig6Feedback(sc)
		return render(tbl, err)
	case "fig7":
		placements := 25
		if quick {
			placements = 5
		}
		_, tbl, err := experiments.Fig7Replication(placements, top)
		return render(tbl, err)
	case "fig8":
		_, _, tbl, err := experiments.Fig8Mirai()
		return render(tbl, err)
	case "fig9":
		flows := 4000
		if quick {
			flows = 1000
		}
		_, tbl, err := experiments.Fig9FlowAssign(flows, top)
		return render(tbl, err)
	case "fig10":
		_, tbl, err := experiments.Fig10Spectrum()
		return render(tbl, err)
	case "fig11":
		_, tbl, err := experiments.Fig11Compression()
		return render(tbl, err)
	case "table1":
		_, tbl, err := experiments.Table1Reservoir(sc)
		return render(tbl, err)
	case "headline":
		_, tbl, err := experiments.Headline(sc)
		return render(tbl, err)
	case "varest":
		tbl, err := experiments.VarianceEstimation()
		return render(tbl, err)
	case "adaptive":
		trials := 15
		if quick {
			trials = 5
		}
		_, tbl, err := experiments.AdaptiveAttacker(trials)
		return render(tbl, err)
	case "adapt":
		_, tbl, err := experiments.AdaptTrajectory(sc)
		return render(tbl, err)
	case "multiwindow":
		trials := 15
		if quick {
			trials = 5
		}
		_, tbl, err := experiments.MultiWindowCorrelation(trials)
		return render(tbl, err)
	case "encoding":
		_, tbl, err := experiments.SplitVsCombined()
		return render(tbl, err)
	case "coverage":
		_, tbl, err := experiments.MonitorCoverage(500)
		return render(tbl, err)
	case "sketchcost":
		tbl, err := experiments.SketchCost()
		return render(tbl, err)
	case "batchsize":
		trials := 15
		if quick {
			trials = 5
		}
		_, tbl, err := experiments.BatchSizeSweep(trials)
		return render(tbl, err)
	case "overload":
		_, tbl, err := experiments.Overload(quick)
		return render(tbl, err)
	case "matchscale":
		sizes := []int{100, 1000, 10000}
		reps := 3
		if quick {
			sizes = []int{100, 1000}
			reps = 1
		}
		_, tbl, err := experiments.MatchScale(sizes, reps)
		return render(tbl, err)
	case "all":
		for _, sub := range []string{
			"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"fig10", "fig11", "table1", "headline", "varest",
			"adaptive", "adapt", "multiwindow", "encoding",
			"coverage", "sketchcost", "batchsize",
		} {
			if err := run(sub, sc, quick, top); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func render(tbl *experiments.Table, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(tbl.Render())
	return nil
}
