// Command jaal-pcap bridges Jaal and the standard capture ecosystem.
//
// Two modes:
//
//	jaal-pcap gen -out trace.pcap [-packets 10000] [-trace-seed 1]
//	              [-attack distributed_syn_flood]
//
// writes a synthetic Jaal workload as a standard .pcap file (raw IPv4
// link type, valid checksums) that tcpdump/Wireshark can open; and
//
//	jaal-pcap detect -in trace.pcap [-batch 1000] [-rank 12] [-k 200]
//	                 [-home 10.0.0.0/8] [-trace] [-trace-out epochs.trace.json]
//
// replays a capture through a Jaal monitor+controller pair, printing
// per-epoch alerts — the closest thing to pointing Jaal at real traffic.
// -trace records one causal stage timeline per epoch; -trace-out writes
// them as a Chrome trace-event file Perfetto (ui.perfetto.dev) loads
// directly, one lane per monitor plus the controller. Tracing never
// changes the alert output.
//
// gen also writes a <out>.labels.json ground-truth sidecar (the attack
// injected and which packet indexes carry it); when detect finds the
// sidecar next to its input it reports per-epoch detection accuracy
// against the truth.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trace"
	"repro/internal/trafficgen"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: jaal-pcap <gen|detect> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "detect":
		err = runDetect(os.Args[2:])
	default:
		err = fmt.Errorf("unknown mode %q", os.Args[1])
	}
	if err != nil {
		log.Fatalf("jaal-pcap: %v", err)
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "trace.pcap", "output capture path")
	packets := fs.Int("packets", 10000, "number of packets")
	seed := fs.Int64("trace-seed", 1, "background trace seed")
	attack := fs.String("attack", "", "attack to inject (empty = clean)")
	fs.Parse(args)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()

	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(*seed))
	var atk trafficgen.Attack
	if *attack != "" {
		atk, err = trafficgen.NewAttack(rules.AttackID(*attack), trafficgen.AttackConfig{Seed: *seed})
		if err != nil {
			return err
		}
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: *seed})

	labels := Labels{Attack: *attack}
	w := pcap.NewWriter(f, pcap.LinkTypeRaw, 0)
	// Virtual time: ~5000 packets per second of capture.
	for i := 0; i < *packets; i++ {
		lp := mix.Next()
		var wire []byte
		if lp.Header.Protocol == packet.ProtoUDP {
			wire, err = lp.Header.MarshalIPv4UDP(nil)
		} else {
			wire, err = lp.Header.MarshalIPv4TCP(nil)
		}
		if err != nil {
			return err
		}
		err = w.WritePacket(pcap.Packet{
			TimestampSec:  uint32(i / 5000),
			TimestampNsec: uint32(i%5000) * 200_000,
			Data:          wire,
		})
		if err != nil {
			return err
		}
		if lp.Label == trafficgen.LabelAttack {
			labels.AttackPackets = append(labels.AttackPackets, i)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets to %s\n", *packets, *out)

	if *attack != "" {
		lf, err := os.Create(*out + ".labels.json")
		if err != nil {
			return err
		}
		defer lf.Close()
		enc := json.NewEncoder(lf)
		if err := enc.Encode(labels); err != nil {
			return err
		}
		fmt.Printf("wrote ground truth (%d attack packets) to %s.labels.json\n",
			len(labels.AttackPackets), *out)
	}
	return nil
}

// Labels is the ground-truth sidecar format: the injected attack and the
// capture indexes of its packets.
type Labels struct {
	Attack        string `json:"attack"`
	AttackPackets []int  `json:"attack_packets"`
}

// loadLabels reads the sidecar next to a capture, if present.
func loadLabels(capturePath string) *Labels {
	f, err := os.Open(capturePath + ".labels.json")
	if err != nil {
		return nil
	}
	defer f.Close()
	var l Labels
	if err := json.NewDecoder(f).Decode(&l); err != nil {
		return nil
	}
	return &l
}

func runDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	in := fs.String("in", "trace.pcap", "input capture path")
	batch := fs.Int("batch", 1000, "batch size n")
	rank := fs.Int("rank", 12, "retained rank r")
	k := fs.Int("k", 200, "centroids k")
	home := fs.String("home", "10.0.0.0/8", "HOME_NET prefix")
	epochVolume := fs.Int("epoch", 4000, "packets per inference epoch")
	stats := fs.Bool("stats", false, "collect runtime metrics and print the observability summary table to stderr")
	traceOn := fs.Bool("trace", false, "record per-epoch stage timelines")
	traceOut := fs.String("trace-out", "", "write the timelines as a Chrome trace-event file; implies -trace")
	fs.Parse(args)
	obs.SetEnabled(*stats)
	if *traceOut != "" {
		*traceOn = true
	}
	trace.SetEnabled(*traceOn)

	prefix, err := netip.ParsePrefix(*home)
	if err != nil {
		return fmt.Errorf("bad -home: %w", err)
	}
	env := rules.NewEnvironment()
	env.Set("HOME_NET", prefix)
	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		return err
	}
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(*epochVolume)
	}
	pipeline, err := core.NewPipeline(core.PipelineConfig{
		NumMonitors: 1,
		Summary:     summary.Config{BatchSize: *batch, Rank: *rank, Centroids: *k, MinBatch: *batch / 2, Seed: 1},
		Controller:  core.ControllerConfig{Env: env, Questions: questions},
	})
	if err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	if r.LinkType() != pcap.LinkTypeRaw && r.LinkType() != pcap.LinkTypeEthernet {
		return fmt.Errorf("unsupported link type %d", r.LinkType())
	}

	labels := loadLabels(*in)
	attackIdx := map[int]bool{}
	if labels != nil {
		for _, i := range labels.AttackPackets {
			attackIdx[i] = true
		}
	}
	epochHadAttack := false
	attackEpochs, detectedAttackEpochs := 0, 0

	total, decoded, inEpoch, alerts := 0, 0, 0, 0
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		data := p.Data
		if r.LinkType() == pcap.LinkTypeEthernet {
			if len(data) < 14 {
				continue
			}
			data = data[14:]
		}
		var h packet.Header
		if _, _, err := h.UnmarshalIPv4(data); err != nil {
			continue // unsupported protocol or malformed: skip, as a monitor would
		}
		decoded++
		if attackIdx[total-1] {
			epochHadAttack = true
		}
		if err := pipeline.Ingest(h); err != nil {
			return err
		}
		inEpoch++
		if inEpoch >= *epochVolume {
			as, err := pipeline.RunEpoch()
			if err != nil {
				return err
			}
			hit := false
			for _, a := range as {
				fmt.Println(a)
				alerts++
				if labels != nil && string(a.Attack) == labels.Attack {
					hit = true
				}
			}
			if labels != nil && epochHadAttack {
				attackEpochs++
				if hit {
					detectedAttackEpochs++
				}
			}
			epochHadAttack = false
			inEpoch = 0
		}
	}
	// Final partial epoch.
	if inEpoch > 0 {
		as, err := pipeline.RunEpoch()
		if err != nil {
			return err
		}
		for _, a := range as {
			fmt.Println(a)
			alerts++
		}
	}
	st := pipeline.Controller.Stats()
	fmt.Printf("\n%d records, %d packets analyzed over %d epochs; %d alerts; overhead %.1f%% of raw\n",
		total, decoded, st.Epochs, alerts, 100*st.OverheadFraction())
	if labels != nil && attackEpochs > 0 {
		fmt.Printf("ground truth (%s): detected in %d of %d attack epochs (%.0f%%)\n",
			labels.Attack, detectedAttackEpochs, attackEpochs,
			100*float64(detectedAttackEpochs)/float64(attackEpochs))
	}
	if *stats {
		obs.WriteTable(os.Stderr)
	}
	if *traceOut != "" {
		if err := trace.WriteTraceFile(*traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote epoch trace to %s\n", *traceOut)
	}
	return nil
}
