package repro_test

import (
	"net"
	"net/netip"
	"testing"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// TestFullDeploymentOverTCP is the capstone integration test: three
// monitor daemons served over real TCP sockets, a controller that dials
// them, polls summaries each epoch, runs the two-stage feedback
// inference (fetching raw packets over the wire when uncertain), and
// must detect an injected distributed SYN flood while staying quiet on
// clean epochs.
func TestFullDeploymentOverTCP(t *testing.T) {
	const (
		numMonitors = 3
		epochVolume = 6000
	)

	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedback := make(map[rules.AttackID]inference.FeedbackConfig, len(questions))
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(epochVolume)
		feedback[id] = inference.FeedbackConfig{
			TauD1:       q.EffectiveTau(0.015),
			TauD2:       q.EffectiveTau(0.12),
			CountScale2: 0.55,
		}
	}

	// Spin up the monitor daemons on loopback TCP.
	monitors := make([]*core.Monitor, numMonitors)
	remotes := make([]*core.RemoteMonitor, numMonitors)
	for i := 0; i < numMonitors; i++ {
		m, err := core.NewMonitor(i, summary.Config{
			BatchSize: 1000, Rank: 12, Centroids: 200, MinBatch: 500, Seed: int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		monitors[i] = m

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func(srv *core.MonitorServer) {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			srv.Serve(conn)
		}(&core.MonitorServer{Monitor: m})

		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		remote, err := core.DialMonitor(conn)
		if err != nil {
			t.Fatal(err)
		}
		remotes[i] = remote
	}

	ctrl, err := core.NewController(core.ControllerConfig{
		Env: env, Questions: questions,
		Feedback: feedback, UseFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range remotes {
		ctrl.RegisterSource(r.ID(), r)
	}

	// ingestEpoch spreads one epoch of traffic round-robin over the
	// monitors, then polls and infers — the controller tick of §7.
	ingestEpoch := func(withAttack bool, seed int64) []*inference.Alert {
		t.Helper()
		bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
		var atk trafficgen.Attack
		if withAttack {
			var err error
			atk, err = trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
				trafficgen.AttackConfig{Seed: seed, Victim: 0x0A000001})
			if err != nil {
				t.Fatal(err)
			}
		}
		mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed})
		for i := 0; i < epochVolume; i++ {
			if err := monitors[i%numMonitors].Ingest(mix.Next().Header); err != nil {
				t.Fatal(err)
			}
		}
		var all []*summary.Summary
		for _, r := range remotes {
			ss, err := r.PollSummaries(ctrl.Epoch())
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, ss...)
		}
		alerts, err := ctrl.ProcessEpoch(all)
		if err != nil {
			t.Fatal(err)
		}
		return alerts
	}

	// Epoch 0: clean. No flood alerts expected.
	for _, a := range ingestEpoch(false, 61) {
		if a.Attack == rules.AttackDistributedSYNFlood || a.Attack == rules.AttackSYNFlood {
			t.Fatalf("clean epoch raised flood alert: %v", a)
		}
	}

	// Epoch 1: distributed SYN flood injected.
	detected := false
	for _, a := range ingestEpoch(true, 62) {
		if a.Attack == rules.AttackDistributedSYNFlood {
			detected = true
			if !a.Distributed {
				t.Fatal("flood from 200 sources must classify as distributed")
			}
		}
	}
	if !detected {
		t.Fatal("distributed SYN flood not detected over the TCP deployment")
	}

	// Communication accounting must show the summary economy.
	st := ctrl.Stats()
	if st.PacketsSummarized == 0 {
		t.Fatal("no packets accounted")
	}
	summaryFrac := float64(st.SummaryBytes()) / float64(st.RawHeaderBytes())
	if summaryFrac > 0.40 {
		t.Fatalf("summary bytes are %.1f%% of raw, want ≤40%%", 100*summaryFrac)
	}
}
