// Package repro is a from-scratch Go reproduction of "Jaal: Towards
// Network Intrusion Detection at ISP Scale" (Aqil et al., CoNEXT 2017).
//
// Jaal detects attacks at ISP scale without copying raw packets to a
// central engine: in-network monitors compress batches of packet headers
// into small summaries — a truncated SVD across the 18 TCP/IP header
// fields followed by k-means++ clustering across packets — and a central
// controller matches translated Snort-style rules (question vectors)
// against the aggregated summaries, falling back to raw packets only for
// uncertain centroids.
//
// The implementation layout:
//
//   - internal/linalg, internal/packet: math and packet substrates
//   - internal/summary, internal/rules, internal/inference: the paper's
//     §4–§5 pipeline (summarization, rule translation, similarity
//     estimation, variance postprocessing, feedback loop)
//   - internal/flowassign, internal/topology, internal/netsim: the §6
//     flow assignment and the evaluation's network substrates
//   - internal/trafficgen, internal/snort, internal/sampling,
//     internal/sketch, internal/mirai: workloads and baselines
//   - internal/core, internal/wire: the deployable system (monitors and
//     controller over TCP)
//   - internal/experiments: the harness regenerating every table and
//     figure of the paper's §8
//
// The root package holds the repository-wide benchmark suite
// (bench_test.go), which regenerates each evaluation figure as a
// testing.B benchmark, and the capstone TCP deployment integration test.
//
// See README.md for usage, DESIGN.md for the system inventory and the
// substitutions made for the paper's proprietary substrates, and
// EXPERIMENTS.md for the paper-vs-measured record.
package repro
