// Package pcap reads and writes the classic libpcap capture file format
// (the .pcap files tcpdump and Wireshark produce), using only the
// standard library. Jaal uses it to exchange traffic with the outside
// world: synthetic workloads can be exported for inspection in standard
// tools, and real captures can be replayed through the monitors.
//
// Only the original 2.4 format is implemented (magic 0xa1b2c3d4, both
// byte orders, microsecond or nanosecond timestamps), with the
// LINKTYPE_RAW link type (packets start at the IPv4 header) as default.
// The pcapng format is out of scope.
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic numbers of the classic pcap format.
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// LinkType identifies the capture's link layer.
type LinkType uint32

// Link types used by Jaal.
const (
	// LinkTypeRaw means packets begin directly with the IP header.
	LinkTypeRaw LinkType = 101
	// LinkTypeEthernet means packets begin with a 14-byte Ethernet
	// header.
	LinkTypeEthernet LinkType = 1
)

// Packet is one captured record.
type Packet struct {
	// TimestampSec/TimestampNsec hold the capture time.
	TimestampSec  uint32
	TimestampNsec uint32
	// Data is the captured bytes (up to the snap length).
	Data []byte
	// OriginalLength is the packet's length on the wire.
	OriginalLength uint32
}

// Writer emits a pcap stream.
type Writer struct {
	w        *bufio.Writer
	snapLen  uint32
	linkType LinkType
	wroteHdr bool
}

// NewWriter returns a Writer producing microsecond-timestamped pcap with
// the given link type. A zero snapLen defaults to 65535.
func NewWriter(w io.Writer, linkType LinkType, snapLen uint32) *Writer {
	if snapLen == 0 {
		snapLen = 65535
	}
	return &Writer{w: bufio.NewWriter(w), snapLen: snapLen, linkType: linkType}
}

// writeHeader emits the global file header once.
func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(w.linkType))
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one record. Timestamps are caller-provided so
// synthetic traces can carry deterministic virtual time.
func (w *Writer) WritePacket(p Packet) error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return fmt.Errorf("pcap: write header: %w", err)
		}
		w.wroteHdr = true
	}
	capLen := uint32(len(p.Data))
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	origLen := p.OriginalLength
	if origLen == 0 {
		origLen = uint32(len(p.Data))
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], p.TimestampSec)
	binary.LittleEndian.PutUint32(rec[4:], p.TimestampNsec/1000) // micros
	binary.LittleEndian.PutUint32(rec[8:], capLen)
	binary.LittleEndian.PutUint32(rec[12:], origLen)
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(p.Data[:capLen]); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Flush writes buffered data through. An empty stream still gets its
// file header so the output is a valid (empty) capture.
func (w *Writer) Flush() error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wroteHdr = true
	}
	return w.w.Flush()
}

// Reader consumes a pcap stream.
type Reader struct {
	r         *bufio.Reader
	order     binary.ByteOrder
	nanos     bool
	snapLen   uint32
	linkType  LinkType
	headerOK  bool
	recordBuf []byte
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{r: bufio.NewReader(r)}
	var hdr [24]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	magicLE := binary.LittleEndian.Uint32(hdr[0:])
	magicBE := binary.BigEndian.Uint32(hdr[0:])
	switch {
	case magicLE == magicMicros:
		rd.order = binary.LittleEndian
	case magicLE == magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicros:
		rd.order = binary.BigEndian
	case magicBE == magicNanos:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", magicLE)
	}
	major := rd.order.Uint16(hdr[4:])
	if major != 2 {
		return nil, fmt.Errorf("pcap: unsupported version %d", major)
	}
	rd.snapLen = rd.order.Uint32(hdr[16:])
	rd.linkType = LinkType(rd.order.Uint32(hdr[20:]))
	rd.headerOK = true
	return rd, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() LinkType { return r.linkType }

// SnapLen returns the capture's snap length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// maxRecord guards against corrupt records claiming absurd lengths.
const maxRecord = 256 << 20

// Next returns the next record, or io.EOF at the clean end of stream.
// The returned Data is only valid until the following Next call.
func (r *Reader) Next() (Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	p := Packet{
		TimestampSec:   r.order.Uint32(rec[0:]),
		OriginalLength: r.order.Uint32(rec[12:]),
	}
	sub := r.order.Uint32(rec[4:])
	if r.nanos {
		p.TimestampNsec = sub
	} else {
		p.TimestampNsec = sub * 1000
	}
	capLen := r.order.Uint32(rec[8:])
	if capLen > maxRecord {
		return Packet{}, fmt.Errorf("pcap: record of %d bytes exceeds limit", capLen)
	}
	if cap(r.recordBuf) < int(capLen) {
		r.recordBuf = make([]byte, capLen)
	}
	r.recordBuf = r.recordBuf[:capLen]
	if _, err := io.ReadFull(r.r, r.recordBuf); err != nil {
		return Packet{}, fmt.Errorf("pcap: read record data: %w", err)
	}
	p.Data = r.recordBuf
	return p, nil
}
