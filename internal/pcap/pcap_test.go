package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/trafficgen"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 0)
	want := []Packet{
		{TimestampSec: 100, TimestampNsec: 5000, Data: []byte{1, 2, 3}},
		{TimestampSec: 101, TimestampNsec: 250000, Data: []byte{9, 8, 7, 6}},
	}
	for _, p := range want {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Fatalf("link type %d", r.LinkType())
	}
	if r.SnapLen() != 65535 {
		t.Fatalf("snap len %d", r.SnapLen())
	}
	for i, exp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.TimestampSec != exp.TimestampSec {
			t.Fatalf("record %d: sec %d, want %d", i, got.TimestampSec, exp.TimestampSec)
		}
		// Microsecond format truncates nanoseconds.
		if got.TimestampNsec/1000 != exp.TimestampNsec/1000 {
			t.Fatalf("record %d: nsec %d, want ≈%d", i, got.TimestampNsec, exp.TimestampNsec)
		}
		if !bytes.Equal(got.Data, exp.Data) {
			t.Fatalf("record %d: data %v, want %v", i, got.Data, exp.Data)
		}
		if got.OriginalLength != uint32(len(exp.Data)) {
			t.Fatalf("record %d: orig len %d", i, got.OriginalLength)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF at end, got %v", err)
	}
}

func TestEmptyCaptureStillValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 1500)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet || r.SnapLen() != 1500 {
		t.Fatalf("header fields: %d/%d", r.LinkType(), r.SnapLen())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty capture must EOF cleanly, got %v", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 4)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := w.WritePacket(Packet{Data: data}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewReader(&buf)
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 4 {
		t.Fatalf("captured %d bytes, want snapped 4", len(p.Data))
	}
	if p.OriginalLength != 8 {
		t.Fatalf("original length %d, want 8", p.OriginalLength)
	}
}

func TestReaderBigEndianAndNanos(t *testing.T) {
	// Hand-build a big-endian nanosecond capture with one record.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], magicNanos)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], uint32(LinkTypeRaw))
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 42)
	binary.BigEndian.PutUint32(rec[4:], 999)
	binary.BigEndian.PutUint32(rec[8:], 2)
	binary.BigEndian.PutUint32(rec[12:], 2)
	buf.Write(rec)
	buf.Write([]byte{0xAA, 0xBB})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.TimestampSec != 42 || p.TimestampNsec != 999 {
		t.Fatalf("timestamps %d/%d", p.TimestampSec, p.TimestampNsec)
	}
	if !bytes.Equal(p.Data, []byte{0xAA, 0xBB}) {
		t.Fatalf("data %v", p.Data)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all!!"))); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header must be rejected")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 0)
	w.WritePacket(Packet{Data: []byte{1, 2, 3, 4}})
	w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record must error, got %v", err)
	}
}

// End-to-end: synthetic Jaal traffic → real IPv4/TCP wire bytes → pcap →
// read back → decode → identical headers.
func TestJaalTrafficThroughPcap(t *testing.T) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(5))
	headers := bg.Batch(200)

	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 0)
	for i := range headers {
		wire, err := headers[i].MarshalIPv4TCP(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(Packet{TimestampSec: uint32(i), Data: wire}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		p, err := r.Next()
		if err == io.EOF {
			if i != len(headers) {
				t.Fatalf("read %d packets, want %d", i, len(headers))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var h packet.Header
		if _, _, err := h.UnmarshalIPv4TCP(p.Data); err != nil {
			t.Fatal(err)
		}
		if h.SrcIP != headers[i].SrcIP || h.Flags != headers[i].Flags ||
			h.DstPort != headers[i].DstPort {
			t.Fatalf("packet %d mismatch", i)
		}
	}
}

// Robustness: the reader must not panic on random bytes after a valid
// header.
func TestReaderFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, LinkTypeRaw, 0)
		w.Flush()
		junk := make([]byte, rng.Intn(64))
		rng.Read(junk)
		buf.Write(junk)
		r, err := NewReader(&buf)
		if err != nil {
			continue
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}
