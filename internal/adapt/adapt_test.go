package adapt

import (
	"reflect"
	"testing"

	"repro/internal/inference"
	"repro/internal/rules"
)

func baseConfigs() map[rules.AttackID]inference.FeedbackConfig {
	return map[rules.AttackID]inference.FeedbackConfig{
		rules.AttackSYNFlood: {TauD1: 0.015, TauD2: 0.12, CountScale2: 0.55},
		rules.AttackPortScan: {TauD1: 0.02, TauD2: 0.10, CountScale2: 0.60},
	}
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	a, err := New(cfg, baseConfigs())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(64 << 10).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{RawByteBudget: -1, Step: 0.1, Hysteresis: 0.1, SmoothingAlpha: 0.3, WidenAfter: 1, Limits: DefaultLimits()},
		{Step: 1, Hysteresis: 0.1, SmoothingAlpha: 0.3, WidenAfter: 1, Limits: DefaultLimits()},
		{Step: 0.1, Hysteresis: 1, SmoothingAlpha: 0.3, WidenAfter: 1, Limits: DefaultLimits()},
		{Step: 0.1, Hysteresis: 0.1, SmoothingAlpha: 0, WidenAfter: 1, Limits: DefaultLimits()},
		{Step: 0.1, Hysteresis: 0.1, SmoothingAlpha: 0.3, TargetUncertain: 2, WidenAfter: 1, Limits: DefaultLimits()},
		{Step: 0.1, Hysteresis: 0.1, SmoothingAlpha: 0.3, WidenAfter: 0, Limits: DefaultLimits()},
		{Step: 0.1, Hysteresis: 0.1, SmoothingAlpha: 0.3, WidenAfter: 1, Limits: Limits{MinGap: 0, MaxTauD2: 0.4}},
		{Step: 0.1, Hysteresis: 0.1, SmoothingAlpha: 0.3, WidenAfter: 1,
			Limits: Limits{MinTauD1: 0.3, MinGap: 0.2, MaxTauD2: 0.4}},
		{Step: 0.1, Hysteresis: 0.1, SmoothingAlpha: 0.3, WidenAfter: 1,
			Limits: Limits{MinGap: 0.01, MaxTauD2: 0.4, MinCountScale2: 1.5}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(DefaultConfig(0), nil); err == nil {
		t.Error("adapter with no configs accepted")
	}
}

// TestObserveInvariants drives the adapter with an adversarial mix of
// samples and checks that every emitted config validates and stays
// inside the limit box — the safety argument is the clamp, not the
// nudges.
func TestObserveInvariants(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Seed = 7
	a := mustNew(t, cfg)
	verdicts := []inference.Verdict{
		inference.VerdictUncertain, inference.VerdictClear,
		inference.VerdictAlert, inference.VerdictUncertain,
	}
	for e := 0; e < 200; e++ {
		s := EpochSample{
			Epoch:    uint64(e),
			RawBytes: (e * 137) % 5000, // swings far above and below budget
			Attacks:  map[rules.AttackID]AttackSample{},
		}
		for i, id := range []rules.AttackID{rules.AttackSYNFlood, rules.AttackPortScan} {
			s.Attacks[id] = AttackSample{
				Verdict: verdicts[(e+i)%len(verdicts)],
				Alerted: (e+i)%3 == 0,
			}
		}
		out := a.Observe(s)
		l := cfg.Limits
		for id, fb := range out {
			if err := fb.Validate(); err != nil {
				t.Fatalf("epoch %d: %s emitted invalid config %+v: %v", e, id, fb, err)
			}
			if fb.TauD1 < l.MinTauD1 || fb.TauD2 > l.MaxTauD2 || fb.TauD2-fb.TauD1 < l.MinGap-1e-12 {
				t.Fatalf("epoch %d: %s outside limits: %+v", e, id, fb)
			}
			if fb.CountScale2 < l.MinCountScale2 || fb.CountScale2 > 1 {
				t.Fatalf("epoch %d: %s count scale outside limits: %+v", e, id, fb)
			}
		}
	}
	if a.Epochs() != 200 {
		t.Fatalf("Epochs() = %d", a.Epochs())
	}
	if a.Adjustments() == 0 {
		t.Fatal("adversarial drive produced no adjustments")
	}
}

// TestControlLawDirections pins the sign of each nudge.
func TestControlLawDirections(t *testing.T) {
	id := rules.AttackSYNFlood
	sample := func(v inference.Verdict, alerted bool, raw int) EpochSample {
		return EpochSample{RawBytes: raw,
			Attacks: map[rules.AttackID]AttackSample{id: {Verdict: v, Alerted: alerted}}}
	}

	t.Run("over budget narrows", func(t *testing.T) {
		a := mustNew(t, DefaultConfig(100))
		before := a.Configs()[id]
		out := a.Observe(sample(inference.VerdictUncertain, true, 10_000))
		if out[id].TauD2 >= before.TauD2 || out[id].CountScale2 <= before.CountScale2 {
			t.Fatalf("over budget should narrow: %+v -> %+v", before, out[id])
		}
	})
	t.Run("refuted uncertainty narrows", func(t *testing.T) {
		a := mustNew(t, DefaultConfig(0))
		before := a.Configs()[id]
		out := a.Observe(sample(inference.VerdictUncertain, false, 0))
		if out[id].TauD2 >= before.TauD2 {
			t.Fatalf("refuted uncertainty should lower τ_d2: %+v -> %+v", before, out[id])
		}
	})
	t.Run("confirmed uncertainty promotes", func(t *testing.T) {
		a := mustNew(t, DefaultConfig(0))
		before := a.Configs()[id]
		out := a.Observe(sample(inference.VerdictUncertain, true, 0))
		if out[id].TauD1 <= before.TauD1 {
			t.Fatalf("confirmed uncertainty should raise τ_d1: %+v -> %+v", before, out[id])
		}
	})
	t.Run("idle epochs widen", func(t *testing.T) {
		cfg := DefaultConfig(0)
		cfg.WidenAfter = 2
		a := mustNew(t, cfg)
		before := a.Configs()[id]
		a.Observe(sample(inference.VerdictClear, false, 0))
		out := a.Observe(sample(inference.VerdictClear, false, 0))
		if out[id].TauD2 <= before.TauD2 || out[id].CountScale2 >= before.CountScale2 {
			t.Fatalf("idle run should widen: %+v -> %+v", before, out[id])
		}
	})
	t.Run("alert steady state holds", func(t *testing.T) {
		a := mustNew(t, DefaultConfig(0))
		before := a.Configs()[id]
		out := a.Observe(sample(inference.VerdictAlert, true, 0))
		if out[id] != before {
			t.Fatalf("direct alerts inside budget should not move thresholds: %+v -> %+v", before, out[id])
		}
	})
	t.Run("absent attack untouched", func(t *testing.T) {
		a := mustNew(t, DefaultConfig(0))
		before := a.Configs()[rules.AttackPortScan]
		out := a.Observe(sample(inference.VerdictUncertain, false, 0))
		if out[rules.AttackPortScan] != before {
			t.Fatalf("attack without a sample moved: %+v -> %+v", before, out[rules.AttackPortScan])
		}
	})
}

// TestStepZeroIsFrozen pins the no-op mode the disabled-path test in
// core relies on: Step = 0 keeps every config bit-identical forever.
func TestStepZeroIsFrozen(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Step = 0
	a := mustNew(t, cfg)
	initial := a.Configs()
	for e := 0; e < 50; e++ {
		out := a.Observe(EpochSample{Epoch: uint64(e), RawBytes: 10_000,
			Attacks: map[rules.AttackID]AttackSample{
				rules.AttackSYNFlood: {Verdict: inference.VerdictUncertain, Alerted: true},
				rules.AttackPortScan: {Verdict: inference.VerdictClear},
			}})
		if !reflect.DeepEqual(out, initial) {
			t.Fatalf("epoch %d: Step=0 moved configs: %+v", e, out)
		}
	}
	if a.Adjustments() != 0 {
		t.Fatalf("Step=0 recorded %d adjustments", a.Adjustments())
	}
}

// TestTrajectoryDeterministic replays identical telemetry through two
// same-seeded adapters and a differently seeded third: the first two
// trajectories must match exactly, the third must diverge (the dither
// is live).
func TestTrajectoryDeterministic(t *testing.T) {
	drive := func(seed int64) []map[rules.AttackID]inference.FeedbackConfig {
		cfg := DefaultConfig(500)
		cfg.Seed = seed
		a := mustNew(t, cfg)
		var traj []map[rules.AttackID]inference.FeedbackConfig
		for e := 0; e < 64; e++ {
			v := inference.VerdictUncertain
			if e%4 == 0 {
				v = inference.VerdictClear
			}
			traj = append(traj, a.Observe(EpochSample{
				Epoch: uint64(e), RawBytes: (e * 311) % 2000,
				Attacks: map[rules.AttackID]AttackSample{
					rules.AttackSYNFlood: {Verdict: v, Alerted: e%2 == 0},
					rules.AttackPortScan: {Verdict: inference.VerdictClear},
				}}))
		}
		return traj
	}
	a, b, c := drive(11), drive(11), drive(12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same telemetry produced different trajectories")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical trajectories — dither is dead")
	}
}

// TestInitialConfigClamped checks that out-of-box configs are pulled
// into the limit box at construction.
func TestInitialConfigClamped(t *testing.T) {
	cfg := DefaultConfig(0)
	a, err := New(cfg, map[rules.AttackID]inference.FeedbackConfig{
		rules.AttackSYNFlood: {TauD1: 0.0, TauD2: 9.0, CountScale2: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := a.Configs()[rules.AttackSYNFlood]
	l := cfg.Limits
	if got.TauD2 != l.MaxTauD2 || got.TauD1 < l.MinTauD1 || got.CountScale2 < l.MinCountScale2 {
		t.Fatalf("initial config not clamped: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
