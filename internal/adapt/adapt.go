// Package adapt drives the feedback loop's operating point from live
// telemetry instead of static config: the paper's two thresholds τ_d1
// and τ_d2 plus the stage-2 count relaxation (§5.3, Fig. 3) are the
// knob trading detection accuracy against raw-packet communication
// overhead, and an ISP-scale deployment cannot freeze that knob at
// controller start — traffic mix, attack prevalence and the fetch
// budget all drift.
//
// Once per epoch the controller hands the adapter the same per-epoch
// quantities that feed the obs layer's
// jaal_controller_feedback_verdicts_total and
// jaal_controller_feedback_raw_packets_total counters — the verdict of
// every feedback question and the epoch's deduplicated raw-fetch bytes
// — and the adapter nudges each attack's inference.FeedbackConfig:
//
//   - Over budget: raw pulls exceeded the configured byte budget, so
//     the uncertain band narrows (τ_d2 down toward τ_d1, CountScale2
//     up toward 1) for the attacks that went uncertain, bounding the
//     §5.3 overhead.
//   - Refuted uncertainty: a raw re-analysis cleared an uncertain
//     verdict — stage 2 cried wolf — so that attack's band narrows.
//   - Confirmed uncertainty: the raw packets confirmed the attack, so
//     τ_d1 rises toward τ_d2; future instances alert directly from the
//     summary without spending fetch budget.
//   - Idle: verdicts all clear and the budget untouched for WidenAfter
//     consecutive epochs — the band widens (τ_d2 up, CountScale2 down,
//     τ_d1 down), recovering TPR headroom.
//
// Hysteresis around the budget and hard floors/ceilings (Limits) keep
// the loop from chattering and guarantee τ_d1 + MinGap ≤ τ_d2 at all
// times, so every emitted config passes FeedbackConfig.Validate and
// never degenerates into the empty-band misconfiguration Validate
// rejects.
//
// Determinism is load-bearing, exactly as for the rest of the
// controller: the adapter consumes only per-epoch values that are
// identical for every worker count (sorted verdicts, deduplicated byte
// totals), iterates attacks in sorted ID order, and draws its step
// dither from a seeded splitmix64 stream — so same-seed runs produce
// byte-identical threshold trajectories (TestAdaptDeterministic...).
// It deliberately does NOT read the obs counters themselves: metrics
// stay a write-only side channel (collection may be disabled), the
// adapter is fed the underlying values directly.
package adapt

import (
	"fmt"
	"sort"

	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/rules"
)

// Limits are the hard floors and ceilings the control law clamps to.
// They, not the nudges, own the safety argument: whatever the
// telemetry says, τ_d1 ∈ [MinTauD1, τ_d2 − MinGap], τ_d2 ∈
// [MinTauD1 + MinGap, MaxTauD2] and CountScale2 ∈ [MinCountScale2, 1].
type Limits struct {
	// MinTauD1 is the floor for the first-stage threshold.
	MinTauD1 float64
	// MaxTauD2 is the ceiling for the second-stage threshold; past it
	// stage 2 matches background noise and every epoch fetches.
	MaxTauD2 float64
	// MinGap is the minimum τ_d2 − τ_d1. A positive gap keeps the
	// uncertain band open, so configs never degenerate.
	MinGap float64
	// MinCountScale2 is the most aggressive stage-2 count relaxation
	// the adapter may reach (CountScale2 shrinks toward it as the band
	// widens).
	MinCountScale2 float64
}

// DefaultLimits returns limits sized for the library's normalized
// distance scale (the Fig. 6 sweep spans τ_d2 ∈ [0.02, 0.3]).
func DefaultLimits() Limits {
	return Limits{MinTauD1: 0.001, MaxTauD2: 0.4, MinGap: 0.005, MinCountScale2: 0.25}
}

// Config parameterizes the adapter.
type Config struct {
	// RawByteBudget is the per-epoch budget for feedback raw-fetch
	// bytes (the §5.3 communication overhead). Zero disables the
	// budget pressure; the verdict-driven nudges still run.
	RawByteBudget int
	// TargetUncertain is the desired per-attack uncertain-verdict rate
	// (EWMA). Above it the band narrows even inside budget — a loop
	// that resolves every epoch by pulling raw packets has its τ_d1
	// set too tight.
	TargetUncertain float64
	// Step is the relative nudge applied per adjustment, e.g. 0.1.
	Step float64
	// Hysteresis is the relative dead band around RawByteBudget and
	// TargetUncertain inside which no adjustment fires.
	Hysteresis float64
	// SmoothingAlpha is the EWMA coefficient for the per-attack
	// uncertain rate (0 < α ≤ 1; higher weighs the newest epoch more).
	SmoothingAlpha float64
	// WidenAfter is how many consecutive idle epochs (verdict clear,
	// budget untouched) an attack accumulates before its band widens.
	WidenAfter int
	// Limits are the hard floors and ceilings.
	Limits Limits
	// Seed feeds the deterministic step-dither stream. Same seed, same
	// telemetry ⇒ same trajectory.
	Seed int64
}

// DefaultConfig returns a conservative adapter configuration around the
// given per-epoch raw-fetch byte budget.
func DefaultConfig(budget int) Config {
	return Config{
		RawByteBudget:   budget,
		TargetUncertain: 0.25,
		Step:            0.10,
		Hysteresis:      0.15,
		SmoothingAlpha:  0.30,
		WidenAfter:      3,
		Limits:          DefaultLimits(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RawByteBudget < 0 {
		return fmt.Errorf("adapt: negative raw byte budget %d", c.RawByteBudget)
	}
	if c.Step < 0 || c.Step >= 1 {
		return fmt.Errorf("adapt: step %v outside [0,1)", c.Step)
	}
	if c.Hysteresis < 0 || c.Hysteresis >= 1 {
		return fmt.Errorf("adapt: hysteresis %v outside [0,1)", c.Hysteresis)
	}
	if c.SmoothingAlpha <= 0 || c.SmoothingAlpha > 1 {
		return fmt.Errorf("adapt: smoothing α %v outside (0,1]", c.SmoothingAlpha)
	}
	if c.TargetUncertain < 0 || c.TargetUncertain > 1 {
		return fmt.Errorf("adapt: target uncertain rate %v outside [0,1]", c.TargetUncertain)
	}
	if c.WidenAfter < 1 {
		return fmt.Errorf("adapt: widen-after %d must be ≥ 1", c.WidenAfter)
	}
	l := c.Limits
	if l.MinTauD1 < 0 || l.MinGap <= 0 || l.MaxTauD2 <= l.MinTauD1+l.MinGap {
		return fmt.Errorf("adapt: limits need 0 ≤ MinTauD1, 0 < MinGap, MinTauD1+MinGap < MaxTauD2; got %+v", l)
	}
	if l.MinCountScale2 < 0 || l.MinCountScale2 > 1 {
		return fmt.Errorf("adapt: MinCountScale2 %v outside [0,1]", l.MinCountScale2)
	}
	return nil
}

// AttackSample is one attack's feedback outcome for one epoch. Only
// fields that are deterministic for every worker count belong here —
// per-question transfer attribution is not (whichever question races
// first pays the bytes), so the byte total lives on EpochSample.
type AttackSample struct {
	// Verdict is the §5.3 case the feedback loop landed in.
	Verdict inference.Verdict
	// Alerted is the final decision; for uncertain verdicts it tells
	// confirmed (raw analysis saw the attack) from refuted.
	Alerted bool
}

// EpochSample is one epoch's telemetry: the same quantities the obs
// counters receive, handed to the adapter directly.
type EpochSample struct {
	// Epoch is the inference round.
	Epoch uint64
	// RawBytes is the epoch's deduplicated feedback raw-fetch cost in
	// wire bytes.
	RawBytes int
	// Attacks holds the per-attack outcomes for every feedback
	// question evaluated this epoch.
	Attacks map[rules.AttackID]AttackSample
}

// attackState is the adapter's per-attack memory.
type attackState struct {
	cfg           inference.FeedbackConfig
	uncertainEWMA float64
	idleEpochs    int

	gTau1, gTau2, gScale *obs.Gauge
}

// Controller is the adaptive threshold controller. It is not safe for
// concurrent use; the core controller calls Observe once per epoch from
// its inference goroutine.
type Controller struct {
	cfg    Config
	ids    []rules.AttackID // sorted iteration order
	states map[rules.AttackID]*attackState
	rng    uint64 // splitmix64 state for step dither

	epochs      int
	adjustments int
}

// Package-level adapter series; the per-attack threshold gauges are
// created per attack ID in New via obs.EnsureGauge.
var (
	cAdjustments = obs.NewCounter("jaal_adapt_adjustments_total",
		"threshold adjustments applied by the adaptive controller")
	gBudget = obs.NewIntGauge("jaal_adapt_raw_budget_bytes",
		"configured per-epoch raw-fetch byte budget (0 = unbounded)")
	gLastRaw = obs.NewIntGauge("jaal_adapt_last_epoch_raw_bytes",
		"deduplicated feedback raw-fetch bytes observed in the last epoch")
)

// New builds an adapter seeded with each attack's initial feedback
// config. Every initial config is clamped into the limits and must
// validate afterwards.
func New(cfg Config, initial map[rules.AttackID]inference.FeedbackConfig) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("adapt: no feedback configs to adapt")
	}
	a := &Controller{
		cfg:    cfg,
		states: make(map[rules.AttackID]*attackState, len(initial)),
		rng:    uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0x1F83D9ABFB41BD6B,
	}
	var ids []rules.AttackID
	for id := range initial {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	a.ids = ids
	for _, id := range a.ids {
		c := a.clamp(initial[id])
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("adapt: initial config for %s unusable even after clamping: %w", id, err)
		}
		a.states[id] = &attackState{
			cfg:    c,
			gTau1:  obs.EnsureGauge(fmt.Sprintf("jaal_adapt_tau_d1{attack=%q}", id), "live adapted first-stage threshold τ_d1"),
			gTau2:  obs.EnsureGauge(fmt.Sprintf("jaal_adapt_tau_d2{attack=%q}", id), "live adapted second-stage threshold τ_d2"),
			gScale: obs.EnsureGauge(fmt.Sprintf("jaal_adapt_count_scale2{attack=%q}", id), "live adapted stage-2 count relaxation"),
		}
	}
	gBudget.Set(int64(cfg.RawByteBudget))
	a.export()
	return a, nil
}

// Configs returns a copy of the current per-attack feedback configs.
func (a *Controller) Configs() map[rules.AttackID]inference.FeedbackConfig {
	out := make(map[rules.AttackID]inference.FeedbackConfig, len(a.states))
	//jaalvet:ignore mapiter — map→map copy; iteration order cannot reach any output
	for id, st := range a.states {
		out[id] = st.cfg
	}
	return out
}

// Epochs returns how many epochs the adapter has observed.
func (a *Controller) Epochs() int { return a.epochs }

// Adjustments returns how many individual threshold nudges have been
// applied since start.
func (a *Controller) Adjustments() int { return a.adjustments }

// Observe ingests one epoch's telemetry, applies the control law, and
// returns the updated per-attack configs (a fresh map — the caller may
// install it without copying). Attacks absent from the sample (no
// feedback question evaluated this epoch) keep their state untouched.
func (a *Controller) Observe(s EpochSample) map[rules.AttackID]inference.FeedbackConfig {
	a.epochs++
	gLastRaw.Set(int64(s.RawBytes))

	budget := a.cfg.RawByteBudget
	over := budget > 0 && float64(s.RawBytes) > float64(budget)*(1+a.cfg.Hysteresis)
	idleBudget := budget == 0 || float64(s.RawBytes) < float64(budget)*(1-a.cfg.Hysteresis)

	for _, id := range a.ids {
		st := a.states[id]
		sample, ok := s.Attacks[id]
		if !ok {
			continue
		}
		uncertain := sample.Verdict == inference.VerdictUncertain
		ewma := a.cfg.SmoothingAlpha
		st.uncertainEWMA = (1-ewma)*st.uncertainEWMA + ewma*b2f(uncertain)

		switch {
		case over && uncertain:
			// The epoch blew the fetch budget and this attack was one
			// of the spenders: narrow its band hard (§5.3 overhead
			// bound dominates).
			a.narrow(st, a.step())
		case uncertain && !sample.Alerted:
			// Raw packets refuted stage 2's suspicion: the band is
			// catching background. Narrow gently.
			a.narrow(st, a.step()/2)
		case uncertain && sample.Alerted:
			// Raw packets confirmed the attack: stage 1 missed
			// something real, so promote τ_d1 toward τ_d2 — the next
			// instance alerts straight from the summary, spending no
			// fetch budget.
			a.promote(st, a.step())
		}

		if uncertain && st.uncertainEWMA > a.cfg.TargetUncertain*(1+a.cfg.Hysteresis) {
			// Persistent uncertainty above target even inside budget:
			// every epoch resolves by raw pull, which is the slow,
			// expensive path. Narrow toward summary-only resolution.
			a.narrow(st, a.step()/2)
		}

		if sample.Verdict == inference.VerdictClear && idleBudget {
			st.idleEpochs++
			if st.idleEpochs >= a.cfg.WidenAfter {
				// Quiet traffic and an idle budget: widen the band to
				// recover TPR headroom (looser τ_d2, more relaxed
				// stage-2 count, more sensitive promotion floor).
				a.widen(st, a.step())
				st.idleEpochs = 0
			}
		} else {
			st.idleEpochs = 0
		}
	}

	a.export()
	out := make(map[rules.AttackID]inference.FeedbackConfig, len(a.states))
	//jaalvet:ignore mapiter — map→map copy; iteration order cannot reach any output
	for id, st := range a.states {
		out[id] = st.cfg
	}
	return out
}

// narrow shrinks the uncertain band: τ_d2 moves toward τ_d1 and the
// stage-2 count relaxation backs off toward 1 (no relaxation).
func (a *Controller) narrow(st *attackState, step float64) {
	c := st.cfg
	c.TauD2 -= step * (c.TauD2 - c.TauD1)
	c.CountScale2 += step * (1 - c.CountScale2)
	a.install(st, c)
}

// widen grows the uncertain band: τ_d2 rises toward the ceiling,
// CountScale2 relaxes toward its floor, τ_d1 eases toward its floor.
func (a *Controller) widen(st *attackState, step float64) {
	c := st.cfg
	c.TauD2 += step * (a.cfg.Limits.MaxTauD2 - c.TauD2)
	c.CountScale2 -= step * (c.CountScale2 - a.cfg.Limits.MinCountScale2)
	c.TauD1 -= (step / 2) * (c.TauD1 - a.cfg.Limits.MinTauD1)
	a.install(st, c)
}

// promote raises τ_d1 toward τ_d2, converting confirmed-uncertain
// attacks into direct stage-1 alerts.
func (a *Controller) promote(st *attackState, step float64) {
	c := st.cfg
	c.TauD1 += step * (c.TauD2 - c.TauD1)
	a.install(st, c)
}

// install clamps the candidate into the limits and adopts it. The
// clamp enforces every FeedbackConfig invariant, so a failed Validate
// here means a bug in the clamp itself — the old config is kept and
// the event surfaces through the invariant tests rather than silently
// corrupting the loop.
func (a *Controller) install(st *attackState, c inference.FeedbackConfig) {
	c = a.clamp(c)
	if err := c.Validate(); err != nil {
		return
	}
	if c != st.cfg {
		a.adjustments++
		cAdjustments.Inc()
	}
	st.cfg = c
}

// clamp forces the config into the limit box, preserving
// τ_d1 + MinGap ≤ τ_d2 so the uncertain band never closes.
func (a *Controller) clamp(c inference.FeedbackConfig) inference.FeedbackConfig {
	l := a.cfg.Limits
	if c.TauD2 > l.MaxTauD2 {
		c.TauD2 = l.MaxTauD2
	}
	if c.TauD2 < l.MinTauD1+l.MinGap {
		c.TauD2 = l.MinTauD1 + l.MinGap
	}
	if c.TauD1 < l.MinTauD1 {
		c.TauD1 = l.MinTauD1
	}
	if c.TauD1 > c.TauD2-l.MinGap {
		c.TauD1 = c.TauD2 - l.MinGap
	}
	if c.CountScale2 < l.MinCountScale2 {
		c.CountScale2 = l.MinCountScale2
	}
	if c.CountScale2 > 1 {
		c.CountScale2 = 1
	}
	return c
}

// step returns the base step scaled by a deterministic dither in
// [0.75, 1.25), breaking limit cycles without wall-clock randomness.
func (a *Controller) step() float64 {
	return a.cfg.Step * (0.75 + 0.5*a.dither())
}

// dither draws the next value of a seeded splitmix64 stream, mapped to
// [0, 1).
func (a *Controller) dither() float64 {
	a.rng += 0x9E3779B97F4A7C15
	z := a.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// export publishes the live thresholds as jaal_adapt_* gauges.
func (a *Controller) export() {
	for _, id := range a.ids {
		st := a.states[id]
		st.gTau1.Set(st.cfg.TauD1)
		st.gTau2.Set(st.cfg.TauD2)
		st.gScale.Set(st.cfg.CountScale2)
	}
}

// b2f is the indicator function.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
