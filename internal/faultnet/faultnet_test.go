package faultnet

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns a faultnet-wrapped client over net.Pipe plus the
// raw server side.
func pipePair(plan *Plan) (*Conn, net.Conn) {
	client, server := net.Pipe()
	return New(client, plan), server
}

func TestTransparentWithoutPlan(t *testing.T) {
	c, server := pipePair(nil)
	defer c.Close()
	defer server.Close()
	go server.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read = %q, %v", buf, err)
	}
}

func TestResetOnScheduledWrite(t *testing.T) {
	c, server := pipePair(NewPlan(Fault{Op: OpWrite, Index: 1, Kind: KindReset}))
	defer c.Close()
	defer server.Close()
	go io.Copy(io.Discard, server)
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write 0 must pass: %v", err)
	}
	_, err := c.Write([]byte("boom"))
	if err == nil || !IsInjected(err) {
		t.Fatalf("write 1 error = %v, want injected", err)
	}
	// The underlying connection is dead now.
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("peer write after reset must fail")
	}
}

func TestTruncatedWriteDeliversPrefix(t *testing.T) {
	c, server := pipePair(NewPlan(Fault{Op: OpWrite, Index: 0, Kind: KindTruncate, KeepBytes: 3}))
	defer c.Close()
	defer server.Close()
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write([]byte("abcdef"))
	if n != 3 || !IsInjected(err) {
		t.Fatalf("truncated write = %d, %v; want 3, injected", n, err)
	}
	if b := <-got; string(b) != "abc" {
		t.Fatalf("peer saw %q, want %q", b, "abc")
	}
}

func TestDelayUsesInjectedSleep(t *testing.T) {
	c, server := pipePair(NewPlan(Fault{Op: OpWrite, Index: 0, Kind: KindDelay, Delay: 42 * time.Millisecond}))
	defer c.Close()
	defer server.Close()
	var slept time.Duration
	c.SetSleep(func(d time.Duration) { slept = d })
	go io.Copy(io.Discard, server)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if slept != 42*time.Millisecond {
		t.Fatalf("slept %v, want 42ms", slept)
	}
}

func TestStallHonoursReadDeadline(t *testing.T) {
	c, server := pipePair(NewPlan(Fault{Op: OpRead, Index: 0, Kind: KindStall}))
	defer c.Close()
	defer server.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read error = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall ignored the deadline")
	}
}

func TestStallReleasedByClose(t *testing.T) {
	c, server := pipePair(NewPlan(Fault{Op: OpRead, Index: 0, Kind: KindStall}))
	defer server.Close()
	errC := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errC <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errC:
		if !IsInjected(err) {
			t.Fatalf("stall release error = %v, want injected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the stalled read")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	prof := LossyProfile(200, 100, time.Millisecond) // 50% loss
	a := prof.Generate(rand.New(rand.NewSource(7)), 20).Faults()
	b := prof.Generate(rand.New(rand.NewSource(7)), 20).Faults()
	if len(a) == 0 {
		t.Fatal("a 50%-loss profile over 40 ops generated no faults")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed generated %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := prof.Generate(rand.New(rand.NewSource(8)), 20).Faults()
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds generated identical plans")
		}
	}
}

func TestDialerWrapsPerConnection(t *testing.T) {
	plans := []*Plan{
		NewPlan(Fault{Op: OpWrite, Index: 0, Kind: KindReset}),
		nil, // connection 1 heals
	}
	dials := 0
	dial := Dialer(func() (net.Conn, error) {
		dials++
		client, server := net.Pipe()
		go io.Copy(io.Discard, server)
		return client, nil
	}, func(i int) *Plan {
		if i < len(plans) {
			return plans[i]
		}
		return nil
	})

	c0, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Write([]byte("x")); !IsInjected(err) {
		t.Fatalf("conn 0 write error = %v, want injected", err)
	}
	c1, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Write([]byte("x")); err != nil {
		t.Fatalf("healed conn 1 write failed: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dialed %d times, want 2", dials)
	}
}
