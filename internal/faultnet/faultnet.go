// Package faultnet wraps net.Conn with a deterministic, scriptable
// fault plan: delayed reads and writes, truncated frames, mid-frame
// connection resets, and stalled reads that only a deadline (or Close)
// can break. It exists so the transport layer's retry, timeout and
// reconnect logic (internal/core) can be driven through every failure
// mode the paper's deployment environment exhibits (§8: congested
// links, saturated engines) without touching production code paths —
// tests wrap the net.Conn a dial returns, production never imports
// this package.
//
// Faults are addressed by operation index — "the 3rd Read on this
// connection", "the 0th Write" — not by wall-clock time, so a plan
// replays identically on every run. Seeded plan generation
// (Profile.Generate) draws fault positions from an injected
// *rand.Rand; the LossyProfile preset derives its drop probability
// from netsim.Survival, the same proportional-loss model the
// evaluation scenarios use for congested links.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Op selects which connection operation a fault applies to.
type Op uint8

// Operations a fault can target.
const (
	// OpRead targets Read calls.
	OpRead Op = iota
	// OpWrite targets Write calls.
	OpWrite
)

// String names the operation.
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Kind is the failure mode a fault injects.
type Kind uint8

// Failure modes.
const (
	// KindDelay sleeps Fault.Delay, then performs the operation
	// normally: a congested or long-RTT link.
	KindDelay Kind = 1 + iota
	// KindTruncate lets Fault.KeepBytes of the operation through, then
	// closes the underlying connection: a frame cut mid-flight.
	KindTruncate
	// KindReset closes the underlying connection and fails the
	// operation immediately: an abortive peer reset.
	KindReset
	// KindStall blocks the operation until the connection's deadline
	// passes or Close is called: a peer that accepts but never answers.
	KindStall
)

// String names the failure mode.
func (k Kind) String() string {
	switch k {
	case KindDelay:
		return "delay"
	case KindTruncate:
		return "truncate"
	case KindReset:
		return "reset"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault schedules one failure on a connection.
type Fault struct {
	// Op is the operation class the fault targets.
	Op Op
	// Index is the zero-based count of Op calls on the connection at
	// which the fault fires ("Index 2" = the third Read or Write).
	Index int
	// Kind is the failure mode.
	Kind Kind
	// Delay is the injected latency for KindDelay.
	Delay time.Duration
	// KeepBytes is how much of the operation KindTruncate lets through.
	KeepBytes int
}

// Plan is a scripted set of faults for one connection. A nil *Plan is
// valid and injects nothing.
type Plan struct {
	faults []Fault
}

// NewPlan builds a plan from scheduled faults. When several faults
// name the same (Op, Index), the first one listed wins.
func NewPlan(faults ...Fault) *Plan {
	return &Plan{faults: append([]Fault(nil), faults...)}
}

// Faults returns a copy of the scheduled faults.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// lookup finds the fault scheduled for the idx-th op, if any.
func (p *Plan) lookup(op Op, idx int) (Fault, bool) {
	if p == nil {
		return Fault{}, false
	}
	for _, f := range p.faults {
		if f.Op == op && f.Index == idx {
			return f, true
		}
	}
	return Fault{}, false
}

// errInjected is the error class every injected failure returns,
// wrapped with the fault's position so test logs name the script line
// that fired.
type errInjected struct {
	f Fault
}

func (e errInjected) Error() string {
	return fmt.Sprintf("faultnet: injected %s on %s %d", e.f.Kind, e.f.Op, e.f.Index)
}

// Timeout marks stall faults as timeout errors so retry layers
// classify them like a real deadline miss.
func (e errInjected) Timeout() bool { return e.f.Kind == KindStall }

// Temporary reports injected faults as transient: the retry layer is
// expected to reconnect and try again.
func (e errInjected) Temporary() bool { return true }

// IsInjected reports whether err originated from a fault plan —
// chaos tests use it to tell scripted failures from real ones.
func IsInjected(err error) bool {
	_, ok := err.(errInjected)
	return ok
}

// Conn wraps a net.Conn and executes a fault plan against it. The
// zero operation counts start at the first call after wrapping, so
// plans compose with reconnect logic: each redial wraps a fresh Conn
// whose indices start over.
type Conn struct {
	inner net.Conn
	plan  *Plan
	// Sleep implements KindDelay; tests inject a recording stub, the
	// default is time.Sleep.
	sleep func(time.Duration)

	mu           sync.Mutex
	reads        int
	writes       int
	readDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// New wraps conn with the plan. A nil plan yields a transparent
// wrapper.
func New(conn net.Conn, plan *Plan) *Conn {
	return &Conn{
		inner:  conn,
		plan:   plan,
		sleep:  time.Sleep,
		closed: make(chan struct{}),
	}
}

// SetSleep replaces the delay implementation (tests count injected
// latency instead of paying it). It must be called before the
// connection is used.
func (c *Conn) SetSleep(fn func(time.Duration)) { c.sleep = fn }

// Read implements net.Conn, applying any fault scheduled for this
// read index.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	idx := c.reads
	c.reads++
	deadline := c.readDeadline
	c.mu.Unlock()

	f, ok := c.plan.lookup(OpRead, idx)
	if !ok {
		return c.inner.Read(p)
	}
	switch f.Kind {
	case KindDelay:
		c.sleep(f.Delay)
		return c.inner.Read(p)
	case KindTruncate:
		keep := f.KeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		var n int
		var err error
		if keep > 0 {
			n, err = c.inner.Read(p[:keep])
		}
		c.inner.Close()
		if err != nil {
			return n, err
		}
		return n, nil // the closed conn fails the next read
	case KindReset:
		c.inner.Close()
		return 0, errInjected{f}
	case KindStall:
		return 0, c.stall(deadline, f)
	default:
		return 0, fmt.Errorf("faultnet: unknown fault kind %v", f.Kind)
	}
}

// Write implements net.Conn, applying any fault scheduled for this
// write index.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	idx := c.writes
	c.writes++
	c.mu.Unlock()

	f, ok := c.plan.lookup(OpWrite, idx)
	if !ok {
		return c.inner.Write(p)
	}
	switch f.Kind {
	case KindDelay:
		c.sleep(f.Delay)
		return c.inner.Write(p)
	case KindTruncate:
		keep := f.KeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		var n int
		if keep > 0 {
			var err error
			n, err = c.inner.Write(p[:keep])
			if err != nil {
				c.inner.Close()
				return n, err
			}
		}
		c.inner.Close()
		return n, errInjected{f}
	case KindReset:
		c.inner.Close()
		return 0, errInjected{f}
	case KindStall:
		return 0, c.stall(time.Time{}, f)
	default:
		return 0, fmt.Errorf("faultnet: unknown fault kind %v", f.Kind)
	}
}

// stall blocks until the deadline passes or the connection closes.
func (c *Conn) stall(deadline time.Time, f Fault) error {
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-timeout:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return errInjected{f}
	}
}

// Close closes the wrapper and the underlying connection, releasing
// any stalled operation.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn. The wrapper records it so a
// stalled read honours the same deadline a blocked real read would.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.inner.SetWriteDeadline(t)
}

// Profile gives the per-operation fault probabilities a generated plan
// draws from. Probabilities are evaluated in the order reset,
// truncate, delay; at most one fault lands on a given operation.
type Profile struct {
	// ResetProb is the chance an operation resets the connection.
	ResetProb float64
	// TruncateProb is the chance an operation is cut after
	// TruncateBytes.
	TruncateProb float64
	// TruncateBytes is how much a truncation lets through.
	TruncateBytes int
	// DelayProb is the chance an operation is delayed by Delay.
	DelayProb float64
	// Delay is the injected latency for delay faults.
	Delay time.Duration
}

// LossyProfile derives a profile from the netsim proportional-loss
// model: a wire crossing a resource offered `offered` packets per tick
// against `capacity` loses frames with probability
// 1 − netsim.Survival(offered, capacity), split evenly between resets
// and truncations, and delays the survivors with the same probability.
func LossyProfile(offered, capacity float64, delay time.Duration) Profile {
	loss := 1 - netsim.Survival(offered, capacity)
	return Profile{
		ResetProb:     loss / 2,
		TruncateProb:  loss / 2,
		TruncateBytes: 3, // inside the 5-byte frame header: always mid-frame
		DelayProb:     loss,
		Delay:         delay,
	}
}

// Generate draws a plan covering the first n reads and n writes from
// the seeded rng. Equal seeds produce equal plans.
func (pr Profile) Generate(rng *rand.Rand, n int) *Plan {
	var faults []Fault
	for _, op := range []Op{OpRead, OpWrite} {
		for i := 0; i < n; i++ {
			switch u := rng.Float64(); {
			case u < pr.ResetProb:
				faults = append(faults, Fault{Op: op, Index: i, Kind: KindReset})
			case u < pr.ResetProb+pr.TruncateProb:
				faults = append(faults, Fault{Op: op, Index: i, Kind: KindTruncate, KeepBytes: pr.TruncateBytes})
			case u < pr.ResetProb+pr.TruncateProb+pr.DelayProb:
				faults = append(faults, Fault{Op: op, Index: i, Kind: KindDelay, Delay: pr.Delay})
			}
		}
	}
	return NewPlan(faults...)
}

// Dialer returns a dial function that wraps every connection `dial`
// produces with the plan `nextPlan` returns for that connection
// (called with 0, 1, 2, … in dial order). A nil plan for a given
// connection leaves it fault-free — the standard shape for "the first
// k connection attempts misbehave, then the link heals".
func Dialer(dial func() (net.Conn, error), nextPlan func(conn int) *Plan) func() (net.Conn, error) {
	var mu sync.Mutex
	n := 0
	return func() (net.Conn, error) {
		mu.Lock()
		i := n
		n++
		mu.Unlock()
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		plan := nextPlan(i)
		if plan == nil {
			return conn, nil
		}
		return New(conn, plan), nil
	}
}
