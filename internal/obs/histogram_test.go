package obs

import (
	"bytes"
	"strings"
	"testing"
)

// Bucket-boundary semantics: bounds are inclusive upper edges, so a
// value exactly on an edge lands in that edge's bucket, values above
// the largest bound land in +Inf, and zero/negative values land in the
// first bucket. These are the edges a histogram misconfiguration would
// silently shift by one — pinned here so DurationBuckets consumers can
// rely on them.
func TestHistogramBucketBoundaries(t *testing.T) {
	resetOn(t)
	h := bHist
	h.Reset()

	// Exact edges: each must land in its own bucket, inclusively.
	for _, edge := range []float64{0.1, 1, 10} {
		h.Observe(edge)
	}
	counts := bucketCounts(h)
	for i, want := range []int64{1, 1, 1, 0} {
		if counts[i] != want {
			t.Fatalf("after edge observations, bucket[%d] = %d, want %d (counts %v)", i, counts[i], want, counts)
		}
	}

	// Just above an edge spills into the next bucket.
	h.Reset()
	h.Observe(0.1000001)
	if counts = bucketCounts(h); counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("value just above edge landed in %v", counts)
	}

	// Overflow: above the largest bound goes to +Inf only.
	h.Reset()
	h.Observe(10.0000001)
	h.Observe(1e12)
	if counts = bucketCounts(h); counts[3] != 2 {
		t.Fatalf("overflow observations landed in %v, want +Inf bucket", counts)
	}

	// Zero and negative durations (a clock stepping backwards mid-span)
	// must not panic or vanish: they count in the first bucket.
	h.Reset()
	h.Observe(0)
	h.Observe(-1.5)
	if counts = bucketCounts(h); counts[0] != 2 {
		t.Fatalf("zero/negative observations landed in %v, want first bucket", counts)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.Sum(); got != -1.5 {
		t.Fatalf("sum = %v, want -1.5", got)
	}
}

// The +Inf exposition line must be cumulative over every bucket
// including overflow, and _count must agree with it.
func TestHistogramOverflowExposition(t *testing.T) {
	resetOn(t)
	h := bHist
	h.Reset()
	for _, v := range []float64{0.05, 10, 11, 1e9} {
		h.Observe(v)
	}
	var b bytes.Buffer
	h.writeProm(&b)
	out := b.String()
	for _, want := range []string{
		`bound_hist_seconds_bucket{le="10"} 2`,
		`bound_hist_seconds_bucket{le="+Inf"} 4`,
		"bound_hist_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Quantile on boundary-heavy data stays monotone and reports the
// largest finite bound for overflow mass.
func TestHistogramQuantileOverflow(t *testing.T) {
	resetOn(t)
	h := bHist
	h.Reset()
	h.Observe(1e6) // all mass in +Inf
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("overflow-only p50 = %v, want largest finite bound 10", q)
	}
	if q := h.Quantile(0); q != 10 {
		t.Fatalf("overflow-only p0 = %v, want 10", q)
	}
}

// bHist is the boundary-test histogram, registered once (the registry
// rejects duplicates).
var bHist = NewHistogram("bound_hist_seconds", "bucket boundary test histogram", []float64{0.1, 1, 10})

// bucketCounts snapshots a histogram's per-bucket (non-cumulative)
// counts, overflow last.
func bucketCounts(h *Histogram) []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
