package obs

import "runtime"

// Process runtime gauges, sampled on every /metrics scrape. The soak
// harness reads them over HTTP to assert the pipeline neither leaks
// goroutines nor grows its heap across epochs; they cost nothing
// between scrapes.
var (
	gGoroutines = NewIntGauge("jaal_go_goroutines",
		"Current number of goroutines.")
	gHeapInuse = NewIntGauge("jaal_go_heap_inuse_bytes",
		"Bytes of in-use heap spans (runtime.MemStats.HeapInuse).")
	gHeapObjects = NewIntGauge("jaal_go_heap_objects",
		"Number of live heap objects.")
	gGCCycles = NewIntGauge("jaal_go_gc_cycles_total",
		"Completed GC cycles since process start.")
)

// sampleRuntime refreshes the runtime gauges. Called from the metrics
// handler so each scrape sees current values; ReadMemStats is a
// stop-the-world of microseconds, negligible at scrape frequency.
func sampleRuntime() {
	sampleBuildInfo()
	if !Enabled() {
		return
	}
	gGoroutines.Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gHeapInuse.Set(int64(ms.HeapInuse))
	gHeapObjects.Set(int64(ms.HeapObjects))
	gGCCycles.Set(int64(ms.NumGC))
}
