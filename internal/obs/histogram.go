package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Histogram is a fixed-bucket histogram: bounds are set at construction
// and observations are lock-free atomic increments, so recording stays
// cheap enough for per-batch hot paths. The sum is maintained with a
// CAS loop; Observe is called per batch/epoch, not per packet, so
// contention is negligible.
type Histogram struct {
	nm, hp string
	// bounds are inclusive upper bucket bounds, ascending. counts has
	// len(bounds)+1 slots; the last is the +Inf overflow bucket.
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram creates and registers a histogram with the given
// ascending upper bucket bounds.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending: " + name)
		}
	}
	h := &Histogram{nm: name, hp: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	register(h)
	return h
}

// ExpBuckets returns n upper bounds start, start·factor, start·factor².
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets covers 10 µs to ~5 s in powers of two, a span that
// holds both a single batch summarization and a whole epoch.
func DurationBuckets() []float64 { return ExpBuckets(10e-6, 2, 20) }

// Observe records v when collection is enabled.
func (h *Histogram) Observe(v float64) {
	if !on.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(floatFromBits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return floatFromBits(h.sumBits.Load()) }

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the upper bound of the bucket holding the q-th
// (0 ≤ q ≤ 1) observation — a coarse but monotone estimate; +Inf
// observations report the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Name implements Metric.
func (h *Histogram) Name() string { return h.nm }

// Help implements Metric.
func (h *Histogram) Help() string { return h.hp }

// Kind implements Metric.
func (h *Histogram) Kind() string { return "histogram" }

// Reset implements Metric.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

func (h *Histogram) writeProm(w io.Writer) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, fmt.Sprintf("%g", b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.nm, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
}

func (h *Histogram) rows() []Row {
	n := h.count.Load()
	if n == 0 {
		return nil
	}
	return []Row{
		{Name: h.nm + "_count", Value: fmt.Sprintf("%d", n)},
		{Name: h.nm + "_mean", Value: fmt.Sprintf("%.6g", h.Mean())},
		{Name: h.nm + "_p99", Value: fmt.Sprintf("%.6g", h.Quantile(0.99))},
	}
}
