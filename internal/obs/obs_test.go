package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Metrics here are created once at package scope: the registry is
// process-wide and rejects duplicate names, so tests share handles and
// reset state instead of re-registering.
var (
	tCounter = NewCounter("test_counter_total", "a test counter")
	tLabeled = NewCounter("test_labeled_total{kind=\"a\"}", "a labeled test counter")
	tGauge   = NewGauge("test_gauge", "a test gauge")
	tInt     = NewIntGauge("test_int_gauge", "a test int gauge")
	tHist    = NewHistogram("test_hist_seconds", "a test histogram", []float64{0.1, 1, 10})
)

func resetOn(t *testing.T) {
	t.Helper()
	SetEnabled(true)
	t.Cleanup(func() {
		SetEnabled(false)
		ResetAll()
	})
	ResetAll()
}

func TestDisabledIsNoop(t *testing.T) {
	SetEnabled(false)
	ResetAll()
	tCounter.Add(5)
	tGauge.Set(3.5)
	tInt.Set(7)
	tHist.Observe(0.5)
	if tCounter.Value() != 0 || tGauge.Value() != 0 || tInt.Value() != 0 || tHist.Count() != 0 {
		t.Fatalf("disabled metrics recorded: counter=%d gauge=%v int=%d hist=%d",
			tCounter.Value(), tGauge.Value(), tInt.Value(), tHist.Count())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	resetOn(t)
	tCounter.Add(2)
	tCounter.Inc()
	if tCounter.Value() != 3 {
		t.Fatalf("counter = %d, want 3", tCounter.Value())
	}
	tGauge.Set(0.35)
	if tGauge.Value() != 0.35 {
		t.Fatalf("gauge = %v, want 0.35", tGauge.Value())
	}
	tInt.Add(4)
	tInt.Add(-1)
	if tInt.Value() != 3 {
		t.Fatalf("int gauge = %d, want 3", tInt.Value())
	}
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		tHist.Observe(v)
	}
	if tHist.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", tHist.Count())
	}
	if got := tHist.Sum(); got != 56.05 {
		t.Fatalf("hist sum = %v, want 56.05", got)
	}
	if m := tHist.Mean(); m < 11.209 || m > 11.211 {
		t.Fatalf("hist mean = %v, want ≈11.21", m)
	}
	// 0.05→bucket 0.1; two 0.5→bucket 1; 5→bucket 10; 50→overflow.
	if q := tHist.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want 1", q)
	}
	if q := tHist.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %v, want 10 (overflow reports largest finite bound)", q)
	}
}

func TestPrometheusFormat(t *testing.T) {
	resetOn(t)
	tCounter.Add(7)
	tLabeled.Add(2)
	tHist.Observe(0.5)
	var b bytes.Buffer
	WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_counter_total a test counter",
		"# TYPE test_counter_total counter",
		"test_counter_total 7",
		"test_labeled_total{kind=\"a\"} 2",
		"# TYPE test_hist_seconds histogram",
		"test_hist_seconds_bucket{le=\"0.1\"} 0",
		"test_hist_seconds_bucket{le=\"1\"} 1",
		"test_hist_seconds_bucket{le=\"+Inf\"} 1",
		"test_hist_seconds_sum 0.5",
		"test_hist_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	resetOn(t)
	tCounter.Add(9)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	NewMux().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_counter_total 9") {
		t.Fatalf("metrics body missing counter:\n%s", rec.Body.String())
	}
}

func TestEpochLoggerJSONLines(t *testing.T) {
	var b bytes.Buffer
	l := NewEpochLogger(&b)
	l.Log("monitor", 3,
		KV{K: "id", V: 1},
		KV{K: "summaries", V: 2},
		KV{K: "collect_ms", V: 1500 * time.Microsecond},
		KV{K: "ratio", V: 0.35},
		KV{K: "note", V: `quote"me`},
		KV{K: "ok", V: true})
	l.Log("controller", 3, KV{K: "alerts", V: int64(0)})
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), b.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v\n%s", err, lines[0])
	}
	if rec["component"] != "monitor" || rec["epoch"] != float64(3) {
		t.Fatalf("bad record: %v", rec)
	}
	if rec["collect_ms"] != 1.5 {
		t.Fatalf("duration encoding = %v, want 1.5 ms", rec["collect_ms"])
	}
	if rec["note"] != `quote"me` {
		t.Fatalf("string escaping broken: %v", rec["note"])
	}
	// Nil loggers must be safe to use.
	var nilLogger *EpochLogger
	nilLogger.Log("x", 0)
}

func TestTableSkipsZeros(t *testing.T) {
	resetOn(t)
	tCounter.Add(4)
	var b bytes.Buffer
	WriteTable(&b)
	out := b.String()
	if !strings.Contains(out, "test_counter_total") {
		t.Fatalf("table missing non-zero counter:\n%s", out)
	}
	if strings.Contains(out, "test_gauge") {
		t.Fatalf("table must omit zero-valued metrics:\n%s", out)
	}
}

// BenchmarkCounterDisabled is the disabled hot path of the acceptance
// criteria: it must be 0 allocs/op and a couple of nanoseconds.
func BenchmarkCounterDisabled(b *testing.B) {
	SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tCounter.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	SetEnabled(true)
	defer func() { SetEnabled(false); ResetAll() }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tCounter.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	SetEnabled(true)
	defer func() { SetEnabled(false); ResetAll() }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tHist.Observe(0.5)
	}
}
