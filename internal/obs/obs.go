// Package obs is Jaal's stdlib-only observability layer: atomic
// counters, gauges, fixed-bucket histograms and lightweight spans
// behind a process-wide registry, exported three ways — Prometheus
// text over HTTP (plus pprof), a structured JSON-lines epoch log, and
// an end-of-run summary table.
//
// The paper's whole premise is a measurable trade (summaries cut
// monitor→engine communication by ~4 orders of magnitude while keeping
// accuracy, §8); this package makes that trade visible at runtime
// instead of only after rerunning whole experiments.
//
// Two properties are load-bearing:
//
//   - Instrumentation never affects outputs. Metrics are write-only
//     side channels; no code path branches on a metric value, so
//     same-seed runs with observability on and off are byte-identical
//     (TestPipelineObsDeterminism locks this in).
//   - Disabled is (almost) free. Collection is off by default; every
//     hot-path call is one atomic load and a branch, with zero heap
//     allocations (BenchmarkObsOverhead). Handles are package-level
//     vars created at init, so instrumented code never pays a lookup.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// on gates all collection. Exporters read stored values regardless, so
// a scrape after SetEnabled(false) still sees the last state.
var on atomic.Bool

// SetEnabled turns metric collection on or off process-wide.
func SetEnabled(v bool) { on.Store(v) }

// Enabled reports whether collection is active. Instrumented code may
// use it to skip work (e.g. a time.Now pair) that only feeds metrics.
func Enabled() bool { return on.Load() }

// Metric is one registered series. Implementations are lock-free on
// the write path; exporters only read.
type Metric interface {
	// Name is the full Prometheus series name, optionally carrying a
	// fixed label set, e.g. `jaal_wire_tx_frames_total{type="summary"}`.
	Name() string
	// Help is the one-line description emitted as # HELP.
	Help() string
	// Kind is the Prometheus type: "counter", "gauge" or "histogram".
	Kind() string
	// writeProm emits the metric's sample lines in text exposition
	// format.
	writeProm(w io.Writer)
	// rows yields the summary-table view; empty when the metric has
	// recorded nothing.
	rows() []Row
	// Reset zeroes the metric (tests and benchmarks).
	Reset()
}

// registry holds every metric created through this package. There is
// one per process; metrics register at package init of their users.
type registry struct {
	mu      sync.Mutex
	metrics []Metric
	byName  map[string]Metric
}

var def = &registry{byName: make(map[string]Metric)}

func register(m Metric) {
	def.mu.Lock()
	defer def.mu.Unlock()
	if _, dup := def.byName[m.Name()]; dup {
		panic("obs: duplicate metric " + m.Name())
	}
	def.byName[m.Name()] = m
	def.metrics = append(def.metrics, m)
}

// ensure returns the metric registered under name, creating it with mk
// (under the registry lock) when absent. It is the get-or-create used
// by dynamically named series — e.g. per-attack adaptive-threshold
// gauges — where the set of names is only known at run time and the
// same series may be claimed by several component instances.
func ensure(name string, mk func() Metric) Metric {
	def.mu.Lock()
	defer def.mu.Unlock()
	if m, ok := def.byName[name]; ok {
		return m
	}
	m := mk()
	def.byName[name] = m
	def.metrics = append(def.metrics, m)
	return m
}

// EnsureGauge returns the gauge registered under name, creating and
// registering it if needed. It panics if the name is already taken by a
// metric of a different kind — that is a programming error, the same
// class NewGauge's duplicate panic guards against.
func EnsureGauge(name, help string) *Gauge {
	m := ensure(name, func() Metric { return &Gauge{nm: name, hp: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: metric " + name + " already registered as " + m.Kind())
	}
	return g
}

// snapshot returns the registered metrics sorted by name.
func snapshot() []Metric {
	def.mu.Lock()
	ms := make([]Metric, len(def.metrics))
	copy(ms, def.metrics)
	def.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name() < ms[j].Name() })
	return ms
}

// CounterValues returns the current value of every registered counter,
// keyed by series name. The trace layer uses it to attach the counter
// movement that accompanied a slow epoch to that epoch's exemplar.
func CounterValues() map[string]int64 {
	def.mu.Lock()
	defer def.mu.Unlock()
	out := make(map[string]int64, len(def.metrics))
	for _, m := range def.metrics {
		if c, ok := m.(*Counter); ok {
			out[c.Name()] = c.Value()
		}
	}
	return out
}

// ResetAll zeroes every registered metric (tests and benchmarks).
func ResetAll() {
	for _, m := range snapshot() {
		m.Reset()
	}
}

// baseName strips the label set from a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format. Labeled series sharing a base name are grouped
// under one # HELP/# TYPE header.
func WritePrometheus(w io.Writer) {
	var lastBase string
	for _, m := range snapshot() {
		if b := baseName(m.Name()); b != lastBase {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", b, m.Help(), b, m.Kind())
			lastBase = b
		}
		m.writeProm(w)
	}
}

// Counter is a monotonically increasing int64.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// NewCounter creates and registers a counter.
func NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, hp: help}
	register(c)
	return c
}

// Add increments the counter by n when collection is enabled. The
// disabled path is one atomic load and a branch, no allocation.
func (c *Counter) Add(n int64) {
	if on.Load() {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name implements Metric.
func (c *Counter) Name() string { return c.nm }

// Help implements Metric.
func (c *Counter) Help() string { return c.hp }

// Kind implements Metric.
func (c *Counter) Kind() string { return "counter" }

// Reset implements Metric.
func (c *Counter) Reset() { c.v.Store(0) }

func (c *Counter) writeProm(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

func (c *Counter) rows() []Row {
	v := c.v.Load()
	if v == 0 {
		return nil
	}
	return []Row{{Name: c.nm, Value: fmt.Sprintf("%d", v)}}
}

// IntGauge is a settable int64 level (pending packets, active workers).
type IntGauge struct {
	nm, hp string
	v      atomic.Int64
}

// NewIntGauge creates and registers an integer gauge.
func NewIntGauge(name, help string) *IntGauge {
	g := &IntGauge{nm: name, hp: help}
	register(g)
	return g
}

// Set stores v when collection is enabled.
func (g *IntGauge) Set(v int64) {
	if on.Load() {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta when collection is enabled.
func (g *IntGauge) Add(delta int64) {
	if on.Load() {
		g.v.Add(delta)
	}
}

// Value returns the current level.
func (g *IntGauge) Value() int64 { return g.v.Load() }

// Name implements Metric.
func (g *IntGauge) Name() string { return g.nm }

// Help implements Metric.
func (g *IntGauge) Help() string { return g.hp }

// Kind implements Metric.
func (g *IntGauge) Kind() string { return "gauge" }

// Reset implements Metric.
func (g *IntGauge) Reset() { g.v.Store(0) }

func (g *IntGauge) writeProm(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
}

func (g *IntGauge) rows() []Row {
	v := g.v.Load()
	if v == 0 {
		return nil
	}
	return []Row{{Name: g.nm, Value: fmt.Sprintf("%d", v)}}
}

// Gauge is a settable float64 level (a ratio, a rate).
type Gauge struct {
	nm, hp string
	bits   atomic.Uint64
}

// NewGauge creates and registers a float gauge.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, hp: help}
	register(g)
	return g
}

// Set stores v when collection is enabled.
func (g *Gauge) Set(v float64) {
	if on.Load() {
		g.bits.Store(floatBits(v))
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// Name implements Metric.
func (g *Gauge) Name() string { return g.nm }

// Help implements Metric.
func (g *Gauge) Help() string { return g.hp }

// Kind implements Metric.
func (g *Gauge) Kind() string { return "gauge" }

// Reset implements Metric.
func (g *Gauge) Reset() { g.bits.Store(0) }

func (g *Gauge) writeProm(w io.Writer) {
	fmt.Fprintf(w, "%s %g\n", g.nm, g.Value())
}

func (g *Gauge) rows() []Row {
	v := g.Value()
	if v == 0 {
		return nil
	}
	return []Row{{Name: g.nm, Value: fmt.Sprintf("%.6g", v)}}
}
