package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// jaal_build_info identifies the binary under test on every scrape: a
// constant-1 gauge whose labels carry the module version, Go toolchain
// and VCS revision from the build metadata. Soak logs and benchmark
// archives join on these labels instead of guessing which binary
// produced a run.

var (
	buildInfoOnce  sync.Once
	buildInfoGauge *Gauge
)

// sampleBuildInfo registers the jaal_build_info gauge on first use and
// re-asserts its constant value on every scrape (so a test's ResetAll
// cannot leave it reading 0). It runs lazily from the metrics handler
// (not package init) because the label values come from
// debug.ReadBuildInfo, and the gauge name must embed them before
// registration.
func sampleBuildInfo() {
	buildInfoOnce.Do(func() {
		version, revision := "unknown", "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
				version = bi.Main.Version
			} else {
				version = "devel"
			}
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					revision = s.Value
					if len(revision) > 12 {
						revision = revision[:12]
					}
				}
			}
		}
		name := fmt.Sprintf("jaal_build_info{version=%q,goversion=%q,revision=%q}",
			version, runtime.Version(), revision)
		buildInfoGauge = EnsureGauge(name, "build metadata of the running binary (constant 1)")
	})
	buildInfoGauge.forceSet(1)
}

// forceSet stores v regardless of the enablement gate: build info is
// constant identity, not a measurement, so it must survive scrapes that
// happen while collection is toggled off.
func (g *Gauge) forceSet(v float64) { g.bits.Store(floatBits(v)) }
