package obs

import (
	"fmt"
	"io"
)

// Row is one line of the end-of-run summary table.
type Row struct {
	Name  string
	Value string
}

// Snapshot returns the non-zero state of every registered metric as
// sorted rows: counters and gauges one row each, histograms a
// count/mean/p99 triple.
func Snapshot() []Row {
	var out []Row
	for _, m := range snapshot() {
		out = append(out, m.rows()...)
	}
	return out
}

// WriteTable renders the snapshot as an aligned two-column table — the
// end-of-run summary printed by Pipeline.RunEpoch callers and
// cmd/jaal-experiments. Zero-valued metrics are omitted so an
// experiment touching two subsystems prints a short table, not the
// whole registry.
func WriteTable(w io.Writer) {
	rows := Snapshot()
	if len(rows) == 0 {
		fmt.Fprintln(w, "obs: no metrics recorded (collection disabled?)")
		return
	}
	width := 0
	for _, r := range rows {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	fmt.Fprintln(w, "--- observability summary ---")
	for _, r := range rows {
		fmt.Fprintf(w, "%-*s  %s\n", width, r.Name, r.Value)
	}
}
