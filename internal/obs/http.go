package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler serves the registry in Prometheus text exposition format.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		sampleRuntime()
		WritePrometheus(w)
	})
}

// extraHandlers are endpoints other packages hang off the -obs server
// (e.g. internal/trace's /trace). Registered at init; obs itself never
// imports them, keeping the dependency arrow pointing at obs only.
var (
	extraMu       sync.Mutex
	extraHandlers = make(map[string]http.Handler)
)

// RegisterHandler mounts h at pattern on every mux NewMux returns from
// now on. Registering the same pattern twice panics — like a duplicate
// metric, that is a programming error.
func RegisterHandler(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	if _, dup := extraHandlers[pattern]; dup {
		panic("obs: duplicate handler " + pattern)
	}
	extraHandlers[pattern] = h
}

// NewMux returns a mux exposing GET /metrics, the standard
// net/http/pprof endpoints under /debug/pprof/, and every endpoint
// mounted via RegisterHandler. The pprof handlers are wired explicitly
// so importing this package never pollutes http.DefaultServeMux.
func NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraMu.Lock()
	for pattern, h := range extraHandlers {
		mux.Handle(pattern, h)
	}
	extraMu.Unlock()
	return mux
}

// Serve enables collection, binds addr and serves /metrics and pprof
// in a background goroutine, returning the bound address (useful with
// ":0"). It is the one-call opt-in the cmd binaries use behind their
// -obs flag.
func Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	SetEnabled(true)
	go http.Serve(ln, NewMux())
	return ln.Addr(), nil
}
