package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// KV is one field of an epoch-log record. Supported value types: the
// integer kinds, float64, bool, string and time.Duration (encoded as
// fractional milliseconds under key suffix convention "<k>_ms" chosen
// by the caller).
type KV struct {
	K string
	V any
}

// EpochLogger writes one JSON object per line: the structured epoch
// log. Each record carries the component, the epoch and caller-chosen
// fields, e.g.
//
//	{"component":"monitor","epoch":3,"id":0,"summaries":2,"pending":117,"collect_ms":1.84}
//
// A nil *EpochLogger is valid and discards everything, so callers can
// thread an optional logger without nil checks. Log is safe for
// concurrent use; records are written atomically per line.
type EpochLogger struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewEpochLogger wraps w. A nil writer yields a discarding logger.
func NewEpochLogger(w io.Writer) *EpochLogger {
	if w == nil {
		return nil
	}
	return &EpochLogger{w: w}
}

// Log emits one record. No-op on a nil logger.
func (l *EpochLogger) Log(component string, epoch uint64, kvs ...KV) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"component":`...)
	b = strconv.AppendQuote(b, component)
	b = append(b, `,"epoch":`...)
	b = strconv.AppendUint(b, epoch, 10)
	for _, kv := range kvs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, kv.K)
		b = append(b, ':')
		b = appendValue(b, kv.V)
	}
	b = append(b, '}', '\n')
	l.buf = b
	l.w.Write(b)
}

func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, x)
	case string:
		return strconv.AppendQuote(b, x)
	case time.Duration:
		// Durations log as fractional milliseconds.
		return strconv.AppendFloat(b, float64(x)/float64(time.Millisecond), 'g', -1, 64)
	default:
		return strconv.AppendQuote(b, fmt.Sprint(x)) //jaal:alloc-ok fallback for non-primitive values; every field the epoch log emits today hits a typed case above
	}
}
