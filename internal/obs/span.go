package obs

import "time"

// Span times one stage — a batch summarization, an epoch's collect
// phase — into a histogram. It is a value type: StartSpan returns a
// zero Span when collection is disabled, so the whole construct costs
// one atomic load and no allocation on the disabled path.
//
// Usage:
//
//	defer obs.StartSpan(hSummarize).End()
type Span struct {
	start time.Time
	h     *Histogram
}

// StartSpan begins timing into h. With collection disabled (or h nil)
// the returned Span is inert.
func StartSpan(h *Histogram) Span {
	if h == nil || !on.Load() {
		return Span{}
	}
	return Span{start: time.Now(), h: h}
}

// End records the elapsed seconds into the span's histogram and
// returns them. Inert spans return 0 and record nothing.
func (s Span) End() float64 {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start).Seconds()
	s.h.Observe(d)
	return d
}
