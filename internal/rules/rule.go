// Package rules provides Jaal's rule model: a parser for a Snort-compatible
// subset of the rule language, and the translator that converts parsed
// rules into the question vectors the inference engine matches against
// packet summaries (§5.2).
//
// A rule like
//
//	alert tcp $EXTERNAL_NET any -> $HOME_NET 22 (msg:"SSH brute force";
//	    flags:S; detection_filter: track by_src, count 5, seconds 60; sid:19559;)
//
// is parsed into a Rule, then translated into a question vector q of
// length p = 18 whose entries hold the normalized value of each header
// field the rule constrains and −1 everywhere else.
package rules

import (
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/packet"
)

// Action is the rule action. Jaal only evaluates alert rules but the
// parser accepts the standard set so real rule files load unmodified.
type Action string

// Recognized rule actions.
const (
	ActionAlert Action = "alert"
	ActionLog   Action = "log"
	ActionPass  Action = "pass"
	ActionDrop  Action = "drop"
)

// Protocol is the rule protocol selector.
type Protocol string

// Recognized protocols.
const (
	ProtoTCP Protocol = "tcp"
	ProtoUDP Protocol = "udp"
	ProtoIP  Protocol = "ip"
)

// Number returns the IP protocol number for the selector, or -1 for "ip"
// (any protocol).
func (p Protocol) Number() int {
	switch p {
	case ProtoTCP:
		return packet.ProtoTCP
	case ProtoUDP:
		return packet.ProtoUDP
	default:
		return -1
	}
}

// AddressSpec is a source or destination address constraint. Exactly one
// of Any, Var, or Prefix is meaningful.
type AddressSpec struct {
	// Any is true for the wildcard "any".
	Any bool
	// Var holds a $VARIABLE name (without the dollar sign) to be
	// resolved against the environment at translation time.
	Var string
	// Prefix is a literal CIDR block or single address.
	Prefix netip.Prefix
	// Negated inverts the match (the "!" prefix).
	Negated bool
}

// PortSpec is a port constraint. A nil spec or Any matches every port.
type PortSpec struct {
	Any     bool
	Port    uint16
	Lo, Hi  uint16 // inclusive range when Ranged
	Ranged  bool
	Negated bool
}

// Matches reports whether port satisfies the spec.
func (s PortSpec) Matches(port uint16) bool {
	var m bool
	switch {
	case s.Any:
		m = true
	case s.Ranged:
		m = port >= s.Lo && port <= s.Hi
	default:
		m = port == s.Port
	}
	if s.Negated {
		return !m
	}
	return m
}

// DetectionFilter mirrors Snort's detection_filter / threshold option: the
// rule fires only after Count matching packets within Seconds, tracked by
// source or destination.
type DetectionFilter struct {
	TrackBySrc bool
	Count      int
	Seconds    int
}

// FlagSpec constrains the TCP flags byte. Set must all be present; if
// Exact is true no flags outside Set may be present.
type FlagSpec struct {
	Set   packet.TCPFlags
	Exact bool
}

// Rule is one parsed Snort-style rule.
type Rule struct {
	Action    Action
	Protocol  Protocol
	Src       AddressSpec
	SrcPort   PortSpec
	Direction string // "->" or "<>"
	Dst       AddressSpec
	DstPort   PortSpec

	// Options.
	Msg       string
	SID       int
	Rev       int
	Classtype string
	Flags     *FlagSpec
	Filter    *DetectionFilter
	// Window, when non-negative, constrains the TCP window size
	// (Sockstress sets window 0).
	Window int
	// Content patterns are recorded but not evaluated: Jaal's threat
	// model excludes payloads (§2), and the paper's translator ignores
	// content when building question vectors.
	Content []string
	// Raw is the original rule text.
	Raw string
}

// String returns a compact description of the rule.
func (r *Rule) String() string {
	return fmt.Sprintf("%s %s sid:%d %q", r.Action, r.Protocol, r.SID, r.Msg)
}

// RequiresCount reports whether the rule carries a detection filter and so
// needs count-thresholded matching (Algorithm 1's τ_c path).
func (r *Rule) RequiresCount() bool { return r.Filter != nil && r.Filter.Count > 0 }

// Environment resolves rule variables like $HOME_NET to concrete
// prefixes. Missing variables resolve to "any".
type Environment struct {
	vars map[string]netip.Prefix
}

// NewEnvironment returns an empty environment.
func NewEnvironment() *Environment {
	return &Environment{vars: make(map[string]netip.Prefix)}
}

// Set binds a variable name (without "$") to a prefix.
func (e *Environment) Set(name string, p netip.Prefix) { e.vars[strings.ToUpper(name)] = p }

// Lookup resolves a variable name.
func (e *Environment) Lookup(name string) (netip.Prefix, bool) {
	p, ok := e.vars[strings.ToUpper(name)]
	return p, ok
}
