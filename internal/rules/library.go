package rules

import (
	"fmt"

	"repro/internal/packet"
)

// AttackID identifies the attacks the paper evaluates (§8).
type AttackID string

// Evaluated attacks.
const (
	AttackSYNFlood            AttackID = "syn_flood"
	AttackDistributedSYNFlood AttackID = "distributed_syn_flood"
	AttackPortScan            AttackID = "port_scan"
	AttackSSHBruteForce       AttackID = "ssh_brute_force"
	AttackSockstress          AttackID = "sockstress"
	AttackMiraiScan           AttackID = "mirai_scan"
	AttackUDPFlood            AttackID = "udp_flood"
)

// Scenario-corpus attacks (ISSUE 9): the attack families the labelled
// scenario corpus adds beyond the paper's evaluation set. They live in a
// separate library extension so deployments and tests built on the
// paper's seven-rule library keep byte-identical behaviour.
const (
	// AttackReflection is amplification/reflection DDoS: large UDP
	// service responses (DNS/NTP-shaped) converging on a victim whose
	// address was spoofed in the requests.
	AttackReflection AttackID = "reflection_ddos"
	// AttackSlowloris is the slowloris/slow-read family: many held-open
	// HTTP connections kept alive with tiny receive windows.
	AttackSlowloris AttackID = "slowloris"
	// AttackStealthScan is the inverse-flag scan family (FIN, Xmas,
	// NULL probes, and the idle-scan shape) sweeping a victim network.
	AttackStealthScan AttackID = "stealth_scan"
	// AttackExfiltration is a bulk exfiltration channel: sustained
	// large segments from a compromised host to a fixed collection
	// port. It is the final stage of the multi-stage campaign.
	AttackExfiltration AttackID = "exfiltration"
)

// AllAttacks lists the five evaluated attacks plus the Mirai case study.
var AllAttacks = []AttackID{
	AttackSYNFlood, AttackDistributedSYNFlood, AttackPortScan,
	AttackSSHBruteForce, AttackSockstress, AttackMiraiScan,
	AttackUDPFlood,
}

// ScenarioAttacks lists the scenario-corpus extension attacks.
var ScenarioAttacks = []AttackID{
	AttackReflection, AttackSlowloris, AttackStealthScan,
	AttackExfiltration,
}

// libraryText holds Snort-style source rules for the evaluated attacks.
// The SSH rule follows the shape of Snort SID 19559 discussed in §5.2;
// the others correspond to the flood/scan signatures Snort ships as
// preprocessor configuration or simple flag rules.
// Count thresholds are calibrated per ≈1000 packets of epoch volume
// against the fine per-destination tracking window (where roughly half
// of an attack's packets land in destination-pure clusters at k = n/5);
// Question.ScaleForVolume rescales them for larger aggregation windows,
// the per-deployment tuning §5.2 assigns to the administrator.
var libraryText = map[AttackID]string{
	AttackSYNFlood: `alert tcp any any -> $HOME_NET any (msg:"SYN flood"; flags:S; ` +
		`detection_filter: track by_dst, count 20, seconds 2; sid:1000001; rev:1;)`,
	AttackDistributedSYNFlood: `alert tcp any any -> $HOME_NET any (msg:"Distributed SYN flood"; flags:S; ` +
		`detection_filter: track by_dst, count 20, seconds 2; sid:1000002; rev:1;)`,
	AttackPortScan: `alert tcp any any -> $HOME_NET any (msg:"Port scan"; flags:S; ` +
		`detection_filter: track by_dst, count 25, seconds 2; sid:1000003; rev:1;)`,
	// The stock Snort rule (SID 19559) tracks by_src; per-source counts
	// within one 2 s epoch are too small to track on summaries, so the
	// equivalent rule tracks the single targeted server (by_dst) and
	// the postprocessor separates distributed sources by variance.
	// count 8 is the literal per-destination threshold the raw engine
	// enforces when the feedback loop re-analyzes fetched packets; the
	// summary-side count threshold is raised above it in translation
	// (see LibraryQuestion) because cluster mass overcounts literal
	// matches.
	AttackSSHBruteForce: `alert tcp any any -> $HOME_NET 22 (msg:"SSH brute force login attempt"; flags:S; ` +
		`detection_filter: track by_dst, count 8, seconds 60; sid:1000004; rev:1;)`,
	AttackSockstress: `alert tcp any any -> $HOME_NET any (msg:"Sockstress window-0 DoS"; flags:A; window:0; ` +
		`detection_filter: track by_dst, count 10, seconds 2; sid:1000005; rev:1;)`,
	AttackMiraiScan: `alert tcp any any -> any 23 (msg:"Mirai telnet scan"; flags:S; ` +
		`detection_filter: track by_src, count 20, seconds 2; sid:1000006; rev:1;)`,
	AttackUDPFlood: `alert udp any any -> $HOME_NET any (msg:"UDP flood"; ` +
		`detection_filter: track by_dst, count 12, seconds 2; sid:1000007; rev:1;)`,
}

// scenarioText extends the library with the scenario-corpus rules
// (SIDs 1000008+, clear of the generated corpus at 3000000+). They stay
// inside the same parser dialect as `jaal-rules gen` output, and like
// the base library every count threshold is calibrated per ≈1000
// packets of epoch volume.
var scenarioText = map[AttackID]string{
	// Reflection floods arrive as service *responses*: the reflector's
	// well-known source port is the signature, the victim the tracked
	// destination. The generator mixes DNS (53) and NTP (123)
	// reflectors; the rule pins 53 and τ_d tolerance absorbs the
	// 70/65535 source-port spread of an NTP-heavy cluster.
	AttackReflection: `alert udp any 53 -> $HOME_NET any (msg:"Amplification reflection flood"; ` +
		`detection_filter: track by_dst, count 12, seconds 2; sid:1000008; rev:1;)`,
	// Slowloris holds HTTP connections open with zero-window
	// keepalives; the count is semantic (held connections per server),
	// like Sockstress, not volumetric — and sits above the benign
	// zero-window stall episodes backbone traffic contains (≤7 packets
	// per stalled receiver).
	AttackSlowloris: `alert tcp any any -> $HOME_NET 80 (msg:"Slowloris slow-read DoS"; flags:A; window:0; ` +
		`detection_filter: track by_dst, count 12, seconds 2; sid:1000009; rev:1;)`,
	// FIN and Xmas probes project onto the same question vector
	// (FIN=1, SYN=ACK=RST=0): PSH/URG are outside the 18 summarized
	// fields. NULL and idle-scan shapes are generated for evasion
	// coverage but are not nameable by this rule grammar. Like the
	// Mirai rule, the filter tracks by_src: a scan's count spreads
	// across the swept /24, so per-destination windowed counting would
	// lose it (the sweep is instead confirmed by the destination-port
	// variance postprocessor, as for the port scan).
	AttackStealthScan: `alert tcp any any -> $HOME_NET any (msg:"Stealth FIN/Xmas scan"; flags:F; ` +
		`detection_filter: track by_src, count 20, seconds 2; sid:1000010; rev:1;)`,
	// Exfiltration: sustained ACK/PSH segments to a fixed collection
	// port outside the monitored network. The count must clear the
	// occasional benign long-lived flow that happens to sit on a
	// nearby ephemeral port (heavy-tailed flow lengths reach dozens of
	// packets), hence 30 rather than a handful.
	AttackExfiltration: `alert tcp any any -> any 4444 (msg:"Bulk exfiltration channel"; flags:A; ` +
		`detection_filter: track by_dst, count 30, seconds 2; sid:1000011; rev:1;)`,
}

// LibraryRule parses and returns the built-in rule for the attack,
// consulting the base library first and the scenario extension second.
func LibraryRule(id AttackID) (*Rule, error) {
	text, ok := libraryText[id]
	if !ok {
		text, ok = scenarioText[id]
	}
	if !ok {
		return nil, fmt.Errorf("rules: no library rule for attack %q", id)
	}
	return Parse(text)
}

// LibraryQuestion translates the built-in rule for an attack into a
// question vector, attaching the postprocessor variance checks the paper
// crafts for the distributed attacks (§5.2):
//
//   - distributed SYN flood: variance of the source IP field
//   - port scan: variance of the destination port field
//   - Mirai scan: variance of the destination IP field at target ports
//     (high spread of scanned addresses, §8's case study).
//
// SSH brute force carries no variance gate: a single-source brute force
// is still an attack (Snort SID 19559 has no distributed requirement),
// and over the handful of matching centroids a small batch yields, a
// variance estimate would be statistically meaningless.
func LibraryQuestion(id AttackID, env *Environment, cfg TranslateConfig) (*Question, error) {
	r, err := LibraryRule(id)
	if err != nil {
		return nil, err
	}
	q, err := Translate(r, env, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.VarianceThreshold <= 0 {
		cfg.VarianceThreshold = DefaultTranslateConfig().VarianceThreshold
	}
	switch id {
	case AttackDistributedSYNFlood:
		q = q.WithVariance(packet.FieldSrcIP, cfg.VarianceThreshold)
	case AttackPortScan:
		q = q.WithVariance(packet.FieldDstPort, cfg.VarianceThreshold)
	case AttackMiraiScan:
		// A scan of random addresses has destination variance near the
		// uniform maximum (1/12 ≈ 0.083); concentrated traffic that
		// merely brushes the telnet ports stays far below 0.05.
		q = q.WithVariance(packet.FieldDstIP, 0.05)
	case AttackStealthScan:
		// Like the port scan: a sweep spreads over the well-known port
		// list, so high destination-port variance over the matched
		// (FIN-pure) centroids confirms a scan.
		q = q.WithVariance(packet.FieldDstPort, cfg.VarianceThreshold)
	}
	// Count-threshold semantics: flood and scan rates are volumetric
	// (they scale with the traffic an epoch aggregates); brute-force
	// and zero-window counts are per-victim semantics.
	volumetric := map[AttackID]bool{
		AttackSYNFlood: true, AttackDistributedSYNFlood: true,
		AttackPortScan: true, AttackMiraiScan: true, AttackUDPFlood: true,
		AttackSSHBruteForce: false, AttackSockstress: false,
		// Scenario extension: floods and scans scale with epoch volume;
		// held-connection and exfiltration counts are per-victim
		// semantics like brute force.
		AttackReflection: true, AttackStealthScan: true,
		AttackSlowloris: false, AttackExfiltration: false,
	}[id]
	q.VolumetricCount = &volumetric

	// Per-attack τ_d scales: the discriminating field's normalized gap
	// shrinks when averaged over the active fields (Eq. 5), so rules
	// pinning a port or the window size need much tighter thresholds
	// than flag-only flood rules. Port-pinned rules (|22−80|/65535
	// averaged over 6 fields ≈ 1.5e-4) scale by 0.002; the zero-window
	// rule (benign minimum window 8192/65535 over 6 fields ≈ 0.021)
	// scales by 0.35.
	switch id {
	case AttackSSHBruteForce:
		q.TauDScale = 0.002
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
		// Summary counts are cluster mass, not literal rule matches:
		// the winning dst window's clusters carry mixed members, so
		// the organic port-22 mass concentrating on the Zipf-head
		// server measures up to ≈16 per epoch against the rule's
		// literal count of 8 — enough for a summary-only match to
		// false-alert on a popular server. The summary-side threshold
		// is therefore 2.5× the rule's literal count: anything at or
		// above it is unambiguous brute-force mass, while the
		// [8, 20) band is decided by the feedback loop's raw
		// re-analysis, where the engine enforces the literal
		// per-destination count 8 on actual packets (benign windows
		// never concentrate 8 literal port-22 SYNs on one server).
		q = q.WithCountThreshold(20)
	case AttackMiraiScan:
		q.TauDScale = 0.002
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	case AttackSockstress:
		q.TauDScale = 0.35
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	case AttackUDPFlood:
		// The UDP question pins only the protocol entry; the TCP/UDP
		// gap |17−6|/255 over one active field is 0.043, so τ_d must
		// stay below that to exclude TCP traffic.
		q.TauDScale = 0.5
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	case AttackReflection:
		// Port-pinned like Mirai/SSH (a pure-DNS reflector cluster sits
		// at source port 53 exactly), but the generator mixes in NTP
		// reflectors, so the threshold is an order looser to tolerate
		// clusters whose source-port centroid drifts toward 123.
		q.TauDScale = 0.02
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	case AttackSlowloris:
		// Tighter than Sockstress's window-pinned 0.35: the port-80 pin
		// must actually exclude zero-window DoS mass at *other* ports
		// (|443−80|/65535 averaged over 7 active fields ≈ 8e-4), or the
		// two held-connection attacks collapse into one signature.
		q.TauDScale = 0.008
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	case AttackExfiltration:
		// Port-pinned (fixed collection port 4444).
		q.TauDScale = 0.002
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	}
	return q, nil
}

// LibraryQuestions translates the whole base library — the paper's seven
// evaluated rules only, so existing seeded workloads and goldens are
// unaffected by the scenario extension.
func LibraryQuestions(env *Environment, cfg TranslateConfig) (map[AttackID]*Question, error) {
	out := make(map[AttackID]*Question, len(libraryText))
	for id := range libraryText {
		q, err := LibraryQuestion(id, env, cfg)
		if err != nil {
			return nil, err
		}
		out[id] = q
	}
	return out, nil
}

// ScenarioLibraryQuestions translates the base library plus the
// scenario-corpus extension — the question set the accuracy scoreboard
// runs every scenario against.
func ScenarioLibraryQuestions(env *Environment, cfg TranslateConfig) (map[AttackID]*Question, error) {
	out, err := LibraryQuestions(env, cfg)
	if err != nil {
		return nil, err
	}
	for id := range scenarioText {
		q, err := LibraryQuestion(id, env, cfg)
		if err != nil {
			return nil, err
		}
		out[id] = q
	}
	return out, nil
}
