package rules

import (
	"fmt"

	"repro/internal/packet"
)

// AttackID identifies the attacks the paper evaluates (§8).
type AttackID string

// Evaluated attacks.
const (
	AttackSYNFlood            AttackID = "syn_flood"
	AttackDistributedSYNFlood AttackID = "distributed_syn_flood"
	AttackPortScan            AttackID = "port_scan"
	AttackSSHBruteForce       AttackID = "ssh_brute_force"
	AttackSockstress          AttackID = "sockstress"
	AttackMiraiScan           AttackID = "mirai_scan"
	AttackUDPFlood            AttackID = "udp_flood"
)

// AllAttacks lists the five evaluated attacks plus the Mirai case study.
var AllAttacks = []AttackID{
	AttackSYNFlood, AttackDistributedSYNFlood, AttackPortScan,
	AttackSSHBruteForce, AttackSockstress, AttackMiraiScan,
	AttackUDPFlood,
}

// libraryText holds Snort-style source rules for the evaluated attacks.
// The SSH rule follows the shape of Snort SID 19559 discussed in §5.2;
// the others correspond to the flood/scan signatures Snort ships as
// preprocessor configuration or simple flag rules.
// Count thresholds are calibrated per ≈1000 packets of epoch volume
// against the fine per-destination tracking window (where roughly half
// of an attack's packets land in destination-pure clusters at k = n/5);
// Question.ScaleForVolume rescales them for larger aggregation windows,
// the per-deployment tuning §5.2 assigns to the administrator.
var libraryText = map[AttackID]string{
	AttackSYNFlood: `alert tcp any any -> $HOME_NET any (msg:"SYN flood"; flags:S; ` +
		`detection_filter: track by_dst, count 20, seconds 2; sid:1000001; rev:1;)`,
	AttackDistributedSYNFlood: `alert tcp any any -> $HOME_NET any (msg:"Distributed SYN flood"; flags:S; ` +
		`detection_filter: track by_dst, count 20, seconds 2; sid:1000002; rev:1;)`,
	AttackPortScan: `alert tcp any any -> $HOME_NET any (msg:"Port scan"; flags:S; ` +
		`detection_filter: track by_dst, count 25, seconds 2; sid:1000003; rev:1;)`,
	// The stock Snort rule (SID 19559) tracks by_src; per-source counts
	// within one 2 s epoch are too small to track on summaries, so the
	// equivalent rule tracks the single targeted server (by_dst) and
	// the postprocessor separates distributed sources by variance.
	AttackSSHBruteForce: `alert tcp any any -> $HOME_NET 22 (msg:"SSH brute force login attempt"; flags:S; ` +
		`detection_filter: track by_dst, count 8, seconds 60; sid:1000004; rev:1;)`,
	AttackSockstress: `alert tcp any any -> $HOME_NET any (msg:"Sockstress window-0 DoS"; flags:A; window:0; ` +
		`detection_filter: track by_dst, count 10, seconds 2; sid:1000005; rev:1;)`,
	AttackMiraiScan: `alert tcp any any -> any 23 (msg:"Mirai telnet scan"; flags:S; ` +
		`detection_filter: track by_src, count 20, seconds 2; sid:1000006; rev:1;)`,
	AttackUDPFlood: `alert udp any any -> $HOME_NET any (msg:"UDP flood"; ` +
		`detection_filter: track by_dst, count 12, seconds 2; sid:1000007; rev:1;)`,
}

// LibraryRule parses and returns the built-in rule for the attack.
func LibraryRule(id AttackID) (*Rule, error) {
	text, ok := libraryText[id]
	if !ok {
		return nil, fmt.Errorf("rules: no library rule for attack %q", id)
	}
	return Parse(text)
}

// LibraryQuestion translates the built-in rule for an attack into a
// question vector, attaching the postprocessor variance checks the paper
// crafts for the distributed attacks (§5.2):
//
//   - distributed SYN flood: variance of the source IP field
//   - port scan: variance of the destination port field
//   - Mirai scan: variance of the destination IP field at target ports
//     (high spread of scanned addresses, §8's case study).
//
// SSH brute force carries no variance gate: a single-source brute force
// is still an attack (Snort SID 19559 has no distributed requirement),
// and over the handful of matching centroids a small batch yields, a
// variance estimate would be statistically meaningless.
func LibraryQuestion(id AttackID, env *Environment, cfg TranslateConfig) (*Question, error) {
	r, err := LibraryRule(id)
	if err != nil {
		return nil, err
	}
	q, err := Translate(r, env, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.VarianceThreshold <= 0 {
		cfg.VarianceThreshold = DefaultTranslateConfig().VarianceThreshold
	}
	switch id {
	case AttackDistributedSYNFlood:
		q = q.WithVariance(packet.FieldSrcIP, cfg.VarianceThreshold)
	case AttackPortScan:
		q = q.WithVariance(packet.FieldDstPort, cfg.VarianceThreshold)
	case AttackMiraiScan:
		// A scan of random addresses has destination variance near the
		// uniform maximum (1/12 ≈ 0.083); concentrated traffic that
		// merely brushes the telnet ports stays far below 0.05.
		q = q.WithVariance(packet.FieldDstIP, 0.05)
	}
	// Count-threshold semantics: flood and scan rates are volumetric
	// (they scale with the traffic an epoch aggregates); brute-force
	// and zero-window counts are per-victim semantics.
	volumetric := map[AttackID]bool{
		AttackSYNFlood: true, AttackDistributedSYNFlood: true,
		AttackPortScan: true, AttackMiraiScan: true, AttackUDPFlood: true,
		AttackSSHBruteForce: false, AttackSockstress: false,
	}[id]
	q.VolumetricCount = &volumetric

	// Per-attack τ_d scales: the discriminating field's normalized gap
	// shrinks when averaged over the active fields (Eq. 5), so rules
	// pinning a port or the window size need much tighter thresholds
	// than flag-only flood rules. Port-pinned rules (|22−80|/65535
	// averaged over 6 fields ≈ 1.5e-4) scale by 0.002; the zero-window
	// rule (benign minimum window 8192/65535 over 6 fields ≈ 0.021)
	// scales by 0.35.
	switch id {
	case AttackSSHBruteForce, AttackMiraiScan:
		q.TauDScale = 0.002
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	case AttackSockstress:
		q.TauDScale = 0.35
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	case AttackUDPFlood:
		// The UDP question pins only the protocol entry; the TCP/UDP
		// gap |17−6|/255 over one active field is 0.043, so τ_d must
		// stay below that to exclude TCP traffic.
		q.TauDScale = 0.5
		q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
	}
	return q, nil
}

// LibraryQuestions translates the whole library.
func LibraryQuestions(env *Environment, cfg TranslateConfig) (map[AttackID]*Question, error) {
	out := make(map[AttackID]*Question, len(libraryText))
	for id := range libraryText {
		q, err := LibraryQuestion(id, env, cfg)
		if err != nil {
			return nil, err
		}
		out[id] = q
	}
	return out, nil
}
