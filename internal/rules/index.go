package rules

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/packet"
)

// This file implements the question index of ISSUE 6: Algorithm 1's
// matching cost is linear in questions × centroids, which caps the rule
// library at the paper's handful of attacks. The index makes the
// per-epoch cost grow with the number of *matching* questions instead
// (the classical header-matching result of Alia et al., PAPERS.md):
//
//   - Questions are grouped by shared-field signature — the bitmask of
//     header fields the question constrains. All questions in a group
//     agree on which of the 18 normalized columns matter.
//   - Over every constrained column the index keeps a bit-sliced
//     interval table: the [0,1] axis is cut into 256 buckets, and
//     bucket b holds a bitset of the questions whose match interval
//     touches b. A question q matching at threshold τ requires, on
//     every constrained field f, |q_f − x_f| ≤ τ·n (n = number of
//     constrained fields) — the necessary per-field relaxation of the
//     Eq. 5 mean — so q's interval on f is [q_f − τ·n, q_f + τ·n].
//   - Per epoch, one pass over the aggregate marks the buckets its
//     centroids occupy; a question survives phase 1 only if every
//     constrained column's interval touches an occupied bucket. A
//     second, exact phase then binary-searches the epoch's sorted
//     per-column centroid values for the nearest value to each
//     survivor's pinned fields and sums those per-field minima — a
//     lower bound on any single centroid's Σ|q_f − x_f|, so exceeding
//     the τ·n budget proves no centroid can pass the Eq. 5 mean. The
//     bucket grid is coarse exactly where real rule libraries are
//     dense (all of 10/8 spans one 256-bucket cell, privileged ports a
//     couple more), and the refinement restores full resolution there.
//     Questions failing either phase are provably unmatchable this
//     epoch and skip the exact scan entirely.
//
// The filter is conservative (per-field overlap is necessary, not
// sufficient, and each field may be satisfied by a different centroid),
// so the exact estimator still runs on candidates — the index only
// licenses skipping questions whose match set is certainly empty, which
// is what keeps indexed evaluation byte-identical to the linear sweep.

// numBuckets is the bit-slice resolution per normalized column. 256
// buckets put the bucket width (≈0.004) well below the port- and
// host-pinned questions' padded intervals' useful selectivity while
// keeping the per-field occupancy mask at four words.
const numBuckets = 256

// bitset is a fixed-size bit vector over question indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(i&63)) != 0 }
func (b bitset) orInto(src bitset) {
	for w := range b {
		b[w] |= src[w]
	}
}
func (b bitset) andInto(src bitset) {
	for w := range b {
		b[w] &= src[w]
	}
}
func (b bitset) andNot(src bitset) {
	for w := range b {
		b[w] &^= src[w]
	}
}
func (b bitset) copyFrom(src bitset) { copy(b, src) }

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// fieldSlice is the bit-sliced interval table for one constrained
// column.
type fieldSlice struct {
	field packet.FieldIndex
	// buckets[b] holds the questions constraining this field whose
	// padded match interval touches bucket b.
	buckets [numBuckets]bitset
	// loose holds the questions that do NOT constrain this field: they
	// accept any value here, so they survive this column's filter
	// regardless of occupancy.
	loose bitset
}

// QuestionIndex answers "which questions could possibly match this
// epoch's centroids" in time sublinear in the library size. Build it
// once per question library (and rebuild when a question's evaluation
// threshold outgrows the bound it was built with); query it once per
// epoch.
type QuestionIndex struct {
	n      int
	fields []*fieldSlice
	// never holds questions with no constrained field at all: Eq. 5
	// distance is +Inf for them, they can never match.
	never bitset
	// sigs counts the distinct shared-field signatures, for reporting.
	sigs int
	// tau[i] is the threshold bound question i was indexed under; a
	// caller evaluating at a larger τ must rebuild (Covers).
	tau []float64
	// pad[i] is the padded total-deviation budget τ·n of question i —
	// the Eq. 5 mean bound times the active-field count, plus a float
	// safety margin.
	pad []float64
	// ivals[i] holds question i's constrained field values for the
	// phase-2 refinement.
	ivals [][]interval
}

// interval is one question's pinned value on one constrained field.
type interval struct {
	field packet.FieldIndex
	v     float64
}

// NewQuestionIndex builds the index over qs. maxTau gives, per
// question, the largest distance threshold the question will be
// evaluated at — τ_d2 for questions run through the two-stage feedback
// loop, the question's own DistanceThreshold otherwise. A nil maxTau or
// a non-positive entry defaults to the question's DistanceThreshold.
// The index is immutable and safe for concurrent queries.
func NewQuestionIndex(qs []*Question, maxTau []float64) (*QuestionIndex, error) {
	if maxTau != nil && len(maxTau) != len(qs) {
		return nil, fmt.Errorf("rules: index: %d questions but %d thresholds", len(qs), len(maxTau))
	}
	ix := &QuestionIndex{
		n:     len(qs),
		never: newBitset(len(qs)),
		tau:   make([]float64, len(qs)),
		pad:   make([]float64, len(qs)),
		ivals: make([][]interval, len(qs)),
	}
	slices := make(map[packet.FieldIndex]*fieldSlice)
	signatures := make(map[uint32]bool)
	for i, q := range qs {
		if q == nil {
			return nil, fmt.Errorf("rules: index: nil question at %d", i)
		}
		tau := q.DistanceThreshold
		if maxTau != nil && maxTau[i] > 0 {
			tau = maxTau[i]
		}
		ix.tau[i] = tau

		var sig uint32
		active := 0
		for f, v := range q.Vector {
			if v != Irrelevant {
				sig |= 1 << uint(f)
				active++
			}
		}
		if active == 0 {
			ix.never.set(i)
			continue
		}
		signatures[sig] = true

		// Per-field necessary condition: |q_f − x_f| ≤ τ·n. The pad is
		// inflated by an ulp-scale epsilon so float rounding in the
		// Eq. 5 sum can never admit a centroid the slice excluded.
		pad := tau*float64(active)*(1+1e-9) + 1e-12
		ix.pad[i] = pad
		ix.ivals[i] = make([]interval, 0, active)
		for f, v := range q.Vector {
			if v == Irrelevant {
				continue
			}
			fs := slices[packet.FieldIndex(f)]
			if fs == nil {
				fs = &fieldSlice{field: packet.FieldIndex(f)}
				slices[packet.FieldIndex(f)] = fs
			}
			ix.ivals[i] = append(ix.ivals[i], interval{field: packet.FieldIndex(f), v: v})
			lo := bucketOf(v - pad)
			hi := bucketOf(v + pad)
			for b := lo; b <= hi; b++ {
				if fs.buckets[b] == nil {
					fs.buckets[b] = newBitset(len(qs))
				}
				fs.buckets[b].set(i)
			}
		}
	}
	ix.sigs = len(signatures)

	// Materialize the slices in fixed field order and fill each one's
	// loose set (questions that leave the field unconstrained).
	for f := 0; f < packet.NumFields; f++ {
		fs := slices[packet.FieldIndex(f)]
		if fs == nil {
			continue
		}
		fs.loose = newBitset(len(qs))
		for i, q := range qs {
			if q.Vector[f] == Irrelevant {
				fs.loose.set(i)
			}
		}
		ix.fields = append(ix.fields, fs)
	}
	return ix, nil
}

// bucketOf maps a normalized value to its bucket, clamping out-of-range
// values (SVD reconstruction can push centroids slightly outside
// [0, 1]; clamping is monotone, so interval containment survives it).
func bucketOf(x float64) int {
	if x <= 0 || math.IsNaN(x) {
		return 0
	}
	if x >= 1 {
		return numBuckets - 1
	}
	b := int(x * numBuckets)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Len returns the number of questions the index was built over.
func (ix *QuestionIndex) Len() int { return ix.n }

// Signatures returns the number of distinct shared-field signatures.
func (ix *QuestionIndex) Signatures() int { return ix.sigs }

// Covers reports whether question i's indexed interval bound is wide
// enough to evaluate it at τ. Evaluating above the built bound voids
// the pruning guarantee; callers must rebuild first (the controller
// does this when the adaptive loop widens a τ_d2 past the bound).
func (ix *QuestionIndex) Covers(i int, tau float64) bool {
	return i >= 0 && i < len(ix.tau) && tau <= ix.tau[i]
}

// CandidateSet is one epoch's answer: the questions whose match set may
// be non-empty against that epoch's centroids.
type CandidateSet struct {
	bits bitset
	n    int
}

// Contains reports whether question i survived the index filter.
func (s *CandidateSet) Contains(i int) bool {
	if s == nil {
		return true // no index ⇒ everything is a candidate
	}
	return s.bits.has(i)
}

// Count returns the number of candidate questions.
func (s *CandidateSet) Count() int { return s.bits.count() }

// Len returns the number of questions the set ranges over.
func (s *CandidateSet) Len() int { return s.n }

// Candidates computes the epoch's candidate set: rows is the number of
// aggregate centroids and row(i) must return centroid i's normalized
// field vector (length ≥ packet.NumFields). Cost is one pass over the
// centroids plus bitset algebra in the library size / 64.
func (ix *QuestionIndex) Candidates(rows int, row func(i int) []float64) *CandidateSet {
	out := &CandidateSet{bits: newBitset(ix.n), n: ix.n}
	if ix.n == 0 || rows == 0 || len(ix.fields) == 0 {
		return out
	}

	// Occupancy pass: which buckets does any centroid fall in, per
	// indexed column — and the raw values themselves, sorted per column
	// for the phase-2 exact refinement.
	var occ [packet.NumFields][numBuckets / 64]uint64
	var vals [packet.NumFields][]float64
	for _, fs := range ix.fields {
		vals[fs.field] = make([]float64, rows)
	}
	for r := 0; r < rows; r++ {
		v := row(r)
		for _, fs := range ix.fields {
			b := bucketOf(v[fs.field])
			occ[fs.field][b>>6] |= 1 << (b & 63)
			vals[fs.field][r] = v[fs.field]
		}
	}
	for _, fs := range ix.fields {
		sort.Float64s(vals[fs.field])
	}

	// Intersection pass: a candidate must, on every indexed column,
	// either leave it unconstrained or have its interval touch an
	// occupied bucket.
	mask := newBitset(ix.n)
	for fi, fs := range ix.fields {
		mask.copyFrom(fs.loose)
		for w, word := range occ[fs.field] {
			for word != 0 {
				b := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				if qb := fs.buckets[b]; qb != nil {
					mask.orInto(qb)
				}
			}
		}
		if fi == 0 {
			out.bits.copyFrom(mask)
		} else {
			out.bits.andInto(mask)
		}
	}
	out.bits.andNot(ix.never)

	// Phase 2 — exact refinement: a bucket cell spans 1/256 of the
	// axis, which is the whole of a /8 on the address columns and 256
	// ports on the port columns, so phase 1 cannot separate questions
	// inside those dense ranges. For each survivor, binary-search each
	// constrained column's sorted centroid values for the nearest one
	// to the question's pinned value, and accumulate those minimum
	// deviations. For any single centroid x, Σ_f |q_f − x_f| is at
	// least the sum of per-field minima (each field is free to pick its
	// own closest centroid), so once that sum exceeds the padded τ·n
	// budget no centroid can satisfy the Eq. 5 mean and the question is
	// provably unmatchable — the set stays a conservative superset.
	// This subsumes the per-field interval test (one field's deviation
	// alone blowing the budget is the special case) and is what
	// separates host-pinned questions inside the dense home band, where
	// every single field is individually close to some centroid.
	for w, word := range out.bits {
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			sum := 0.0
			for _, iv := range ix.ivals[i] {
				fv := vals[iv.field]
				at := sort.SearchFloat64s(fv, iv.v)
				d := math.Inf(1)
				if at < len(fv) {
					d = fv[at] - iv.v
				}
				if at > 0 && iv.v-fv[at-1] < d {
					d = iv.v - fv[at-1]
				}
				sum += d
				if sum > ix.pad[i] {
					out.bits[w] &^= 1 << (i & 63)
					break
				}
			}
		}
	}
	return out
}
