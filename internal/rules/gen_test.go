package rules

import (
	"os"
	"strings"
	"testing"
)

// TestGeneratedLibraryRoundTrip pins the ISSUE 6 parser-hardening
// property: parse(gen(seed)) == gen(seed). Every generated line must
// parse, and formatting the parsed rule must reproduce the line byte
// for byte.
func TestGeneratedLibraryRoundTrip(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 1000
	}
	text := GenerateText(GenConfig{Rules: n, Seed: 42})
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	parsed := 0
	for i, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		r, err := Parse(line)
		if err != nil {
			t.Fatalf("line %d: %v\n%s", i+1, err, line)
		}
		if got := r.Format(); got != line {
			t.Fatalf("line %d: round trip diverged\n gen: %s\nfmt: %s", i+1, line, got)
		}
		parsed++
	}
	if parsed != n {
		t.Fatalf("parsed %d rules, want %d", parsed, n)
	}
}

// TestGenerateDeterministic: same seed, same bytes; different seed,
// different bytes.
func TestGenerateDeterministic(t *testing.T) {
	a := GenerateText(GenConfig{Rules: 200, Seed: 1})
	b := GenerateText(GenConfig{Rules: 200, Seed: 1})
	if a != b {
		t.Fatal("same seed produced different libraries")
	}
	c := GenerateText(GenConfig{Rules: 200, Seed: 2})
	if a == c {
		t.Fatal("different seeds produced identical libraries")
	}
}

// TestGenerateQuestionsTranslate: the whole library translates, every
// question has at least one active field, and SIDs are unique.
func TestGenerateQuestionsTranslate(t *testing.T) {
	qs := GenerateQuestionsForTest(t, 2000, 3)
	sids := make(map[int]bool)
	for _, q := range qs {
		if len(q.ActiveFields()) == 0 {
			t.Fatalf("sid %d: no active fields", q.Rule.SID)
		}
		if sids[q.Rule.SID] {
			t.Fatalf("duplicate sid %d", q.Rule.SID)
		}
		sids[q.Rule.SID] = true
		if q.DistanceThreshold <= 0 {
			t.Fatalf("sid %d: non-positive τ_d", q.Rule.SID)
		}
	}
}

// TestBuiltinLibraryFormatRoundTrip extends the fixed-point check to
// the built-in attack rules: Format(Parse(x)) need not equal the
// hand-written x, but it must be a fixed point of parse-then-format.
func TestBuiltinLibraryFormatRoundTrip(t *testing.T) {
	for _, id := range AllAttacks {
		r, err := LibraryRule(id)
		if err != nil {
			t.Fatal(err)
		}
		once := r.Format()
		r2, err := Parse(once)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", id, err, once)
		}
		if twice := r2.Format(); twice != once {
			t.Fatalf("%s: not a fixed point\nonce:  %s\ntwice: %s", id, once, twice)
		}
	}
}

// FuzzParseRoundTrip fuzzes the parser with the generated corpus (and
// the shipped sample file) as seeds. Property: any line that parses
// must have a canonical form that is a fixed point of
// parse-then-format.
func FuzzParseRoundTrip(f *testing.F) {
	for _, line := range strings.Split(GenerateText(GenConfig{Rules: 64, Seed: 99}), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			f.Add(line)
		}
	}
	if data, err := os.ReadFile("testdata/sample.rules"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if line != "" && !strings.HasPrefix(line, "#") {
				f.Add(line)
			}
		}
	}
	f.Fuzz(func(t *testing.T, line string) {
		r, err := Parse(line)
		if err != nil {
			return // rejected input is fine
		}
		once := r.Format()
		r2, err := Parse(once)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\nin:  %q\nout: %q", err, line, once)
		}
		if twice := r2.Format(); twice != once {
			t.Fatalf("canonical form is not a fixed point\nin:    %q\nonce:  %q\ntwice: %q", line, once, twice)
		}
	})
}
