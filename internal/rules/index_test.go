package rules

import (
	"testing"

	"repro/internal/packet"
)

// qVec builds a question with the given sparse vector entries and τ_d.
func qVec(tau float64, entries map[packet.FieldIndex]float64) *Question {
	q := &Question{
		Vector:            make([]float64, packet.NumFields),
		DistanceThreshold: tau,
		CountThreshold:    1,
		TrackBy:           -1,
	}
	for i := range q.Vector {
		q.Vector[i] = Irrelevant
	}
	for f, v := range entries {
		q.Vector[f] = v
	}
	return q
}

func rowsOf(vecs ...[]float64) (int, func(int) []float64) {
	return len(vecs), func(i int) []float64 { return vecs[i] }
}

func fullRow(entries map[packet.FieldIndex]float64) []float64 {
	v := make([]float64, packet.NumFields)
	for f, x := range entries {
		v[f] = x
	}
	return v
}

func TestQuestionIndexSoundness(t *testing.T) {
	// Three questions: one pinned near dst-port 0.2, one near 0.8, one
	// loose on dst-port (constrains only SYN).
	qs := []*Question{
		qVec(0.01, map[packet.FieldIndex]float64{packet.FieldDstPort: 0.2, packet.FieldSYN: 1}),
		qVec(0.01, map[packet.FieldIndex]float64{packet.FieldDstPort: 0.8, packet.FieldSYN: 1}),
		qVec(0.05, map[packet.FieldIndex]float64{packet.FieldSYN: 1}),
	}
	ix, err := NewQuestionIndex(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	if ix.Signatures() != 2 {
		t.Fatalf("Signatures = %d, want 2", ix.Signatures())
	}

	// A centroid at dst-port 0.2 with SYN: questions 0 and 2 must be
	// candidates; question 1 (pinned at 0.8, τ·n = 0.02) must be pruned.
	n, row := rowsOf(fullRow(map[packet.FieldIndex]float64{packet.FieldDstPort: 0.2, packet.FieldSYN: 1}))
	cs := ix.Candidates(n, row)
	if !cs.Contains(0) || !cs.Contains(2) {
		t.Fatalf("expected questions 0 and 2 as candidates")
	}
	if cs.Contains(1) {
		t.Fatalf("question pinned at 0.8 should be pruned for a 0.2 centroid")
	}
	if cs.Count() != 2 {
		t.Fatalf("Count = %d, want 2", cs.Count())
	}
}

// TestQuestionIndexNeverMisses is the core soundness property on random
// workloads: every question the exact Eq. 5 distance admits at τ_d must
// be in the candidate set.
func TestQuestionIndexNeverMisses(t *testing.T) {
	qs := GenerateQuestionsForTest(t, 2000, 7)
	ix, err := NewQuestionIndex(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic centroids spread over the axes the generator uses.
	var rows [][]float64
	for i := 0; i < 64; i++ {
		rows = append(rows, fullRow(map[packet.FieldIndex]float64{
			packet.FieldProtocol: float64(6+11*(i%2)) / 255,
			packet.FieldDstPort:  float64(i) / 64,
			packet.FieldSrcPort:  float64(63-i) / 64,
			packet.FieldDstIP:    float64(i) / 64,
			packet.FieldSYN:      float64(i % 2),
			packet.FieldACK:      float64((i / 2) % 2),
			packet.FieldWindow:   float64(i%3) / 3,
		}))
	}
	cs := ix.Candidates(len(rows), func(i int) []float64 { return rows[i] })
	missed := 0
	for qi, q := range qs {
		matches := false
		for _, r := range rows {
			if q.Distance(r) <= q.DistanceThreshold {
				matches = true
				break
			}
		}
		if matches && !cs.Contains(qi) {
			missed++
			if missed <= 3 {
				t.Errorf("question %d (sid %d) matches a centroid but was pruned", qi, q.Rule.SID)
			}
		}
	}
	if missed > 0 {
		t.Fatalf("%d matchable questions pruned — index is unsound", missed)
	}
	if pruned := len(qs) - cs.Count(); pruned == 0 {
		t.Fatalf("index pruned nothing on a selective workload — no pruning power")
	}
}

func TestQuestionIndexCovers(t *testing.T) {
	qs := []*Question{qVec(0.01, map[packet.FieldIndex]float64{packet.FieldDstPort: 0.2})}
	ix, err := NewQuestionIndex(qs, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Covers(0, 0.015) {
		t.Fatal("Covers(0, 0.015) = false, want true (built at 0.02)")
	}
	if ix.Covers(0, 0.03) {
		t.Fatal("Covers(0, 0.03) = true, want false")
	}
	if ix.Covers(-1, 0) || ix.Covers(1, 0) {
		t.Fatal("out-of-range Covers must be false")
	}
}

func TestQuestionIndexNilCandidateSet(t *testing.T) {
	var cs *CandidateSet
	if !cs.Contains(0) || !cs.Contains(12345) {
		t.Fatal("nil CandidateSet must contain everything (no index ⇒ linear scan)")
	}
}

func TestQuestionIndexErrors(t *testing.T) {
	qs := []*Question{qVec(0.01, nil)}
	if _, err := NewQuestionIndex(qs, []float64{1, 2}); err == nil {
		t.Fatal("length-mismatched maxTau must error")
	}
	if _, err := NewQuestionIndex([]*Question{nil}, nil); err == nil {
		t.Fatal("nil question must error")
	}
}

// TestQuestionIndexNeverMatchable: a question with no active fields has
// +Inf distance and must never be a candidate.
func TestQuestionIndexNeverMatchable(t *testing.T) {
	qs := []*Question{
		qVec(0.05, nil), // all Irrelevant
		qVec(0.05, map[packet.FieldIndex]float64{packet.FieldSYN: 1}),
	}
	ix, err := NewQuestionIndex(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, row := rowsOf(fullRow(map[packet.FieldIndex]float64{packet.FieldSYN: 1}))
	cs := ix.Candidates(n, row)
	if cs.Contains(0) {
		t.Fatal("zero-active-field question must be pruned")
	}
	if !cs.Contains(1) {
		t.Fatal("SYN question must be a candidate")
	}
}

// GenerateQuestionsForTest builds a translated scale library for tests
// in this and other packages' test files.
func GenerateQuestionsForTest(t testing.TB, n int, seed int64) []*Question {
	t.Helper()
	env := NewEnvironment()
	qs, err := GenerateQuestions(GenConfig{Rules: n, Seed: seed}, env, DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("generator yielded no questions")
	}
	return qs
}
