package rules

import (
	"fmt"
	"strings"
)

// Format renders the rule in the canonical form the parser accepts:
// fixed header order, options in a fixed sequence, one rule per line.
// Parse(r.Format()) reproduces r up to the Raw field, and Format is a
// fixed point under parse-then-format — the round-trip property the
// generated scale libraries and the fuzz harness pin
// (TestGeneratedLibraryRoundTrip, FuzzParseRoundTrip).
//
// Options the parser records but the canonical form cannot carry
// losslessly are sanitized: embedded double quotes are stripped from
// msg/content/classtype, since the option splitter treats '"' as a
// quoting toggle.
func (r *Rule) Format() string {
	var sb strings.Builder
	sb.WriteString(string(r.Action))
	sb.WriteByte(' ')
	sb.WriteString(string(r.Protocol))
	sb.WriteByte(' ')
	sb.WriteString(formatAddress(r.Src))
	sb.WriteByte(' ')
	sb.WriteString(formatPort(r.SrcPort))
	sb.WriteByte(' ')
	if r.Direction == "<>" {
		sb.WriteString("<>")
	} else {
		sb.WriteString("->")
	}
	sb.WriteByte(' ')
	sb.WriteString(formatAddress(r.Dst))
	sb.WriteByte(' ')
	sb.WriteString(formatPort(r.DstPort))

	var opts []string
	if r.Msg != "" {
		// Manual quoting, not %q: the parser strips quotes verbatim and
		// does not unescape, so escaping would break the fixed point.
		opts = append(opts, `msg:"`+sanitizeOption(r.Msg)+`"`)
	}
	if r.Flags != nil {
		opts = append(opts, "flags:"+formatFlags(r.Flags))
	}
	if r.Window >= 0 {
		opts = append(opts, fmt.Sprintf("window:%d", r.Window))
	}
	if r.Filter != nil {
		opts = append(opts, "detection_filter:"+formatFilter(r.Filter))
	}
	if r.Classtype != "" {
		opts = append(opts, "classtype:"+sanitizeOption(r.Classtype))
	}
	for _, c := range r.Content {
		opts = append(opts, `content:"`+sanitizeOption(c)+`"`)
	}
	if r.SID != 0 {
		opts = append(opts, fmt.Sprintf("sid:%d", r.SID))
	}
	if r.Rev != 0 {
		opts = append(opts, fmt.Sprintf("rev:%d", r.Rev))
	}
	if len(opts) > 0 {
		sb.WriteString(" (")
		for _, o := range opts {
			sb.WriteString(o)
			sb.WriteString("; ")
		}
		// Trim the trailing space, keep the final semicolon.
		s := sb.String()
		return s[:len(s)-1] + ")"
	}
	return sb.String()
}

// sanitizeOption strips the characters the semicolon-splitting option
// syntax cannot represent inside a value: the quote toggle itself, and
// (for unquoted values) separators handled by quoting elsewhere.
func sanitizeOption(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '"', '\n', '\r', '\\':
			return -1
		}
		return r
	}, s)
}

func formatAddress(a AddressSpec) string {
	var neg string
	if a.Negated {
		neg = "!"
	}
	switch {
	case a.Var != "":
		return neg + "$" + a.Var
	case a.Any:
		return neg + "any"
	default:
		return neg + a.Prefix.String()
	}
}

func formatPort(p PortSpec) string {
	var neg string
	if p.Negated {
		neg = "!"
	}
	switch {
	case p.Any:
		return neg + "any"
	case p.Ranged:
		return fmt.Sprintf("%s%d:%d", neg, p.Lo, p.Hi)
	default:
		return fmt.Sprintf("%s%d", neg, p.Port)
	}
}

func formatFlags(fs *FlagSpec) string {
	s := fs.Set.String() // "0" when no flag bits are set
	if !fs.Exact {
		s += "+"
	}
	return s
}

func formatFilter(df *DetectionFilter) string {
	track := "by_dst"
	if df.TrackBySrc {
		track = "by_src"
	}
	return fmt.Sprintf("track %s, count %d, seconds %d", track, df.Count, df.Seconds)
}
