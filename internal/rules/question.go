package rules

import (
	"fmt"
	"math"

	"repro/internal/packet"
)

// Irrelevant is the question-vector entry marking a header field the rule
// does not constrain (§5.2).
const Irrelevant = -1.0

// Question is a translated rule: a vector q of length p in normalized
// field space with Irrelevant (−1) for unconstrained fields, plus the
// matching thresholds the similarity estimator needs (Algorithm 1) and
// the optional postprocessor directive (Algorithm 2).
type Question struct {
	// Rule is the source rule.
	Rule *Rule
	// Vector is q, length packet.NumFields.
	Vector []float64
	// DistanceThreshold is τ_d: a centroid x matches when d_q(x) ≤ τ_d.
	DistanceThreshold float64
	// CountThreshold is τ_c: an alert needs Σ c_i ≥ τ_c over matching
	// centroids. 1 means any match alerts.
	CountThreshold int
	// Variance, when non-nil, directs the postprocessor to check the
	// spread of one header field over matching representatives.
	Variance *VarianceCheck
	// TrackBy, when ≥ 0, translates Snort's "track by_dst"
	// detection_filter semantics onto summaries: instead of summing
	// counts over all matching centroids, the estimator finds the
	// maximum count concentrated within a TrackWindow-wide interval of
	// the tracked field — per-destination counting without knowing the
	// victim a priori. −1 disables tracking (global count).
	TrackBy int
	// TrackWindow is the width, in normalized field units, of the
	// tracking interval. Zero selects the estimator default, wide
	// enough to tolerate centroid blur from mildly mixed clusters and
	// narrow enough to isolate one victim.
	TrackWindow float64
	// VolumetricCount marks τ_c as a per-1000-packets rate that scales
	// with epoch volume (flood/scan rules). When false, τ_c is a
	// semantic per-victim constant ("8 connection attempts"). Zero
	// value defers to the ≥volumetricCountMin heuristic.
	VolumetricCount *bool
	// TauDScale rescales threshold sweeps for this question. Rules
	// that pin a specific port need τ_d values ~50× smaller than
	// flag-only rules: port gaps normalize to ≤1e-3 and the
	// active-field average of Eq. 5 dilutes them further, so the same
	// absolute τ_d that suits a flood signature would erase the port
	// constraint. Zero means 1 (no scaling).
	TauDScale float64
}

// EffectiveTau applies the question's τ_d sweep scale to a raw sweep
// value.
func (q *Question) EffectiveTau(tau float64) float64 {
	if q.TauDScale > 0 {
		return tau * q.TauDScale
	}
	return tau
}

// VarianceCheck is the postprocessor directive: alert when the weighted
// variance of normalized field values across matching representatives
// meets or exceeds Threshold (τ_v).
type VarianceCheck struct {
	Field     packet.FieldIndex
	Threshold float64
}

// ActiveFields returns the indices of the constrained entries of q.
func (q *Question) ActiveFields() []packet.FieldIndex {
	var out []packet.FieldIndex
	for i, v := range q.Vector {
		if v != Irrelevant {
			out = append(out, packet.FieldIndex(i))
		}
	}
	return out
}

// Distance computes d_q(x) per Eq. 5: the mean absolute deviation over
// the constrained entries. x must be a normalized field vector of length
// p. A question with no constrained entries returns +Inf (it can never
// match).
func (q *Question) Distance(x []float64) float64 {
	var sum float64
	var n int
	for j, qj := range q.Vector {
		if qj == Irrelevant {
			continue
		}
		sum += math.Abs(qj - x[j])
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// TranslateConfig tunes translation defaults.
type TranslateConfig struct {
	// DefaultDistanceThreshold is τ_d for rules without an explicit
	// override. The evaluation sweeps this; 0.05 is a sensible default
	// in normalized field space.
	DefaultDistanceThreshold float64
	// VarianceThreshold is the default τ_v for variance checks.
	VarianceThreshold float64
}

// DefaultTranslateConfig mirrors the mid-range operating point of the
// paper's ROC sweeps.
func DefaultTranslateConfig() TranslateConfig {
	return TranslateConfig{DefaultDistanceThreshold: 0.05, VarianceThreshold: 0.01}
}

// Translate converts a parsed rule into a question vector (§5.2). Address
// variables are resolved against env; a variable bound to a /32 or /24
// prefix contributes the (normalized) network address, while "any",
// unresolvable variables and negated specs contribute Irrelevant, since a
// single point in field space cannot encode them.
func Translate(r *Rule, env *Environment, cfg TranslateConfig) (*Question, error) {
	if r == nil {
		return nil, fmt.Errorf("rules: nil rule")
	}
	if cfg.DefaultDistanceThreshold <= 0 {
		cfg.DefaultDistanceThreshold = DefaultTranslateConfig().DefaultDistanceThreshold
	}
	if cfg.VarianceThreshold <= 0 {
		cfg.VarianceThreshold = DefaultTranslateConfig().VarianceThreshold
	}

	q := &Question{
		Rule:              r,
		Vector:            make([]float64, packet.NumFields),
		DistanceThreshold: cfg.DefaultDistanceThreshold,
		CountThreshold:    1,
		TrackBy:           -1,
	}
	for i := range q.Vector {
		q.Vector[i] = Irrelevant
	}

	if n := r.Protocol.Number(); n >= 0 {
		q.Vector[packet.FieldProtocol] = packet.Normalize(packet.FieldProtocol, float64(n))
	}
	if ip, ok := resolveAddress(r.Src, env); ok {
		q.Vector[packet.FieldSrcIP] = packet.Normalize(packet.FieldSrcIP, float64(ip))
	}
	if ip, ok := resolveAddress(r.Dst, env); ok {
		q.Vector[packet.FieldDstIP] = packet.Normalize(packet.FieldDstIP, float64(ip))
	}
	if port, ok := resolvePort(r.SrcPort); ok {
		q.Vector[packet.FieldSrcPort] = packet.Normalize(packet.FieldSrcPort, float64(port))
	}
	if port, ok := resolvePort(r.DstPort); ok {
		q.Vector[packet.FieldDstPort] = packet.Normalize(packet.FieldDstPort, float64(port))
	}
	if r.Flags != nil {
		setFlag := func(idx packet.FieldIndex, bit packet.TCPFlags) {
			if r.Flags.Set.Has(bit) {
				q.Vector[idx] = 1
			} else if r.Flags.Exact {
				q.Vector[idx] = 0
			}
		}
		setFlag(packet.FieldSYN, packet.FlagSYN)
		setFlag(packet.FieldACK, packet.FlagACK)
		setFlag(packet.FieldFIN, packet.FlagFIN)
		setFlag(packet.FieldRST, packet.FlagRST)
	}
	if r.Window >= 0 {
		q.Vector[packet.FieldWindow] = packet.Normalize(packet.FieldWindow, float64(r.Window))
	}
	if r.Filter != nil && r.Filter.Count > 0 {
		q.CountThreshold = r.Filter.Count
		// by_dst tracking maps onto summaries as windowed counting
		// along the destination-IP entry; by_src rules are handled by
		// the postprocessor's variance checks instead (§5.2), because
		// per-source counts inside one epoch are too small to track.
		if !r.Filter.TrackBySrc {
			q.TrackBy = int(packet.FieldDstIP)
		}
	}
	return q, nil
}

// minRepresentablePrefixBits is the narrowest prefix a single point in
// normalized field space can stand for. A /8 like a typical $HOME_NET
// spans 1/256 of the address axis; collapsing it to its base address
// would make the question match or miss on an artifact of where inside
// the prefix a host sits. Such broad constraints are left Irrelevant —
// destination concentration is handled by the tracked-count mechanism
// instead.
const minRepresentablePrefixBits = 16

// resolveAddress maps an address spec to a concrete IPv4 address usable
// in a question vector. Negated, wildcard, and broad-prefix specs are
// not representable.
func resolveAddress(a AddressSpec, env *Environment) (uint32, bool) {
	if a.Any || a.Negated {
		return 0, false
	}
	p := a.Prefix
	if a.Var != "" {
		if env == nil {
			return 0, false
		}
		resolved, ok := env.Lookup(a.Var)
		if !ok {
			return 0, false
		}
		p = resolved
	}
	if !p.IsValid() || !p.Addr().Is4() || p.Bits() < minRepresentablePrefixBits {
		return 0, false
	}
	return packet.AddrToU32(p.Addr()), true
}

// resolvePort maps a port spec to a single representative port. Ranges
// use their midpoint; wildcards and negations are not representable.
func resolvePort(p PortSpec) (uint16, bool) {
	if p.Any || p.Negated {
		return 0, false
	}
	if p.Ranged {
		return p.Lo + (p.Hi-p.Lo)/2, true
	}
	return p.Port, true
}

// WithVariance returns a copy of q carrying a postprocessor variance
// check on field f with threshold τ_v. It implements the paper's crafted
// equivalent rules for preprocessor-class (distributed) attacks (§5.2).
func (q *Question) WithVariance(f packet.FieldIndex, tau float64) *Question {
	out := *q
	out.Vector = append([]float64(nil), q.Vector...)
	out.Variance = &VarianceCheck{Field: f, Threshold: tau}
	return &out
}

// WithDistanceThreshold returns a copy of q with τ_d replaced; the ROC
// sweeps of §8 use this.
func (q *Question) WithDistanceThreshold(tau float64) *Question {
	out := *q
	out.Vector = append([]float64(nil), q.Vector...)
	out.DistanceThreshold = tau
	return &out
}

// WithCountThreshold returns a copy of q with τ_c replaced.
func (q *Question) WithCountThreshold(tc int) *Question {
	out := *q
	out.Vector = append([]float64(nil), q.Vector...)
	out.CountThreshold = tc
	return &out
}

// volumetricCountMin separates volumetric thresholds (flood/scan rates,
// which grow with the traffic an aggregate stands for) from semantic
// thresholds ("5 failed logins is brute force", "15 zero-window probes
// pin a server"), which are properties of the attack, not the network.
const volumetricCountMin = 20

// ScaleForVolume returns a copy of q whose count threshold, when
// volumetric, is rescaled from the library's per-1000-packet calibration
// to the given epoch volume (total packets summarized per inference
// round). This is the administrator tuning knob of §5.2: volumetric τ_c
// grows with the traffic a single aggregate stands for, while semantic
// thresholds stay fixed.
func (q *Question) ScaleForVolume(volume int) *Question {
	if volume <= 0 {
		return q
	}
	volumetric := q.CountThreshold >= volumetricCountMin
	if q.VolumetricCount != nil {
		volumetric = *q.VolumetricCount
	}
	if !volumetric {
		return q
	}
	scaled := q.CountThreshold * volume / 1000
	if scaled < 1 {
		scaled = 1
	}
	return q.WithCountThreshold(scaled)
}
