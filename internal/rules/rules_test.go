package rules

import (
	"math"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/packet"
)

const sshRuleText = `alert tcp $EXTERNAL_NET any -> $HOME_NET 22 (msg:"INDICATOR-SCAN SSH brute force login attempt"; flow:to_server,established; content:"SSH-"; depth:4; detection_filter: track by_src, count 5, seconds 60; metadata:service ssh; classtype:misc-activity; sid:19559; rev:5;)`

func TestParseSSHRule(t *testing.T) {
	r, err := Parse(sshRuleText)
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != ActionAlert || r.Protocol != ProtoTCP {
		t.Fatalf("action/proto = %v/%v", r.Action, r.Protocol)
	}
	if r.Src.Var != "EXTERNAL_NET" || r.Dst.Var != "HOME_NET" {
		t.Fatalf("vars = %q, %q", r.Src.Var, r.Dst.Var)
	}
	if !r.SrcPort.Any || r.DstPort.Port != 22 {
		t.Fatalf("ports = %+v -> %+v", r.SrcPort, r.DstPort)
	}
	if r.SID != 19559 || r.Rev != 5 {
		t.Fatalf("sid/rev = %d/%d", r.SID, r.Rev)
	}
	if r.Msg == "" || !strings.Contains(r.Msg, "SSH brute force") {
		t.Fatalf("msg = %q", r.Msg)
	}
	if r.Filter == nil || r.Filter.Count != 5 || r.Filter.Seconds != 60 || !r.Filter.TrackBySrc {
		t.Fatalf("filter = %+v", r.Filter)
	}
	if len(r.Content) != 1 || r.Content[0] != "SSH-" {
		t.Fatalf("content = %v", r.Content)
	}
	if r.Classtype != "misc-activity" {
		t.Fatalf("classtype = %q", r.Classtype)
	}
	if !r.RequiresCount() {
		t.Fatal("rule must require count matching")
	}
}

func TestParseHeaderVariants(t *testing.T) {
	cases := []string{
		`alert tcp any any -> 10.0.0.0/8 80 (sid:1;)`,
		`alert udp any 53 -> any any (sid:2;)`,
		`alert ip any any <> any any (sid:3;)`,
		`alert tcp !192.168.0.0/16 any -> any !22 (sid:4;)`,
		`alert tcp any 1000:2000 -> any :1024 (sid:5;)`,
		`log tcp any any -> any any (sid:6;)`,
	}
	for _, c := range cases {
		if _, err := Parse(c); err != nil {
			t.Fatalf("Parse(%q) failed: %v", c, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`# comment`,
		`alert tcp any any -> any`,              // short header
		`frobnicate tcp any any -> any any`,     // bad action
		`alert gre any any -> any any (sid:1;)`, // bad proto
		`alert tcp any any >> any any (sid:1;)`, // bad direction
		`alert tcp any 99999 -> any any`,        // bad port
		`alert tcp any 2000:1000 -> any any`,    // inverted range
		`alert tcp 300.1.2.3 any -> any any`,    // bad address
		`alert tcp any any -> any any (sid:xyz;)`,
		`alert tcp any any -> any any (flags:Z;)`,
		`alert tcp any any -> any any (window:99999;)`,
		`alert tcp any any -> any any (detection_filter: track sideways extra;)`,
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Fatalf("Parse(%q) should fail", c)
		}
	}
}

func TestParseFlags(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (flags:SA; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flags == nil || !r.Flags.Set.Has(packet.FlagSYN|packet.FlagACK) || !r.Flags.Exact {
		t.Fatalf("flags = %+v", r.Flags)
	}
	r2, err := Parse(`alert tcp any any -> any any (flags:S+; sid:2;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Flags.Exact {
		t.Fatal("trailing + must clear Exact")
	}
}

func TestParseAll(t *testing.T) {
	src := `
# two rules and a comment
alert tcp any any -> any 80 (msg:"a"; sid:1;)

alert udp any any -> any 53 (msg:"b"; sid:2;)
`
	rs, err := ParseAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].SID != 1 || rs[1].SID != 2 {
		t.Fatalf("parsed %d rules", len(rs))
	}
}

func TestParseAllReportsLine(t *testing.T) {
	src := "alert tcp any any -> any 80 (sid:1;)\nbogus line here that fails\n"
	_, err := ParseAll(strings.NewReader(src))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("got %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.Line)
	}
}

func TestPortSpecMatches(t *testing.T) {
	cases := []struct {
		spec PortSpec
		port uint16
		want bool
	}{
		{PortSpec{Any: true}, 1234, true},
		{PortSpec{Port: 22}, 22, true},
		{PortSpec{Port: 22}, 23, false},
		{PortSpec{Ranged: true, Lo: 10, Hi: 20}, 15, true},
		{PortSpec{Ranged: true, Lo: 10, Hi: 20}, 21, false},
		{PortSpec{Port: 22, Negated: true}, 22, false},
		{PortSpec{Port: 22, Negated: true}, 23, true},
	}
	for i, c := range cases {
		if got := c.spec.Matches(c.port); got != c.want {
			t.Fatalf("case %d: Matches(%d) = %v, want %v", i, c.port, got, c.want)
		}
	}
}

func testEnv() *Environment {
	env := NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	return env
}

func TestTranslateSSHRule(t *testing.T) {
	r, err := Parse(sshRuleText)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(r, testEnv(), DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vector) != packet.NumFields {
		t.Fatalf("question length %d, want %d", len(q.Vector), packet.NumFields)
	}
	// Constrained: protocol and dst port 22. The /8 $HOME_NET is too
	// broad to stand for a single point in field space and must stay
	// irrelevant (destination concentration is tracked separately).
	wantPort := packet.Normalize(packet.FieldDstPort, 22)
	if math.Abs(q.Vector[packet.FieldDstPort]-wantPort) > 1e-12 {
		t.Fatalf("dst port entry = %v, want %v", q.Vector[packet.FieldDstPort], wantPort)
	}
	if q.Vector[packet.FieldDstIP] != Irrelevant {
		t.Fatal("broad /8 $HOME_NET must stay irrelevant")
	}
	// A narrow home net resolves into the vector.
	narrow := NewEnvironment()
	narrow.Set("HOME_NET", netip.MustParsePrefix("10.1.2.0/24"))
	qn, err := Translate(r, narrow, DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if qn.Vector[packet.FieldDstIP] == Irrelevant {
		t.Fatal("narrow /24 $HOME_NET must be resolved")
	}
	if q.Vector[packet.FieldSrcIP] != Irrelevant {
		t.Fatal("unresolved $EXTERNAL_NET must stay irrelevant")
	}
	if q.Vector[packet.FieldSrcPort] != Irrelevant {
		t.Fatal("any source port must stay irrelevant")
	}
	if q.CountThreshold != 5 {
		t.Fatalf("count threshold = %d, want 5", q.CountThreshold)
	}
}

func TestTranslateFlags(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (flags:S; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Translate(r, nil, DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.Vector[packet.FieldSYN] != 1 {
		t.Fatalf("SYN entry = %v, want 1", q.Vector[packet.FieldSYN])
	}
	// Exact flags:S pins the other tracked flags to 0.
	if q.Vector[packet.FieldACK] != 0 || q.Vector[packet.FieldFIN] != 0 || q.Vector[packet.FieldRST] != 0 {
		t.Fatalf("exact flags must pin ACK/FIN/RST to 0: %v %v %v",
			q.Vector[packet.FieldACK], q.Vector[packet.FieldFIN], q.Vector[packet.FieldRST])
	}

	rPlus, _ := Parse(`alert tcp any any -> any any (flags:S+; sid:2;)`)
	qPlus, err := Translate(rPlus, nil, DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if qPlus.Vector[packet.FieldACK] != Irrelevant {
		t.Fatal("flags:S+ must leave other flags irrelevant")
	}
}

func TestTranslateWindow(t *testing.T) {
	r, _ := Parse(`alert tcp any any -> any any (flags:A; window:0; sid:1;)`)
	q, err := Translate(r, nil, DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.Vector[packet.FieldWindow] != 0 {
		t.Fatalf("window entry = %v, want 0", q.Vector[packet.FieldWindow])
	}
}

func TestQuestionDistance(t *testing.T) {
	r, _ := Parse(`alert tcp any any -> any 22 (flags:S; sid:1;)`)
	q, err := Translate(r, nil, DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A matching packet: TCP SYN to port 22.
	match := packet.Header{Protocol: packet.ProtoTCP, DstPort: 22, Flags: packet.FlagSYN}
	if d := q.Distance(match.NormalizedVector(nil)); d > 1e-9 {
		t.Fatalf("distance to matching packet = %v, want ~0", d)
	}
	// Same packet without SYN must be farther.
	miss := packet.Header{Protocol: packet.ProtoTCP, DstPort: 22, Flags: packet.FlagACK}
	if d := q.Distance(miss.NormalizedVector(nil)); d < 0.1 {
		t.Fatalf("distance to non-matching packet = %v, want ≥ 0.1", d)
	}
}

func TestQuestionDistanceNoActiveFields(t *testing.T) {
	q := &Question{Vector: make([]float64, packet.NumFields)}
	for i := range q.Vector {
		q.Vector[i] = Irrelevant
	}
	if d := q.Distance(make([]float64, packet.NumFields)); !math.IsInf(d, 1) {
		t.Fatalf("distance of empty question = %v, want +Inf", d)
	}
}

func TestQuestionWithHelpers(t *testing.T) {
	r, _ := Parse(`alert tcp any any -> any any (flags:S; sid:1;)`)
	q, _ := Translate(r, nil, DefaultTranslateConfig())
	q2 := q.WithDistanceThreshold(0.2).WithCountThreshold(99).WithVariance(packet.FieldSrcIP, 0.5)
	if q2.DistanceThreshold != 0.2 || q2.CountThreshold != 99 {
		t.Fatalf("thresholds = %v/%d", q2.DistanceThreshold, q2.CountThreshold)
	}
	if q2.Variance == nil || q2.Variance.Field != packet.FieldSrcIP {
		t.Fatalf("variance = %+v", q2.Variance)
	}
	// The original must be untouched.
	if q.DistanceThreshold == 0.2 || q.Variance != nil {
		t.Fatal("With* helpers must not mutate the receiver")
	}
}

func TestActiveFields(t *testing.T) {
	r, _ := Parse(`alert tcp any any -> any 22 (sid:1;)`)
	q, _ := Translate(r, nil, DefaultTranslateConfig())
	fields := q.ActiveFields()
	want := map[packet.FieldIndex]bool{packet.FieldProtocol: true, packet.FieldDstPort: true}
	if len(fields) != len(want) {
		t.Fatalf("active fields = %v", fields)
	}
	for _, f := range fields {
		if !want[f] {
			t.Fatalf("unexpected active field %v", f)
		}
	}
}

func TestLibraryQuestions(t *testing.T) {
	qs, err := LibraryQuestions(testEnv(), DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != len(AllAttacks) {
		t.Fatalf("library has %d questions, want %d", len(qs), len(AllAttacks))
	}
	// Distributed attacks must carry their variance directives.
	checks := map[AttackID]packet.FieldIndex{
		AttackDistributedSYNFlood: packet.FieldSrcIP,
		AttackPortScan:            packet.FieldDstPort,
		AttackMiraiScan:           packet.FieldDstIP,
	}
	for id, field := range checks {
		q := qs[id]
		if q.Variance == nil || q.Variance.Field != field {
			t.Fatalf("%s: variance check = %+v, want field %v", id, q.Variance, field)
		}
	}
	if qs[AttackSYNFlood].Variance != nil {
		t.Fatal("plain SYN flood must not carry a variance check")
	}
	if qs[AttackSSHBruteForce].Variance != nil {
		t.Fatal("SSH brute force must not gate on variance")
	}
	// Port-pinned and window-pinned rules carry tightened τ_d scales.
	if qs[AttackSSHBruteForce].TauDScale != 0.002 || qs[AttackMiraiScan].TauDScale != 0.002 {
		t.Fatal("port-pinned rules must carry TauDScale 0.002")
	}
	if qs[AttackSockstress].TauDScale != 0.35 {
		t.Fatal("sockstress must carry TauDScale 0.35")
	}
	// Tracked-count translation: by_dst rules track the dst IP field.
	for _, id := range []AttackID{AttackSYNFlood, AttackDistributedSYNFlood, AttackPortScan, AttackSockstress, AttackSSHBruteForce} {
		if qs[id].TrackBy != int(packet.FieldDstIP) {
			t.Fatalf("%s must track by dst IP", id)
		}
	}
	if qs[AttackMiraiScan].TrackBy != -1 {
		t.Fatal("mirai scan (track by_src) must not dst-track")
	}
	// Sockstress pins window to 0 with ACK set.
	ss := qs[AttackSockstress]
	if ss.Vector[packet.FieldWindow] != 0 || ss.Vector[packet.FieldACK] != 1 {
		t.Fatalf("sockstress vector window=%v ack=%v", ss.Vector[packet.FieldWindow], ss.Vector[packet.FieldACK])
	}
}

func TestLibraryRuleUnknown(t *testing.T) {
	if _, err := LibraryRule("no_such_attack"); err == nil {
		t.Fatal("expected error for unknown attack")
	}
}

func TestTranslateNilRule(t *testing.T) {
	if _, err := Translate(nil, nil, DefaultTranslateConfig()); err == nil {
		t.Fatal("expected error for nil rule")
	}
}
