package rules

import (
	"net/netip"
	"os"
	"testing"
)

// TestParseAllSampleFile loads the shipped sample rule file end to end
// and translates every rule, pinning the parser against a realistic
// corpus.
func TestParseAllSampleFile(t *testing.T) {
	f, err := os.Open("testdata/sample.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rs, err := ParseAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 7 {
		t.Fatalf("parsed %d rules, want 7", len(rs))
	}

	bySID := map[int]*Rule{}
	for _, r := range rs {
		bySID[r.SID] = r
	}
	if r := bySID[19559]; r == nil || r.Filter == nil || r.Filter.Count != 5 {
		t.Fatalf("sid 19559 mis-parsed: %+v", bySID[19559])
	}
	if r := bySID[2000001]; r == nil || !r.DstPort.Ranged || r.DstPort.Lo != 80 || r.DstPort.Hi != 88 {
		t.Fatalf("sid 2000001 port range mis-parsed: %+v", bySID[2000001])
	}
	if r := bySID[2000002]; r == nil || r.Protocol != ProtoUDP || r.SrcPort.Port != 53 {
		t.Fatalf("sid 2000002 mis-parsed: %+v", bySID[2000002])
	}
	if r := bySID[2000003]; r == nil || !r.Src.Negated || !r.DstPort.Negated {
		t.Fatalf("sid 2000003 negations mis-parsed: %+v", bySID[2000003])
	}
	if r := bySID[2000004]; r == nil || r.Action != ActionLog || r.Direction != "<>" {
		t.Fatalf("sid 2000004 mis-parsed: %+v", bySID[2000004])
	}
	if r := bySID[2000005]; r == nil || r.Window != 0 {
		t.Fatalf("sid 2000005 window mis-parsed: %+v", bySID[2000005])
	}

	// Every rule must translate without error.
	env := NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	for _, r := range rs {
		q, err := Translate(r, env, DefaultTranslateConfig())
		if err != nil {
			t.Fatalf("sid %d: %v", r.SID, err)
		}
		if len(q.Vector) == 0 {
			t.Fatalf("sid %d: empty question", r.SID)
		}
	}

	// The narrow /24 resolves into the vector; broad nets do not.
	q, _ := Translate(bySID[2000001], env, DefaultTranslateConfig())
	if q.Vector[1] == Irrelevant { // FieldDstIP
		t.Fatal("sid 2000001's /24 destination must resolve")
	}
}
