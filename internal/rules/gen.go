package rules

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"

	"repro/internal/packet"
)

// This file provides the seeded Snort-subset library generator of
// ISSUE 6: a deterministic synthetic rule corpus that scales the
// question library to the 10k+ rules an ISP-wide deployment carries,
// far beyond the seven hand-written attack rules. The generated rules
// stay inside the parser's dialect (flags, window, detection_filter,
// single ports, ranges, representable prefixes), so the corpus
// exercises the whole parse → translate → index → match pipeline, and
// every rule is emitted through Rule.Format — parse(gen(seed)) ==
// gen(seed) by construction, which the round-trip test and fuzz seeds
// pin.

// GenConfig parameterizes the generator.
type GenConfig struct {
	// Rules is the library size. Non-positive defaults to 10000.
	Rules int
	// Seed drives the rule mix; the same seed yields byte-identical
	// output.
	Seed int64
	// BaseSID numbers the rules BaseSID, BaseSID+1, … Non-positive
	// defaults to 3000000, clear of the built-in library's 1000001–7.
	BaseSID int
	// HomeNetVar, when true, targets $HOME_NET instead of literal
	// prefixes for the host-directed rule families.
	HomeNetVar bool
}

// withDefaults fills zero values.
func (c GenConfig) withDefaults() GenConfig {
	if c.Rules <= 0 {
		c.Rules = 10000
	}
	if c.BaseSID <= 0 {
		c.BaseSID = 3000000
	}
	return c
}

// servicePorts is the port population the service-directed families
// draw from — common attack-relevant services plus a random tail, so
// the translated questions spread across the destination-port axis and
// the index's interval slices stay selective.
var servicePorts = []uint16{
	21, 22, 23, 25, 53, 80, 110, 111, 123, 135, 137, 139, 143, 161,
	389, 443, 445, 465, 514, 587, 993, 995, 1080, 1433, 1521, 1723,
	2049, 2375, 3128, 3306, 3389, 5060, 5432, 5900, 6379, 8080, 8443,
	9200, 11211, 27017,
}

// GenerateRules returns a seeded synthetic library of cfg.Rules parsed
// rules. The mix covers the signature families the index groups by:
// service-port probes, host-directed floods, source-port services,
// flag-combination scans, zero-window stalls, port ranges, and plain
// UDP floods.
func GenerateRules(cfg GenConfig) []*Rule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*Rule, 0, cfg.Rules)
	for i := 0; i < cfg.Rules; i++ {
		r := genRule(rng, cfg, i)
		r.Raw = r.Format()
		out = append(out, r)
	}
	return out
}

// GenerateText renders the seeded library as canonical rule-file text,
// one rule per line with a generated header comment.
func GenerateText(cfg GenConfig) string {
	cfg = cfg.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# generated Snort-subset scale library: %d rules, seed %d\n", cfg.Rules, cfg.Seed)
	for _, r := range GenerateRules(cfg) {
		sb.WriteString(r.Raw)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// genRule draws one rule. Families are weighted toward the selective,
// port- or host-pinned shapes a real ruleset is dominated by; a small
// fraction are broad flag-only rules so the candidate filter is
// exercised on non-selective signatures too.
func genRule(rng *rand.Rand, cfg GenConfig, i int) *Rule {
	r := &Rule{
		Action:    ActionAlert,
		Protocol:  ProtoTCP,
		Src:       AddressSpec{Any: true},
		SrcPort:   PortSpec{Any: true},
		Direction: "->",
		Dst:       AddressSpec{Any: true},
		DstPort:   PortSpec{Any: true},
		SID:       cfg.BaseSID + i,
		Rev:       1,
		Window:    -1,
	}
	dst := func() AddressSpec {
		if cfg.HomeNetVar {
			return AddressSpec{Var: "HOME_NET"}
		}
		return AddressSpec{Prefix: genPrefix(rng)}
	}
	port := func() uint16 {
		if rng.Intn(100) < 70 {
			return servicePorts[rng.Intn(len(servicePorts))]
		}
		return uint16(1024 + rng.Intn(64000))
	}

	switch pick := rng.Intn(100); {
	case pick < 35:
		// Service probe: SYN to a pinned destination port, rate-gated.
		p := port()
		r.Dst = dst()
		r.DstPort = PortSpec{Port: p}
		r.Flags = &FlagSpec{Set: packet.FlagSYN, Exact: true}
		r.Filter = &DetectionFilter{Count: 5 + rng.Intn(40), Seconds: 1 + rng.Intn(60)}
		r.Msg = fmt.Sprintf("gen probe svc/%d #%d", p, i)
	case pick < 55:
		// Host-directed flood: pinned destination prefix, any port.
		r.Dst = AddressSpec{Prefix: genPrefix(rng)}
		r.Flags = &FlagSpec{Set: packet.FlagSYN, Exact: true}
		r.Filter = &DetectionFilter{Count: 10 + rng.Intn(60), Seconds: 1 + rng.Intn(10)}
		r.Msg = fmt.Sprintf("gen flood host #%d", i)
	case pick < 70:
		// Source-port service response abuse (DNS/NTP-style): UDP with
		// a pinned source port.
		r.Protocol = ProtoUDP
		p := port()
		r.SrcPort = PortSpec{Port: p}
		r.Dst = dst()
		r.Filter = &DetectionFilter{Count: 8 + rng.Intn(50), Seconds: 1 + rng.Intn(30)}
		r.Msg = fmt.Sprintf("gen amp src/%d #%d", p, i)
	case pick < 80:
		// Scan family: exotic flag combinations over a port range.
		combos := []FlagSpec{
			{Set: packet.FlagFIN, Exact: true},
			{Set: 0, Exact: true}, // null scan
			{Set: packet.FlagFIN | packet.FlagPSH | packet.FlagURG, Exact: true}, // Xmas
			{Set: packet.FlagSYN | packet.FlagFIN, Exact: true},
			{Set: packet.FlagRST, Exact: true},
		}
		c := combos[rng.Intn(len(combos))]
		r.Flags = &c
		lo := port()
		hi := lo + uint16(rng.Intn(200))
		if hi < lo {
			hi = lo
		}
		r.Dst = dst()
		r.DstPort = PortSpec{Ranged: true, Lo: lo, Hi: hi}
		r.Filter = &DetectionFilter{Count: 10 + rng.Intn(30), Seconds: 1 + rng.Intn(5)}
		r.Msg = fmt.Sprintf("gen scan flags/%s #%d", c.Set, i)
	case pick < 90:
		// Zero-window stall (Sockstress family) against a service.
		r.Dst = dst()
		r.DstPort = PortSpec{Port: port()}
		r.Flags = &FlagSpec{Set: packet.FlagACK, Exact: true}
		r.Window = 0
		r.Filter = &DetectionFilter{Count: 5 + rng.Intn(20), Seconds: 1 + rng.Intn(10)}
		r.Msg = fmt.Sprintf("gen stall #%d", i)
	default:
		// Broad volumetric rule: flag-only or plain UDP, weakly
		// selective on purpose.
		if rng.Intn(2) == 0 {
			r.Protocol = ProtoUDP
			r.Msg = fmt.Sprintf("gen udp flood #%d", i)
		} else {
			r.Flags = &FlagSpec{Set: packet.FlagSYN, Exact: true}
			r.Msg = fmt.Sprintf("gen syn flood #%d", i)
		}
		r.Dst = dst()
		r.Filter = &DetectionFilter{Count: 20 + rng.Intn(80), Seconds: 1 + rng.Intn(5)}
	}
	// A sprinkle of by_src tracking mirrors the stock library's Mirai
	// rule; everything else tracks the destination.
	if r.Filter != nil {
		r.Filter.TrackBySrc = rng.Intn(10) == 0
	}
	return r
}

// genPrefix draws a representable destination prefix (/24 or /32 inside
// 10.0.0.0/8), narrow enough that Translate keeps it in the question
// vector (minRepresentablePrefixBits).
func genPrefix(rng *rand.Rand) netip.Prefix {
	a := byte(rng.Intn(256))
	b := byte(rng.Intn(256))
	c := byte(rng.Intn(256))
	addr := netip.AddrFrom4([4]byte{10, a, b, c})
	if rng.Intn(2) == 0 {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, a, b, 0}), 24)
	}
	return netip.PrefixFrom(addr, 32)
}

// GenerateQuestions generates the library and translates every rule
// into a question against env, attaching per-rule τ_d scaling the same
// way the built-in library does (port-pinned rules need tighter
// thresholds than flag-only rules; see LibraryQuestion). Rules whose
// translation yields no constrained field are dropped — they can never
// match a summary.
func GenerateQuestions(cfg GenConfig, env *Environment, tcfg TranslateConfig) ([]*Question, error) {
	rs := GenerateRules(cfg)
	out := make([]*Question, 0, len(rs))
	for _, r := range rs {
		q, err := Translate(r, env, tcfg)
		if err != nil {
			return nil, fmt.Errorf("rules: gen sid %d: %w", r.SID, err)
		}
		active := len(q.ActiveFields())
		if active == 0 {
			continue
		}
		// Port- and host-pinned questions get the tight τ_d scale of
		// the built-in library's port rules; window rules the medium
		// scale; flag-only rules keep the default.
		switch {
		case q.Vector[packet.FieldSrcPort] != Irrelevant ||
			q.Vector[packet.FieldDstPort] != Irrelevant ||
			q.Vector[packet.FieldSrcIP] != Irrelevant ||
			q.Vector[packet.FieldDstIP] != Irrelevant:
			q.TauDScale = 0.002
		case q.Vector[packet.FieldWindow] != Irrelevant:
			q.TauDScale = 0.35
		}
		if q.TauDScale > 0 {
			q = q.WithDistanceThreshold(q.DistanceThreshold * q.TauDScale)
		}
		out = append(out, q)
	}
	return out, nil
}
