package rules

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/packet"
)

// ParseError reports a parse failure with its line number.
type ParseError struct {
	Line int
	Rule string
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rules: line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Parse parses a single rule line.
func Parse(line string) (*Rule, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, fmt.Errorf("rules: empty or comment line")
	}

	open := strings.IndexByte(line, '(')
	head := line
	var body string
	if open >= 0 {
		close := strings.LastIndexByte(line, ')')
		if close < open {
			return nil, fmt.Errorf("rules: unbalanced option parentheses")
		}
		head = strings.TrimSpace(line[:open])
		body = line[open+1 : close]
	}

	fields := strings.Fields(head)
	if len(fields) != 7 {
		return nil, fmt.Errorf("rules: header has %d fields, want 7 (action proto src sport dir dst dport)", len(fields))
	}

	r := &Rule{Raw: line, Window: -1}

	switch Action(fields[0]) {
	case ActionAlert, ActionLog, ActionPass, ActionDrop:
		r.Action = Action(fields[0])
	default:
		return nil, fmt.Errorf("rules: unknown action %q", fields[0])
	}
	switch Protocol(fields[1]) {
	case ProtoTCP, ProtoUDP, ProtoIP:
		r.Protocol = Protocol(fields[1])
	default:
		return nil, fmt.Errorf("rules: unknown protocol %q", fields[1])
	}

	var err error
	if r.Src, err = parseAddress(fields[2]); err != nil {
		return nil, fmt.Errorf("rules: source address: %w", err)
	}
	if r.SrcPort, err = parsePort(fields[3]); err != nil {
		return nil, fmt.Errorf("rules: source port: %w", err)
	}
	if fields[4] != "->" && fields[4] != "<>" {
		return nil, fmt.Errorf("rules: bad direction %q", fields[4])
	}
	r.Direction = fields[4]
	if r.Dst, err = parseAddress(fields[5]); err != nil {
		return nil, fmt.Errorf("rules: destination address: %w", err)
	}
	if r.DstPort, err = parsePort(fields[6]); err != nil {
		return nil, fmt.Errorf("rules: destination port: %w", err)
	}

	if body != "" {
		if err := parseOptions(r, body); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func parseAddress(s string) (AddressSpec, error) {
	var a AddressSpec
	if strings.HasPrefix(s, "!") {
		a.Negated = true
		s = s[1:]
	}
	switch {
	case s == "any":
		a.Any = true
	case strings.HasPrefix(s, "$"):
		if len(s) == 1 {
			return a, fmt.Errorf("empty address variable")
		}
		a.Var = strings.ToUpper(s[1:])
	default:
		if !strings.Contains(s, "/") {
			s += "/32"
		}
		p, err := netip.ParsePrefix(s)
		if err != nil {
			return a, err
		}
		a.Prefix = p
	}
	return a, nil
}

func parsePort(s string) (PortSpec, error) {
	var p PortSpec
	if strings.HasPrefix(s, "!") {
		p.Negated = true
		s = s[1:]
	}
	if s == "any" {
		p.Any = true
		return p, nil
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		p.Ranged = true
		lo, hi := s[:i], s[i+1:]
		if lo == "" {
			p.Lo = 0
		} else {
			v, err := strconv.ParseUint(lo, 10, 16)
			if err != nil {
				return p, fmt.Errorf("bad port range start %q", lo)
			}
			p.Lo = uint16(v)
		}
		if hi == "" {
			p.Hi = 65535
		} else {
			v, err := strconv.ParseUint(hi, 10, 16)
			if err != nil {
				return p, fmt.Errorf("bad port range end %q", hi)
			}
			p.Hi = uint16(v)
		}
		if p.Lo > p.Hi {
			return p, fmt.Errorf("inverted port range %d:%d", p.Lo, p.Hi)
		}
		return p, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return p, fmt.Errorf("bad port %q", s)
	}
	p.Port = uint16(v)
	return p, nil
}

// parseOptions handles the semicolon-separated option body.
func parseOptions(r *Rule, body string) error {
	for _, opt := range splitOptions(body) {
		key, val := opt, ""
		if i := strings.IndexByte(opt, ':'); i >= 0 {
			key, val = strings.TrimSpace(opt[:i]), strings.TrimSpace(opt[i+1:])
		}
		switch strings.ToLower(key) {
		case "msg":
			r.Msg = strings.Trim(val, `"`)
		case "sid":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("rules: bad sid %q", val)
			}
			r.SID = n
		case "rev":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("rules: bad rev %q", val)
			}
			r.Rev = n
		case "classtype":
			r.Classtype = val
		case "content":
			r.Content = append(r.Content, strings.Trim(val, `"`))
		case "flags":
			fs, err := parseFlags(val)
			if err != nil {
				return err
			}
			r.Flags = fs
		case "window":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > 65535 {
				return fmt.Errorf("rules: bad window %q", val)
			}
			r.Window = n
		case "detection_filter", "threshold":
			df, err := parseDetectionFilter(val)
			if err != nil {
				return err
			}
			r.Filter = df
		case "flow", "metadata", "reference", "depth", "offset", "priority", "gid":
			// Accepted and ignored: these constrain state Jaal's
			// summaries do not carry, matching the paper's translator.
		default:
			// Unknown options are ignored rather than rejected so that
			// stock rule files load.
		}
	}
	return nil
}

// splitOptions splits on semicolons outside double quotes.
func splitOptions(body string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ';' && !inQuote:
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func parseFlags(val string) (*FlagSpec, error) {
	fs := &FlagSpec{Exact: true}
	val = strings.TrimSpace(val)
	// A trailing "+" means "these flags plus any others".
	if strings.HasSuffix(val, "+") {
		fs.Exact = false
		val = val[:len(val)-1]
	}
	for _, c := range val {
		switch c {
		case 'F':
			fs.Set |= packet.FlagFIN
		case 'S':
			fs.Set |= packet.FlagSYN
		case 'R':
			fs.Set |= packet.FlagRST
		case 'P':
			fs.Set |= packet.FlagPSH
		case 'A':
			fs.Set |= packet.FlagACK
		case 'U':
			fs.Set |= packet.FlagURG
		case 'E':
			fs.Set |= packet.FlagECE
		case 'C':
			fs.Set |= packet.FlagCWR
		case '0':
			// "flags:0" means no flags set.
		default:
			return nil, fmt.Errorf("rules: unknown flag %q", string(c))
		}
	}
	return fs, nil
}

func parseDetectionFilter(val string) (*DetectionFilter, error) {
	df := &DetectionFilter{}
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "track":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rules: bad track clause %q", part)
			}
			df.TrackBySrc = fields[1] == "by_src"
		case "count":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rules: bad count clause %q", part)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("rules: bad count %q", fields[1])
			}
			df.Count = n
		case "seconds":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rules: bad seconds clause %q", part)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("rules: bad seconds %q", fields[1])
			}
			df.Seconds = n
		case "type":
			// threshold "type" (limit/both/threshold) is ignored.
		default:
			return nil, fmt.Errorf("rules: unknown detection_filter clause %q", part)
		}
	}
	return df, nil
}

// ParseAll reads a rule file: one rule per line, "#" comments and blank
// lines skipped. It returns all rules plus the first error wrapped with
// its line number (parsing stops at the first error).
func ParseAll(r io.Reader) ([]*Rule, error) {
	var out []*Rule
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := Parse(line)
		if err != nil {
			return out, &ParseError{Line: lineNo, Rule: line, Err: err}
		}
		out = append(out, rule)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("rules: read: %w", err)
	}
	return out, nil
}
