// Package mirai models the Mirai case study of §8 (Fig. 8): an epidemic
// telnet scan spreading through vulnerable devices in an ISP network,
// with and without Jaal detecting infected scanners and having the
// administrator shut their traffic off.
//
// The model follows the attack structure the paper extracts from the
// published Mirai source: every bot continuously scans random addresses
// on TCP ports 23 and 2323; a scan that hits a vulnerable, uninfected,
// still-connected device infects it, and the new bot immediately starts
// the same scan.
package mirai

import (
	"fmt"
	"math/rand"
)

// Config parameterizes the emulation.
type Config struct {
	// Devices is the total device population reachable by scans.
	Devices int
	// Vulnerable is how many devices are vulnerable (the paper
	// randomly selects 150 nodes).
	Vulnerable int
	// ScansPerBotPerSecond is each bot's scan rate.
	ScansPerBotPerSecond float64
	// HitProbability is the chance a single scan probe lands on a
	// member of the device population (the rest of the address space
	// is empty or immune).
	HitProbability float64
	// DetectionEnabled switches Jaal's detection/response on.
	DetectionEnabled bool
	// DetectionDelaySeconds is how long a bot scans before Jaal flags
	// it. The paper measures detection within 3 s at 95 % accuracy.
	DetectionDelaySeconds float64
	// ResponseDelaySeconds is the additional time between Jaal's alert
	// and the administrator actually disconnecting the device —
	// ticket-driven human response, not part of Jaal itself.
	ResponseDelaySeconds float64
	// DetectionAccuracy is the probability a given bot is ever
	// detected (per detection window).
	DetectionAccuracy float64
	// Seed drives the simulation.
	Seed int64
}

// DefaultConfig mirrors the paper's experiment: 150 vulnerable devices,
// detection within 3 s at 95 %.
func DefaultConfig(detection bool) Config {
	return Config{
		Devices:               2000,
		Vulnerable:            150,
		ScansPerBotPerSecond:  40,
		HitProbability:        0.02,
		DetectionEnabled:      detection,
		DetectionDelaySeconds: 3,
		ResponseDelaySeconds:  18,
		DetectionAccuracy:     0.95,
		Seed:                  1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Devices < 1:
		return fmt.Errorf("mirai: device count %d < 1", c.Devices)
	case c.Vulnerable < 1 || c.Vulnerable > c.Devices:
		return fmt.Errorf("mirai: vulnerable count %d outside [1,%d]", c.Vulnerable, c.Devices)
	case c.ScansPerBotPerSecond <= 0:
		return fmt.Errorf("mirai: scan rate must be positive")
	case c.HitProbability <= 0 || c.HitProbability > 1:
		return fmt.Errorf("mirai: hit probability %v outside (0,1]", c.HitProbability)
	case c.DetectionEnabled && (c.DetectionDelaySeconds < 0 || c.ResponseDelaySeconds < 0):
		return fmt.Errorf("mirai: negative detection/response delay")
	}
	return nil
}

// deviceState tracks one vulnerable device.
type deviceState struct {
	infected   bool
	infectedAt float64
	// shutoff means the administrator disconnected the device after
	// Jaal detected its scanning.
	shutoff bool
	// undetectable marks the bots the detector misses (the 5 %).
	undetectable bool
}

// Sample is one time point of the epidemic trajectory.
type Sample struct {
	// Time in seconds since patient zero started scanning.
	Time float64
	// Infected is the cumulative number of infected devices (including
	// ones later shut off: they were compromised).
	Infected int
	// Active is the number of currently scanning bots.
	Active int
	// Shutoff is the number of detected-and-disconnected bots.
	Shutoff int
}

// Result is a full emulation run.
type Result struct {
	Config  Config
	Samples []Sample
	// PeakActive is the maximum simultaneous scanning population — the
	// DDoS firepower available to the attacker.
	PeakActive int
	// TotalInfected is the final cumulative infection count.
	TotalInfected int
}

// Run simulates the epidemic in dt-second steps for the given duration
// and returns the trajectory sampled once per step.
func Run(cfg Config, durationSeconds, dt float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 || durationSeconds <= 0 {
		return nil, fmt.Errorf("mirai: duration and dt must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	devices := make([]deviceState, cfg.Vulnerable)
	// Patient zero: an external bot outside the vulnerable pool starts
	// scanning; model it as one persistent active scanner.
	externalBots := 1

	res := &Result{Config: cfg}
	infected, shutoff := 0, 0

	for now := 0.0; now <= durationSeconds; now += dt {
		// Count active scanners.
		active := externalBots
		for i := range devices {
			if devices[i].infected && !devices[i].shutoff {
				active++
			}
		}

		// Detection/response: bots past the detection delay get flagged
		// with the configured accuracy (decided once per bot); the
		// administrator disconnects them after the response delay.
		if cfg.DetectionEnabled {
			for i := range devices {
				d := &devices[i]
				if d.infected && !d.shutoff && !d.undetectable &&
					now-d.infectedAt >= cfg.DetectionDelaySeconds+cfg.ResponseDelaySeconds {
					if rng.Float64() < cfg.DetectionAccuracy {
						d.shutoff = true
						shutoff++
					} else {
						d.undetectable = true
					}
				}
			}
		}

		// Scanning: each active bot sends rate·dt probes; each probe
		// hits a random member of the device population with
		// HitProbability, and a hit on an uninfected vulnerable device
		// infects it.
		probes := float64(active) * cfg.ScansPerBotPerSecond * dt
		hits := 0
		for p := 0.0; p < probes; p++ {
			if rng.Float64() < cfg.HitProbability {
				hits++
			}
		}
		for h := 0; h < hits; h++ {
			// A hit lands on a uniformly random device; only the
			// vulnerable ones are modeled, scaled by their share.
			if rng.Float64() >= float64(cfg.Vulnerable)/float64(cfg.Devices) {
				continue
			}
			i := rng.Intn(cfg.Vulnerable)
			d := &devices[i]
			if !d.infected {
				d.infected = true
				d.infectedAt = now
				infected++
			}
		}

		res.Samples = append(res.Samples, Sample{
			Time: now, Infected: infected, Active: active, Shutoff: shutoff,
		})
		if active > res.PeakActive {
			res.PeakActive = active
		}
	}
	res.TotalInfected = infected
	return res, nil
}
