package mirai

import (
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(true).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Devices: 0, Vulnerable: 1, ScansPerBotPerSecond: 1, HitProbability: 0.1},
		{Devices: 10, Vulnerable: 0, ScansPerBotPerSecond: 1, HitProbability: 0.1},
		{Devices: 10, Vulnerable: 11, ScansPerBotPerSecond: 1, HitProbability: 0.1},
		{Devices: 10, Vulnerable: 5, ScansPerBotPerSecond: 0, HitProbability: 0.1},
		{Devices: 10, Vulnerable: 5, ScansPerBotPerSecond: 1, HitProbability: 0},
		{Devices: 10, Vulnerable: 5, ScansPerBotPerSecond: 1, HitProbability: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d must be invalid", i)
		}
	}
}

func TestRunBadArgs(t *testing.T) {
	if _, err := Run(DefaultConfig(false), 0, 1); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	if _, err := Run(DefaultConfig(false), 10, 0); err == nil {
		t.Fatal("zero dt must be rejected")
	}
}

func TestUncheckedInfectionGrows(t *testing.T) {
	res, err := Run(DefaultConfig(false), 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInfected < 100 {
		t.Fatalf("unchecked epidemic infected only %d of 150", res.TotalInfected)
	}
	// Monotone non-decreasing infections.
	prev := 0
	for _, s := range res.Samples {
		if s.Infected < prev {
			t.Fatal("infections must be monotone")
		}
		prev = s.Infected
	}
}

func TestDetectionCapsInfections(t *testing.T) {
	unchecked, err := Run(DefaultConfig(false), 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Run(DefaultConfig(true), 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8: with Jaal the infected population never rises above ~50
	// (a three-fold decrease vs unchecked).
	if protected.TotalInfected >= unchecked.TotalInfected/2 {
		t.Fatalf("detection must cap infections: protected %d vs unchecked %d",
			protected.TotalInfected, unchecked.TotalInfected)
	}
	if protected.TotalInfected > 60 {
		t.Fatalf("protected run infected %d devices, paper caps it below ~50", protected.TotalInfected)
	}
	// Shutoffs must actually happen.
	last := protected.Samples[len(protected.Samples)-1]
	if last.Shutoff == 0 {
		t.Fatal("detection run must shut off bots")
	}
}

func TestActiveBotsDropAfterShutoff(t *testing.T) {
	res, err := Run(DefaultConfig(true), 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With a 3 s detection delay and 95 % accuracy, the active scanning
	// population must stay small.
	if res.PeakActive > 30 {
		t.Fatalf("peak active bots %d too high under detection", res.PeakActive)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := Run(DefaultConfig(true), 60, 1)
	b, _ := Run(DefaultConfig(true), 60, 1)
	if a.TotalInfected != b.TotalInfected || a.PeakActive != b.PeakActive {
		t.Fatal("same seed must reproduce the trajectory")
	}
	cfg := DefaultConfig(true)
	cfg.Seed = 99
	c, _ := Run(cfg, 60, 1)
	if c.TotalInfected == a.TotalInfected && c.PeakActive == a.PeakActive {
		t.Log("different seeds coincided; acceptable but unusual")
	}
}

func TestSampleCadence(t *testing.T) {
	res, err := Run(DefaultConfig(false), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 11 {
		t.Fatalf("got %d samples for 10 s at dt=1, want 11", len(res.Samples))
	}
	if res.Samples[0].Time != 0 || res.Samples[10].Time != 10 {
		t.Fatal("sample timestamps wrong")
	}
}
