// Package payload implements the paper's §10 payload extension: "one
// approach to detect the presence and/or count of certain keywords
// (e.g., a specific malicious website, or the term '.exe' ...) is to
// construct a term frequency matrix using a batch of packets ... This
// matrix can then be treated the same way as the headers-only batch."
//
// A Vocabulary fixes the keyword dimensions; each packet payload becomes
// a term-frequency vector; batches of vectors form a matrix that goes
// through the same truncated-SVD + k-means++ summarization as header
// batches, and keyword rules are matched against the centroids exactly
// like question vectors.
package payload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/linalg"
)

// Vocabulary is the ordered list of monitored keywords. Its length is
// the p of the term-frequency matrix.
type Vocabulary struct {
	terms []string
	index map[string]int
}

// NewVocabulary builds a vocabulary from keywords; duplicates collapse.
func NewVocabulary(terms []string) (*Vocabulary, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("payload: empty vocabulary")
	}
	v := &Vocabulary{index: make(map[string]int)}
	for _, t := range terms {
		t = strings.ToLower(strings.TrimSpace(t))
		if t == "" {
			return nil, fmt.Errorf("payload: empty term")
		}
		if _, dup := v.index[t]; dup {
			continue
		}
		v.index[t] = len(v.terms)
		v.terms = append(v.terms, t)
	}
	return v, nil
}

// DefaultVocabulary monitors the indicators the paper's discussion
// names plus common exfiltration/dropper markers.
func DefaultVocabulary() *Vocabulary {
	v, err := NewVocabulary([]string{
		".exe", ".dll", ".scr", "cmd.exe", "powershell", "/bin/sh",
		"wget ", "curl ", "base64", "eval(", "union select", "<script",
		"../..", "passwd", "authorization:", "x-forwarded-for",
	})
	if err != nil {
		panic(err) // fixed list cannot fail
	}
	return v
}

// Size returns the number of vocabulary dimensions.
func (v *Vocabulary) Size() int { return len(v.terms) }

// Terms returns the ordered terms (shared storage; do not mutate).
func (v *Vocabulary) Terms() []string { return v.terms }

// Index returns the dimension of a term.
func (v *Vocabulary) Index(term string) (int, bool) {
	i, ok := v.index[strings.ToLower(term)]
	return i, ok
}

// Vectorize converts one payload into its term-frequency vector,
// normalized to [0, 1] per term by a cap of maxCount occurrences (the
// analogue of §4.1's max-value normalization). A nil dst allocates.
func (v *Vocabulary) Vectorize(data []byte, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, v.Size())
	}
	dst = dst[:v.Size()]
	for i := range dst {
		dst[i] = 0
	}
	if len(data) == 0 {
		return dst
	}
	const maxCount = 8
	lower := strings.ToLower(string(data))
	for i, t := range v.terms {
		c := strings.Count(lower, t)
		if c > maxCount {
			c = maxCount
		}
		dst[i] = float64(c) / maxCount
	}
	return dst
}

// BuildMatrix assembles the n×p term-frequency matrix for a batch of
// payloads.
func (v *Vocabulary) BuildMatrix(payloads [][]byte) *linalg.Matrix {
	m := linalg.NewMatrix(len(payloads), v.Size())
	for i, p := range payloads {
		v.Vectorize(p, m.Row(i))
	}
	return m
}

// Summary is a payload-batch summary: centroid term profiles plus
// membership counts, the payload analogue of a header summary.
type Summary struct {
	Vocabulary *Vocabulary
	Centroids  *linalg.Matrix
	Counts     []int
}

// Summarize reduces a payload batch exactly like a header batch:
// truncated SVD to rank r, then k-means++ into k centroids.
func Summarize(v *Vocabulary, payloads [][]byte, r, k int, rng *rand.Rand) (*Summary, error) {
	if len(payloads) == 0 {
		return nil, fmt.Errorf("payload: empty batch")
	}
	if r < 1 || r > v.Size() {
		return nil, fmt.Errorf("payload: rank %d outside [1,%d]", r, v.Size())
	}
	x := v.BuildMatrix(payloads)
	d, err := linalg.ComputeSVD(x)
	if err != nil {
		return nil, err
	}
	rec, err := d.Reconstruct(r)
	if err != nil {
		return nil, err
	}
	res, err := linalg.KMeans(rec, k, rng, linalg.KMeansConfig{})
	if err != nil {
		return nil, err
	}
	return &Summary{Vocabulary: v, Centroids: res.Centroids, Counts: res.Counts}, nil
}

// KeywordRule matches summaries whose centroids show a keyword at or
// above a frequency, backed by at least MinPackets packets.
type KeywordRule struct {
	Term string
	// MinFrequency is the normalized per-packet frequency threshold.
	MinFrequency float64
	// MinPackets is the τ_c analogue.
	MinPackets int
}

// Match evaluates the rule against a summary, returning the estimated
// number of packets carrying the keyword and whether the rule fired.
func (r KeywordRule) Match(s *Summary) (int, bool, error) {
	idx, ok := s.Vocabulary.Index(r.Term)
	if !ok {
		return 0, false, fmt.Errorf("payload: term %q not in vocabulary", r.Term)
	}
	count := 0
	for i := 0; i < s.Centroids.Rows(); i++ {
		if s.Centroids.At(i, idx) >= r.MinFrequency {
			count += s.Counts[i]
		}
	}
	return count, count >= r.MinPackets, nil
}
