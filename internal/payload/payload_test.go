package payload

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestNewVocabulary(t *testing.T) {
	v, err := NewVocabulary([]string{".EXE", ".exe", "wget "})
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 2 {
		t.Fatalf("size = %d, want 2 (case-insensitive dedup)", v.Size())
	}
	if _, ok := v.Index(".exe"); !ok {
		t.Fatal("lookup must be case-insensitive")
	}
	if _, err := NewVocabulary(nil); err == nil {
		t.Fatal("empty vocabulary must be rejected")
	}
	if _, err := NewVocabulary([]string{"  "}); err == nil {
		t.Fatal("blank term must be rejected")
	}
}

func TestDefaultVocabulary(t *testing.T) {
	v := DefaultVocabulary()
	if v.Size() < 10 {
		t.Fatalf("default vocabulary suspiciously small: %d", v.Size())
	}
	if _, ok := v.Index(".exe"); !ok {
		t.Fatal("default vocabulary must include .exe (the paper's example)")
	}
}

func TestVectorize(t *testing.T) {
	v, _ := NewVocabulary([]string{".exe", "wget "})
	vec := v.Vectorize([]byte("GET /dropper.EXE HTTP/1.1"), nil)
	if vec[0] <= 0 {
		t.Fatalf(".exe frequency = %v, want > 0", vec[0])
	}
	if vec[1] != 0 {
		t.Fatalf("wget frequency = %v, want 0", vec[1])
	}
	empty := v.Vectorize(nil, nil)
	for _, x := range empty {
		if x != 0 {
			t.Fatal("empty payload must vectorize to zeros")
		}
	}
	// Frequencies are capped to [0,1].
	many := v.Vectorize([]byte(".exe .exe .exe .exe .exe .exe .exe .exe .exe .exe"), nil)
	if many[0] != 1 {
		t.Fatalf("capped frequency = %v, want 1", many[0])
	}
}

// syntheticPayloads fabricates a batch of mostly boring HTTP-ish
// payloads with a fraction carrying the keyword.
func syntheticPayloads(rng *rand.Rand, n int, keywordFrac float64) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		if rng.Float64() < keywordFrac {
			out[i] = []byte(fmt.Sprintf("GET /files/update%d.exe HTTP/1.1\r\nHost: cdn%d.example\r\n", i, rng.Intn(10)))
		} else {
			out[i] = []byte(fmt.Sprintf("GET /page%d.html HTTP/1.1\r\nHost: www%d.example\r\n", i, rng.Intn(10)))
		}
	}
	return out
}

func TestSummarizeAndMatchKeyword(t *testing.T) {
	v := DefaultVocabulary()
	rng := rand.New(rand.NewSource(1))
	payloads := syntheticPayloads(rng, 500, 0.10)
	s, err := Summarize(v, payloads, 8, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	rule := KeywordRule{Term: ".exe", MinFrequency: 0.05, MinPackets: 20}
	count, fired, err := rule.Match(s)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatalf("keyword rule must fire: estimated %d carriers", count)
	}
	// The estimate should be in the ballpark of the injected 10 %.
	if count < 25 || count > 120 {
		t.Fatalf("estimated %d .exe carriers, expected ≈50", count)
	}
}

func TestSummarizeCleanBatchQuiet(t *testing.T) {
	v := DefaultVocabulary()
	rng := rand.New(rand.NewSource(2))
	payloads := syntheticPayloads(rng, 500, 0)
	s, err := Summarize(v, payloads, 8, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	rule := KeywordRule{Term: ".exe", MinFrequency: 0.05, MinPackets: 20}
	count, fired, err := rule.Match(s)
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatalf("clean batch must not fire (estimated %d)", count)
	}
}

func TestSummarizeValidation(t *testing.T) {
	v := DefaultVocabulary()
	rng := rand.New(rand.NewSource(3))
	if _, err := Summarize(v, nil, 4, 10, rng); err == nil {
		t.Fatal("empty batch must be rejected")
	}
	if _, err := Summarize(v, [][]byte{[]byte("x")}, 0, 10, rng); err == nil {
		t.Fatal("rank 0 must be rejected")
	}
	if _, err := Summarize(v, [][]byte{[]byte("x")}, v.Size()+1, 10, rng); err == nil {
		t.Fatal("rank > p must be rejected")
	}
}

func TestMatchUnknownTerm(t *testing.T) {
	v, _ := NewVocabulary([]string{".exe"})
	s := &Summary{Vocabulary: v}
	if _, _, err := (KeywordRule{Term: "nope"}).Match(s); err == nil {
		t.Fatal("unknown term must error")
	}
}
