package wire

import (
	"fmt"

	"repro/internal/obs"
)

// Per-message-type frame and byte accounting, both directions. Sitting
// in WriteFrame/ReadFrame — the single choke point every monitor↔
// controller byte crosses — these four counter families give a live
// view of the Fig. 12 communication split: summary bytes vs raw-batch
// bytes vs control chatter. bytes count the full frame (5-byte header
// included), matching what the network carries.
//
// The counters are indexed by message type; types outside the known
// range land in the "other" slot, so a corrupt or future frame is
// still accounted rather than dropped from the books.

// numMsgTypes is the size of the per-type counter arrays: known types
// are 1..MsgFinerRequest, slot 0 is "other".
const numMsgTypes = int(MsgFinerRequest) + 1

type dirCounters struct {
	frames [numMsgTypes]*obs.Counter
	bytes  [numMsgTypes]*obs.Counter
}

func newDirCounters(dir string) *dirCounters {
	d := &dirCounters{}
	for t := 0; t < numMsgTypes; t++ {
		label := "other"
		if t > 0 {
			label = MsgType(t).String()
		}
		d.frames[t] = obs.NewCounter(
			fmt.Sprintf("jaal_wire_%s_frames_total{type=%q}", dir, label),
			"wire frames by direction and message type")
		d.bytes[t] = obs.NewCounter(
			fmt.Sprintf("jaal_wire_%s_bytes_total{type=%q}", dir, label),
			"wire bytes (frame header included) by direction and message type")
	}
	return d
}

func (d *dirCounters) count(t MsgType, payloadLen int) {
	i := int(t)
	if i >= numMsgTypes {
		i = 0
	}
	d.frames[i].Inc()
	d.bytes[i].Add(int64(payloadLen) + frameHeaderSize)
}

var (
	txCounters = newDirCounters("tx")
	rxCounters = newDirCounters("rx")
)
