package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello summaries")
	if err := WriteFrame(&buf, MsgSummary, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgSummary || !bytes.Equal(msg.Payload, payload) {
		t.Fatalf("round trip mismatch: %+v", msg)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgLoadQuery, nil); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgLoadQuery || len(msg.Payload) != 0 {
		t.Fatalf("round trip mismatch: %+v", msg)
	}
}

func TestFrameMultiple(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgHello, EncodeHello(3))
	WriteFrame(&buf, MsgLoadReport, EncodeLoadReport(3, 0.75))
	m1, err := ReadFrame(&buf)
	if err != nil || m1.Type != MsgHello {
		t.Fatalf("first frame: %v %v", m1, err)
	}
	m2, err := ReadFrame(&buf)
	if err != nil || m2.Type != MsgLoadReport {
		t.Fatalf("second frame: %v %v", m2, err)
	}
}

func TestFrameEOF(t *testing.T) {
	var empty bytes.Buffer
	if _, err := ReadFrame(&empty); err != io.EOF {
		t.Fatalf("got %v, want io.EOF on empty stream", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgSummary, []byte("abcdef"))
	trunc := buf.Bytes()[:7] // header + 2 bytes
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestFrameOversized(t *testing.T) {
	// Craft a header claiming a huge payload.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgSummary)}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
	if err := WriteFrame(io.Discard, MsgSummary, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized write must be rejected")
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	id, load, err := DecodeLoadReport(EncodeLoadReport(42, 3.14))
	if err != nil || id != 42 || load != 3.14 {
		t.Fatalf("round trip: %d %v %v", id, load, err)
	}
	if _, _, err := DecodeLoadReport([]byte{1}); err == nil {
		t.Fatal("short load report must error")
	}
}

func TestSummaryRequestRoundTrip(t *testing.T) {
	e, err := DecodeSummaryRequest(EncodeSummaryRequest(77))
	if err != nil || e != 77 {
		t.Fatalf("round trip: %d %v", e, err)
	}
	if _, err := DecodeSummaryRequest(nil); err == nil {
		t.Fatal("short request must error")
	}
}

func TestSummaryDeclineRoundTrip(t *testing.T) {
	id, e, pending, err := DecodeSummaryDecline(EncodeSummaryDecline(9, 33, 512))
	if err != nil || id != 9 || e != 33 || pending != 512 {
		t.Fatalf("round trip: %d %d %d %v", id, e, pending, err)
	}
	if _, _, _, err := DecodeSummaryDecline([]byte{1, 2}); err == nil {
		t.Fatal("short decline must error")
	}
}

func TestRawRequestRoundTrip(t *testing.T) {
	e, c, err := DecodeRawRequest(EncodeRawRequest(5, 17))
	if err != nil || e != 5 || c != 17 {
		t.Fatalf("round trip: %d %d %v", e, c, err)
	}
	if _, _, err := DecodeRawRequest([]byte{}); err == nil {
		t.Fatal("short raw request must error")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	id, err := DecodeHello(EncodeHello(12))
	if err != nil || id != 12 {
		t.Fatalf("round trip: %d %v", id, err)
	}
	if _, err := DecodeHello([]byte{0}); err == nil {
		t.Fatal("short hello must error")
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgLoadQuery: "load_query", MsgSummary: "summary",
		MsgRawBatch: "raw_batch", MsgType(200): "msg(200)",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", byte(ty), got, want)
		}
	}
}

// Property: frames round-trip arbitrary payloads.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(ty byte, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, MsgType(ty), payload); err != nil {
			return false
		}
		msg, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return msg.Type == MsgType(ty) && bytes.Equal(msg.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
