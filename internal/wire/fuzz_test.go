package wire

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"repro/internal/sketch"
	"repro/internal/trace"
)

// Native Go fuzzing over the wire decode surface: ReadFrame (the only
// function that sizes allocations from attacker-controlled bytes) and
// every fixed-layout Decode*. The properties under test:
//
//   - no input panics, overreads, or allocates past the frame bound;
//   - every accepted input round-trips: decode → encode → identical
//     bytes, so a fuzzer that finds an accepted-but-misread frame
//     fails loudly instead of silently corrupting an epoch.

// seedFrame writes one valid frame into the corpus.
func seedFrame(f *testing.F, t MsgType, payload []byte) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, t, payload); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
}

func FuzzReadFrame(f *testing.F) {
	seedFrame(f, MsgLoadQuery, nil)
	seedFrame(f, MsgLoadReport, EncodeLoadReport(3, 1234.5))
	seedFrame(f, MsgSummaryRequest, EncodeSummaryRequest(9))
	seedFrame(f, MsgSummaryDecline, EncodeSummaryDecline(1, 2, 3))
	seedFrame(f, MsgRawRequest, EncodeRawRequest(4, 5))
	seedFrame(f, MsgFinerRequest, EncodeFinerRequest(6, 400))
	seedFrame(f, MsgHello, EncodeHello(12))
	seedFrame(f, MsgAlert, []byte("ALERT syn_flood sid=10002"))
	// A summary frame carrying a trace-context trailer: with tracing on,
	// monitors append the block after the summary bytes (see
	// internal/trace.Context), so framed payloads with a "JT" trailer
	// are part of the production input space.
	tctx := trace.Context{MonitorID: 2, SentUnixNano: 1_000, Spans: []trace.SpanRecord{
		{Stage: trace.StageCapture, Seq: 7, Start: 500, Dur: 50},
	}}
	seedFrame(f, MsgSummary, tctx.AppendWire([]byte("summary-bytes")))
	// Summary frames carrying a sketch-digest trailer ("JS" block, see
	// internal/sketch.Digest): monitors running the sketch pass append
	// it between the summary bytes and the trace context, so both
	// trailer orders — digest alone and digest followed by trace — are
	// production frames.
	dg := sketch.Digest{
		MonitorID: 2, Epoch: 9, Offered: 20000, Shed: 12000, Kept: 8000,
		TopDst: []sketch.HeavyHitter{{Key: 0x0A00002A, Count: 9000}},
		TopSrc: []sketch.HeavyHitter{{Key: 0xC0A80001, Count: 8800}},
	}
	seedFrame(f, MsgSummary, dg.AppendWire([]byte("summary-bytes")))
	seedFrame(f, MsgSummary, tctx.AppendWire(dg.AppendWire([]byte("summary-bytes"))))
	// A digest trailer with an unknown version byte (position: after the
	// 13-byte mock summary, past the "JS" magic), which decoders must
	// skip by block length.
	futureDigest := dg.AppendWire([]byte("summary-bytes"))
	futureDigest[13+2] = 0x7f
	seedFrame(f, MsgSummary, futureDigest)
	// A header that promises far more than it delivers.
	f.Add([]byte{0x00, 0x10, 0x00, 0x00, byte(MsgSummary), 1, 2, 3})
	// A header past MaxFrameSize.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgSummary)})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(msg.Payload) > MaxFrameSize {
			t.Fatalf("accepted payload of %d bytes past MaxFrameSize", len(msg.Payload))
		}
		if len(msg.Payload) > len(data) {
			t.Fatalf("payload of %d bytes from %d input bytes: overread", len(msg.Payload), len(data))
		}
		// Round trip: re-encoding the message and re-reading it must
		// reproduce it exactly.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg.Type, msg.Payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read of accepted frame failed: %v", err)
		}
		if again.Type != msg.Type || !bytes.Equal(again.Payload, msg.Payload) {
			t.Fatalf("frame did not round-trip: %v/%d bytes vs %v/%d bytes",
				msg.Type, len(msg.Payload), again.Type, len(again.Payload))
		}
	})
}

func FuzzDecodeLoadReport(f *testing.F) {
	f.Add(EncodeLoadReport(0, 0))
	f.Add(EncodeLoadReport(41, 99031.25))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, p []byte) {
		id, load, err := DecodeLoadReport(p)
		if err != nil {
			return
		}
		if id < 0 {
			t.Fatalf("negative monitor ID %d from a uint32 field", id)
		}
		if math.IsNaN(load) {
			return // NaN payload bits need not round-trip through the FPU
		}
		if got := EncodeLoadReport(id, load); !bytes.Equal(got, p) {
			t.Fatalf("load report did not round-trip: %x vs %x", got, p)
		}
	})
}

func FuzzDecodeSummaryRequest(f *testing.F) {
	f.Add(EncodeSummaryRequest(0))
	f.Add(EncodeSummaryRequest(1 << 40))
	f.Add([]byte{9})
	f.Fuzz(func(t *testing.T, p []byte) {
		epoch, err := DecodeSummaryRequest(p)
		if err != nil {
			return
		}
		if got := EncodeSummaryRequest(epoch); !bytes.Equal(got, p) {
			t.Fatalf("summary request did not round-trip: %x vs %x", got, p)
		}
	})
}

func FuzzDecodeSummaryDecline(f *testing.F) {
	f.Add(EncodeSummaryDecline(0, 0, 0))
	f.Add(EncodeSummaryDecline(7, 1<<33, 599))
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, p []byte) {
		id, epoch, pending, err := DecodeSummaryDecline(p)
		if err != nil {
			return
		}
		if id < 0 || pending < 0 {
			t.Fatalf("negative fields from uint32s: id=%d pending=%d", id, pending)
		}
		if got := EncodeSummaryDecline(id, epoch, pending); !bytes.Equal(got, p) {
			t.Fatalf("summary decline did not round-trip: %x vs %x", got, p)
		}
	})
}

func FuzzDecodeRawRequest(f *testing.F) {
	f.Add(EncodeRawRequest(0, 0))
	f.Add(EncodeRawRequest(3, 199))
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, p []byte) {
		epoch, centroid, err := DecodeRawRequest(p)
		if err != nil {
			return
		}
		if centroid < 0 {
			t.Fatalf("negative centroid %d from a uint32 field", centroid)
		}
		if got := EncodeRawRequest(epoch, centroid); !bytes.Equal(got, p) {
			t.Fatalf("raw request did not round-trip: %x vs %x", got, p)
		}
	})
}

func FuzzDecodeFinerRequest(f *testing.F) {
	f.Add(EncodeFinerRequest(0, 0))
	f.Add(EncodeFinerRequest(11, 400))
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		epoch, k, err := DecodeFinerRequest(p)
		if err != nil {
			return
		}
		if k < 0 {
			t.Fatalf("negative k %d from a uint32 field", k)
		}
		if got := EncodeFinerRequest(epoch, k); !bytes.Equal(got, p) {
			t.Fatalf("finer request did not round-trip: %x vs %x", got, p)
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(EncodeHello(0))
	f.Add(EncodeHello(1 << 20))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		id, err := DecodeHello(p)
		if err != nil {
			return
		}
		if id < 0 {
			t.Fatalf("negative monitor ID %d from a uint32 field", id)
		}
		if got := EncodeHello(id); !bytes.Equal(got, p) {
			t.Fatalf("hello did not round-trip: %x vs %x", got, p)
		}
	})
}

// TestReadFrameBoundedAllocation pins the hardening FuzzReadFrame
// relies on: a header claiming MaxFrameSize with a short body must
// fail with an unexpected-EOF class error after allocating at most one
// chunk, not reserve the full claimed size.
func TestReadFrameBoundedAllocation(t *testing.T) {
	hdr := []byte{0x03, 0xff, 0xff, 0xff, byte(MsgSummary)} // ~64 MB claim
	input := append(hdr, make([]byte, 100)...)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := ReadFrame(bytes.NewReader(input)); err == nil {
		t.Fatal("truncated 64 MB claim must not decode")
	}
	runtime.ReadMemStats(&after)
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 4*frameAllocChunk {
		t.Fatalf("short frame with a 64 MB claim allocated %d bytes, want <= %d",
			delta, 4*frameAllocChunk)
	}
}
