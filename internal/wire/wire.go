// Package wire defines the length-prefixed binary protocol Jaal's
// monitors and controller speak over their long-lived TCP connections
// (§7): load queries and reports for the flow-assignment module, summary
// requests and uploads for the inference module, raw-batch requests for
// the feedback loop, and alert notifications.
//
// Frame format (big-endian):
//
//	uint32  payload length (excluding this prefix and the type byte)
//	byte    message type
//	[]byte  payload
//
// Payload contents are message-specific and documented per type.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MsgType discriminates protocol messages.
type MsgType byte

// Protocol message types.
const (
	// MsgLoadQuery (controller→monitor): empty payload.
	MsgLoadQuery MsgType = 1
	// MsgLoadReport (monitor→controller): uint32 monitorID, float64 load.
	MsgLoadReport MsgType = 2
	// MsgSummaryRequest (controller→monitor): uint64 epoch.
	MsgSummaryRequest MsgType = 3
	// MsgSummary (monitor→controller): summary.Marshal payload.
	MsgSummary MsgType = 4
	// MsgSummaryDecline (monitor→controller): uint32 monitorID, uint64
	// epoch, uint32 pending — sent when the buffer holds fewer than
	// n_min packets (§5.1).
	MsgSummaryDecline MsgType = 5
	// MsgRawRequest (controller→monitor): uint64 epoch, uint32 centroid.
	MsgRawRequest MsgType = 6
	// MsgRawBatch (monitor→controller): packet.EncodeBatch payload.
	MsgRawBatch MsgType = 7
	// MsgAlert (controller→operator): UTF-8 alert line.
	MsgAlert MsgType = 8
	// MsgHello (monitor→controller): uint32 monitorID; opens a session.
	MsgHello MsgType = 9
	// MsgFinerRequest (controller→monitor): uint64 epoch, uint32 k —
	// asks for a re-summarization of a retained batch at higher
	// resolution (§5.3's finer-granularity option). Answered with
	// MsgSummary, or MsgSummaryDecline when the batch expired.
	MsgFinerRequest MsgType = 10
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgLoadQuery:
		return "load_query"
	case MsgLoadReport:
		return "load_report"
	case MsgSummaryRequest:
		return "summary_request"
	case MsgSummary:
		return "summary"
	case MsgSummaryDecline:
		return "summary_decline"
	case MsgRawRequest:
		return "raw_request"
	case MsgRawBatch:
		return "raw_batch"
	case MsgAlert:
		return "alert"
	case MsgHello:
		return "hello"
	case MsgFinerRequest:
		return "finer_request"
	default:
		return fmt.Sprintf("msg(%d)", byte(t))
	}
}

// MaxFrameSize bounds a frame payload; larger frames are rejected as
// corrupt rather than allocated.
const MaxFrameSize = 64 << 20

// frameHeaderSize is the fixed per-frame overhead: the uint32 length
// prefix plus the type byte.
const frameHeaderSize = 5

// Message is one decoded frame.
type Message struct {
	Type    MsgType
	Payload []byte
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: payload of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wire: write payload: %w", err)
		}
	}
	txCounters.count(t, len(payload))
	return nil
}

// frameAllocChunk caps how much ReadFrame allocates ahead of the bytes
// actually delivered. Every legitimate frame in the deployment
// (summaries ~10 KB, raw batches ~16 KB) fits one chunk and takes the
// single-allocation fast path; a corrupt or hostile header claiming up
// to MaxFrameSize grows the buffer only as payload bytes arrive, so a
// lying length prefix costs one chunk of memory, not 64 MB
// (FuzzReadFrame pins this down).
const frameAllocChunk = 64 << 10

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // propagate io.EOF unwrapped for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	msg := &Message{Type: MsgType(hdr[4])}
	switch {
	case n == 0:
	case n <= frameAllocChunk:
		msg.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, msg.Payload); err != nil {
			return nil, fmt.Errorf("wire: read payload: %w", err)
		}
	default:
		var buf bytes.Buffer
		buf.Grow(frameAllocChunk)
		if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("wire: read payload: %w", err)
		}
		msg.Payload = buf.Bytes()
	}
	rxCounters.count(msg.Type, len(msg.Payload))
	return msg, nil
}

// EncodeLoadReport builds a MsgLoadReport payload.
func EncodeLoadReport(monitorID int, load float64) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf[0:], uint32(monitorID))
	binary.BigEndian.PutUint64(buf[4:], math.Float64bits(load))
	return buf
}

// DecodeLoadReport parses a MsgLoadReport payload.
func DecodeLoadReport(p []byte) (monitorID int, load float64, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("wire: load report of %d bytes, want 12", len(p))
	}
	return int(binary.BigEndian.Uint32(p[0:])), math.Float64frombits(binary.BigEndian.Uint64(p[4:])), nil
}

// EncodeSummaryRequest builds a MsgSummaryRequest payload.
func EncodeSummaryRequest(epoch uint64) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, epoch)
	return buf
}

// DecodeSummaryRequest parses a MsgSummaryRequest payload.
func DecodeSummaryRequest(p []byte) (epoch uint64, err error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("wire: summary request of %d bytes, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// EncodeSummaryDecline builds a MsgSummaryDecline payload.
func EncodeSummaryDecline(monitorID int, epoch uint64, pending int) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint32(buf[0:], uint32(monitorID))
	binary.BigEndian.PutUint64(buf[4:], epoch)
	binary.BigEndian.PutUint32(buf[12:], uint32(pending))
	return buf
}

// DecodeSummaryDecline parses a MsgSummaryDecline payload.
func DecodeSummaryDecline(p []byte) (monitorID int, epoch uint64, pending int, err error) {
	if len(p) != 16 {
		return 0, 0, 0, fmt.Errorf("wire: summary decline of %d bytes, want 16", len(p))
	}
	return int(binary.BigEndian.Uint32(p[0:])),
		binary.BigEndian.Uint64(p[4:]),
		int(binary.BigEndian.Uint32(p[12:])), nil
}

// EncodeRawRequest builds a MsgRawRequest payload.
func EncodeRawRequest(epoch uint64, centroid int) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint64(buf[0:], epoch)
	binary.BigEndian.PutUint32(buf[8:], uint32(centroid))
	return buf
}

// DecodeRawRequest parses a MsgRawRequest payload.
func DecodeRawRequest(p []byte) (epoch uint64, centroid int, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("wire: raw request of %d bytes, want 12", len(p))
	}
	return binary.BigEndian.Uint64(p[0:]), int(binary.BigEndian.Uint32(p[8:])), nil
}

// EncodeFinerRequest builds a MsgFinerRequest payload.
func EncodeFinerRequest(epoch uint64, k int) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint64(buf[0:], epoch)
	binary.BigEndian.PutUint32(buf[8:], uint32(k))
	return buf
}

// DecodeFinerRequest parses a MsgFinerRequest payload.
func DecodeFinerRequest(p []byte) (epoch uint64, k int, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("wire: finer request of %d bytes, want 12", len(p))
	}
	return binary.BigEndian.Uint64(p[0:]), int(binary.BigEndian.Uint32(p[8:])), nil
}

// EncodeHello builds a MsgHello payload.
func EncodeHello(monitorID int) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, uint32(monitorID))
	return buf
}

// DecodeHello parses a MsgHello payload.
func DecodeHello(p []byte) (monitorID int, err error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("wire: hello of %d bytes, want 4", len(p))
	}
	return int(binary.BigEndian.Uint32(p)), nil
}
