package core

import (
	"repro/internal/par"
	"repro/internal/sketch"
	"repro/internal/summary"
	"repro/internal/trace"
)

// MonitorDecline records a monitor that contributed no summaries to an
// epoch — either a genuine protocol decline (buffer below n_min, §5.1)
// or a transport failure that exhausted the retry budget. The epoch
// proceeds either way: partial data loss is the steady state of an
// ISP-scale deployment, not an exception.
type MonitorDecline struct {
	// MonitorID identifies the monitor.
	MonitorID int
	// Epoch is the poll's epoch number.
	Epoch uint64
	// Pending is the monitor's reported buffered-packet count, when the
	// decline came over the wire (zero for unreachable monitors).
	Pending int
	// Err is the transport error for an unreachable monitor; nil for a
	// protocol decline.
	Err error
}

// Unreachable reports whether the decline stands for a transport
// failure rather than a protocol decline.
func (d MonitorDecline) Unreachable() bool { return d.Err != nil }

// Poller is the controller's fault-tolerant per-epoch poll fan-out: it
// polls every remote monitor concurrently (each poll carrying its
// handle's retry/timeout/backoff policy), joins the arrived summaries
// in monitor order — so same inputs yield byte-identical epochs for
// every worker count — and records the monitors that contributed
// nothing as declines instead of failing the epoch.
//
// A poll in which at least one monitor was unreachable is a degraded
// epoch: it increments jaal_epoch_degraded_total and is reported via
// PollResult.Degraded, but still returns everything that arrived. That
// is the graceful-degradation contract the chaos suite pins down: lost
// monitors cost coverage, never liveness.
type Poller struct {
	// Remotes are the monitor handles, in join order.
	Remotes []*RemoteMonitor
	// Workers bounds the poll fan-out (0 = GOMAXPROCS).
	Workers int
}

// PollResult is one epoch's poll outcome.
type PollResult struct {
	// Summaries holds every summary that arrived, joined in monitor
	// order.
	Summaries []*summary.Summary
	// Digests holds the sketch digests of monitors running the sketch
	// pass, joined in monitor order (absent monitors contribute none).
	Digests []*sketch.Digest
	// Declines records the monitors that contributed no summaries,
	// protocol declines and transport failures both.
	Declines []MonitorDecline
	// Degraded reports whether at least one monitor was unreachable
	// after retries.
	Degraded bool
}

// Poll runs one epoch's summary collection. It never fails: transport
// errors degrade the epoch rather than abort it.
func (p *Poller) Poll(epoch uint64) PollResult {
	perMon := make([][]*summary.Summary, len(p.Remotes))
	pending := make([]int, len(p.Remotes))
	digests := make([]*sketch.Digest, len(p.Remotes))
	errs := make([]error, len(p.Remotes))
	par.For(len(p.Remotes), p.Workers, func(i int) {
		// The ship span covers the whole wire round trip (request, the
		// monitor's collect+encode, transfer, decode) as seen from the
		// controller; the per-stage breakdown inside it arrives with the
		// monitor's trace context.
		sp := trace.StartSpan(nil, trace.StageShip, p.Remotes[i].ID(), epoch)
		perMon[i], pending[i], digests[i], errs[i] = p.Remotes[i].Poll(epoch)
		sp.End()
	})

	var res PollResult
	for i, rm := range p.Remotes {
		switch {
		case errs[i] != nil:
			res.Declines = append(res.Declines, MonitorDecline{
				MonitorID: rm.ID(), Epoch: epoch, Err: errs[i]})
			res.Degraded = true
		case len(perMon[i]) == 0:
			res.Declines = append(res.Declines, MonitorDecline{
				MonitorID: rm.ID(), Epoch: epoch, Pending: pending[i]})
		default:
			res.Summaries = append(res.Summaries, perMon[i]...)
		}
		if digests[i] != nil {
			res.Digests = append(res.Digests, digests[i])
		}
	}
	if res.Degraded {
		cEpochDegraded.Inc()
	}
	return res
}
