package core

import (
	"repro/internal/inference"
	"repro/internal/obs"
)

// Core observability: monitor ingest/summarize activity, controller
// inference outcomes, and the live communication-overhead view. Every
// metric is a write-only side channel — nothing here feeds back into
// routing, summarization or inference, so same-seed runs are
// byte-identical with collection on or off
// (TestPipelineObsDeterminism).
var (
	// Monitor side.
	cIngestPackets = obs.NewCounter("jaal_monitor_ingest_packets_total",
		"packet headers ingested across all monitors")
	cBatchesSealed = obs.NewCounter("jaal_monitor_batches_sealed_total",
		"batches sealed by reaching the configured batch size n")
	cBatchesFlushed = obs.NewCounter("jaal_monitor_batches_flushed_total",
		"partial batches flushed by a controller poll (>= n_min pending)")
	cSummariesQueued = obs.NewCounter("jaal_monitor_summaries_total",
		"summaries produced and queued for collection")
	gPendingPackets = obs.NewIntGauge("jaal_monitor_pending_packets",
		"unsealed packets buffered at the last collected monitor")
	cRawServed = obs.NewCounter("jaal_monitor_raw_packets_served_total",
		"raw headers served to the feedback loop")
	cFinerSummaries = obs.NewCounter("jaal_monitor_finer_summaries_total",
		"finer-granularity re-summarizations served (§5.3)")

	// Sketch-assisted ingest (the AMON-style shedding pass). Shed counts
	// packets dropped before the batch slab under the watermark; the
	// sketch gauges snapshot the last collected digest.
	cShedPackets = obs.NewCounter("jaal_monitor_shed_packets_total",
		"packets shed by the sketch pass before the batch slab")
	cSketchDigests = obs.NewCounter("jaal_sketch_digests_total",
		"per-epoch sketch digests produced by monitors")
	gSketchFlows = obs.NewIntGauge("jaal_sketch_flows_last",
		"distinct-flow estimate of the last collected sketch digest")
	gSketchShedFraction = obs.NewGauge("jaal_sketch_shed_fraction_last",
		"shed fraction (shed/offered) of the last collected sketch digest")

	// Controller side.
	cEpochs = obs.NewCounter("jaal_controller_epochs_total",
		"inference rounds executed")
	hEpochSeconds = obs.NewHistogram("jaal_controller_epoch_seconds",
		"wall time of one inference round (aggregate + all questions)", obs.DurationBuckets())
	cQuestions = obs.NewCounter("jaal_controller_questions_total",
		"question evaluations across all epochs")
	cAlerts = obs.NewCounter("jaal_controller_alerts_total",
		"alerts raised")
	cSimMatches = obs.NewCounter("jaal_controller_similarity_matches_total",
		"single-stage similarity matches that alerted (τ_c and τ_d met)")
	cFeedbackPulls = obs.NewCounter("jaal_controller_feedback_raw_packets_total",
		"deduplicated raw headers pulled by the feedback loop")
	cIndexCandidates = obs.NewCounter("jaal_controller_index_candidates_total",
		"question evaluations that passed the candidate index and ran the exact estimator")
	cIndexPruned = obs.NewCounter("jaal_controller_index_pruned_total",
		"question evaluations skipped because the index proved the match set empty")
	cIndexRebuilds = obs.NewCounter("jaal_controller_index_rebuilds_total",
		"question-index rebuilds forced by adaptive τ_d2 outgrowing the indexed bound")
	cVerdictAlert = obs.NewCounter("jaal_controller_feedback_verdicts_total{verdict=\"alert\"}",
		"feedback-loop verdicts by case (§5.3)")
	cVerdictClear = obs.NewCounter("jaal_controller_feedback_verdicts_total{verdict=\"clear\"}",
		"feedback-loop verdicts by case (§5.3)")
	cVerdictUncertain = obs.NewCounter("jaal_controller_feedback_verdicts_total{verdict=\"uncertain\"}",
		"feedback-loop verdicts by case (§5.3)")
	cVerdictAnomalous = obs.NewCounter("jaal_controller_feedback_verdicts_total{verdict=\"anomalous\"}",
		"feedback-loop verdicts by case (§5.3)")
	cVolumetricVerdicts = obs.NewCounter("jaal_controller_volumetric_verdicts_total",
		"volumetric verdicts issued from merged sketch digests (no raw fetch)")

	// Communication accounting — the live Fig. 12 view. The gauge is
	// (summary + feedback bytes) / equivalent raw-header bytes, i.e.
	// Stats.OverheadFraction updated every epoch; reading ~0.35 at the
	// paper's operating point means the deployment matches §8.
	cSummaryElements = obs.NewCounter("jaal_controller_summary_elements_total",
		"summary elements received (4 wire bytes each)")
	cPacketsSummarized = obs.NewCounter("jaal_controller_packets_summarized_total",
		"raw packets the received summaries stand for")
	gCompression = obs.NewGauge("jaal_controller_compression_ratio",
		"cumulative (summary+feedback bytes)/raw-equivalent bytes, the Fig. 12 overhead")

	// Wire transport fault tolerance. Reconnects count successful
	// re-handshakes after a lost connection; deadline misses count
	// exchanges that died on an armed I/O deadline; degraded epochs
	// count inference rounds that proceeded without at least one
	// monitor's summaries; serve errors count monitor-side sessions
	// that ended on anything but a clean EOF.
	cReconnects = obs.NewCounter("jaal_transport_reconnects_total",
		"successful reconnect+rehandshake cycles after a lost monitor connection")
	cDeadlineMisses = obs.NewCounter("jaal_transport_deadline_misses_total",
		"wire exchanges aborted by an I/O deadline")
	cServeErrors = obs.NewCounter("jaal_transport_serve_errors_total",
		"monitor-side serve sessions ended by a non-EOF error")
	cEpochDegraded = obs.NewCounter("jaal_epoch_degraded_total",
		"epochs processed without summaries from at least one unreachable monitor")

	// Alert sink delivery (the MsgAlert consumer).
	cAlertsDelivered = obs.NewCounter("jaal_alerts_delivered_total",
		"alert frames received and consumed by an AlertSink")

	// Pipeline epoch stages.
	hCollectSeconds = obs.NewHistogram("jaal_pipeline_collect_seconds",
		"wall time of one monitor's summary collection during RunEpoch", obs.DurationBuckets())
	hRunEpochSeconds = obs.NewHistogram("jaal_pipeline_epoch_seconds",
		"wall time of one full RunEpoch (collect fan-out + inference)", obs.DurationBuckets())
	hRawFetchSeconds = obs.NewHistogram("jaal_feedback_fetch_seconds",
		"wall time of one feedback-loop raw-packet fetch (memo misses only)", obs.DurationBuckets())
)

// countVerdict tallies one feedback verdict per §5.3 case.
func countVerdict(v inference.Verdict) {
	switch v {
	case inference.VerdictAlert:
		cVerdictAlert.Inc()
	case inference.VerdictClear:
		cVerdictClear.Inc()
	case inference.VerdictUncertain:
		cVerdictUncertain.Inc()
	default:
		cVerdictAnomalous.Inc()
	}
}
