package core

import "repro/internal/sketch"

// The volumetric path is the sketch digest's consumer: every epoch the
// controller merges the digests that rode the summary frames and issues
// cheap volumetric verdicts — "address X is drawing share S of the
// epoch's offered traffic" — without touching summaries, questions or
// raw fetches. It answers the class of question a count-min sketch is
// actually good at (pre-declared single-dimension aggregates, §2) and
// keeps working even when the monitors shed most of their packets: the
// digest counts are taken before shedding, so the shares stay honest
// under overload.

// Default volumetric verdict gates: an address must draw at least this
// share of the merged offered traffic, in an epoch with at least this
// many offered packets, before a verdict is issued.
const (
	defaultVolumetricShare   = 0.10
	defaultVolumetricMinPkts = 1000
)

// VolumetricVerdict names one address drawing an outsized share of an
// epoch's offered traffic, per the merged heavy-hitter estimates.
type VolumetricVerdict struct {
	// Dimension is "dst" (traffic sink — flood/brute-force victim) or
	// "src" (traffic source — scanner, exfiltration origin).
	Dimension string
	// Addr is the IPv4 address.
	Addr uint32
	// Packets is the merged count-min estimate of the address's epoch
	// traffic (summed across monitors; flows are partitioned across
	// monitors, so the sum is itself a count-min-style overestimate).
	Packets uint64
	// Share is Packets over the merged offered total.
	Share float64
}

// VolumetricReport is one epoch's merged digest view.
type VolumetricReport struct {
	Epoch    uint64
	Monitors int
	// Offered/Shed/Kept sum the per-monitor accounting; Offered is the
	// pre-shed truth the shares are computed against.
	Offered, Shed, Kept uint64
	// Flows is the merged distinct-flow estimate (HLL register max, so
	// overlapping flows are not double-counted).
	Flows uint64
	// Verdicts lists the addresses over the share gate, destination
	// dimension first, heaviest first.
	Verdicts []VolumetricVerdict
}

// ShedFraction returns the merged shed/offered ratio.
func (r *VolumetricReport) ShedFraction() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// MergeDigests folds per-monitor sketch digests into one epoch report,
// issuing verdicts for addresses whose merged estimate reaches
// shareGate of the merged offered traffic (0 selects the default gate).
// Nil when no digests arrived. Pure: metrics and controller state are
// the caller's business.
func MergeDigests(epoch uint64, ds []*sketch.Digest, shareGate float64) *VolumetricReport {
	if len(ds) == 0 {
		return nil
	}
	if shareGate <= 0 {
		shareGate = defaultVolumetricShare
	}
	rep := &VolumetricReport{Epoch: epoch, Monitors: len(ds)}
	flows := sketch.NewHLL()
	dst := make(map[uint32]uint64)
	src := make(map[uint32]uint64)
	for _, d := range ds {
		if d == nil {
			continue
		}
		rep.Offered += d.Offered
		rep.Shed += d.Shed
		rep.Kept += d.Kept
		if d.Flows != nil {
			flows.Merge(d.Flows)
		}
		for _, hh := range d.TopDst {
			dst[hh.Key] += hh.Count
		}
		for _, hh := range d.TopSrc {
			src[hh.Key] += hh.Count
		}
	}
	rep.Flows = flows.Estimate()
	if rep.Offered < defaultVolumetricMinPkts {
		return rep
	}
	rep.Verdicts = append(rep.Verdicts,
		verdictsFor("dst", dst, rep.Offered, shareGate)...)
	rep.Verdicts = append(rep.Verdicts,
		verdictsFor("src", src, rep.Offered, shareGate)...)
	return rep
}

// verdictsFor gates and orders one dimension's merged estimates:
// packets descending, address ascending on ties — deterministic
// regardless of map iteration.
func verdictsFor(dim string, merged map[uint32]uint64, offered uint64, shareGate float64) []VolumetricVerdict {
	out := make([]VolumetricVerdict, 0, len(merged))
	//jaalvet:ignore mapiter — the slice is fully sorted below; iteration order cannot reach the output
	for addr, pkts := range merged {
		share := float64(pkts) / float64(offered)
		if share >= shareGate {
			out = append(out, VolumetricVerdict{Dimension: dim, Addr: addr, Packets: pkts, Share: share})
		}
	}
	// Insertion sort: the list is ≤ TopK×monitors entries and staying
	// off sort.Slice avoids boxing the slice per epoch.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Packets > b.Packets || (a.Packets == b.Packets && a.Addr <= b.Addr) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// ObserveDigests merges one epoch's sketch digests into a volumetric
// report, records it as the controller's latest, and counts the issued
// verdicts. Call it alongside ProcessEpoch with the digests the poll
// returned; a sketchless deployment passes none and nothing changes.
func (c *Controller) ObserveDigests(epoch uint64, ds []*sketch.Digest) *VolumetricReport {
	rep := MergeDigests(epoch, ds, 0)
	if rep == nil {
		return nil
	}
	cVolumetricVerdicts.Add(int64(len(rep.Verdicts)))
	c.mu.Lock()
	c.lastVolumetric = rep
	c.mu.Unlock()
	return rep
}

// Volumetric returns the latest merged digest report, or nil before the
// first digest-carrying epoch.
func (c *Controller) Volumetric() *VolumetricReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastVolumetric
}
