// Package core is Jaal's public API: it wires the summarization module
// (monitors), the analysis-and-inference module (controller), and the
// flow-assignment module into a deployable system, both in-process (for
// experiments and tests) and over TCP using the wire protocol (§7).
package core

import (
	"fmt"
	"sync"

	"repro/internal/packet"
	"repro/internal/sketch"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Monitor is one in-network monitoring point: it ingests the packet
// headers of flows assigned to it, buffers them into batches, summarizes
// sealed batches, and retains raw packets for one epoch so the
// controller's feedback loop can fetch them (§4, §7).
//
// Monitor is safe for concurrent use: packet ingestion and controller
// requests may arrive on different goroutines. Two locks split the
// state so the heavy compute never blocks ingestion: mu guards the
// cheap bookkeeping (buffer, ready queue, load counter) and is held
// only for O(1) work, while szrMu serializes the summarizer (which owns
// the k-means RNG). A batch is snapshotted under mu, summarized holding
// only szrMu — so Ingest on other goroutines proceeds during the
// SVD+k-means — and the result is published back under mu.
type Monitor struct {
	id int

	// mu guards buf, ready, load and ing. The SVD+k-means compute is
	// never performed while holding it.
	mu    sync.Mutex
	buf   *summary.Buffer
	ready []*summary.Summary
	// load tracks packets ingested in the current load window,
	// answering the flow-assignment module's load queries.
	load int
	// ing is the optional sketch pass in front of the batch slab
	// (AMON-style overload shedding + volumetric digest). Nil when the
	// sketch is off, in which case ingest behaves byte-identically to a
	// sketchless monitor.
	ing *sketch.Ingest

	// szrMu serializes use of the summarizer, whose RNG and arena make
	// it single-goroutine.
	szrMu      sync.Mutex
	summarizer *summary.Summarizer
}

// NewMonitor builds a monitor with the given summarization config and
// no sketch pass.
func NewMonitor(id int, cfg summary.Config) (*Monitor, error) {
	return NewMonitorSketch(id, cfg, sketch.Config{})
}

// NewMonitorSketch builds a monitor with a sketch pass in front of the
// batch slab. A disabled sketch config yields a plain monitor.
func NewMonitorSketch(id int, cfg summary.Config, scfg sketch.Config) (*Monitor, error) {
	szr, err := summary.NewSummarizer(cfg)
	if err != nil {
		return nil, err
	}
	ing, err := sketch.NewIngest(scfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		id:         id,
		buf:        summary.NewBuffer(cfg.BatchSize),
		summarizer: szr,
		ing:        ing,
	}, nil
}

// ID returns the monitor's identity.
func (m *Monitor) ID() int { return m.id }

// Ingest feeds one packet header through the monitor. When the header
// seals a batch, the batch is summarized immediately and the summary is
// queued for the next controller poll. The summarization itself runs
// outside mu, so concurrent Ingest calls keep buffering while one
// goroutine computes.
func (m *Monitor) Ingest(h packet.Header) error {
	cIngestPackets.Inc()
	m.mu.Lock()
	m.load++
	if m.ing != nil && !m.ing.Observe(h.SrcIP, h.DstIP, h.Flow().FastHash()) {
		m.buf.NoteShed(1)
		m.mu.Unlock()
		cShedPackets.Inc()
		return nil
	}
	batch, ok := m.buf.Add(h)
	m.mu.Unlock()
	if !ok {
		return nil
	}
	cBatchesSealed.Inc()
	return m.summarize(batch)
}

// IngestBatch feeds many headers.
func (m *Monitor) IngestBatch(hs []packet.Header) error {
	for _, h := range hs {
		if err := m.Ingest(h); err != nil {
			return err
		}
	}
	return nil
}

// summarize computes the summary of a sealed batch lock-free with
// respect to mu (only szrMu is held during the SVD+k-means), then
// publishes the result — raw-packet retention plus the ready queue —
// under mu. The sealed batch is already snapshotted out of the buffer,
// so concurrent Ingest/Collect operations cannot observe it half-built.
func (m *Monitor) summarize(batch *summary.Batch) error {
	m.szrMu.Lock()
	s, err := m.summarizer.Summarize(batch.Headers, m.id, batch.Epoch)
	m.szrMu.Unlock()
	if err != nil {
		return fmt.Errorf("monitor %d: %w", m.id, err)
	}
	m.mu.Lock()
	m.buf.Retain(batch, s)
	m.ready = append(m.ready, s)
	m.mu.Unlock()
	cSummariesQueued.Inc()
	// The batch's capture window was stamped by the buffer as it filled
	// (zero timestamps when tracing was off); record it as a span now
	// that the batch reached a summary, so the timeline shows fill time
	// next to compute time.
	if batch.FirstNano > 0 && batch.SealedNano >= batch.FirstNano {
		trace.RecordSpan(trace.StageCapture, m.id, batch.Epoch,
			batch.FirstNano, batch.SealedNano-batch.FirstNano)
	}
	return nil
}

// CollectSummaries returns and clears the queued summaries. When the
// buffer holds at least MinBatch unsealed packets, they are flushed and
// summarized too (the controller-initiated poll of §5.1); below MinBatch
// the monitor declines to summarize the partial batch and reports the
// pending count. The flush summarization runs outside mu like every
// other summarization, so a poll does not stall ingestion.
func (m *Monitor) CollectSummaries() (ss []*summary.Summary, pending int, err error) {
	minBatch := m.summarizer.Config().MinBatch
	m.mu.Lock()
	var batch *summary.Batch
	if m.buf.Pending() >= minBatch && m.buf.Pending() > 0 {
		batch = m.buf.Flush()
	}
	m.mu.Unlock()
	if batch != nil {
		cBatchesFlushed.Inc()
		if err := m.summarize(batch); err != nil {
			m.mu.Lock()
			pending = m.buf.Pending()
			m.mu.Unlock()
			return nil, pending, err
		}
	}
	m.mu.Lock()
	ss = m.ready
	m.ready = nil
	pending = m.buf.Pending()
	m.mu.Unlock()
	gPendingPackets.Set(int64(pending))
	return ss, pending, nil
}

// RawPackets serves the feedback loop: the raw headers assigned to the
// given centroid in the given epoch, or nil after expiry.
func (m *Monitor) RawPackets(epoch uint64, centroid int) []packet.Header {
	m.mu.Lock()
	hs := m.buf.RawPackets(epoch, centroid)
	m.mu.Unlock()
	cRawServed.Add(int64(len(hs)))
	return hs
}

// FinerSummary re-summarizes a retained batch at a higher resolution —
// the "finer granularity summaries" option of the feedback loop (§5.3),
// cheaper than shipping raw packets when the controller only needs more
// centroids, not exact bytes. It returns nil when the batch has expired
// or k is not an improvement over the original summary.
//
// Only the raw-batch snapshot happens under mu; the re-summarization
// itself runs lock-free on a throwaway summarizer (it must not consume
// the main summarizer's RNG), so a feedback-loop refinement no longer
// blocks Ingest for the duration of an SVD+k-means run.
func (m *Monitor) FinerSummary(epoch uint64, k int) (*summary.Summary, error) {
	cfg := m.summarizer.Config()
	if k <= cfg.Centroids {
		return nil, fmt.Errorf("monitor %d: finer summary needs k > %d, got %d", m.id, cfg.Centroids, k)
	}
	m.mu.Lock()
	headers := m.buf.RawBatch(epoch)
	m.mu.Unlock()
	if headers == nil {
		return nil, nil
	}
	cfg.Centroids = k
	cfg.BatchSize = len(headers)
	cfg.MinBatch = 0
	szr, err := summary.NewSummarizer(cfg)
	if err != nil {
		return nil, err
	}
	fs, err := szr.Summarize(headers, m.id, epoch)
	if err == nil && fs != nil {
		cFinerSummaries.Inc()
	}
	return fs, err
}

// SketchDigest snapshots the sketch pass into a wire-ready digest for
// the given controller epoch, or nil when the sketch is off. Called
// once per controller poll (alongside CollectSummaries), so the
// snapshot copies are off the per-packet path.
func (m *Monitor) SketchDigest(epoch uint64) *sketch.Digest {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ing == nil {
		return nil
	}
	d := m.ing.Digest(m.id, epoch)
	cSketchDigests.Inc()
	gSketchFlows.Set(int64(d.FlowEstimate()))
	if d.Offered > 0 {
		gSketchShedFraction.Set(float64(d.Shed) / float64(d.Offered))
	}
	return d
}

// AdvanceEpoch rolls the monitor to the next epoch, expiring old raw
// packet retention and resetting the per-epoch sketches.
func (m *Monitor) AdvanceEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ing != nil {
		m.ing.Reset()
	}
	return m.buf.AdvanceEpoch()
}

// LoadAndReset returns the packets ingested since the last call — the
// load report the flow-assignment module polls every P seconds.
func (m *Monitor) LoadAndReset() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.load
	m.load = 0
	return l
}
