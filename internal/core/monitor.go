// Package core is Jaal's public API: it wires the summarization module
// (monitors), the analysis-and-inference module (controller), and the
// flow-assignment module into a deployable system, both in-process (for
// experiments and tests) and over TCP using the wire protocol (§7).
package core

import (
	"fmt"
	"sync"

	"repro/internal/packet"
	"repro/internal/summary"
)

// Monitor is one in-network monitoring point: it ingests the packet
// headers of flows assigned to it, buffers them into batches, summarizes
// sealed batches, and retains raw packets for one epoch so the
// controller's feedback loop can fetch them (§4, §7).
//
// Monitor is safe for concurrent use: packet ingestion and controller
// requests may arrive on different goroutines.
type Monitor struct {
	id int

	mu         sync.Mutex
	buf        *summary.Buffer
	summarizer *summary.Summarizer
	// ready holds summaries of sealed batches not yet shipped.
	ready []*summary.Summary
	// load tracks packets ingested in the current load window,
	// answering the flow-assignment module's load queries.
	load int
}

// NewMonitor builds a monitor with the given summarization config.
func NewMonitor(id int, cfg summary.Config) (*Monitor, error) {
	szr, err := summary.NewSummarizer(cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		id:         id,
		buf:        summary.NewBuffer(cfg.BatchSize),
		summarizer: szr,
	}, nil
}

// ID returns the monitor's identity.
func (m *Monitor) ID() int { return m.id }

// Ingest feeds one packet header through the monitor. When the header
// seals a batch, the batch is summarized immediately and the summary is
// queued for the next controller poll.
func (m *Monitor) Ingest(h packet.Header) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.load++
	batch, ok := m.buf.Add(h)
	if !ok {
		return nil
	}
	return m.summarizeLocked(batch)
}

// IngestBatch feeds many headers.
func (m *Monitor) IngestBatch(hs []packet.Header) error {
	for _, h := range hs {
		if err := m.Ingest(h); err != nil {
			return err
		}
	}
	return nil
}

// summarizeLocked summarizes a sealed batch and retains its raw packets.
// Callers hold m.mu.
func (m *Monitor) summarizeLocked(batch *summary.Batch) error {
	s, err := m.summarizer.Summarize(batch.Headers, m.id, batch.Epoch)
	if err != nil {
		return fmt.Errorf("monitor %d: %w", m.id, err)
	}
	m.buf.Retain(batch, s)
	m.ready = append(m.ready, s)
	return nil
}

// CollectSummaries returns and clears the queued summaries. When the
// buffer holds at least MinBatch unsealed packets, they are flushed and
// summarized too (the controller-initiated poll of §5.1); below MinBatch
// the monitor declines to summarize the partial batch and reports the
// pending count.
func (m *Monitor) CollectSummaries() (ss []*summary.Summary, pending int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.buf.Pending() >= m.summarizer.Config().MinBatch && m.buf.Pending() > 0 {
		batch := m.buf.Flush()
		if err := m.summarizeLocked(batch); err != nil {
			return nil, m.buf.Pending(), err
		}
	}
	ss = m.ready
	m.ready = nil
	return ss, m.buf.Pending(), nil
}

// RawPackets serves the feedback loop: the raw headers assigned to the
// given centroid in the given epoch, or nil after expiry.
func (m *Monitor) RawPackets(epoch uint64, centroid int) []packet.Header {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.RawPackets(epoch, centroid)
}

// FinerSummary re-summarizes a retained batch at a higher resolution —
// the "finer granularity summaries" option of the feedback loop (§5.3),
// cheaper than shipping raw packets when the controller only needs more
// centroids, not exact bytes. It returns nil when the batch has expired
// or k is not an improvement over the original summary.
func (m *Monitor) FinerSummary(epoch uint64, k int) (*summary.Summary, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	headers := m.buf.RawBatch(epoch)
	if headers == nil {
		return nil, nil
	}
	cfg := m.summarizer.Config()
	if k <= cfg.Centroids {
		return nil, fmt.Errorf("monitor %d: finer summary needs k > %d, got %d", m.id, cfg.Centroids, k)
	}
	cfg.Centroids = k
	cfg.BatchSize = len(headers)
	cfg.MinBatch = 0
	szr, err := summary.NewSummarizer(cfg)
	if err != nil {
		return nil, err
	}
	return szr.Summarize(headers, m.id, epoch)
}

// AdvanceEpoch rolls the monitor to the next epoch, expiring old raw
// packet retention.
func (m *Monitor) AdvanceEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.AdvanceEpoch()
}

// LoadAndReset returns the packets ingested since the last call — the
// load report the flow-assignment module polls every P seconds.
func (m *Monitor) LoadAndReset() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.load
	m.load = 0
	return l
}
