package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/flowassign"
	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/par"
	"repro/internal/sketch"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Pipeline is the in-process deployment of Jaal used by experiments and
// examples: M monitors, one controller, and a flow-assignment module
// routing each flow to exactly one monitor in its monitor group.
type Pipeline struct {
	Monitors   []*Monitor
	Controller *Controller
	Assigner   *flowassign.Assigner

	// workers bounds the concurrency of the per-monitor fan-out in
	// RunEpoch (0 = GOMAXPROCS).
	workers int
	// flowToMonitor caches placements so subsequent packets of a flow
	// go to the same monitor.
	flowToMonitor map[packet.FlowKey]int
	// monitorIndex maps monitor IDs to slice indices.
	monitorIndex map[int]int
	// epochLog receives one structured record per epoch per component;
	// nil disables logging (the EpochLogger is nil-safe).
	epochLog *obs.EpochLogger
}

// PipelineConfig assembles a pipeline.
type PipelineConfig struct {
	// NumMonitors is M.
	NumMonitors int
	// Summary is each monitor's summarization config.
	Summary summary.Config
	// Sketch arms the per-monitor sketch pass (heavy-hitter shedding +
	// volumetric digests). The zero value keeps it off, in which case
	// the pipeline is byte-identical to a sketchless build.
	Sketch sketch.Config
	// Controller configures the inference engine.
	Controller ControllerConfig
	// Groups optionally pre-defines flow groups. When nil, a single
	// group containing every monitor is used (all flows can be seen by
	// any monitor), which suits single-site experiments.
	Groups *flowassign.GroupTable
	// Workers bounds how many monitors RunEpoch polls concurrently;
	// zero selects GOMAXPROCS, 1 forces the sequential poll. Summaries
	// are joined in monitor order, so every worker count yields
	// identical epochs for the same seed and traffic.
	Workers int
	// EpochLog, when non-nil, receives the structured JSON-lines epoch
	// log: one record per epoch per monitor plus one for the
	// controller, carrying stage timings and queue depths. Logging is
	// an output-only side channel — alerts and stats are identical
	// with or without it.
	EpochLog io.Writer
}

// NewPipeline builds and wires the system.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.NumMonitors < 1 {
		return nil, fmt.Errorf("core: need at least one monitor")
	}
	ctrl, err := NewController(cfg.Controller)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		Controller:    ctrl,
		workers:       cfg.Workers,
		flowToMonitor: make(map[packet.FlowKey]int),
		monitorIndex:  make(map[int]int),
		epochLog:      obs.NewEpochLogger(cfg.EpochLog),
	}
	var allIDs []flowassign.MonitorID
	for i := 0; i < cfg.NumMonitors; i++ {
		mcfg := cfg.Summary
		mcfg.Seed = cfg.Summary.Seed + int64(i) // decorrelate k-means seeds
		m, err := NewMonitorSketch(i, mcfg, cfg.Sketch)
		if err != nil {
			return nil, err
		}
		p.Monitors = append(p.Monitors, m)
		p.monitorIndex[i] = i
		ctrl.RegisterSource(i, m)
		allIDs = append(allIDs, flowassign.MonitorID(i))
	}
	groups := cfg.Groups
	if groups == nil {
		groups = flowassign.NewGroupTable()
		if err := groups.Define("all", allIDs); err != nil {
			return nil, err
		}
	}
	p.Assigner = flowassign.NewAssigner(flowassign.NewGreedy(), groups)
	return p, nil
}

// groupOf maps a packet to its flow group. The default single-group
// deployment uses "all"; topology-driven deployments override by
// pre-defining groups keyed on prefix pairs.
func (p *Pipeline) groupOf(h *packet.Header) flowassign.GroupKey {
	if _, ok := p.Assigner.Table.MonitorGroup("all"); ok {
		return "all"
	}
	g := h.PrefixGroup()
	return flowassign.GroupKey(fmt.Sprintf("%d>%d", g.SrcPrefix, g.DstPrefix)) //jaal:alloc-ok runs once per new flow, not per packet; the flow table memoizes the assignment
}

// Ingest routes one packet to its flow's monitor, assigning new flows
// greedily (§6).
func (p *Pipeline) Ingest(h packet.Header) error {
	key := h.Flow()
	idx, ok := p.flowToMonitor[key]
	if !ok {
		mid, err := p.Assigner.Assign(flowassign.FlowID(key.FastHash()), p.groupOf(&h), 1)
		if err != nil {
			return err
		}
		idx = p.monitorIndex[int(mid)]
		p.flowToMonitor[key] = idx
	}
	return p.Monitors[idx].Ingest(h)
}

// IngestBatch routes many packets.
func (p *Pipeline) IngestBatch(hs []packet.Header) error {
	for _, h := range hs {
		if err := p.Ingest(h); err != nil {
			return err
		}
	}
	return nil
}

// RunEpoch polls every monitor for summaries, advances their epochs, and
// runs one inference round, returning the raised alerts. It is the
// 2-second controller tick of §7 condensed into one call.
//
// The monitor polls — each of which may summarize a flushed batch —
// fan out across a bounded worker pool (PipelineConfig.Workers), the
// epoch's dominant compute. The per-monitor results are joined in
// monitor index order before inference, so the aggregate (and with it
// every alert and figure) is identical for any worker count.
func (p *Pipeline) RunEpoch() ([]*inference.Alert, error) {
	epoch := p.Controller.Epoch()
	epochSpan := trace.StartSpan(hRunEpochSeconds, trace.StageEpoch, trace.ControllerProc, epoch)
	// Epoch-log timings force the span timer even with metrics and
	// tracing both off; they never influence the epoch itself.
	timed := p.epochLog != nil

	perMon := make([][]*summary.Summary, len(p.Monitors))
	pending := make([]int, len(p.Monitors))
	digests := make([]*sketch.Digest, len(p.Monitors))
	collectDur := make([]time.Duration, len(p.Monitors))
	errs := make([]error, len(p.Monitors))
	par.For(len(p.Monitors), p.workers, func(i int) {
		sp := trace.StartSpanWhen(timed, hCollectSeconds, trace.StageCollect, p.Monitors[i].ID(), epoch)
		perMon[i], pending[i], errs[i] = p.Monitors[i].CollectSummaries()
		digests[i] = p.Monitors[i].SketchDigest(epoch)
		collectDur[i] = sp.End()
	})
	total := 0
	for i, ss := range perMon {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(ss)
	}
	all := make([]*summary.Summary, 0, total)
	for _, ss := range perMon {
		all = append(all, ss...)
	}
	// In-process deployment: no wire, so the spans each monitor staged
	// (capture, summarize) join the epoch directly, stamped on the same
	// clock — no offset normalization needed.
	for _, m := range p.Monitors {
		trace.AdoptMonitorSpans(epoch, m.ID())
	}

	// Merge the epoch's sketch digests (joined in monitor order) into
	// the volumetric report before inference. The report is a read-only
	// side channel: alerts are identical with the sketch on or off as
	// long as nothing was shed.
	epochDigests := make([]*sketch.Digest, 0, len(digests))
	for _, d := range digests {
		if d != nil {
			epochDigests = append(epochDigests, d)
		}
	}
	p.Controller.ObserveDigests(epoch, epochDigests)

	var inferStart time.Time
	if timed {
		inferStart = time.Now() //jaalvet:ignore detrand — stage timing feeds only metrics/epoch log (gated by timed); alerts and stats never depend on it
	}
	alerts, err := p.Controller.ProcessEpoch(all)
	if err != nil {
		return nil, err
	}
	for _, m := range p.Monitors {
		m.AdvanceEpoch()
	}

	if p.epochLog != nil {
		for i, m := range p.Monitors {
			p.epochLog.Log("monitor", epoch,
				obs.KV{K: "id", V: m.ID()},
				obs.KV{K: "summaries", V: len(perMon[i])},
				obs.KV{K: "pending", V: pending[i]},
				obs.KV{K: "collect_ms", V: collectDur[i]})
		}
		st := p.Controller.Stats()
		p.epochLog.Log("controller", epoch,
			obs.KV{K: "summaries", V: len(all)},
			obs.KV{K: "alerts", V: len(alerts)},
			obs.KV{K: "infer_ms", V: time.Since(inferStart)}, //jaalvet:ignore detrand — inference timing is epoch-log-only output, never an input
			obs.KV{K: "overhead_fraction", V: st.OverheadFraction()})
	}
	epochSpan.End()
	trace.FinishEpoch(epoch, len(alerts))
	return alerts, nil
}
