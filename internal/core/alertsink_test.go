package core

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/inference"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/wire"
)

// TestAlertWriterDeliversThroughFaults runs the controller→sink alert
// path end to end: an AlertSink behind a TCP listener, an AlertWriter
// whose first connection resets mid-send, and the delivery counter.
func TestAlertWriterDeliversThroughFaults(t *testing.T) {
	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false); obs.ResetAll() }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var mu sync.Mutex
	var got []string
	sink := &AlertSink{Handler: func(line string) {
		mu.Lock()
		got = append(got, line)
		mu.Unlock()
	}}
	go sink.ListenAndServe(ln)

	addr := ln.Addr().String()
	// Connection 0 resets on its first write; the retry redials and
	// connection 1 is clean.
	dial := faultnet.Dialer(
		func() (net.Conn, error) { return net.Dial("tcp", addr) },
		func(conn int) *faultnet.Plan {
			if conn == 0 {
				return faultnet.NewPlan(
					faultnet.Fault{Op: faultnet.OpWrite, Index: 0, Kind: faultnet.KindReset})
			}
			return nil
		},
	)
	w := NewAlertWriter(dial, RetryConfig{
		Timeout: 2 * time.Second, Attempts: 3, Sleep: func(time.Duration) {},
	})
	defer w.Close()

	before := cAlertsDelivered.Value()
	alerts := []*inference.Alert{
		{Attack: rules.AttackSYNFlood, SID: 10001, Epoch: 3, MatchedPackets: 1200, Msg: "SYN flood"},
		{Attack: rules.AttackPortScan, SID: 10003, Epoch: 4, MatchedPackets: 88, Msg: "Port scan", Distributed: true},
	}
	for _, a := range alerts {
		if err := w.Send(a); err != nil {
			t.Fatalf("send: %v", err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(alerts) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink received %d of %d alerts", n, len(alerts))
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, a := range alerts {
		if got[i] != a.String() {
			t.Fatalf("alert %d arrived as %q, want %q", i, got[i], a.String())
		}
	}
	if d := cAlertsDelivered.Value() - before; d != int64(len(alerts)) {
		t.Fatalf("jaal_alerts_delivered_total advanced by %d, want %d", d, len(alerts))
	}
}

// TestAlertSinkRejectsNonAlertFrames pins the fail-closed behaviour: a
// sink fed any frame type other than MsgAlert drops the session with a
// protocol error instead of ignoring it.
func TestAlertSinkRejectsNonAlertFrames(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	sink := &AlertSink{}
	errCh := make(chan error, 1)
	go func() { errCh <- sink.Serve(server) }()
	if err := wire.WriteFrame(client, wire.MsgHello, wire.EncodeHello(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("sink accepted a non-alert frame")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sink did not reject the frame")
	}
}
