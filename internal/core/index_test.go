package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/adapt"
	"repro/internal/inference"
	"repro/internal/rules"
	"repro/internal/trafficgen"
)

// runIndexWorkload drives five epochs of seeded mixed traffic through a
// pipeline and returns the alert trace, stats, and final feedback
// configs. disable toggles the question index; everything else is held
// fixed so the two settings must be byte-identical.
func runIndexWorkload(t *testing.T, workers int, disable bool, useFeedback bool, ac *adapt.Config) (string, Stats, map[rules.AttackID]inference.FeedbackConfig) {
	t.Helper()
	qs := testQuestions(t, 2500)
	cc := ControllerConfig{
		Env:          testEnv(),
		Questions:    qs,
		Workers:      workers,
		DisableIndex: disable,
	}
	if useFeedback {
		cc.Feedback = adaptFeedbackConfigs(qs)
		cc.UseFeedback = true
		cc.Adapt = ac
	}
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 4,
		Summary:     smallSummaryConfig(),
		Controller:  cc,
		Workers:     workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(11))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 11, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 11})
	var trace string
	for round := 0; round < 5; round++ {
		for _, lp := range mix.Batch(2500) {
			if err := p.Ingest(lp.Header); err != nil {
				t.Fatal(err)
			}
		}
		alerts, err := p.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		trace += fmt.Sprintf("round %d: %d alerts\n", round, len(alerts))
		for _, a := range alerts {
			trace += a.String() + "\n"
		}
	}
	return trace, p.Controller.Stats(), p.Controller.FeedbackConfigs()
}

// TestControllerIndexByteIdentical is the ISSUE 6 acceptance property
// at the controller level: with the index on (the default) the alert
// stream and the accounting are byte-identical to the linear sweep,
// sequentially and fanned out.
func TestControllerIndexByteIdentical(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		linTrace, linStats, _ := runIndexWorkload(t, workers, true, false, nil)
		ixTrace, ixStats, _ := runIndexWorkload(t, workers, false, false, nil)
		if linTrace != ixTrace {
			t.Errorf("workers=%d: alert traces differ with index on vs off:\n--- linear ---\n%s--- indexed ---\n%s",
				workers, linTrace, ixTrace)
		}
		if linStats != ixStats {
			t.Errorf("workers=%d: stats differ: linear %+v, indexed %+v", workers, linStats, ixStats)
		}
		if linStats.AlertsRaised == 0 {
			t.Fatal("workload raised no alerts — equivalence would be vacuous")
		}
	}
}

// TestControllerIndexByteIdenticalFeedback extends byte-identity
// through the two-stage feedback path (fetches, verdicts, accounting).
func TestControllerIndexByteIdenticalFeedback(t *testing.T) {
	linTrace, linStats, linFB := runIndexWorkload(t, 1, true, true, nil)
	ixTrace, ixStats, ixFB := runIndexWorkload(t, 1, false, true, nil)
	if linTrace != ixTrace {
		t.Errorf("feedback alert traces differ with index on vs off:\n--- linear ---\n%s--- indexed ---\n%s",
			linTrace, ixTrace)
	}
	if linStats != ixStats {
		t.Errorf("stats differ: linear %+v, indexed %+v", linStats, ixStats)
	}
	if !reflect.DeepEqual(linFB, ixFB) {
		t.Errorf("feedback configs differ: %+v vs %+v", linFB, ixFB)
	}
}

// TestControllerIndexByteIdenticalAdapt is the hardest case of the
// acceptance property: with the adaptive loop nudging τ/width every
// epoch — feeding back into the next epoch's inference — the indexed
// engine must still reproduce the linear engine's alert trace, stats,
// and threshold trajectory exactly, for every worker count.
func TestControllerIndexByteIdenticalAdapt(t *testing.T) {
	ac := adapt.DefaultConfig(64 << 10)
	ac.Seed = 17
	ac.WidenAfter = 2
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		linTrace, linStats, linFB := runIndexWorkload(t, workers, true, true, &ac)
		ixTrace, ixStats, ixFB := runIndexWorkload(t, workers, false, true, &ac)
		if linTrace != ixTrace {
			t.Errorf("workers=%d: adaptive alert traces differ with index on vs off:\n--- linear ---\n%s--- indexed ---\n%s",
				workers, linTrace, ixTrace)
		}
		if linStats != ixStats {
			t.Errorf("workers=%d: stats differ: linear %+v, indexed %+v", workers, linStats, ixStats)
		}
		if !reflect.DeepEqual(linFB, ixFB) {
			t.Errorf("workers=%d: threshold trajectories diverged:\nlinear:  %+v\nindexed: %+v", workers, linFB, ixFB)
		}
	}
}

// TestControllerIndexCoversAfterAdapt pins the rebuild policy's
// invariant: after adaptive epochs, every feedback question's live
// τ_d2 is still covered by the bound its index entry was built with.
func TestControllerIndexCoversAfterAdapt(t *testing.T) {
	qs := testQuestions(t, 2500)
	ac := adapt.DefaultConfig(1) // tiny budget: drives aggressive retuning
	ac.Seed = 5
	ac.WidenAfter = 1
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 2,
		Summary:     smallSummaryConfig(),
		Controller: ControllerConfig{
			Env: testEnv(), Questions: qs,
			Feedback: adaptFeedbackConfigs(qs), UseFeedback: true, Adapt: &ac,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(3))
	atk, _ := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 3, Victim: 0x0A000001})
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 3})
	for round := 0; round < 6; round++ {
		for _, lp := range mix.Batch(2000) {
			if err := p.Ingest(lp.Header); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		c := p.Controller
		c.mu.Lock()
		for i, id := range c.ids {
			if fb, ok := c.feedback[id]; ok && !c.index.Covers(i, fb.TauD2) {
				t.Errorf("round %d: %s τ_d2 %v outgrew its index bound without a rebuild", round, id, fb.TauD2)
			}
		}
		c.mu.Unlock()
	}
}

// TestControllerIndexScale runs a generated 2000-rule library through
// the controller both ways and compares the full alert streams —
// the index must stay invisible at scale, not just on the seven
// built-in attacks.
func TestControllerIndexScale(t *testing.T) {
	gen, err := rules.GenerateQuestions(rules.GenConfig{Rules: 2000, Seed: 13},
		rules.NewEnvironment(), rules.DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := testQuestions(t, 2500)
	for _, q := range gen {
		base[rules.AttackID(fmt.Sprintf("gen-%07d", q.Rule.SID))] = q
	}
	run := func(disable bool) (string, Stats) {
		p, err := NewPipeline(PipelineConfig{
			NumMonitors: 2,
			Summary:     smallSummaryConfig(),
			Controller: ControllerConfig{
				Env: testEnv(), Questions: base, DisableIndex: disable,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(19))
		atk, _ := trafficgen.NewAttack(rules.AttackSYNFlood,
			trafficgen.AttackConfig{Seed: 19, Victim: 0x0A000001})
		mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 19})
		var trace string
		for round := 0; round < 2; round++ {
			for _, lp := range mix.Batch(2500) {
				if err := p.Ingest(lp.Header); err != nil {
					t.Fatal(err)
				}
			}
			alerts, err := p.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range alerts {
				trace += a.String() + "\n"
			}
		}
		return trace, p.Controller.Stats()
	}
	linTrace, linStats := run(true)
	ixTrace, ixStats := run(false)
	if linTrace != ixTrace {
		t.Errorf("2000-rule alert traces differ with index on vs off:\n--- linear ---\n%s--- indexed ---\n%s",
			linTrace, ixTrace)
	}
	if linStats != ixStats {
		t.Errorf("stats differ: linear %+v, indexed %+v", linStats, ixStats)
	}
}
