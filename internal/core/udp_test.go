package core

import (
	"testing"

	"repro/internal/rules"
	"repro/internal/trafficgen"
)

// TestPipelineDetectsUDPFlood exercises the mixed-protocol path: UDP
// background plus a UDP flood, detected by the udp rule without
// cross-firing the TCP signatures. The summarization rank is raised to
// 14 because a mixed-protocol batch matrix carries one more latent
// dimension than the TCP-only calibration point.
func TestPipelineDetectsUDPFlood(t *testing.T) {
	scfg := smallSummaryConfig()
	scfg.Rank = 14
	qs := testQuestions(t, 6000)
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 3,
		Summary:     scfg,
		Controller:  ControllerConfig{Env: testEnv(), Questions: qs},
	})
	if err != nil {
		t.Fatal(err)
	}

	bgCfg := trafficgen.DefaultBackgroundConfig(31)
	bgCfg.UDPFraction = 0.10
	bg := trafficgen.NewBackground(bgCfg)
	atk, err := trafficgen.NewAttack(rules.AttackUDPFlood,
		trafficgen.AttackConfig{Seed: 31, Victim: 0x0A000001, VictimPort: 53})
	if err != nil {
		t.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 31})
	for _, lp := range mix.Batch(6000) {
		if err := p.Ingest(lp.Header); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range alerts {
		if a.Attack == rules.AttackUDPFlood {
			found = true
		}
		if a.Attack == rules.AttackSYNFlood || a.Attack == rules.AttackDistributedSYNFlood {
			t.Fatalf("UDP flood must not cross-fire TCP flood rules: %v", a)
		}
	}
	if !found {
		t.Fatalf("UDP flood not detected; alerts: %v", alerts)
	}
}

// TestPipelineUDPBackgroundQuiet checks mixed benign traffic does not
// fire the UDP flood rule.
func TestPipelineUDPBackgroundQuiet(t *testing.T) {
	scfg := smallSummaryConfig()
	scfg.Rank = 14
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 3,
		Summary:     scfg,
		Controller:  ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 6000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	bgCfg := trafficgen.DefaultBackgroundConfig(32)
	bgCfg.UDPFraction = 0.10
	bg := trafficgen.NewBackground(bgCfg)
	for _, h := range bg.Batch(6000) {
		if err := p.Ingest(h); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alerts {
		if a.Attack == rules.AttackUDPFlood {
			t.Fatalf("false UDP flood alert on benign mixed traffic: %v", a)
		}
	}
}
