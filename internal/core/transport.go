package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sketch"
	"repro/internal/summary"
	"repro/internal/trace"
	"repro/internal/wire"
)

// MonitorServer exposes a Monitor over the wire protocol: it answers the
// controller's load queries, summary polls and raw-batch requests on a
// single long-lived connection (§7). A controller that loses the
// connection reconnects and re-handshakes; the server treats every
// accepted connection as a fresh session.
type MonitorServer struct {
	Monitor *Monitor
	// EpochLog, when non-nil, receives one structured record per
	// summary poll: the monitor-side epoch log of a wire deployment.
	EpochLog *obs.EpochLogger
	// WriteTimeout bounds each response write so a stalled controller
	// cannot wedge the serving goroutine forever. Zero disables the
	// deadline.
	WriteTimeout time.Duration
}

// Serve handles one controller connection until EOF or error. It sends
// the hello, then answers requests synchronously. Errors other than a
// clean EOF are counted (jaal_transport_serve_errors_total) and
// wrapped with the message type being served when one is known, so an
// operator log names the failing request rather than a bare I/O error.
func (s *MonitorServer) Serve(conn net.Conn) error {
	s.armWriteDeadline(conn)
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHello(s.Monitor.ID())); err != nil {
		cServeErrors.Inc()
		return fmt.Errorf("core: monitor %d: hello: %w", s.Monitor.ID(), err)
	}
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			cServeErrors.Inc()
			return fmt.Errorf("core: monitor %d: read frame: %w", s.Monitor.ID(), err)
		}
		s.armWriteDeadline(conn)
		if err := s.handle(conn, msg); err != nil {
			cServeErrors.Inc()
			return fmt.Errorf("core: monitor %d: serving %s: %w", s.Monitor.ID(), msg.Type, err)
		}
	}
}

// armWriteDeadline pushes the write deadline forward before a response
// burst; it is a no-op without a configured timeout.
func (s *MonitorServer) armWriteDeadline(conn net.Conn) {
	if s.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout)) //jaalvet:ignore detrand — I/O deadline arming; alerts and summaries never carry this timestamp
	}
}

func (s *MonitorServer) handle(conn net.Conn, msg *wire.Message) error {
	switch msg.Type {
	case wire.MsgLoadQuery:
		load := float64(s.Monitor.LoadAndReset())
		return wire.WriteFrame(conn, wire.MsgLoadReport, wire.EncodeLoadReport(s.Monitor.ID(), load))

	case wire.MsgSummaryRequest:
		epoch, err := wire.DecodeSummaryRequest(msg.Payload)
		if err != nil {
			return err
		}
		// One span feeds the epoch log and, when tracing, the staged
		// collect stage that ships with this poll's trace context.
		csp := trace.StartMonitorSpanWhen(s.EpochLog != nil, nil,
			trace.StageCollect, s.Monitor.ID(), epoch)
		ss, pending, err := s.Monitor.CollectSummaries()
		collectDur := csp.End()
		if err != nil && !errors.Is(err, summary.ErrBatchTooSmall) {
			return err
		}
		if s.EpochLog != nil {
			s.EpochLog.Log("monitor", epoch,
				obs.KV{K: "id", V: s.Monitor.ID()},
				obs.KV{K: "summaries", V: len(ss)},
				obs.KV{K: "pending", V: pending},
				obs.KV{K: "collect_ms", V: collectDur})
		}
		if len(ss) == 0 {
			return wire.WriteFrame(conn, wire.MsgSummaryDecline,
				wire.EncodeSummaryDecline(s.Monitor.ID(), epoch, pending))
		}
		// Marshal everything first (timed as the encode stage), then
		// drain the staged spans into a trace-context block appended to
		// the first summary payload — so the context includes the encode
		// span itself, and tracing-off frames are byte-identical to the
		// pre-trace wire format.
		esp := trace.StartMonitorSpan(nil, trace.StageEncode, s.Monitor.ID(), epoch)
		payloads := make([][]byte, len(ss))
		for i, sum := range ss {
			if payloads[i], err = sum.Marshal(); err != nil {
				return err
			}
		}
		esp.End()
		// Trailers ride the first summary payload. The sketch digest goes
		// first — its block carries an explicit length so a decoder can
		// skip it — then the trace context, which claims everything to the
		// end of the payload. Both are absent when their feature is off,
		// keeping the frame byte-identical to the plain wire format.
		if d := s.Monitor.SketchDigest(epoch); d != nil {
			payloads[0] = d.AppendWire(payloads[0])
		}
		if ctx := trace.TakeContext(s.Monitor.ID()); ctx != nil {
			payloads[0] = ctx.AppendWire(payloads[0])
		}
		// Ship every queued summary, then an empty decline as the
		// end-of-poll marker.
		for _, data := range payloads {
			if err := wire.WriteFrame(conn, wire.MsgSummary, data); err != nil {
				return err
			}
		}
		if err := wire.WriteFrame(conn, wire.MsgSummaryDecline,
			wire.EncodeSummaryDecline(s.Monitor.ID(), epoch, pending)); err != nil {
			return err
		}
		s.Monitor.AdvanceEpoch()
		return nil

	case wire.MsgFinerRequest:
		epoch, k, err := wire.DecodeFinerRequest(msg.Payload)
		if err != nil {
			return err
		}
		fs, err := s.Monitor.FinerSummary(epoch, k)
		if err != nil || fs == nil {
			return wire.WriteFrame(conn, wire.MsgSummaryDecline,
				wire.EncodeSummaryDecline(s.Monitor.ID(), epoch, 0))
		}
		data, err := fs.Marshal()
		if err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgSummary, data)

	case wire.MsgRawRequest:
		epoch, centroid, err := wire.DecodeRawRequest(msg.Payload)
		if err != nil {
			return err
		}
		hs := s.Monitor.RawPackets(epoch, centroid)
		return wire.WriteFrame(conn, wire.MsgRawBatch, packet.EncodeBatch(hs))

	default:
		return fmt.Errorf("core: monitor got unexpected %v", msg.Type)
	}
}

// DialFunc produces one fresh connection to a monitor (or alert sink).
// The transport calls it for the initial connect and for every
// reconnect after a failed exchange; tests wrap the returned conn in a
// faultnet fault plan.
type DialFunc func() (net.Conn, error)

// RetryConfig tunes the fault-tolerance of a wire client: per-exchange
// deadlines, how often a failed exchange is retried across reconnects,
// and the capped exponential backoff (with seeded jitter) between
// attempts. The zero value means one attempt, no deadline, no backoff
// — the pre-fault-tolerance behaviour.
type RetryConfig struct {
	// Timeout bounds one full request–response exchange (every
	// ReadFrame/WriteFrame of it). Zero disables deadlines.
	Timeout time.Duration
	// Attempts is the total tries per exchange, reconnects included.
	// Values below 1 mean 1.
	Attempts int
	// BackoffBase is the sleep before the first retry; attempt n waits
	// min(BackoffBase·2ⁿ, BackoffMax). Zero disables backoff sleeps.
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth. Zero means no cap.
	BackoffMax time.Duration
	// Jitter, when non-nil, adds a uniformly drawn 0–50 % of each
	// backoff. It must be a seeded private source so same-seed chaos
	// runs replay the same schedule; the transport never touches the
	// global RNG.
	Jitter *rand.Rand
	// Sleep implements the backoff wait; nil selects time.Sleep.
	// Tests inject a recorder to assert the schedule without paying it.
	Sleep func(time.Duration)
}

// attempts returns the effective attempt budget.
func (rc RetryConfig) attempts() int {
	if rc.Attempts < 1 {
		return 1
	}
	return rc.Attempts
}

// backoff returns the wait before retry n (0-based), jitter included.
func (rc RetryConfig) backoff(n int) time.Duration {
	if rc.BackoffBase <= 0 {
		return 0
	}
	d := rc.BackoffBase
	for i := 0; i < n && (rc.BackoffMax <= 0 || d < rc.BackoffMax); i++ {
		d *= 2
	}
	if rc.BackoffMax > 0 && d > rc.BackoffMax {
		d = rc.BackoffMax
	}
	if rc.Jitter != nil && d > 0 {
		d += time.Duration(rc.Jitter.Int63n(int64(d)/2 + 1))
	}
	return d
}

// sleep waits for d via the configured sleeper.
func (rc RetryConfig) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if rc.Sleep != nil {
		rc.Sleep(d)
		return
	}
	time.Sleep(d)
}

// RemoteMonitor is the controller-side handle to a monitor reached over
// the wire protocol. It implements RawSource so the feedback loop can
// fetch raw packets transparently.
//
// With a DialFunc and RetryConfig (DialMonitorRetry), every exchange
// runs under a deadline and survives connection loss: a failed
// exchange closes the connection, backs off, redials, re-handshakes
// via MsgHello — verifying the monitor identity is unchanged — and
// retries, up to the attempt budget. Without them (DialMonitor) the
// handle keeps the original single-connection, fail-fast behaviour.
type RemoteMonitor struct {
	id    int
	dial  DialFunc
	retry RetryConfig

	mu   sync.Mutex
	conn net.Conn
	// everConnected distinguishes a lazy handle's first connect from a
	// true reconnect, so jaal_transport_reconnects_total counts only
	// recoveries.
	everConnected bool
}

// DialMonitor completes the hello on an established connection. The
// resulting handle has no redial path: the first failed exchange
// surfaces its error, as before fault tolerance existed.
func DialMonitor(conn net.Conn) (*RemoteMonitor, error) {
	id, err := readHello(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &RemoteMonitor{id: id, conn: conn, everConnected: true}, nil
}

// NewRemoteMonitor builds a handle for a monitor whose identity is
// known from deployment configuration, without requiring it to be
// reachable yet: the connection is established lazily by the first
// exchange, under the retry policy. This is how a controller starts
// against a monitor fleet where some members may be down — a dead
// monitor costs declines, not startup.
func NewRemoteMonitor(id int, dial DialFunc, rc RetryConfig) *RemoteMonitor {
	return &RemoteMonitor{id: id, dial: dial, retry: rc}
}

// DialMonitorRetry connects to a monitor through dial under the given
// retry policy: the initial connect gets the same attempt budget,
// deadline and backoff as every later exchange.
func DialMonitorRetry(dial DialFunc, rc RetryConfig) (*RemoteMonitor, error) {
	var (
		conn    net.Conn
		id      int
		lastErr error
	)
	for attempt := 0; attempt < rc.attempts(); attempt++ {
		if attempt > 0 {
			rc.sleep(rc.backoff(attempt - 1))
		}
		var err error
		conn, id, err = dialHello(dial, rc.Timeout)
		if err == nil {
			return &RemoteMonitor{id: id, dial: dial, retry: rc, conn: conn, everConnected: true}, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: dial monitor: %w", lastErr)
}

// readHello consumes the server's opening hello under an optional
// deadline already armed by the caller.
func readHello(conn net.Conn) (int, error) {
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		return 0, fmt.Errorf("core: hello: %w", err)
	}
	if msg.Type != wire.MsgHello {
		return 0, fmt.Errorf("core: expected hello, got %v", msg.Type)
	}
	return wire.DecodeHello(msg.Payload)
}

// dialHello dials and completes the handshake, applying timeout to the
// dial-to-hello window.
func dialHello(dial DialFunc, timeout time.Duration) (net.Conn, int, error) {
	conn, err := dial()
	if err != nil {
		return nil, 0, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout)) //jaalvet:ignore detrand — I/O deadline arming; no protocol payload carries this timestamp
	}
	id, err := readHello(conn)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	return conn, id, nil
}

// ID returns the remote monitor's identity.
func (r *RemoteMonitor) ID() int { return r.id }

// exchange runs one request–response interaction under the retry
// policy: arm the deadline, run fn, and on failure close the
// connection, back off, reconnect (re-handshaking and checking the
// monitor ID), and try fn again on the fresh connection. fn must be
// restartable from its first frame — the wire protocol is
// request-driven, so re-sending the request on a new connection is
// always safe at the protocol level.
func (r *RemoteMonitor) exchange(fn func(conn net.Conn) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < r.retry.attempts(); attempt++ {
		if attempt > 0 {
			//jaalvet:ignore lockheld — r.mu serializes the whole exchange by design: the wire protocol is one request–response at a time per connection, and no other path needs r.mu between exchanges
			r.retry.sleep(r.retry.backoff(attempt - 1))
		}
		if r.conn == nil {
			if r.dial == nil {
				break // no redial path: surface the first error
			}
			//jaalvet:ignore lockheld — reconnect happens under the same per-connection serialization; see the sleep above
			conn, id, err := dialHello(r.dial, r.retry.Timeout)
			if err != nil {
				lastErr = err
				continue
			}
			if id != r.id {
				conn.Close()
				lastErr = fmt.Errorf("core: reconnect reached monitor %d, want %d", id, r.id)
				continue
			}
			r.conn = conn
			if r.everConnected {
				cReconnects.Inc()
			}
			r.everConnected = true
		}
		if r.retry.Timeout > 0 {
			r.conn.SetDeadline(time.Now().Add(r.retry.Timeout)) //jaalvet:ignore detrand — I/O deadline arming; no protocol payload carries this timestamp
		}
		err := fn(r.conn)
		if err == nil {
			if r.retry.Timeout > 0 {
				r.conn.SetDeadline(time.Time{})
			}
			return nil
		}
		lastErr = err
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			cDeadlineMisses.Inc()
		}
		r.conn.Close()
		r.conn = nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: monitor %d unreachable", r.id)
	}
	return lastErr
}

// QueryLoad polls the monitor's load counter.
func (r *RemoteMonitor) QueryLoad() (float64, error) {
	var load float64
	err := r.exchange(func(conn net.Conn) error {
		if err := wire.WriteFrame(conn, wire.MsgLoadQuery, nil); err != nil {
			return err
		}
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		if msg.Type != wire.MsgLoadReport {
			return fmt.Errorf("core: expected load report, got %v", msg.Type)
		}
		_, load, err = wire.DecodeLoadReport(msg.Payload)
		return err
	})
	return load, err
}

// Poll asks the monitor for its queued summaries for the given epoch.
// A declining monitor yields an empty slice; pending is the monitor's
// reported count of buffered-but-unsummarized packets, from the
// decline frame that terminates every poll. digest is the monitor's
// sketch digest when its sketch pass is on (nil otherwise); it rides
// the first summary frame, so a fully declining poll carries none.
func (r *RemoteMonitor) Poll(epoch uint64) (ss []*summary.Summary, pending int, digest *sketch.Digest, err error) {
	err = r.exchange(func(conn net.Conn) error {
		ss, pending, digest = nil, 0, nil // restart cleanly on retry
		if err := wire.WriteFrame(conn, wire.MsgSummaryRequest, wire.EncodeSummaryRequest(epoch)); err != nil {
			return err
		}
		for {
			msg, err := wire.ReadFrame(conn)
			if err != nil {
				return err
			}
			switch msg.Type {
			case wire.MsgSummary:
				// Stamp receipt before decoding: the monitor's clock
				// offset is computed against this instant, so decode time
				// must not pollute it.
				recv := trace.NowNano()
				dsp := trace.StartSpan(nil, trace.StageDecode, r.id, epoch)
				s, dg, ctx, err := decodeSummaryPayload(msg.Payload)
				dsp.End()
				if err != nil {
					return err
				}
				trace.AddRemoteContext(epoch, ctx, recv)
				if dg != nil {
					digest = dg
				}
				ss = append(ss, s)
			case wire.MsgSummaryDecline:
				_, _, pending, err = wire.DecodeSummaryDecline(msg.Payload)
				return err
			default:
				return fmt.Errorf("core: expected summary, got %v", msg.Type)
			}
		}
	})
	if err != nil {
		return nil, 0, nil, err
	}
	return ss, pending, digest, nil
}

// decodeSummaryPayload splits a MsgSummary payload into the encoded
// summary and its optional trailers: a sketch digest (length-delimited,
// first) and a trace-context block (last; see trace.Context). Plain
// payloads — from old peers or feature-off monitors — yield nils.
func decodeSummaryPayload(p []byte) (*summary.Summary, *sketch.Digest, *trace.Context, error) {
	n, err := summary.EncodedLen(p)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := summary.Unmarshal(p[:n])
	if err != nil {
		return nil, nil, nil, err
	}
	rest := p[n:]
	var dg *sketch.Digest
	if sketch.IsDigest(rest) {
		var consumed int
		dg, consumed, err = sketch.DecodeDigest(rest)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: summary sketch digest: %w", err)
		}
		rest = rest[consumed:]
	}
	if len(rest) == 0 {
		return s, dg, nil, nil
	}
	ctx, err := trace.DecodeContext(rest)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: summary trace context: %w", err)
	}
	return s, dg, ctx, nil
}

// PollSummaries asks the monitor for its queued summaries for the given
// epoch. A declining monitor yields an empty slice.
func (r *RemoteMonitor) PollSummaries(epoch uint64) ([]*summary.Summary, error) {
	ss, _, _, err := r.Poll(epoch)
	return ss, err
}

// FinerSummary asks the remote monitor to re-summarize a retained batch
// at higher resolution. A nil summary with nil error means the batch
// expired or the request was declined.
func (r *RemoteMonitor) FinerSummary(epoch uint64, k int) (*summary.Summary, error) {
	var fs *summary.Summary
	err := r.exchange(func(conn net.Conn) error {
		fs = nil
		if err := wire.WriteFrame(conn, wire.MsgFinerRequest, wire.EncodeFinerRequest(epoch, k)); err != nil {
			return err
		}
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		switch msg.Type {
		case wire.MsgSummary:
			fs, err = summary.Unmarshal(msg.Payload)
			return err
		case wire.MsgSummaryDecline:
			return nil
		default:
			return fmt.Errorf("core: expected finer summary, got %v", msg.Type)
		}
	})
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// RawPackets implements RawSource over the wire. Errors surface as an
// empty batch; the feedback loop treats missing raw data as
// non-confirming, the safe default.
func (r *RemoteMonitor) RawPackets(epoch uint64, centroid int) []packet.Header {
	var hs []packet.Header
	err := r.exchange(func(conn net.Conn) error {
		hs = nil
		if err := wire.WriteFrame(conn, wire.MsgRawRequest, wire.EncodeRawRequest(epoch, centroid)); err != nil {
			return err
		}
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		if msg.Type != wire.MsgRawBatch {
			return fmt.Errorf("core: expected raw batch, got %v", msg.Type)
		}
		hs, err = packet.DecodeBatch(msg.Payload)
		return err
	})
	if err != nil {
		return nil
	}
	return hs
}

// Close closes the underlying connection.
func (r *RemoteMonitor) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}
