package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/summary"
	"repro/internal/wire"
)

// MonitorServer exposes a Monitor over the wire protocol: it answers the
// controller's load queries, summary polls and raw-batch requests on a
// single long-lived connection (§7).
type MonitorServer struct {
	Monitor *Monitor
	// EpochLog, when non-nil, receives one structured record per
	// summary poll: the monitor-side epoch log of a wire deployment.
	EpochLog *obs.EpochLogger
}

// Serve handles one controller connection until EOF or error. It sends
// the hello, then answers requests synchronously.
func (s *MonitorServer) Serve(conn net.Conn) error {
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHello(s.Monitor.ID())); err != nil {
		return err
	}
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := s.handle(conn, msg); err != nil {
			return err
		}
	}
}

func (s *MonitorServer) handle(conn net.Conn, msg *wire.Message) error {
	switch msg.Type {
	case wire.MsgLoadQuery:
		load := float64(s.Monitor.LoadAndReset())
		return wire.WriteFrame(conn, wire.MsgLoadReport, wire.EncodeLoadReport(s.Monitor.ID(), load))

	case wire.MsgSummaryRequest:
		epoch, err := wire.DecodeSummaryRequest(msg.Payload)
		if err != nil {
			return err
		}
		var start time.Time
		if s.EpochLog != nil {
			start = time.Now() //jaalvet:ignore detrand — collect timing feeds only the epoch log; the wire protocol carries no timestamps
		}
		ss, pending, err := s.Monitor.CollectSummaries()
		if err != nil && !errors.Is(err, summary.ErrBatchTooSmall) {
			return err
		}
		if s.EpochLog != nil {
			s.EpochLog.Log("monitor", epoch,
				obs.KV{K: "id", V: s.Monitor.ID()},
				obs.KV{K: "summaries", V: len(ss)},
				obs.KV{K: "pending", V: pending},
				obs.KV{K: "collect_ms", V: time.Since(start)}) //jaalvet:ignore detrand — collect timing feeds only the epoch log; the wire protocol carries no timestamps
		}
		if len(ss) == 0 {
			return wire.WriteFrame(conn, wire.MsgSummaryDecline,
				wire.EncodeSummaryDecline(s.Monitor.ID(), epoch, pending))
		}
		// Ship every queued summary, then an empty decline as the
		// end-of-poll marker.
		for _, sum := range ss {
			data, err := sum.Marshal()
			if err != nil {
				return err
			}
			if err := wire.WriteFrame(conn, wire.MsgSummary, data); err != nil {
				return err
			}
		}
		if err := wire.WriteFrame(conn, wire.MsgSummaryDecline,
			wire.EncodeSummaryDecline(s.Monitor.ID(), epoch, pending)); err != nil {
			return err
		}
		s.Monitor.AdvanceEpoch()
		return nil

	case wire.MsgFinerRequest:
		epoch, k, err := wire.DecodeFinerRequest(msg.Payload)
		if err != nil {
			return err
		}
		fs, err := s.Monitor.FinerSummary(epoch, k)
		if err != nil || fs == nil {
			return wire.WriteFrame(conn, wire.MsgSummaryDecline,
				wire.EncodeSummaryDecline(s.Monitor.ID(), epoch, 0))
		}
		data, err := fs.Marshal()
		if err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgSummary, data)

	case wire.MsgRawRequest:
		epoch, centroid, err := wire.DecodeRawRequest(msg.Payload)
		if err != nil {
			return err
		}
		hs := s.Monitor.RawPackets(epoch, centroid)
		return wire.WriteFrame(conn, wire.MsgRawBatch, packet.EncodeBatch(hs))

	default:
		return fmt.Errorf("core: monitor got unexpected %v", msg.Type)
	}
}

// RemoteMonitor is the controller-side handle to a monitor reached over
// the wire protocol. It implements RawSource so the feedback loop can
// fetch raw packets transparently.
type RemoteMonitor struct {
	id int

	mu   sync.Mutex
	conn net.Conn
}

// DialMonitor connects to a monitor server and completes the hello.
func DialMonitor(conn net.Conn) (*RemoteMonitor, error) {
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("core: hello: %w", err)
	}
	if msg.Type != wire.MsgHello {
		return nil, fmt.Errorf("core: expected hello, got %v", msg.Type)
	}
	id, err := wire.DecodeHello(msg.Payload)
	if err != nil {
		return nil, err
	}
	return &RemoteMonitor{id: id, conn: conn}, nil
}

// ID returns the remote monitor's identity.
func (r *RemoteMonitor) ID() int { return r.id }

// QueryLoad polls the monitor's load counter.
func (r *RemoteMonitor) QueryLoad() (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := wire.WriteFrame(r.conn, wire.MsgLoadQuery, nil); err != nil {
		return 0, err
	}
	msg, err := wire.ReadFrame(r.conn)
	if err != nil {
		return 0, err
	}
	if msg.Type != wire.MsgLoadReport {
		return 0, fmt.Errorf("core: expected load report, got %v", msg.Type)
	}
	_, load, err := wire.DecodeLoadReport(msg.Payload)
	return load, err
}

// PollSummaries asks the monitor for its queued summaries for the given
// epoch. A declining monitor yields an empty slice.
func (r *RemoteMonitor) PollSummaries(epoch uint64) ([]*summary.Summary, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := wire.WriteFrame(r.conn, wire.MsgSummaryRequest, wire.EncodeSummaryRequest(epoch)); err != nil {
		return nil, err
	}
	var out []*summary.Summary
	for {
		msg, err := wire.ReadFrame(r.conn)
		if err != nil {
			return nil, err
		}
		switch msg.Type {
		case wire.MsgSummary:
			s, err := summary.Unmarshal(msg.Payload)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case wire.MsgSummaryDecline:
			return out, nil
		default:
			return nil, fmt.Errorf("core: expected summary, got %v", msg.Type)
		}
	}
}

// FinerSummary asks the remote monitor to re-summarize a retained batch
// at higher resolution. A nil summary with nil error means the batch
// expired or the request was declined.
func (r *RemoteMonitor) FinerSummary(epoch uint64, k int) (*summary.Summary, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := wire.WriteFrame(r.conn, wire.MsgFinerRequest, wire.EncodeFinerRequest(epoch, k)); err != nil {
		return nil, err
	}
	msg, err := wire.ReadFrame(r.conn)
	if err != nil {
		return nil, err
	}
	switch msg.Type {
	case wire.MsgSummary:
		return summary.Unmarshal(msg.Payload)
	case wire.MsgSummaryDecline:
		return nil, nil
	default:
		return nil, fmt.Errorf("core: expected finer summary, got %v", msg.Type)
	}
}

// RawPackets implements RawSource over the wire. Errors surface as an
// empty batch; the feedback loop treats missing raw data as
// non-confirming, the safe default.
func (r *RemoteMonitor) RawPackets(epoch uint64, centroid int) []packet.Header {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := wire.WriteFrame(r.conn, wire.MsgRawRequest, wire.EncodeRawRequest(epoch, centroid)); err != nil {
		return nil
	}
	msg, err := wire.ReadFrame(r.conn)
	if err != nil || msg.Type != wire.MsgRawBatch {
		return nil
	}
	hs, err := packet.DecodeBatch(msg.Payload)
	if err != nil {
		return nil
	}
	return hs
}

// Close closes the underlying connection.
func (r *RemoteMonitor) Close() error { return r.conn.Close() }
