package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/trafficgen"
)

// runSeededWorkload builds a pipeline with the given worker count (both
// the per-monitor epoch fan-out and the controller's per-question
// fan-out), drives three identical epochs of seeded mixed traffic
// through it, and returns a textual trace of the alerts plus the final
// stats.
func runSeededWorkload(t *testing.T, workers int) (string, Stats) {
	return runSeededWorkloadLog(t, workers, nil)
}

// runSeededWorkloadLog is runSeededWorkload with an optional epoch-log
// sink attached to the pipeline.
func runSeededWorkloadLog(t *testing.T, workers int, epochLog io.Writer) (string, Stats) {
	t.Helper()
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 4,
		Summary:     smallSummaryConfig(),
		Controller: ControllerConfig{
			Env:       testEnv(),
			Questions: testQuestions(t, 2500),
			Workers:   workers,
		},
		Workers:  workers,
		EpochLog: epochLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(11))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 11, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 11})
	var trace string
	for round := 0; round < 3; round++ {
		for _, lp := range mix.Batch(2500) {
			if err := p.Ingest(lp.Header); err != nil {
				t.Fatal(err)
			}
		}
		alerts, err := p.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		trace += fmt.Sprintf("round %d: %d alerts\n", round, len(alerts))
		for _, a := range alerts {
			trace += a.String() + "\n"
		}
	}
	return trace, p.Controller.Stats()
}

// TestPipelineParallelDeterminism locks in the engine's hard
// constraint: the same seeded workload must produce byte-identical
// alerts and identical communication accounting whether the epochs run
// sequentially (Workers: 1) or fanned out across GOMAXPROCS workers.
func TestPipelineParallelDeterminism(t *testing.T) {
	seqTrace, seqStats := runSeededWorkload(t, 1)
	parTrace, parStats := runSeededWorkload(t, runtime.GOMAXPROCS(0))

	if seqTrace != parTrace {
		t.Errorf("alert traces differ between workers=1 and workers=%d:\n--- sequential ---\n%s--- parallel ---\n%s",
			runtime.GOMAXPROCS(0), seqTrace, parTrace)
	}
	if seqStats != parStats {
		t.Errorf("stats differ: sequential %+v, parallel %+v", seqStats, parStats)
	}
	if seqStats.SummaryElements == 0 || seqStats.PacketsSummarized == 0 {
		t.Fatalf("workload produced no summaries: %+v", seqStats)
	}
}

// TestPipelineObsDeterminism locks in the observability layer's hard
// constraint: metrics, spans and the epoch log are write-only side
// channels, so the same seeded workload produces byte-identical alerts
// and identical accounting whether collection is off (the default),
// enabled, or enabled with an epoch log attached.
func TestPipelineObsDeterminism(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	offTrace, offStats := runSeededWorkload(t, workers)

	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false) }()
	onTrace, onStats := runSeededWorkload(t, workers)

	var logBuf bytes.Buffer
	logTrace, logStats := runSeededWorkloadLog(t, workers, &logBuf)

	if offTrace != onTrace {
		t.Errorf("alert traces differ with observability on vs off:\n--- off ---\n%s--- on ---\n%s",
			offTrace, onTrace)
	}
	if offStats != onStats {
		t.Errorf("stats differ with observability on vs off: %+v vs %+v", offStats, onStats)
	}
	if logTrace != offTrace || logStats != offStats {
		t.Errorf("epoch logging changed the run: trace match=%v, stats %+v vs %+v",
			logTrace == offTrace, logStats, offStats)
	}

	// The epoch log must hold one valid JSON record per epoch per
	// component: 3 epochs × (4 monitors + 1 controller).
	lines := strings.Split(strings.TrimSuffix(logBuf.String(), "\n"), "\n")
	if want := 3 * 5; len(lines) != want {
		t.Fatalf("epoch log has %d records, want %d:\n%s", len(lines), want, logBuf.String())
	}
	components := map[string]int{}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("epoch log line is not valid JSON: %v\n%s", err, line)
		}
		comp, _ := rec["component"].(string)
		components[comp]++
		if _, ok := rec["epoch"]; !ok {
			t.Fatalf("epoch log record missing epoch: %s", line)
		}
	}
	if components["monitor"] != 12 || components["controller"] != 3 {
		t.Fatalf("epoch log component mix = %v, want 12 monitor + 3 controller", components)
	}

	// With collection enabled the registry must actually have seen the
	// workload (guards against a silently disabled layer).
	if rows := obs.Snapshot(); len(rows) == 0 {
		t.Fatal("observability enabled but no metrics recorded")
	}
}
