package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/rules"
	"repro/internal/trafficgen"
)

// runSeededWorkload builds a pipeline with the given worker count (both
// the per-monitor epoch fan-out and the controller's per-question
// fan-out), drives three identical epochs of seeded mixed traffic
// through it, and returns a textual trace of the alerts plus the final
// stats.
func runSeededWorkload(t *testing.T, workers int) (string, Stats) {
	t.Helper()
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 4,
		Summary:     smallSummaryConfig(),
		Controller: ControllerConfig{
			Env:       testEnv(),
			Questions: testQuestions(t, 2500),
			Workers:   workers,
		},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(11))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 11, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 11})
	var trace string
	for round := 0; round < 3; round++ {
		for _, lp := range mix.Batch(2500) {
			if err := p.Ingest(lp.Header); err != nil {
				t.Fatal(err)
			}
		}
		alerts, err := p.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		trace += fmt.Sprintf("round %d: %d alerts\n", round, len(alerts))
		for _, a := range alerts {
			trace += a.String() + "\n"
		}
	}
	return trace, p.Controller.Stats()
}

// TestPipelineParallelDeterminism locks in the engine's hard
// constraint: the same seeded workload must produce byte-identical
// alerts and identical communication accounting whether the epochs run
// sequentially (Workers: 1) or fanned out across GOMAXPROCS workers.
func TestPipelineParallelDeterminism(t *testing.T) {
	seqTrace, seqStats := runSeededWorkload(t, 1)
	parTrace, parStats := runSeededWorkload(t, runtime.GOMAXPROCS(0))

	if seqTrace != parTrace {
		t.Errorf("alert traces differ between workers=1 and workers=%d:\n--- sequential ---\n%s--- parallel ---\n%s",
			runtime.GOMAXPROCS(0), seqTrace, parTrace)
	}
	if seqStats != parStats {
		t.Errorf("stats differ: sequential %+v, parallel %+v", seqStats, parStats)
	}
	if seqStats.SummaryElements == 0 || seqStats.PacketsSummarized == 0 {
		t.Fatalf("workload produced no summaries: %+v", seqStats)
	}
}
