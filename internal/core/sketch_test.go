package core

import (
	"net"
	"reflect"
	"testing"

	"repro/internal/rules"
	"repro/internal/sketch"
	"repro/internal/trafficgen"
)

// sketchPipeline builds a small two-monitor pipeline with the given
// sketch config over the standard test question set.
func sketchPipeline(t *testing.T, scfg sketch.Config) *Pipeline {
	t.Helper()
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 2,
		Summary:     smallSummaryConfig(),
		Sketch:      scfg,
		Controller:  ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 4000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// floodPackets generates one epoch of background+flood traffic.
func floodPackets(t *testing.T, seed int64, n int) []trafficgen.LabeledPacket {
	t.Helper()
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
	atk, err := trafficgen.NewAttack(rules.AttackSYNFlood,
		trafficgen.AttackConfig{Seed: seed, Victim: 0x0A00002A})
	if err != nil {
		t.Fatal(err)
	}
	return trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed}).Batch(n)
}

// With the sketch on but the watermark never reached, no packet is shed
// and the run — alerts, stats, summary accounting — is byte-identical
// to a sketchless pipeline; the digest is pure side channel.
func TestPipelineSketchOnNoShedIsByteIdentical(t *testing.T) {
	run := func(scfg sketch.Config) ([]string, Stats, *VolumetricReport) {
		p := sketchPipeline(t, scfg)
		var alerts []string
		for epoch := 0; epoch < 3; epoch++ {
			for _, lp := range floodPackets(t, 21, 4000) {
				if err := p.Ingest(lp.Header); err != nil {
					t.Fatal(err)
				}
			}
			as, err := p.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range as {
				alerts = append(alerts, a.String())
			}
		}
		return alerts, p.Controller.Stats(), p.Controller.Volumetric()
	}

	plainAlerts, plainStats, plainVol := run(sketch.Config{})
	sketchAlerts, sketchStats, sketchVol := run(sketch.Config{Enabled: true, ShedWatermark: 1 << 30})

	if !reflect.DeepEqual(plainAlerts, sketchAlerts) {
		t.Fatalf("alerts differ with sketch on (no shedding):\nplain:  %v\nsketch: %v", plainAlerts, sketchAlerts)
	}
	if plainStats != sketchStats {
		t.Fatalf("stats differ with sketch on (no shedding):\nplain:  %+v\nsketch: %+v", plainStats, sketchStats)
	}
	if plainVol != nil {
		t.Fatal("sketchless pipeline must produce no volumetric report")
	}
	if sketchVol == nil || sketchVol.Shed != 0 || sketchVol.Offered == 0 {
		t.Fatalf("sketch pipeline must report a shed-free volumetric epoch, got %+v", sketchVol)
	}
}

// Under a tight watermark the pipeline sheds, keeps accounting honest,
// and the controller's volumetric report names the flood victim from
// digests alone.
func TestPipelineShedsAndIssuesVolumetricVerdicts(t *testing.T) {
	p := sketchPipeline(t, sketch.Config{Enabled: true, ShedWatermark: 500})
	for _, lp := range floodPackets(t, 22, 12000) {
		if err := p.Ingest(lp.Header); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	rep := p.Controller.Volumetric()
	if rep == nil {
		t.Fatal("no volumetric report after a digest-carrying epoch")
	}
	if rep.Monitors != 2 {
		t.Fatalf("report merged %d digests, want 2", rep.Monitors)
	}
	if rep.Offered != 12000 {
		t.Fatalf("merged offered = %d, want 12000", rep.Offered)
	}
	if rep.Shed == 0 || rep.Kept+rep.Shed != rep.Offered {
		t.Fatalf("shed accounting inconsistent: %+v", rep)
	}
	if rep.Flows == 0 {
		t.Fatal("merged flow estimate must be positive")
	}
	var victimVerdict *VolumetricVerdict
	for i := range rep.Verdicts {
		v := &rep.Verdicts[i]
		if v.Dimension == "dst" && v.Addr == 0x0A00002A {
			victimVerdict = v
		}
	}
	if victimVerdict == nil {
		t.Fatalf("flood victim missing from volumetric verdicts: %+v", rep.Verdicts)
	}
	if victimVerdict.Share < defaultVolumetricShare {
		t.Fatalf("victim share %.3f below the verdict gate", victimVerdict.Share)
	}
}

// The digest crosses the wire as a trailer on the first summary frame
// and survives alongside the trace-context trailer machinery.
func TestSketchDigestOverWire(t *testing.T) {
	m, err := NewMonitorSketch(7, smallSummaryConfig(),
		sketch.Config{Enabled: true, ShedWatermark: 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range floodPackets(t, 23, 3000) {
		if err := m.Ingest(lp.Header); err != nil {
			t.Fatal(err)
		}
	}

	client, server := net.Pipe()
	srv := &MonitorServer{Monitor: m}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(server) }()

	remote, err := DialMonitor(client)
	if err != nil {
		t.Fatal(err)
	}
	ss, _, dg, err := remote.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) == 0 {
		t.Fatal("poll returned no summaries")
	}
	if dg == nil {
		t.Fatal("poll returned no sketch digest")
	}
	if dg.MonitorID != 7 {
		t.Fatalf("digest monitor ID = %d, want 7", dg.MonitorID)
	}
	if dg.Offered != 3000 || dg.Kept+dg.Shed != dg.Offered {
		t.Fatalf("digest accounting inconsistent over the wire: %+v", dg)
	}
	if dg.Shed == 0 {
		t.Fatal("tight watermark must have shed packets")
	}
	if dg.FlowEstimate() == 0 {
		t.Fatal("digest flow estimate must survive the wire")
	}
	if len(dg.TopDst) == 0 {
		t.Fatal("digest heavy hitters must survive the wire")
	}

	// The next poll follows AdvanceEpoch: sketches reset, nothing
	// buffered → decline, and a decline carries no digest.
	ss, _, dg, err = remote.Poll(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 0 || dg != nil {
		t.Fatalf("post-reset poll: %d summaries, digest %v; want none", len(ss), dg)
	}

	remote.Close()
	if err := <-done; err != nil {
		t.Fatalf("server exited with %v", err)
	}
}

// A plain monitor (sketch off) ships no digest trailer: its frames are
// byte-identical to the pre-sketch wire format.
func TestNoDigestTrailerWhenSketchOff(t *testing.T) {
	m, err := NewMonitor(3, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(24))
	if err := m.IngestBatch(bg.Batch(600)); err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	srv := &MonitorServer{Monitor: m}
	go srv.Serve(server)
	remote, err := DialMonitor(client)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ss, _, dg, err := remote.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) == 0 {
		t.Fatal("poll returned no summaries")
	}
	if dg != nil {
		t.Fatalf("sketchless monitor shipped a digest: %+v", dg)
	}
}

func TestMergeDigestsGatesAndOrders(t *testing.T) {
	if MergeDigests(1, nil, 0) != nil {
		t.Fatal("no digests must merge to nil")
	}
	mk := func(id int, offered, shed uint64, dst ...sketch.HeavyHitter) *sketch.Digest {
		return &sketch.Digest{
			MonitorID: id, Epoch: 1,
			Offered: offered, Shed: shed, Kept: offered - shed,
			TopDst: dst,
		}
	}
	// Below the offered floor: no verdicts regardless of share.
	rep := MergeDigests(1, []*sketch.Digest{
		mk(0, 100, 0, sketch.HeavyHitter{Key: 9, Count: 90}),
	}, 0)
	if len(rep.Verdicts) != 0 {
		t.Fatalf("sub-floor epoch issued verdicts: %+v", rep.Verdicts)
	}
	// Two monitors: addr 9's share clears the gate only once merged
	// (900/6000), addr 5 clears it from one monitor alone (700/6000 ≥
	// 0.10 is false — 0.1167 with count 700), addr 3 stays below.
	rep = MergeDigests(2, []*sketch.Digest{
		mk(0, 3000, 100, sketch.HeavyHitter{Key: 9, Count: 400}, sketch.HeavyHitter{Key: 5, Count: 700}),
		mk(1, 3000, 200, sketch.HeavyHitter{Key: 9, Count: 500}, sketch.HeavyHitter{Key: 3, Count: 100}),
	}, 0)
	if rep.Offered != 6000 || rep.Shed != 300 || rep.Kept != 5700 {
		t.Fatalf("merged accounting wrong: %+v", rep)
	}
	if rep.ShedFraction() != 300.0/6000.0 {
		t.Fatalf("shed fraction = %v", rep.ShedFraction())
	}
	if len(rep.Verdicts) != 2 {
		t.Fatalf("want 2 dst verdicts (addrs 9 and 5 over the 0.10 gate): %+v", rep.Verdicts)
	}
	if rep.Verdicts[0].Addr != 9 || rep.Verdicts[0].Packets != 900 {
		t.Fatalf("heaviest verdict must lead: %+v", rep.Verdicts)
	}
	if rep.Verdicts[1].Addr != 5 || rep.Verdicts[1].Packets != 700 {
		t.Fatalf("second verdict must be addr 5: %+v", rep.Verdicts)
	}
}
