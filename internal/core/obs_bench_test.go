package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trafficgen"
)

// benchEpoch drives one ingest+RunEpoch cycle over pre-generated
// traffic — the epoch hot path the instrumentation rides on.
func benchEpoch(b *testing.B, headers []packet.Header) {
	b.Helper()
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 2,
		Summary:     smallSummaryConfig(),
		Controller: ControllerConfig{
			Env:       testEnv(),
			Questions: testQuestions(b, len(headers)),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range headers {
			if err := p.Ingest(h); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead measures the epoch-latency cost of the
// observability layer: the enabled/disabled delta is the price of
// always-on metrics (acceptance: ≤2 %), and the disabled case shows
// instrumentation adds no allocations to the epoch path.
func BenchmarkObsOverhead(b *testing.B) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(21))
	headers := bg.Batch(2000)
	b.Run("disabled", func(b *testing.B) {
		obs.SetEnabled(false)
		b.ReportAllocs()
		benchEpoch(b, headers)
	})
	b.Run("enabled", func(b *testing.B) {
		obs.SetEnabled(true)
		defer func() { obs.SetEnabled(false); obs.ResetAll() }()
		b.ReportAllocs()
		benchEpoch(b, headers)
	})
}
