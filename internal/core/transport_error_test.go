package core

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// startServer runs a MonitorServer over one side of a pipe and returns
// the client side, the monitor and a channel carrying Serve's result.
func startServer(t *testing.T, id int) (net.Conn, *Monitor, chan error) {
	t.Helper()
	m, err := NewMonitor(id, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- (&MonitorServer{Monitor: m}).Serve(server) }()
	t.Cleanup(func() { client.Close() })
	return client, m, done
}

// drainHello consumes the server's opening hello frame.
func drainHello(t *testing.T, conn net.Conn) {
	t.Helper()
	msg, err := wire.ReadFrame(conn)
	if err != nil || msg.Type != wire.MsgHello {
		t.Fatalf("hello: %v %v", msg, err)
	}
}

// TestServerTruncatedFrameMidStream cuts the connection halfway through
// a frame: the server must surface a read error, not hang or treat the
// fragment as a request.
func TestServerTruncatedFrameMidStream(t *testing.T) {
	client, _, done := startServer(t, 40)
	drainHello(t, client)

	// A frame header promising an 8-byte summary-request payload,
	// followed by only 3 payload bytes and EOF.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:4], 8)
	hdr[4] = byte(wire.MsgSummaryRequest)
	if _, err := client.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	client.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server accepted a truncated frame as clean shutdown")
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.ErrClosedPipe) {
			t.Logf("got error %v (any read error is acceptable)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on a truncated frame")
	}
}

// TestServerUnknownMessageType sends a frame with an undefined type
// byte: the server must reject it with an explicit error.
func TestServerUnknownMessageType(t *testing.T) {
	client, _, done := startServer(t, 41)
	drainHello(t, client)

	if err := wire.WriteFrame(client, wire.MsgType(99), []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "unexpected") {
			t.Fatalf("unknown type error = %v, want 'unexpected ...'", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on an unknown message type")
	}
}

// TestRemoteRawPacketsConnClosed closes the connection between a
// raw-batch request and its response: RawPackets must return nil (the
// feedback loop's safe non-confirming default), never error or hang.
func TestRemoteRawPacketsConnClosed(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		// Impersonate the monitor server far enough to complete the
		// hello, swallow the raw request, then die mid-exchange.
		wire.WriteFrame(server, wire.MsgHello, wire.EncodeHello(42))
		wire.ReadFrame(server)
		server.Close()
	}()
	rm, err := DialMonitor(client)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	doneC := make(chan []int, 1)
	go func() {
		hs := rm.RawPackets(0, 0)
		doneC <- []int{len(hs)}
	}()
	select {
	case got := <-doneC:
		if got[0] != 0 {
			t.Fatalf("closed connection returned %d raw packets, want 0", got[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RawPackets hung on a closed connection")
	}
}

// TestRemoteRawPacketsTruncatedBatch answers a raw request with a frame
// that promises more payload than it delivers before closing: the
// client must treat it as missing data.
func TestRemoteRawPacketsTruncatedBatch(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		wire.WriteFrame(server, wire.MsgHello, wire.EncodeHello(7))
		wire.ReadFrame(server) // the raw request
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[0:4], 1000) // promise 1000 bytes
		hdr[4] = byte(wire.MsgRawBatch)
		server.Write(hdr[:])
		server.Write(make([]byte, 10)) // deliver 10
		server.Close()
	}()
	rm, err := DialMonitor(client)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if hs := rm.RawPackets(1, 2); hs != nil {
		t.Fatalf("truncated raw batch yielded %d headers, want nil", len(hs))
	}
}
