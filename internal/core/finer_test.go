package core

import (
	"net"
	"testing"

	"repro/internal/trafficgen"
)

func TestFinerSummaryInProcess(t *testing.T) {
	m, err := NewMonitor(1, smallSummaryConfig()) // k = 100
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(21))
	if err := m.IngestBatch(bg.Batch(500)); err != nil {
		t.Fatal(err)
	}
	ss, _, err := m.CollectSummaries()
	if err != nil || len(ss) != 1 {
		t.Fatalf("summaries: %d, %v", len(ss), err)
	}
	coarse := ss[0]

	fine, err := m.FinerSummary(coarse.Epoch, 250)
	if err != nil {
		t.Fatal(err)
	}
	if fine == nil {
		t.Fatal("finer summary must be available while retained")
	}
	if fine.K() != 250 {
		t.Fatalf("finer summary has k=%d, want 250", fine.K())
	}
	total := 0
	for _, c := range fine.Counts {
		total += c
	}
	if total != 500 {
		t.Fatalf("finer summary stands for %d packets, want 500", total)
	}

	// Requesting fewer centroids than the original is not "finer".
	if _, err := m.FinerSummary(coarse.Epoch, 50); err == nil {
		t.Fatal("k below the original must be rejected")
	}

	// Expired batches yield nil.
	m.AdvanceEpoch()
	m.AdvanceEpoch()
	got, err := m.FinerSummary(coarse.Epoch, 250)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("expired batch must yield nil")
	}
}

func TestFinerSummaryOverWire(t *testing.T) {
	m, err := NewMonitor(4, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(22))
	if err := m.IngestBatch(bg.Batch(500)); err != nil {
		t.Fatal(err)
	}

	client, server := net.Pipe()
	go (&MonitorServer{Monitor: m}).Serve(server)
	remote, err := DialMonitor(client)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	ss, err := remote.PollSummaries(0)
	if err != nil || len(ss) != 1 {
		t.Fatalf("poll: %d, %v", len(ss), err)
	}

	fine, err := remote.FinerSummary(ss[0].Epoch, 200)
	if err != nil {
		t.Fatal(err)
	}
	if fine == nil || fine.K() != 200 {
		t.Fatalf("remote finer summary: %+v", fine)
	}

	// A bogus epoch declines cleanly.
	none, err := remote.FinerSummary(9999, 200)
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Fatal("unknown epoch must decline")
	}
}
