//go:build soak

package core

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
)

// The soak harness (scripts/soak.sh, `go test -tags soak`) runs the
// seeded wire pipeline continuously for SOAK_DURATION (default 30s)
// and scrapes its own /metrics endpoint between epochs to assert the
// deployment is leak-free at steady state:
//
//   - goroutine count flat after warmup (no per-epoch goroutine leak);
//   - summary-arena amortization holds: chunks are carved arenaBatch
//     takes at a time, so chunk allocs per take must stay near the
//     designed 1/arenaBatch, not degrade to one alloc per summary;
//   - heap in-use bounded by a fixed multiple of its post-warmup level
//     (expired chunks are garbage; live memory must not accumulate).

// scrapeMetrics fetches url and returns metric name → value for plain
// (unlabeled) series.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	vals := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		vals[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return vals
}

func soakDuration() time.Duration {
	if s := os.Getenv("SOAK_DURATION"); s != "" {
		d, err := time.ParseDuration(s)
		if err == nil {
			return d
		}
	}
	return 30 * time.Second
}

func TestSoakSteadyState(t *testing.T) {
	addr, err := obs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { obs.SetEnabled(false); obs.ResetAll() }()
	url := fmt.Sprintf("http://%s/metrics", addr)

	const monitors, perEpoch = 3, 3000
	d := startChaosDeployment(t, monitors, chaosRetryConfig(),
		func(int, int) *faultnet.Plan { return nil })

	duration := soakDuration()
	deadline := time.Now().Add(duration)
	t.Logf("soaking for %v against %s", duration, url)

	// Warmup: let arenas, TCP buffers and the inference caches reach
	// steady state before taking the baseline.
	const warmupEpochs = 10
	epochs := 0
	runEpoch := func() {
		ingestEpoch(t, d, perEpoch)
		res := d.poller.Poll(d.ctrl.Epoch())
		if res.Degraded {
			t.Fatalf("epoch %d degraded in a fault-free soak", epochs)
		}
		if _, err := d.ctrl.ProcessEpoch(res.Summaries); err != nil {
			t.Fatalf("epoch %d: %v", epochs, err)
		}
		epochs++
	}
	for i := 0; i < warmupEpochs; i++ {
		runEpoch()
	}
	base := scrapeMetrics(t, url)
	baseGoroutines := base["jaal_go_goroutines"]
	baseChunks := base["jaal_summary_arena_chunk_allocs_total"]
	baseTakes := base["jaal_summary_arena_takes_total"]
	baseHeap := base["jaal_go_heap_inuse_bytes"]
	if baseGoroutines == 0 || baseHeap == 0 {
		t.Fatalf("runtime gauges missing from scrape: %v", base)
	}

	var maxGoroutines float64
	for time.Now().Before(deadline) {
		for i := 0; i < 5; i++ {
			runEpoch()
		}
		cur := scrapeMetrics(t, url)
		if g := cur["jaal_go_goroutines"]; g > maxGoroutines {
			maxGoroutines = g
		}
	}
	final := scrapeMetrics(t, url)
	takes := final["jaal_summary_arena_takes_total"] - baseTakes
	chunks := final["jaal_summary_arena_chunk_allocs_total"] - baseChunks
	t.Logf("soak: %d epochs, goroutines %.0f→%.0f, arena %.0f takes / %.0f chunks, heap %.0fMB→%.0fMB",
		epochs, baseGoroutines, final["jaal_go_goroutines"], takes, chunks,
		baseHeap/(1<<20), final["jaal_go_heap_inuse_bytes"]/(1<<20))

	// Zero goroutine growth: transient scrape/accept goroutines allow a
	// small constant band, but nothing may scale with epoch count.
	if got := final["jaal_go_goroutines"]; got > baseGoroutines+5 {
		t.Errorf("goroutines grew from %.0f to %.0f over %d epochs", baseGoroutines, got, epochs)
	}
	if maxGoroutines > baseGoroutines+10 {
		t.Errorf("goroutine high-water %.0f far above post-warmup %.0f", maxGoroutines, baseGoroutines)
	}
	// Flat arena amortization: summaries are carved arenaBatch (8) at a
	// time, so chunk allocs per take should sit near 1/8. A ratio
	// climbing toward 1 means the reuse path broke and every summary
	// pays a fresh slab.
	if takes > 0 {
		if ratio := chunks / takes; ratio > 0.3 {
			t.Errorf("arena reuse degraded: %.0f chunk allocs for %.0f takes (ratio %.2f, want ~0.125)",
				chunks, takes, ratio)
		}
	}
	// Heap bounded: steady-state churn is fine, monotonic growth is not.
	if got := final["jaal_go_heap_inuse_bytes"]; got > 2*baseHeap+(64<<20) {
		t.Errorf("heap in-use grew from %.0f to %.0f bytes", baseHeap, got)
	}
}
