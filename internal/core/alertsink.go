package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/inference"
	"repro/internal/wire"
)

// AlertSink is the operator-side consumer of MsgAlert frames: the
// endpoint a controller ships its alert stream to. Each consumed
// alert line is handed to Handler and counted
// (jaal_alerts_delivered_total), closing the loop the wire protocol
// left open — MsgAlert existed on the wire with nothing consuming it.
type AlertSink struct {
	// Handler receives each alert line; nil means count-only.
	Handler func(line string)
}

// Serve consumes alert frames from one controller connection until
// EOF. Any frame other than MsgAlert is a protocol error.
func (s *AlertSink) Serve(conn net.Conn) error {
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("core: alert sink: %w", err)
		}
		switch msg.Type {
		case wire.MsgAlert:
			cAlertsDelivered.Inc()
			if s.Handler != nil {
				s.Handler(string(msg.Payload))
			}
		default:
			return fmt.Errorf("core: alert sink got unexpected %v", msg.Type)
		}
	}
}

// ListenAndServe accepts controller connections on ln and serves each
// until its EOF, one goroutine per connection. It returns when the
// listener closes.
func (s *AlertSink) ListenAndServe(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			s.Serve(c)
		}(conn)
	}
}

// AlertWriter ships a controller's alerts to an AlertSink with the
// transport's retry policy: a failed send closes the connection, backs
// off, redials and retries, so a flapping operator endpoint costs
// retries, not alerts — up to the attempt budget.
type AlertWriter struct {
	dial  DialFunc
	retry RetryConfig

	mu   sync.Mutex
	conn net.Conn
}

// NewAlertWriter builds a writer over dial; the connection is
// established lazily on the first Send.
func NewAlertWriter(dial DialFunc, rc RetryConfig) *AlertWriter {
	return &AlertWriter{dial: dial, retry: rc}
}

// Send ships one alert as a MsgAlert frame carrying its log line.
func (w *AlertWriter) Send(a *inference.Alert) error {
	payload := []byte(a.String())
	w.mu.Lock()
	defer w.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < w.retry.attempts(); attempt++ {
		if attempt > 0 {
			//jaalvet:ignore lockheld — w.mu serializes alert sends by design: one frame at a time per sink connection, and alerts are rare
			w.retry.sleep(w.retry.backoff(attempt - 1))
		}
		if w.conn == nil {
			conn, err := w.dial()
			if err != nil {
				lastErr = err
				continue
			}
			w.conn = conn
		}
		if w.retry.Timeout > 0 {
			w.conn.SetWriteDeadline(time.Now().Add(w.retry.Timeout)) //jaalvet:ignore detrand — I/O deadline arming; the alert payload is stamped by the controller's Clock, not here
		}
		//jaalvet:ignore lockheld — same per-connection serialization; see the sleep above
		if err := wire.WriteFrame(w.conn, wire.MsgAlert, payload); err != nil {
			lastErr = err
			w.conn.Close()
			w.conn = nil
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: alert sink unreachable")
	}
	return lastErr
}

// Close closes the writer's connection, if any.
func (w *AlertWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn == nil {
		return nil
	}
	err := w.conn.Close()
	w.conn = nil
	return err
}
