package core

import (
	"math/rand"
	"net"
	"net/netip"
	"testing"

	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// testQuestions translates the library at the low-FPR operating point
// and rescales the count thresholds to the test's epoch volume.
func testQuestions(t testing.TB, volume int) map[rules.AttackID]*rules.Question {
	t.Helper()
	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	qs, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, q := range qs {
		qs[id] = q.ScaleForVolume(volume)
	}
	return qs
}

func testEnv() *rules.Environment {
	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	return env
}

func smallSummaryConfig() summary.Config {
	return summary.Config{BatchSize: 500, Rank: 12, Centroids: 100, MinBatch: 100, Seed: 3}
}

func TestMonitorBatchingAndSummaries(t *testing.T) {
	m, err := NewMonitor(1, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(1))
	if err := m.IngestBatch(bg.Batch(1200)); err != nil {
		t.Fatal(err)
	}
	ss, pending, err := m.CollectSummaries()
	if err != nil {
		t.Fatal(err)
	}
	// 1200 packets = 2 sealed batches of 500 + 200 pending (>= MinBatch
	// 100, so flushed into a third summary).
	if len(ss) != 3 {
		t.Fatalf("got %d summaries, want 3", len(ss))
	}
	if pending != 0 {
		t.Fatalf("pending = %d, want 0 after flush", pending)
	}
	for _, s := range ss {
		if s.MonitorID != 1 {
			t.Fatalf("summary monitor ID = %d", s.MonitorID)
		}
	}
}

func TestMonitorDeclinesBelowMinBatch(t *testing.T) {
	m, err := NewMonitor(2, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(2))
	if err := m.IngestBatch(bg.Batch(50)); err != nil { // < MinBatch 100
		t.Fatal(err)
	}
	ss, pending, err := m.CollectSummaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 0 || pending != 50 {
		t.Fatalf("got %d summaries, %d pending; want 0 and 50", len(ss), pending)
	}
}

func TestMonitorRawRetention(t *testing.T) {
	m, err := NewMonitor(3, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(3))
	if err := m.IngestBatch(bg.Batch(500)); err != nil {
		t.Fatal(err)
	}
	ss, _, err := m.CollectSummaries()
	if err != nil || len(ss) != 1 {
		t.Fatalf("summaries: %v %v", len(ss), err)
	}
	s := ss[0]
	total := 0
	for c := 0; c < s.K(); c++ {
		total += len(m.RawPackets(s.Epoch, c))
	}
	if total != 500 {
		t.Fatalf("retained %d raw packets, want 500", total)
	}
	m.AdvanceEpoch()
	m.AdvanceEpoch()
	if m.RawPackets(s.Epoch, 0) != nil {
		t.Fatal("retention must expire after two epochs")
	}
}

func TestMonitorLoadAndReset(t *testing.T) {
	m, _ := NewMonitor(4, smallSummaryConfig())
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(4))
	m.IngestBatch(bg.Batch(42))
	if l := m.LoadAndReset(); l != 42 {
		t.Fatalf("load = %d, want 42", l)
	}
	if l := m.LoadAndReset(); l != 0 {
		t.Fatalf("load after reset = %d, want 0", l)
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(ControllerConfig{}); err == nil {
		t.Fatal("empty question set must be rejected")
	}
	qs := testQuestions(t, 1000)
	bad := ControllerConfig{
		Questions: qs,
		Feedback: map[rules.AttackID]inference.FeedbackConfig{
			rules.AttackSYNFlood: {TauD1: 0.5, TauD2: 0.1},
		},
	}
	if _, err := NewController(bad); err == nil {
		t.Fatal("inverted feedback thresholds must be rejected")
	}
}

func TestPipelineDetectsDistributedSYNFlood(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 4,
		Summary:     smallSummaryConfig(),
		Controller:  ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 8000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(5))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 5, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 5})
	for _, lp := range mix.Batch(8000) {
		if err := p.Ingest(lp.Header); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, a := range alerts {
		if a.Attack == rules.AttackDistributedSYNFlood && a.Distributed {
			found = true
		}
	}
	if !found {
		t.Fatalf("distributed SYN flood not detected; alerts: %v", alerts)
	}
	st := p.Controller.Stats()
	if st.PacketsSummarized == 0 || st.SummaryElements == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
	// Headline overhead property: summaries cost well under raw headers.
	if st.OverheadFraction() >= 1 {
		t.Fatalf("summary overhead fraction %.2f must be < 1", st.OverheadFraction())
	}
}

func TestPipelineCleanTrafficNoFloodAlert(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 3,
		Summary:     smallSummaryConfig(),
		Controller:  ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 6000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(6))
	for _, h := range bg.Batch(6000) {
		if err := p.Ingest(h); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alerts {
		if a.Attack == rules.AttackDistributedSYNFlood || a.Attack == rules.AttackSYNFlood {
			t.Fatalf("false flood alert on clean traffic: %v", a)
		}
	}
}

func TestPipelineFlowStickiness(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 4,
		Summary:     smallSummaryConfig(),
		Controller:  ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 1000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := packet.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Protocol: packet.ProtoTCP}
	for i := 0; i < 10; i++ {
		if err := p.Ingest(h); err != nil {
			t.Fatal(err)
		}
	}
	// All 10 packets must land on a single monitor (each flow monitored
	// exactly once, §6).
	withLoad := 0
	for _, m := range p.Monitors {
		if m.LoadAndReset() > 0 {
			withLoad++
		}
	}
	if withLoad != 1 {
		t.Fatalf("flow spread over %d monitors, want 1", withLoad)
	}
}

func TestPipelineFeedbackAccounting(t *testing.T) {
	qs := testQuestions(t, 4000)
	fb := make(map[rules.AttackID]inference.FeedbackConfig)
	for id := range qs {
		// τ_d1 = 0 forces the uncertain path whenever τ_d2 matches.
		fb[id] = inference.FeedbackConfig{TauD1: 0, TauD2: 0.2}
	}
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 2,
		Summary:     smallSummaryConfig(),
		Controller: ControllerConfig{
			Env: testEnv(), Questions: qs, Feedback: fb, UseFeedback: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(7))
	atk, _ := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 7, Victim: 0x0A000001})
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 7})
	for _, lp := range mix.Batch(4000) {
		if err := p.Ingest(lp.Header); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	st := p.Controller.Stats()
	if st.RawPacketsFetched == 0 {
		t.Fatal("feedback loop must have fetched raw packets")
	}
	if st.FeedbackBytes() == 0 {
		t.Fatal("feedback bytes must be accounted")
	}
}

func TestTransportEndToEnd(t *testing.T) {
	m, err := NewMonitor(9, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(8))
	if err := m.IngestBatch(bg.Batch(600)); err != nil {
		t.Fatal(err)
	}

	client, server := net.Pipe()
	srv := &MonitorServer{Monitor: m}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(server) }()

	remote, err := DialMonitor(client)
	if err != nil {
		t.Fatal(err)
	}
	if remote.ID() != 9 {
		t.Fatalf("remote ID = %d, want 9", remote.ID())
	}

	load, err := remote.QueryLoad()
	if err != nil {
		t.Fatal(err)
	}
	if load != 600 {
		t.Fatalf("load = %v, want 600", load)
	}

	ss, err := remote.PollSummaries(0)
	if err != nil {
		t.Fatal(err)
	}
	// 600 packets = 1 sealed batch of 500 + 100 pending (= MinBatch →
	// flushed): 2 summaries.
	if len(ss) != 2 {
		t.Fatalf("polled %d summaries, want 2", len(ss))
	}

	// Raw fetch round trip for the first centroid with members.
	s := ss[0]
	var centroid int = -1
	for c, n := range s.Counts {
		if n > 0 {
			centroid = c
			break
		}
	}
	if centroid == -1 {
		t.Fatal("no populated centroid")
	}
	hs := remote.RawPackets(s.Epoch, centroid)
	if len(hs) != s.Counts[centroid] {
		t.Fatalf("raw fetch returned %d headers, counts say %d", len(hs), s.Counts[centroid])
	}

	remote.Close()
	if err := <-done; err != nil {
		t.Fatalf("server exited with %v", err)
	}
}

func TestTransportOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	m, _ := NewMonitor(11, smallSummaryConfig())
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(9))
	m.IngestBatch(bg.Batch(500))

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		(&MonitorServer{Monitor: m}).Serve(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	remote, err := DialMonitor(conn)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := remote.PollSummaries(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 1 {
		t.Fatalf("polled %d summaries over TCP, want 1", len(ss))
	}
	// Feed the polled summaries through a controller: full remote path.
	ctrl, err := NewController(ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 500)})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.RegisterSource(remote.ID(), remote)
	if _, err := ctrl.ProcessEpoch(ss); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineMonitorSeedsDiffer(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 2,
		Summary:     smallSummaryConfig(),
		Controller:  ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 500)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Identical input to both monitors must not produce identical
	// k-means initializations (seeds are decorrelated per monitor).
	rng := rand.New(rand.NewSource(10))
	hs := make([]packet.Header, 500)
	for i := range hs {
		hs[i] = packet.Header{SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			Protocol: packet.ProtoTCP, Flags: packet.FlagACK,
			SrcPort: uint16(rng.Intn(65536)), DstPort: 80, Window: uint16(rng.Intn(65536))}
	}
	p.Monitors[0].IngestBatch(hs)
	p.Monitors[1].IngestBatch(hs)
	s0, _, _ := p.Monitors[0].CollectSummaries()
	s1, _, _ := p.Monitors[1].CollectSummaries()
	if len(s0) != 1 || len(s1) != 1 {
		t.Fatal("expected one summary each")
	}
	identical := true
	for i := 0; i < s0[0].Centroids.Rows() && identical; i++ {
		for j := 0; j < s0[0].Centroids.Cols(); j++ {
			if s0[0].Centroids.At(i, j) != s1[0].Centroids.At(i, j) {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Fatal("monitor seeds must be decorrelated")
	}
}
