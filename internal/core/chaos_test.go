package core

import (
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/trafficgen"
)

// The chaos suite drives a full seeded wire deployment — monitors
// behind TCP listeners, a controller polling through the
// fault-tolerant transport — through scripted faultnet plans, and pins
// the two halves of the degradation contract:
//
//   - whenever every summary eventually arrives (faults hit request
//     writes, handshakes, or add latency — never a response that
//     already consumed monitor state), the alert stream is
//     byte-identical to the fault-free run;
//   - when a monitor is permanently lost, epochs complete degraded:
//     no hang, declines recorded, jaal_epoch_degraded_total counting.
//
// Fault plans only script resets/stalls on write ops and on read 0
// (the hello): client write boundaries are deterministic, while TCP
// segmentation may split later reads unpredictably, so only delays —
// which never change protocol bytes — are scheduled on other reads.

// chaosDeployment is one wire deployment under test.
type chaosDeployment struct {
	monitors []*Monitor
	remotes  []*RemoteMonitor
	poller   *Poller
	ctrl     *Controller
	mix      *trafficgen.Mixer
}

// startChaosDeployment builds m monitors served over real TCP (accept
// loops, so reconnects find a fresh session) and connects a retrying
// remote handle through planFor(mon, conn) fault plans.
func startChaosDeployment(t *testing.T, m int, rc RetryConfig, planFor func(mon, conn int) *faultnet.Plan) *chaosDeployment {
	t.Helper()
	d := &chaosDeployment{}
	for i := 0; i < m; i++ {
		mon, err := NewMonitor(i, smallSummaryConfig())
		if err != nil {
			t.Fatal(err)
		}
		d.monitors = append(d.monitors, mon)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		var conns sync.Map
		go func(mon *Monitor) {
			srv := &MonitorServer{Monitor: mon, WriteTimeout: 5 * time.Second}
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				conns.Store(conn, struct{}{})
				go func() {
					defer conn.Close()
					srv.Serve(conn)
				}()
			}
		}(mon)
		t.Cleanup(func() {
			conns.Range(func(k, _ any) bool { k.(net.Conn).Close(); return true })
		})

		addr := ln.Addr().String()
		mi := i
		dial := faultnet.Dialer(
			func() (net.Conn, error) { return net.Dial("tcp", addr) },
			func(conn int) *faultnet.Plan { return planFor(mi, conn) },
		)
		rm := NewRemoteMonitor(i, dial, rc)
		t.Cleanup(func() { rm.Close() })
		d.remotes = append(d.remotes, rm)
	}
	ctrl, err := NewController(ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 3000)})
	if err != nil {
		t.Fatal(err)
	}
	d.ctrl = ctrl
	d.poller = &Poller{Remotes: d.remotes}

	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(1))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 5, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	d.mix = trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 5})
	return d
}

// chaosRetryConfig keeps retries fast under the race detector: real
// deadlines (stalls must expire), recorded-but-unpaid backoff.
func chaosRetryConfig() RetryConfig {
	return RetryConfig{
		Timeout:     2 * time.Second,
		Attempts:    5,
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
		Jitter:      rand.New(rand.NewSource(99)),
		Sleep:       func(time.Duration) {}, // schedule pinned by TestRetryBackoffSchedule; don't pay it
	}
}

// ingestEpoch routes one epoch of seeded traffic to monitors by flow
// hash, so every run of a scenario ingests identically.
func ingestEpoch(t *testing.T, d *chaosDeployment, perEpoch int) {
	t.Helper()
	for _, lp := range d.mix.Batch(perEpoch) {
		h := lp.Header
		idx := int(h.Flow().FastHash() % uint64(len(d.monitors)))
		if err := d.monitors[idx].Ingest(h); err != nil {
			t.Fatal(err)
		}
	}
}

// runChaosEpochs drives the ingest→poll→infer loop and returns the
// rendered alert stream.
func runChaosEpochs(t *testing.T, d *chaosDeployment, epochs, perEpoch int) []string {
	t.Helper()
	var lines []string
	for e := 0; e < epochs; e++ {
		ingestEpoch(t, d, perEpoch)
		res := d.poller.Poll(d.ctrl.Epoch())
		alerts, err := d.ctrl.ProcessEpoch(res.Summaries)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			lines = append(lines, a.String())
		}
	}
	return lines
}

// eventualDeliveryPlan scripts transient faults that all heal on
// retry: handshake resets and stalls, request-write resets and
// truncations, and read delays. None of them can consume monitor
// state before failing, so every summary eventually arrives.
func eventualDeliveryPlan(mon, conn int) *faultnet.Plan {
	switch {
	case mon == 0 && conn == 0:
		// First poll request resets before the frame header leaves.
		return faultnet.NewPlan(
			faultnet.Fault{Op: faultnet.OpWrite, Index: 0, Kind: faultnet.KindReset})
	case mon == 1 && conn == 0:
		// Hello stalls until the deadline; the dial retries.
		return faultnet.NewPlan(
			faultnet.Fault{Op: faultnet.OpRead, Index: 0, Kind: faultnet.KindStall})
	case mon == 1 && conn == 1:
		// The reconnect also misbehaves once: its first request is
		// truncated mid-header. The third connection heals.
		return faultnet.NewPlan(
			faultnet.Fault{Op: faultnet.OpWrite, Index: 0, Kind: faultnet.KindTruncate, KeepBytes: 3})
	case mon == 2 && conn == 0:
		// Slow link: delayed reads and request writes — latency only,
		// never lost bytes.
		return faultnet.NewPlan(
			faultnet.Fault{Op: faultnet.OpRead, Index: 1, Kind: faultnet.KindDelay, Delay: time.Millisecond},
			faultnet.Fault{Op: faultnet.OpRead, Index: 3, Kind: faultnet.KindDelay, Delay: time.Millisecond},
			faultnet.Fault{Op: faultnet.OpWrite, Index: 2, Kind: faultnet.KindDelay, Delay: time.Millisecond})
	default:
		return nil
	}
}

func TestChaosEventualDeliveryAlertsIdentical(t *testing.T) {
	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false); obs.ResetAll() }()

	const monitors, epochs, perEpoch = 3, 4, 3000

	baselineD := startChaosDeployment(t, monitors, chaosRetryConfig(),
		func(int, int) *faultnet.Plan { return nil })
	baseline := runChaosEpochs(t, baselineD, epochs, perEpoch)
	if len(baseline) == 0 {
		t.Fatal("baseline run raised no alerts; the identity assertion would be vacuous")
	}

	// Shorter deadline so the scripted hello stall resolves quickly;
	// everything else identical.
	rc := chaosRetryConfig()
	rc.Timeout = 300 * time.Millisecond
	before := cReconnects.Value()
	faultedD := startChaosDeployment(t, monitors, rc, eventualDeliveryPlan)
	faulted := runChaosEpochs(t, faultedD, epochs, perEpoch)

	if got, want := strings.Join(faulted, "\n"), strings.Join(baseline, "\n"); got != want {
		t.Fatalf("alert stream diverged under transient faults:\nfaulted:\n%s\nbaseline:\n%s", got, want)
	}
	if cReconnects.Value() == before {
		t.Fatal("fault plan never forced a reconnect; the scenario tested nothing")
	}
	if bs, fs := baselineD.ctrl.Stats(), faultedD.ctrl.Stats(); bs != fs {
		t.Fatalf("stats diverged under transient faults: %+v vs %+v", fs, bs)
	}
}

func TestChaosPermanentMonitorLossDegrades(t *testing.T) {
	obs.SetEnabled(true)
	defer func() { obs.SetEnabled(false); obs.ResetAll() }()

	const monitors, epochs, perEpoch = 3, 3, 3000
	const lost = 2

	rc := chaosRetryConfig()
	rc.Attempts = 3
	// Monitor `lost` resets every hello on every connection: gone for
	// good.
	d := startChaosDeployment(t, monitors, rc, func(mon, conn int) *faultnet.Plan {
		if mon == lost {
			return faultnet.NewPlan(
				faultnet.Fault{Op: faultnet.OpRead, Index: 0, Kind: faultnet.KindReset})
		}
		return nil
	})

	degradedBefore := cEpochDegraded.Value()
	done := make(chan struct{})
	var declines []MonitorDecline
	go func() {
		defer close(done)
		for e := 0; e < epochs; e++ {
			ingestEpoch(t, d, perEpoch)
			res := d.poller.Poll(d.ctrl.Epoch())
			if !res.Degraded {
				t.Errorf("epoch %d: lost monitor did not degrade the poll", e)
			}
			declines = append(declines, res.Declines...)
			if _, err := d.ctrl.ProcessEpoch(res.Summaries); err != nil {
				t.Errorf("epoch %d: %v", e, err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("degraded epochs hung instead of completing")
	}

	if got := cEpochDegraded.Value() - degradedBefore; got != epochs {
		t.Fatalf("jaal_epoch_degraded_total advanced by %d, want %d", got, epochs)
	}
	var unreachable int
	for _, dec := range declines {
		if dec.MonitorID == lost && dec.Unreachable() {
			unreachable++
		}
	}
	if unreachable != epochs {
		t.Fatalf("recorded %d unreachable declines for monitor %d, want %d", unreachable, lost, epochs)
	}
	if st := d.ctrl.Stats(); st.Epochs != epochs || st.PacketsSummarized == 0 {
		t.Fatalf("degraded epochs did not process surviving summaries: %+v", st)
	}
}

// TestReconnectRejectsWrongMonitor pins the identity check: a
// reconnect that reaches a different monitor must fail loudly, not
// silently merge another monitor's traffic into the epoch.
func TestReconnectRejectsWrongMonitor(t *testing.T) {
	mkServer := func(id int) string {
		m, err := NewMonitor(id, smallSummaryConfig())
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					(&MonitorServer{Monitor: m}).Serve(conn)
				}()
			}
		}()
		return ln.Addr().String()
	}
	addr5, addr6 := mkServer(5), mkServer(6)

	var mu sync.Mutex
	dials := 0
	dial := func() (net.Conn, error) {
		mu.Lock()
		n := dials
		dials++
		mu.Unlock()
		if n == 0 {
			return net.Dial("tcp", addr5)
		}
		return net.Dial("tcp", addr6)
	}
	rc := chaosRetryConfig()
	rc.Attempts = 3
	rm, err := DialMonitorRetry(dial, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if rm.ID() != 5 {
		t.Fatalf("connected to monitor %d, want 5", rm.ID())
	}
	rm.Close() // force the next exchange to reconnect — to the wrong monitor
	if _, _, _, err := rm.Poll(0); err == nil || !strings.Contains(err.Error(), "5") {
		t.Fatalf("reconnect to a different monitor must fail with an identity error, got %v", err)
	}
}

// TestRetryBackoffSchedule pins the capped-exponential-with-jitter
// schedule: deterministic for a seeded jitter source, capped at
// BackoffMax, jittered by at most 50 %.
func TestRetryBackoffSchedule(t *testing.T) {
	base := RetryConfig{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond}
	for n, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	} {
		if got := base.backoff(n); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", n, got, want)
		}
	}

	jittered := base
	jittered.Jitter = rand.New(rand.NewSource(3))
	for n := 0; n < 6; n++ {
		plain := base.backoff(n)
		got := jittered.backoff(n)
		if got < plain || got > plain+plain/2 {
			t.Fatalf("jittered backoff(%d) = %v outside [%v, %v]", n, got, plain, plain+plain/2)
		}
	}
	a := RetryConfig{BackoffBase: time.Millisecond, Jitter: rand.New(rand.NewSource(7))}
	b := RetryConfig{BackoffBase: time.Millisecond, Jitter: rand.New(rand.NewSource(7))}
	for n := 0; n < 8; n++ {
		if a.backoff(n) != b.backoff(n) {
			t.Fatalf("same-seed jitter diverged at retry %d", n)
		}
	}
}
