package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/trace"
)

// updateTraceGolden regenerates testdata/trace_topology.golden from the
// current instrumentation instead of comparing against it.
var updateTraceGolden = flag.Bool("update-trace-golden", false,
	"rewrite the trace topology golden file")

// withEpochTracing turns the global tracer on with fresh state and
// restores the disabled default when the test ends.
func withEpochTracing(t *testing.T) {
	t.Helper()
	trace.Reset()
	trace.SetEnabled(true)
	t.Cleanup(func() {
		trace.SetEnabled(false)
		trace.Reset()
	})
}

// TestPipelineTraceDeterminism locks in the tracing layer's hard
// constraint: epoch tracing is a write-only side channel, so the same
// seeded workload produces byte-identical alerts and identical
// accounting with tracing off or on, sequentially or fanned out.
func TestPipelineTraceDeterminism(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	offSeq, offSeqStats := runSeededWorkload(t, 1)
	offPar, offParStats := runSeededWorkload(t, workers)

	withEpochTracing(t)
	onSeq, onSeqStats := runSeededWorkload(t, 1)
	trace.Reset()
	onPar, onParStats := runSeededWorkload(t, workers)

	if offSeq != onSeq || offSeqStats != onSeqStats {
		t.Errorf("workers=1: tracing changed the run:\n--- off ---\n%s--- on ---\n%s\nstats %+v vs %+v",
			offSeq, onSeq, offSeqStats, onSeqStats)
	}
	if offPar != onPar || offParStats != onParStats {
		t.Errorf("workers=%d: tracing changed the run:\n--- off ---\n%s--- on ---\n%s\nstats %+v vs %+v",
			workers, offPar, onPar, offParStats, onParStats)
	}
	// The tracer must actually have recorded the workload (guards
	// against a silently disabled layer passing the comparison).
	if traces := trace.Snapshot(0); len(traces) == 0 {
		t.Fatal("tracing enabled but no epoch traces recorded")
	}
}

// topology renders the retained epoch traces (oldest first) in a
// timestamp-free normal form: per epoch, the alert count and one line
// per (proc, monitor, stage) group with its span count. Wall-clock
// fields (starts, durations, critical path, slowest monitor) are
// scrubbed, so the rendering depends only on which spans each pipeline
// stage emits — the golden-file contract.
func topology(traces []*trace.EpochTrace) string {
	var b strings.Builder
	for i := len(traces) - 1; i >= 0; i-- { // Snapshot is newest-first
		tr := traces[i]
		fmt.Fprintf(&b, "epoch %d: alerts=%d\n", tr.Epoch, tr.Alerts)
		type key struct {
			proc, monitor int32
			stage         string
		}
		counts := map[key]int{}
		var keys []key
		for _, s := range tr.Spans {
			k := key{s.Proc, s.Monitor, s.Stage.String()}
			if counts[k] == 0 {
				keys = append(keys, k)
			}
			counts[k]++
		}
		sort.Slice(keys, func(i, j int) bool {
			a, c := keys[i], keys[j]
			if a.proc != c.proc {
				return a.proc < c.proc
			}
			if a.monitor != c.monitor {
				return a.monitor < c.monitor
			}
			return a.stage < c.stage
		})
		for _, k := range keys {
			fmt.Fprintf(&b, "  proc=%d monitor=%d stage=%s n=%d\n", k.proc, k.monitor, k.stage, counts[k])
		}
	}
	return b.String()
}

// TestPipelineTraceGolden runs the seeded workload with tracing on and
// compares the normalized trace topology against a golden file: the
// same stages, attributed to the same processes and monitors, with the
// same span counts, at every worker count. Regenerate with
// -update-trace-golden after an intentional instrumentation change.
func TestPipelineTraceGolden(t *testing.T) {
	withEpochTracing(t)
	_, _ = runSeededWorkload(t, 1)
	seq := topology(trace.Snapshot(0))

	trace.Reset()
	_, _ = runSeededWorkload(t, runtime.GOMAXPROCS(0))
	par := topology(trace.Snapshot(0))

	if seq != par {
		t.Fatalf("trace topology depends on worker count:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
			seq, runtime.GOMAXPROCS(0), par)
	}

	golden := filepath.Join("testdata", "trace_topology.golden")
	if *updateTraceGolden {
		if err := os.WriteFile(golden, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-trace-golden to create): %v", err)
	}
	if seq != string(want) {
		t.Errorf("trace topology drifted from golden:\n--- got ---\n%s--- want ---\n%s", seq, want)
	}
}
