package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/adapt"
	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/trafficgen"
)

// countingSource wraps a monitor's raw source and counts how many times
// each (epoch, centroid) is pulled.
type countingSource struct {
	inner  RawSource
	calls  map[[2]uint64]int
	served int
}

func (s *countingSource) RawPackets(epoch uint64, centroid int) []packet.Header {
	s.calls[[2]uint64{epoch, uint64(centroid)}]++
	hs := s.inner.RawPackets(epoch, centroid)
	s.served += len(hs)
	return hs
}

// TestFeedbackFetchSharedCentroidOnce pins the per-epoch raw-fetch
// memoization: when several questions' uncertain bands cover the same
// centroid, the monitor is asked for it exactly once and the transfer
// is accounted exactly once (stats equal the deduplicated header count
// actually served, not the per-question sum).
func TestFeedbackFetchSharedCentroidOnce(t *testing.T) {
	m, err := NewMonitor(1, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(7))
	atk, _ := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 7, Victim: 0x0A000001})
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 7})
	for _, lp := range mix.Batch(4000) {
		if err := m.Ingest(lp.Header); err != nil {
			t.Fatal(err)
		}
	}
	ss, _, err := m.CollectSummaries()
	if err != nil {
		t.Fatal(err)
	}

	qs := testQuestions(t, 4000)
	fb := make(map[rules.AttackID]inference.FeedbackConfig)
	for id := range qs {
		// τ_d1 = 0 forces every τ_d2 match into the uncertain band, so
		// all questions fetch and their fetch sets overlap heavily.
		fb[id] = inference.FeedbackConfig{TauD1: 0, TauD2: 0.2}
	}
	ctrl, err := NewController(ControllerConfig{
		Env: testEnv(), Questions: qs, Feedback: fb, UseFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := &countingSource{inner: m, calls: make(map[[2]uint64]int)}
	ctrl.RegisterSource(1, src)
	if _, err := ctrl.ProcessEpoch(ss); err != nil {
		t.Fatal(err)
	}
	if len(src.calls) == 0 {
		t.Fatal("workload produced no raw fetches; the test exercises nothing")
	}
	for key, n := range src.calls {
		if n != 1 {
			t.Errorf("centroid (epoch %d, c %d) fetched %d times, want 1", key[0], key[1], n)
		}
	}
	if st := ctrl.Stats(); st.RawPacketsFetched != src.served {
		t.Fatalf("stats count %d raw headers, source served %d — transfer double-counted",
			st.RawPacketsFetched, src.served)
	}
}

// TestFetcherMemoHitReportsZeroTransfer pins the fetcher's contract
// with inference.RunFeedback: the first pull of a ref transfers, a
// repeat pull is served from the memo with transferred == 0, and the
// deduplicated byte count moves only once.
func TestFetcherMemoHitReportsZeroTransfer(t *testing.T) {
	m, err := NewMonitor(3, smallSummaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(9))
	if err := m.IngestBatch(bg.Batch(500)); err != nil {
		t.Fatal(err)
	}
	ss, _, err := m.CollectSummaries()
	if err != nil || len(ss) != 1 {
		t.Fatalf("summaries: %d, %v", len(ss), err)
	}
	centroid := -1
	for c, n := range ss[0].Counts {
		if n > 0 {
			centroid = c
			break
		}
	}
	if centroid < 0 {
		t.Fatal("no populated centroid")
	}

	ctrl, err := NewController(ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 500)})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.RegisterSource(3, m)
	fet := newFetcher(ctrl, 0)
	ref := inference.CentroidRef{MonitorID: 3, Epoch: ss[0].Epoch, Centroid: centroid}

	hs1, transferred1, err := fet.FetchRaw(ref)
	if err != nil {
		t.Fatal(err)
	}
	if transferred1 != len(hs1) || transferred1 == 0 {
		t.Fatalf("cold fetch transferred %d of %d headers", transferred1, len(hs1))
	}
	hs2, transferred2, err := fet.FetchRaw(ref)
	if err != nil {
		t.Fatal(err)
	}
	if transferred2 != 0 {
		t.Fatalf("memo hit transferred %d, want 0", transferred2)
	}
	if len(hs2) != len(hs1) {
		t.Fatalf("memo hit returned %d headers, cold fetch %d", len(hs2), len(hs1))
	}
	if fet.bytes != transferred1 {
		t.Fatalf("deduplicated byte count %d, want %d", fet.bytes, transferred1)
	}
}

// adaptFeedbackConfigs returns per-attack configs that sit strictly
// inside adapt.DefaultLimits, so enabling the adapter clamps nothing
// and a Step=0 adapter is a pure no-op.
func adaptFeedbackConfigs(qs map[rules.AttackID]*rules.Question) map[rules.AttackID]inference.FeedbackConfig {
	fb := make(map[rules.AttackID]inference.FeedbackConfig, len(qs))
	for id := range qs {
		fb[id] = inference.FeedbackConfig{TauD1: 0.015, TauD2: 0.12, CountScale2: 0.55}
	}
	return fb
}

// runAdaptWorkload drives five identical epochs of seeded mixed traffic
// through a feedback pipeline and returns the alert trace, the final
// stats and the final feedback configs.
func runAdaptWorkload(t *testing.T, workers int, ac *adapt.Config) (string, Stats, map[rules.AttackID]inference.FeedbackConfig) {
	t.Helper()
	qs := testQuestions(t, 2500)
	p, err := NewPipeline(PipelineConfig{
		NumMonitors: 4,
		Summary:     smallSummaryConfig(),
		Controller: ControllerConfig{
			Env:         testEnv(),
			Questions:   qs,
			Feedback:    adaptFeedbackConfigs(qs),
			UseFeedback: true,
			Workers:     workers,
			Adapt:       ac,
		},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(11))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 11, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 11})
	var trace string
	for round := 0; round < 5; round++ {
		for _, lp := range mix.Batch(2500) {
			if err := p.Ingest(lp.Header); err != nil {
				t.Fatal(err)
			}
		}
		alerts, err := p.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		trace += fmt.Sprintf("round %d: %d alerts\n", round, len(alerts))
		for _, a := range alerts {
			trace += a.String() + "\n"
		}
	}
	return trace, p.Controller.Stats(), p.Controller.FeedbackConfigs()
}

// TestAdaptDisabledByteIdentical pins the opt-in contract: a nil Adapt
// config and a Step=0 adapter both leave the alert stream and the
// accounting byte-identical to the static-threshold engine.
func TestAdaptDisabledByteIdentical(t *testing.T) {
	offTrace, offStats, offFB := runAdaptWorkload(t, 1, nil)

	frozen := adapt.DefaultConfig(0)
	frozen.Step = 0
	zeroTrace, zeroStats, zeroFB := runAdaptWorkload(t, 1, &frozen)

	if offTrace != zeroTrace {
		t.Errorf("alert traces differ between adapt=nil and Step=0:\n--- off ---\n%s--- frozen ---\n%s",
			offTrace, zeroTrace)
	}
	if offStats != zeroStats {
		t.Errorf("stats differ: %+v vs %+v", offStats, zeroStats)
	}
	if !reflect.DeepEqual(offFB, zeroFB) {
		t.Errorf("feedback configs moved under Step=0: %+v vs %+v", offFB, zeroFB)
	}
}

// TestAdaptDeterministicAcrossWorkers extends the engine's determinism
// invariant to the adaptive path: the threshold trajectory feeds back
// into inference, so it too must be identical for every worker count.
func TestAdaptDeterministicAcrossWorkers(t *testing.T) {
	ac := adapt.DefaultConfig(64 << 10)
	ac.Seed = 17
	ac.WidenAfter = 2

	seqTrace, seqStats, seqFB := runAdaptWorkload(t, 1, &ac)
	parTrace, parStats, parFB := runAdaptWorkload(t, runtime.GOMAXPROCS(0), &ac)

	if seqTrace != parTrace {
		t.Errorf("adaptive alert traces differ between workers=1 and workers=%d:\n--- sequential ---\n%s--- parallel ---\n%s",
			runtime.GOMAXPROCS(0), seqTrace, parTrace)
	}
	if seqStats != parStats {
		t.Errorf("stats differ: %+v vs %+v", seqStats, parStats)
	}
	if !reflect.DeepEqual(seqFB, parFB) {
		t.Errorf("final feedback configs differ:\n%+v\nvs\n%+v", seqFB, parFB)
	}
	// The run must actually have adapted — otherwise this test degrades
	// into TestAdaptDisabledByteIdentical and proves nothing new.
	if !reflect.DeepEqual(seqFB, adaptFeedbackConfigs(testQuestions(t, 2500))) {
		return
	}
	t.Fatal("workload never moved the thresholds; pick a driving traffic mix")
}
