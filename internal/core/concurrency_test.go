package core

import (
	"sync"
	"testing"

	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// TestMonitorConcurrentIngestAndPoll drives a monitor from concurrent
// goroutines the way a deployment does: a packet-ingest loop racing the
// controller's summary polls, raw fetches, load queries and epoch
// advances. Run with -race.
func TestMonitorConcurrentIngestAndPoll(t *testing.T) {
	m, err := NewMonitor(1, summary.Config{BatchSize: 200, Rank: 8, Centroids: 40, MinBatch: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(41))
		for i := 0; i < 5000; i++ {
			if err := m.Ingest(bg.Next()); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
		close(stop)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ss, _, err := m.CollectSummaries()
			if err != nil {
				t.Errorf("collect: %v", err)
				return
			}
			for _, s := range ss {
				for c := 0; c < s.K(); c++ {
					m.RawPackets(s.Epoch, c)
				}
			}
			m.LoadAndReset()
			m.AdvanceEpoch()
		}
	}()

	wg.Wait()
}

// TestMonitorIngestDuringSummarizeWindow stresses the lock-free
// summarize window: several ingest goroutines keep feeding the monitor
// while a collector loop forces flush summarizations, finer-granularity
// re-summarizations and epoch advances. The monitor releases mu during
// every SVD+k-means, so ingest and compute genuinely overlap; the packet
// conservation check at the end proves no header is lost or double
// counted across the snapshot/summarize/publish handoff. Run with -race.
func TestMonitorIngestDuringSummarizeWindow(t *testing.T) {
	cfg := summary.Config{BatchSize: 150, Rank: 8, Centroids: 30, MinBatch: 40, Seed: 2}
	m, err := NewMonitor(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		ingesters   = 3
		perIngester = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
			for i := 0; i < perIngester; i++ {
				if err := m.Ingest(bg.Next()); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(int64(60 + g))
	}
	go func() {
		wg.Wait()
		close(stop)
	}()

	summarized := 0
	collect := func() {
		ss, _, err := m.CollectSummaries()
		if err != nil {
			t.Errorf("collect: %v", err)
			return
		}
		for _, s := range ss {
			summarized += s.BatchSize
			// Hit the retained batch from the same goroutine the
			// controller would: finer re-summarization plus raw fetches
			// race the in-flight ingests.
			if _, err := m.FinerSummary(s.Epoch, cfg.Centroids+10); err != nil {
				t.Errorf("finer: %v", err)
				return
			}
			m.RawPackets(s.Epoch, 0)
		}
	}
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		collect()
		m.AdvanceEpoch()
	}
	// Drain what sealed after the last in-loop collection.
	collect()

	m.mu.Lock()
	pending := m.buf.Pending()
	m.mu.Unlock()
	if got := summarized + pending; got != ingesters*perIngester {
		t.Fatalf("packet conservation: summarized %d + pending %d = %d, want %d",
			summarized, pending, got, ingesters*perIngester)
	}
}

// TestControllerConcurrentEpochs runs inference rounds from multiple
// goroutines against a shared controller; stats and alerts must stay
// consistent. Run with -race.
func TestControllerConcurrentEpochs(t *testing.T) {
	ctrl, err := NewController(ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
			szr, err := NewMonitor(int(seed), summary.Config{BatchSize: 250, Rank: 8, Centroids: 50, MinBatch: 50, Seed: seed})
			if err != nil {
				t.Error(err)
				return
			}
			for round := 0; round < 3; round++ {
				if err := szr.IngestBatch(bg.Batch(250)); err != nil {
					t.Error(err)
					return
				}
				ss, _, err := szr.CollectSummaries()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := ctrl.ProcessEpoch(ss); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(50 + g))
	}
	wg.Wait()
	if st := ctrl.Stats(); st.Epochs != 12 {
		t.Fatalf("epochs = %d, want 12", st.Epochs)
	}
	_ = ctrl.Alerts()
}
