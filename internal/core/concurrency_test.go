package core

import (
	"sync"
	"testing"

	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// TestMonitorConcurrentIngestAndPoll drives a monitor from concurrent
// goroutines the way a deployment does: a packet-ingest loop racing the
// controller's summary polls, raw fetches, load queries and epoch
// advances. Run with -race.
func TestMonitorConcurrentIngestAndPoll(t *testing.T) {
	m, err := NewMonitor(1, summary.Config{BatchSize: 200, Rank: 8, Centroids: 40, MinBatch: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(41))
		for i := 0; i < 5000; i++ {
			if err := m.Ingest(bg.Next()); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
		close(stop)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ss, _, err := m.CollectSummaries()
			if err != nil {
				t.Errorf("collect: %v", err)
				return
			}
			for _, s := range ss {
				for c := 0; c < s.K(); c++ {
					m.RawPackets(s.Epoch, c)
				}
			}
			m.LoadAndReset()
			m.AdvanceEpoch()
		}
	}()

	wg.Wait()
}

// TestControllerConcurrentEpochs runs inference rounds from multiple
// goroutines against a shared controller; stats and alerts must stay
// consistent. Run with -race.
func TestControllerConcurrentEpochs(t *testing.T) {
	ctrl, err := NewController(ControllerConfig{Env: testEnv(), Questions: testQuestions(t, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
			szr, err := NewMonitor(int(seed), summary.Config{BatchSize: 250, Rank: 8, Centroids: 50, MinBatch: 50, Seed: seed})
			if err != nil {
				t.Error(err)
				return
			}
			for round := 0; round < 3; round++ {
				if err := szr.IngestBatch(bg.Batch(250)); err != nil {
					t.Error(err)
					return
				}
				ss, _, err := szr.CollectSummaries()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := ctrl.ProcessEpoch(ss); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(50 + g))
	}
	wg.Wait()
	if st := ctrl.Stats(); st.Epochs != 12 {
		t.Fatalf("epochs = %d, want 12", st.Epochs)
	}
	_ = ctrl.Alerts()
}
