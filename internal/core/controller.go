package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/adapt"
	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/par"
	"repro/internal/rules"
	"repro/internal/snort"
	"repro/internal/summary"
	"repro/internal/trace"
)

// RawSource abstracts how the controller reaches a monitor's retained
// raw packets: directly (in-process pipeline) or over the wire protocol.
type RawSource interface {
	RawPackets(epoch uint64, centroid int) []packet.Header
}

// Controller is Jaal's central analysis-and-inference engine (§5). It
// aggregates the summaries polled from monitors each epoch, evaluates
// every translated rule against the aggregate, and raises alerts — by
// direct similarity matching, variance postprocessing, and optionally
// the two-threshold feedback loop with raw-packet retrieval.
type Controller struct {
	env       *rules.Environment
	questions map[rules.AttackID]*rules.Question
	// ids and qs are the evaluation order, fixed at construction:
	// attack IDs sorted ascending with qs[i] the question for ids[i].
	// The question index is built over qs in this order, so candidate
	// bit i always refers to ids[i].
	ids []rules.AttackID
	qs  []*rules.Question
	// index prunes provably unmatchable questions each epoch; nil when
	// ControllerConfig.DisableIndex forced the linear scan.
	index    *rules.QuestionIndex
	feedback map[rules.AttackID]inference.FeedbackConfig
	// useFeedback enables the two-stage path for attacks with a
	// feedback config.
	useFeedback bool
	// clock stamps alerts; epoch-derived by default so same-seed runs
	// emit byte-identical alert streams.
	clock inference.Clock
	// workers bounds the per-question fan-out of ProcessEpoch
	// (0 = GOMAXPROCS).
	workers int
	// adapter, when non-nil, retunes the feedback configs once per
	// epoch from that epoch's verdicts and deduplicated raw-fetch
	// bytes. Nil (the default) leaves the configs frozen — the output
	// is then byte-identical to a build without the adaptive path.
	adapter *adapt.Controller

	mu      sync.Mutex
	sources map[int]RawSource
	epoch   uint64
	alerts  []*inference.Alert
	// stats accumulate communication accounting across epochs.
	stats Stats
	// lastVolumetric is the most recent merged sketch-digest report
	// (see volumetric.go); nil until a digest-carrying epoch arrives.
	lastVolumetric *VolumetricReport
}

// wireSizeBytes is the per-header transfer cost used by the overhead
// accounting; it matches the packet wire format.
const wireSizeBytes = packet.WireSize

// Stats tracks the communication accounting of §8.
type Stats struct {
	// SummaryElements is the total float64 elements received in
	// summaries.
	SummaryElements int
	// RawPacketsFetched counts raw headers pulled by the feedback loop.
	RawPacketsFetched int
	// PacketsSummarized is the total raw packets the summaries stand for.
	PacketsSummarized int
	// Epochs is the number of inference rounds executed.
	Epochs int
	// AlertsRaised counts issued alerts.
	AlertsRaised int
}

// SummaryBytes estimates the bytes transferred for summaries (4 bytes
// per float32 element on the wire).
func (s Stats) SummaryBytes() int { return s.SummaryElements * 4 }

// RawHeaderBytes returns the bytes the equivalent raw-header transfer
// would have cost, the baseline of the paper's overhead comparison.
func (s Stats) RawHeaderBytes() int { return s.PacketsSummarized * wireSizeBytes }

// FeedbackBytes returns bytes spent on feedback raw fetches.
func (s Stats) FeedbackBytes() int { return s.RawPacketsFetched * wireSizeBytes }

// OverheadFraction returns (summary + feedback bytes) / raw bytes: the
// paper's headline "35 % of raw" metric.
func (s Stats) OverheadFraction() float64 {
	raw := s.RawHeaderBytes()
	if raw == 0 {
		return 0
	}
	return float64(s.SummaryBytes()+s.FeedbackBytes()) / float64(raw)
}

// ControllerConfig assembles a controller.
type ControllerConfig struct {
	// Env resolves rule variables ($HOME_NET etc.).
	Env *rules.Environment
	// Questions are the translated rules to evaluate each epoch.
	Questions map[rules.AttackID]*rules.Question
	// Feedback holds per-attack two-threshold configs; attacks present
	// here use the feedback loop when UseFeedback is set.
	Feedback map[rules.AttackID]inference.FeedbackConfig
	// UseFeedback enables the §5.3 two-stage path.
	UseFeedback bool
	// Workers bounds how many questions ProcessEpoch evaluates
	// concurrently; zero selects GOMAXPROCS, 1 forces the sequential
	// sweep. Results merge in sorted attack-ID order, so alerts are
	// identical for every worker count.
	Workers int
	// Clock stamps alerts. Nil selects inference.DefaultClock, which
	// derives the timestamp from the epoch counter; install a wall
	// clock only in live (non-reproducible) deployments.
	Clock inference.Clock
	// Adapt, when non-nil, enables the adaptive threshold controller:
	// after each epoch the per-attack feedback configs are nudged
	// toward Adapt's raw-fetch budget and target uncertain rate from
	// that epoch's verdicts. Requires UseFeedback and a non-empty
	// Feedback map. Nil keeps the configs static.
	Adapt *adapt.Config
	// DisableIndex forces the linear question sweep instead of the
	// candidate index. The output is byte-identical either way (the
	// index only skips questions whose match set is provably empty);
	// this switch exists as the reference path for equivalence tests
	// and as an escape hatch.
	DisableIndex bool
}

// indexTauHeadroom widens the per-question τ bound the index is built
// with, so the adaptive loop's per-epoch τ_d2 nudges stay inside the
// indexed bound and feedback-map swaps rarely force a rebuild. A wider
// bound only costs pruning power, never correctness (the intervals
// stay a conservative superset).
const indexTauHeadroom = 1.25

// buildIndex constructs the question index over the controller's fixed
// evaluation order, bounding each question by the widest threshold it
// can be evaluated at under the given feedback configs: τ_d2 for
// feedback questions, the question's own τ_d otherwise, both with
// headroom for adaptive nudges.
func (c *Controller) buildIndex(feedback map[rules.AttackID]inference.FeedbackConfig) (*rules.QuestionIndex, error) {
	maxTau := make([]float64, len(c.qs))
	for i, id := range c.ids {
		bound := c.qs[i].DistanceThreshold
		if fb, ok := feedback[id]; c.useFeedback && ok && fb.TauD2 > bound {
			bound = fb.TauD2
		}
		maxTau[i] = bound * indexTauHeadroom
	}
	return rules.NewQuestionIndex(c.qs, maxTau)
}

// NewController builds a controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if len(cfg.Questions) == 0 {
		return nil, fmt.Errorf("core: controller needs at least one question")
	}
	// Validate in sorted order so which config's error surfaces first
	// does not depend on map iteration order.
	fbIDs := make([]rules.AttackID, 0, len(cfg.Feedback))
	for id := range cfg.Feedback {
		fbIDs = append(fbIDs, id)
	}
	sort.Slice(fbIDs, func(i, j int) bool { return fbIDs[i] < fbIDs[j] })
	for _, id := range fbIDs {
		if err := cfg.Feedback[id].Validate(); err != nil {
			return nil, fmt.Errorf("core: feedback config for %s: %w", id, err)
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = inference.DefaultClock
	}
	c := &Controller{
		env:         cfg.Env,
		questions:   cfg.Questions,
		feedback:    cfg.Feedback,
		useFeedback: cfg.UseFeedback,
		workers:     cfg.Workers,
		clock:       clock,
		sources:     make(map[int]RawSource),
	}
	if cfg.Adapt != nil {
		if !cfg.UseFeedback {
			return nil, fmt.Errorf("core: adaptive thresholds require UseFeedback")
		}
		adapter, err := adapt.New(*cfg.Adapt, cfg.Feedback)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		c.adapter = adapter
		// Start from the adapter's clamped view so the configs the
		// questions run under and the trajectory the adapter reports
		// agree from epoch zero.
		c.feedback = adapter.Configs()
	}
	// Fix the evaluation order once: attack IDs sorted ascending. Every
	// epoch reuses it, and the question index is aligned to it.
	ids := make([]rules.AttackID, 0, len(c.questions))
	for id := range c.questions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c.ids = ids
	c.qs = make([]*rules.Question, len(c.ids))
	for i, id := range c.ids {
		if c.qs[i] = c.questions[id]; c.qs[i] == nil {
			return nil, fmt.Errorf("core: nil question for attack %s", id)
		}
	}
	if !cfg.DisableIndex {
		ix, err := c.buildIndex(c.feedback)
		if err != nil {
			return nil, fmt.Errorf("core: question index: %w", err)
		}
		c.index = ix
	}
	return c, nil
}

// RegisterSource attaches a monitor's raw-packet source for the feedback
// loop.
func (c *Controller) RegisterSource(monitorID int, src RawSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sources[monitorID] = src
}

// fetcher adapts the controller's source registry to
// inference.RawPacketFetcher, memoizing within one inference round so
// several questions pulling the same uncertain centroid cost one
// transfer (and are accounted once). It is shared by the concurrently
// evaluated questions of one round: the mutex covers only the memo map,
// and a per-centroid done channel latches the in-flight fetch, so a
// centroid's raw packets are pulled exactly once no matter which
// questions race for them — without stalling unrelated centroids behind
// one monitor's wire round trip.
type fetcher struct {
	c *Controller
	// epoch is the controller epoch the round runs under; raw-fetch
	// trace spans join this epoch's timeline.
	epoch uint64

	mu    sync.Mutex
	memo  map[inference.CentroidRef]*fetchEntry
	bytes int // deduplicated raw-header count for stats
}

// fetchEntry is the per-centroid memo slot. The first question to ask
// for a centroid inserts the entry and fetches with f.mu released;
// racers find the entry and wait on done. Holding f.mu across the
// fetch instead would serialize every question of the round behind one
// wire round trip (lockheld flags exactly that shape).
type fetchEntry struct {
	done chan struct{}
	hs   []packet.Header
	err  error
}

func newFetcher(c *Controller, epoch uint64) *fetcher {
	return &fetcher{c: c, epoch: epoch, memo: make(map[inference.CentroidRef]*fetchEntry)}
}

// FetchRaw implements inference.RawPacketFetcher. A memo hit reports
// transferred == 0: the headers crossed the wire once, on the miss that
// populated the memo, so summing FeedbackResult.RawPackets over an
// epoch's questions equals f.bytes, the deduplicated transfer. (Which
// question pays for a shared centroid depends on goroutine scheduling;
// only the epoch sum is deterministic, and that is all the accounting
// and the adaptive controller consume.)
func (f *fetcher) FetchRaw(ref inference.CentroidRef) ([]packet.Header, int, error) {
	f.mu.Lock()
	if e, ok := f.memo[ref]; ok {
		f.mu.Unlock()
		<-e.done
		return e.hs, 0, e.err
	}
	e := &fetchEntry{done: make(chan struct{})}
	f.memo[ref] = e
	f.mu.Unlock()
	defer close(e.done)

	f.c.mu.Lock()
	src, ok := f.c.sources[ref.MonitorID]
	f.c.mu.Unlock()
	if !ok {
		e.err = fmt.Errorf("core: no raw source for monitor %d", ref.MonitorID)
		return nil, 0, e.err
	}
	// Each memoized miss is one feedback round trip: a span per fetch
	// shows exactly which centroid pulls stretched the epoch.
	sp := trace.StartSpan(hRawFetchSeconds, trace.StageRawFetch, ref.MonitorID, f.epoch)
	e.hs = src.RawPackets(ref.Epoch, ref.Centroid)
	sp.End()
	f.mu.Lock()
	f.bytes += len(e.hs)
	f.mu.Unlock()
	return e.hs, len(e.hs), nil
}

// ProcessEpoch runs one inference round over the summaries collected
// from all monitors and returns the alerts raised (§5.1–§5.3).
func (c *Controller) ProcessEpoch(summaries []*summary.Summary) ([]*inference.Alert, error) {
	defer trace.StartSpan(hEpochSeconds, trace.StageInfer, trace.ControllerProc, c.Epoch()).End()
	agg, err := inference.AggregateSummaries(summaries)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	epoch := c.epoch
	c.epoch++
	c.stats.Epochs++
	c.stats.SummaryElements += agg.Elements
	c.stats.PacketsSummarized += agg.TotalPackets
	// Snapshot the feedback configs and the index for this round: the
	// adapter may swap both at epoch end while nothing else mutates
	// them, so the workers can read the snapshots without locking.
	// Reading them under one lock keeps them consistent — the index's
	// τ bounds always cover the snapshot's τ_d2 values.
	feedback := c.feedback
	index := c.index
	c.mu.Unlock()
	cEpochs.Inc()
	cSummaryElements.Add(int64(agg.Elements))
	cPacketsSummarized.Add(int64(agg.TotalPackets))

	// Convert to the interface once: passing the concrete struct below
	// would box it again for every question of the round.
	var matcher inference.RawMatcher = snort.RawMatcher{Env: c.env}
	fet := newFetcher(c, epoch)

	// One candidate-set computation covers every question this epoch; a
	// nil index (DisableIndex) yields a nil set whose Contains is
	// always true — the linear sweep.
	cs := inference.Candidates(agg, index)
	if index != nil {
		cands := cs.Count()
		cIndexCandidates.Add(int64(cands))
		cIndexPruned.Add(int64(len(c.qs) - cands))
	}

	// Deterministic evaluation order: question evaluation fans out across
	// the worker pool, but each question writes only its own result slot
	// and alerts are assembled sequentially in sorted attack-ID order, so
	// the output is identical for every worker count.
	ids := c.ids

	type qresult struct {
		match *inference.MatchResult
		fb    *inference.FeedbackResult
		err   error
	}
	results := make([]qresult, len(ids))
	par.For(len(ids), c.workers, func(i int) {
		id := ids[i]
		q := c.qs[i]
		fb, hasFB := feedback[id]
		if c.useFeedback && hasFB {
			// Pruning a feedback question is sound only while the index
			// bound covers τ_d2, the widest threshold its stages use.
			// The rebuild-on-swap policy maintains that invariant; if it
			// is ever violated the question just runs unpruned.
			candidate := cs.Contains(i) || (index != nil && !index.Covers(i, fb.TauD2))
			res, err := inference.RunFeedbackIndexed(agg, q, fb, fet, matcher, candidate)
			results[i] = qresult{fb: res, err: err}
			return
		}
		results[i] = qresult{match: inference.EstimateSimilarityIndexed(agg, q, cs.Contains(i))}
	})

	asp := trace.StartSpan(nil, trace.StageAlertEmit, trace.ControllerProc, epoch)
	var alerts []*inference.Alert
	for i, id := range ids {
		r := results[i]
		if r.err != nil {
			return nil, r.err
		}
		if r.fb != nil {
			countVerdict(r.fb.Verdict)
			if r.fb.Alerted {
				alerts = append(alerts, inference.NewAlertFromFeedback(id, epoch, r.fb, c.clock)) //jaal:alloc-ok alerts are rare; most epochs raise none
			}
			continue
		}
		if r.match.Alerted() {
			cSimMatches.Inc()
			alerts = append(alerts, inference.NewAlertFromMatch(id, epoch, r.match, c.clock)) //jaal:alloc-ok alerts are rare; most epochs raise none
		}
	}
	asp.End()

	if c.adapter != nil {
		// Feed the adapter the same per-epoch quantities the obs
		// counters get — never the counters themselves (metrics stay a
		// write-only side channel) and never per-question transfer
		// attribution (scheduling-dependent); only the deterministic
		// verdicts and the deduplicated byte total.
		sample := adapt.EpochSample{
			Epoch:    epoch,
			RawBytes: fet.bytes * wireSizeBytes,
			Attacks:  make(map[rules.AttackID]adapt.AttackSample, len(ids)),
		}
		for i, id := range ids {
			if fb := results[i].fb; fb != nil {
				sample.Attacks[id] = adapt.AttackSample{Verdict: fb.Verdict, Alerted: fb.Alerted}
			}
		}
		next := c.adapter.Observe(sample)
		// Rebuild the index when a nudged τ_d2 outgrew the bound it was
		// indexed under (the headroom makes this rare). The new index
		// and the new configs are swapped in under one lock so the next
		// epoch's snapshot is consistent.
		newIndex := index
		if index != nil {
			for i, id := range ids {
				if fb, ok := next[id]; ok && !index.Covers(i, fb.TauD2) {
					rebuilt, err := c.buildIndex(next)
					if err != nil {
						return nil, fmt.Errorf("core: question index rebuild: %w", err)
					}
					newIndex = rebuilt
					cIndexRebuilds.Inc()
					break
				}
			}
		}
		c.mu.Lock()
		c.feedback = next
		c.index = newIndex
		c.mu.Unlock()
	}

	c.mu.Lock()
	c.alerts = append(c.alerts, alerts...)
	c.stats.AlertsRaised += len(alerts)
	c.stats.RawPacketsFetched += fet.bytes
	stats := c.stats
	c.mu.Unlock()
	cQuestions.Add(int64(len(ids)))
	cAlerts.Add(int64(len(alerts)))
	cFeedbackPulls.Add(int64(fet.bytes))
	gCompression.Set(stats.OverheadFraction())
	return alerts, nil
}

// Alerts returns all alerts raised so far.
func (c *Controller) Alerts() []*inference.Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*inference.Alert, len(c.alerts))
	copy(out, c.alerts)
	return out
}

// Stats returns a copy of the accumulated accounting.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// FeedbackConfigs returns a copy of the per-attack feedback configs the
// next epoch will run under. With adaptive thresholds enabled these
// move over time; otherwise they are the configs passed at construction.
func (c *Controller) FeedbackConfigs() map[rules.AttackID]inference.FeedbackConfig {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[rules.AttackID]inference.FeedbackConfig, len(c.feedback))
	//jaalvet:ignore mapiter — map→map copy; iteration order cannot reach any output
	for id, fb := range c.feedback {
		out[id] = fb
	}
	return out
}

// Adapter returns the adaptive threshold controller, or nil when
// adaptation is disabled.
func (c *Controller) Adapter() *adapt.Controller { return c.adapter }

// Epoch returns the next epoch number to be processed.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}
