// Package par provides the hand-rolled, stdlib-only worker pool behind
// Jaal's parallel summarization engine.
//
// The pool is shared process-wide and sized to runtime.GOMAXPROCS at
// first use: GOMAXPROCS−1 helper goroutines plus the dispatching
// goroutine, which always participates in its own work. Work is handed
// out as fixed-size index chunks claimed from an atomic counter, so the
// split of work never depends on the worker count — a caller that
// stores per-index results and reduces them in index order gets
// byte-identical output whether the work ran on 1 worker or 64. That
// property is what lets the summarization pipeline parallelize the
// Lloyd assignment step, monitor polling and question matching while
// keeping same-seed runs reproducible (see DESIGN.md, "Performance").
//
// Dispatch is allocation-free in steady state: task descriptors are
// recycled through a sync.Pool and handed to helpers over a channel.
// A slot is handed out only after claiming a provably idle helper from
// an atomic count; with no idle helper the slot is shed and the
// dispatcher absorbs the work itself. The claim has to track idle
// helpers, not queue capacity: a buffered send succeeds whenever the
// queue has space, even when every helper is parked inside an outer
// task waiting on this very dispatch — nested fan-outs (a scenario
// sweep whose summarization fans out k-means row chunks) would then
// park all pool participants on work only they could drain. Claiming
// idle helpers makes that state unreachable: a queued task implies a
// helper with no current work, which will dequeue it.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool observability: how often work fans out vs runs inline, how
// often a saturated pool sheds helper slots, and how many goroutines
// are busy right now. Counted once per dispatch (not per chunk), so
// the accounting adds two atomic ops to an operation that already
// costs a channel send per helper.
var (
	cDispatch = obs.NewCounter("jaal_par_dispatch_total",
		"parallel dispatches fanned out across the worker pool")
	cInline = obs.NewCounter("jaal_par_inline_total",
		"dispatches run inline on the caller (small n or single worker)")
	cShed = obs.NewCounter("jaal_par_shed_total",
		"helper slots shed because no helper was idle")
	gActive = obs.NewIntGauge("jaal_par_active_workers",
		"goroutines currently executing pool tasks (dispatchers included)")
)

// rowChunk is the fixed number of indices a worker claims at a time in
// Rows. Fixed (rather than n/workers) chunking keeps the work split
// independent of the worker count; 64 rows of k-means assignment at the
// paper's operating point is ~150k flops, well above claim overhead.
const rowChunk = 64

// minParallelRows is the row count below which dispatch overhead
// exceeds the win and Rows runs inline on the caller.
const minParallelRows = 256

// task is one dispatch, shared by every worker helping with it.
type task struct {
	fn    func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup
}

// run claims chunks until the counter passes n. Several goroutines run
// the same task concurrently; each chunk is claimed exactly once.
func (t *task) run() {
	step := int64(t.chunk)
	for {
		hi := int(t.next.Add(step))
		lo := hi - t.chunk
		if lo >= t.n {
			return
		}
		if hi > t.n {
			hi = t.n
		}
		t.fn(lo, hi)
	}
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

var (
	startOnce sync.Once
	queue     chan *task
	poolSize  int

	// idleHelpers counts helpers with no task: parked on the queue or
	// about to re-park. dispatch claims one slot per helper it enqueues
	// for (Add(-1) >= 0) and a helper returns its slot after finishing a
	// task, so tasks in the queue never outnumber helpers free to drain
	// them — the invariant that keeps nested dispatch deadlock-free.
	idleHelpers atomic.Int64
)

// start lazily spins up the shared helpers. With GOMAXPROCS == 1 no
// helpers exist and every dispatch runs inline.
func start() {
	startOnce.Do(func() {
		poolSize = runtime.GOMAXPROCS(0)
		// Capacity bounds queue depth ≥ poolSize−1, the most tasks the
		// idle claims can admit, so a claimed send never blocks.
		queue = make(chan *task, poolSize)
		idleHelpers.Store(int64(poolSize - 1))
		for i := 0; i < poolSize-1; i++ {
			go func() {
				for t := range queue {
					gActive.Add(1)
					t.run()
					gActive.Add(-1)
					t.wg.Done()
					idleHelpers.Add(1)
				}
			}()
		}
	})
}

// Size returns the pool's parallelism: GOMAXPROCS at first use.
func Size() int {
	start()
	return poolSize
}

// dispatch fans fn out over ceil(n/chunk) chunks across at most workers
// goroutines including the caller, blocking until all of [0, n) has run.
func dispatch(n, workers, chunk int, fn func(lo, hi int)) {
	start()
	if workers <= 0 || workers > poolSize {
		workers = poolSize
	}
	if chunks := (n + chunk - 1) / chunk; workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		cInline.Inc()
		fn(0, n)
		return
	}
	cDispatch.Inc()
	t := taskPool.Get().(*task)
	t.fn, t.n, t.chunk = fn, n, chunk
	t.next.Store(0)
	helpers := workers - 1
	t.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		if idleHelpers.Add(-1) >= 0 {
			queue <- t
		} else {
			// No helper is idle; shed the slot rather than queue work
			// nobody is free to take — when this dispatch runs inside a
			// pool task, a queued slot could otherwise wait on the very
			// helpers parked in this WaitGroup below. The dispatcher
			// still completes the task alone.
			idleHelpers.Add(1)
			cShed.Inc()
			t.wg.Done()
		}
	}
	gActive.Add(1)
	t.run()
	gActive.Add(-1)
	t.wg.Wait()
	t.fn = nil
	taskPool.Put(t)
}

// Rows runs fn over half-open sub-ranges that exactly cover [0, n),
// fanning fixed-size chunks across the shared pool. workers bounds the
// parallelism including the calling goroutine; workers <= 0 selects
// GOMAXPROCS. fn must be safe for concurrent calls on disjoint ranges.
// Because the chunking is fixed, which rows share one fn call never
// depends on the worker count — callers reducing per-row outputs should
// still merge them in index order to stay deterministic.
func Rows(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if n < minParallelRows {
		cInline.Inc()
		fn(0, n)
		return
	}
	dispatch(n, workers, rowChunk, fn)
}

// For runs fn(i) once for every i in [0, n) across at most workers
// goroutines (workers <= 0 selects GOMAXPROCS), dispatching one index
// at a time. It suits coarse, heterogeneous tasks — polling a monitor,
// matching one question — where per-index imbalance dominates.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	dispatch(n, workers, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
