package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRowsCoversExactly checks every index in [0, n) is visited exactly
// once, across the inline path, the chunked path, and ragged tails.
func TestRowsCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 255, 256, 257, 1000, 4096} {
		for _, workers := range []int{0, 1, 2, 8} {
			hits := make([]int32, n)
			Rows(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad range [%d,%d)", n, workers, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestForCoversExactly checks the per-index variant.
func TestForCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, workers := range []int{0, 1, 3} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestNestedDispatch drives a fan-out whose work items themselves fan
// out — the epoch shape (monitor poll → k-means rows). Non-blocking
// queue sends plus dispatcher participation must complete it even with
// the pool saturated. Run with -race.
func TestNestedDispatch(t *testing.T) {
	const outer, inner = 8, 1024
	var total atomic.Int64
	For(outer, 0, func(i int) {
		Rows(inner, 0, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	})
	if got := total.Load(); got != outer*inner {
		t.Fatalf("nested dispatch covered %d indices, want %d", got, outer*inner)
	}
}

// TestChunkingIndependentOfWorkers locks in the determinism foundation:
// the set of (lo, hi) ranges Rows hands out depends only on n, never on
// the worker count.
func TestChunkingIndependentOfWorkers(t *testing.T) {
	const n = 1000
	ranges := func(workers int) map[int]int {
		var mu sync.Mutex
		out := make(map[int]int, n/rowChunk+1)
		Rows(n, workers, func(lo, hi int) {
			mu.Lock()
			out[lo] = hi
			mu.Unlock()
		})
		return out
	}
	want := ranges(1)
	for _, workers := range []int{2, 4, 0} {
		got := ranges(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(got), len(want))
		}
		for lo, hi := range want {
			if got[lo] != hi {
				t.Fatalf("workers=%d: chunk at %d ends %d, want %d", workers, lo, got[lo], hi)
			}
		}
	}
}
