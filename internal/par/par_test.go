package par

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMain raises GOMAXPROCS before any dispatch so the pool — sized
// once at first use — gets real helpers even on a single-CPU CI box.
// With zero helpers every dispatch inlines and the tests below would
// exercise none of the queueing, shedding, or nested-dispatch paths.
func TestMain(m *testing.M) {
	runtime.GOMAXPROCS(4)
	os.Exit(m.Run())
}

// TestRowsCoversExactly checks every index in [0, n) is visited exactly
// once, across the inline path, the chunked path, and ragged tails.
func TestRowsCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 255, 256, 257, 1000, 4096} {
		for _, workers := range []int{0, 1, 2, 8} {
			hits := make([]int32, n)
			Rows(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad range [%d,%d)", n, workers, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestForCoversExactly checks the per-index variant.
func TestForCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, workers := range []int{0, 1, 3} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestNestedDispatch drives a fan-out whose work items themselves fan
// out — the epoch shape (monitor poll → k-means rows) and the scenario
// scoreboard shape (scenario sweep → pipeline → k-means rows). This is
// the regression test for the pool's deadlock guarantee: when every
// helper is occupied by an outer task, the nested dispatch must shed
// its slots and run inline instead of queueing work that only the
// blocked helpers could drain. Before idle-helper accounting, the
// buffered queue accepted those slots and all pool participants parked
// in wg.Wait on each other; the test then hangs until the go test
// timeout. Repeated rounds widen the window for every participant to
// reach the nested dispatch at once. Run with -race.
func TestNestedDispatch(t *testing.T) {
	const rounds, outer, inner = 20, 8, 4096
	for r := 0; r < rounds; r++ {
		var total atomic.Int64
		For(outer, 0, func(i int) {
			Rows(inner, 0, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		})
		if got := total.Load(); got != outer*inner {
			t.Fatalf("round %d: nested dispatch covered %d indices, want %d", r, got, outer*inner)
		}
	}
}

// TestChunkingIndependentOfWorkers locks in the determinism foundation:
// the set of (lo, hi) ranges Rows hands out depends only on n, never on
// the parallel worker count. workers=1 is excluded deliberately — it
// takes the inline path and covers [0, n) as one range (coverage is
// checked by TestRowsCoversExactly); among dispatching counts the chunk
// boundaries must be identical.
func TestChunkingIndependentOfWorkers(t *testing.T) {
	const n = 1000
	ranges := func(workers int) map[int]int {
		var mu sync.Mutex
		out := make(map[int]int, n/rowChunk+1)
		Rows(n, workers, func(lo, hi int) {
			mu.Lock()
			out[lo] = hi
			mu.Unlock()
		})
		return out
	}
	want := ranges(2)
	if len(want) != (n+rowChunk-1)/rowChunk {
		t.Fatalf("workers=2: %d chunks, want %d fixed-size chunks", len(want), (n+rowChunk-1)/rowChunk)
	}
	for _, workers := range []int{4, 8, 0} {
		got := ranges(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(got), len(want))
		}
		for lo, hi := range want {
			if got[lo] != hi {
				t.Fatalf("workers=%d: chunk at %d ends %d, want %d", workers, lo, got[lo], hi)
			}
		}
	}
}
