// Package packet models the TCP/IP packet headers Jaal summarizes.
//
// Jaal's summarization module treats every packet as a vector of p = 18
// transport- and network-layer header fields (§4.1 of the paper). This
// package defines that field set, a compact wire format with
// gopacket-style allocation-free decoding, normalization of field values
// to [0, 1], and flow identification (4-tuple keys with fast hashing).
package packet

import (
	"fmt"
	"net/netip"
)

// NumFields is p, the number of header fields in a packet vector. The
// paper's matrices are n×18; question vectors have the same length.
const NumFields = 18

// FieldIndex identifies one of the 18 header fields of a packet vector.
type FieldIndex int

// Field indices, in the fixed order used by every matrix, summary and
// question vector in the system.
const (
	FieldSrcIP FieldIndex = iota
	FieldDstIP
	FieldProtocol
	FieldTTL
	FieldTotalLength
	FieldIPID
	FieldFragOffset
	FieldTOS
	FieldSrcPort
	FieldDstPort
	FieldSeq
	FieldAck
	FieldDataOffset
	FieldSYN
	FieldACK
	FieldFIN
	FieldRST
	FieldWindow
)

var fieldNames = [NumFields]string{
	"src_ip", "dst_ip", "protocol", "ttl", "total_length", "ip_id",
	"frag_offset", "tos", "src_port", "dst_port", "seq", "ack",
	"data_offset", "syn", "ack_flag", "fin", "rst", "window",
}

// String returns the canonical snake_case name of the field.
func (f FieldIndex) String() string {
	if f < 0 || int(f) >= NumFields {
		return fmt.Sprintf("field(%d)", int(f))
	}
	return fieldNames[f]
}

// FieldByName returns the index of the named field.
func FieldByName(name string) (FieldIndex, bool) {
	for i, n := range fieldNames {
		if n == name {
			return FieldIndex(i), true
		}
	}
	return 0, false
}

// fieldMax holds max(x) for every field, the denominator of the §4.1
// normalization x̄ = x / max(x).
var fieldMax = [NumFields]float64{
	FieldSrcIP:       float64(^uint32(0)),
	FieldDstIP:       float64(^uint32(0)),
	FieldProtocol:    255,
	FieldTTL:         255,
	FieldTotalLength: 65535,
	FieldIPID:        65535,
	FieldFragOffset:  8191, // 13-bit field
	FieldTOS:         255,
	FieldSrcPort:     65535,
	FieldDstPort:     65535,
	FieldSeq:         float64(^uint32(0)),
	FieldAck:         float64(^uint32(0)),
	FieldDataOffset:  15,
	FieldSYN:         1,
	FieldACK:         1,
	FieldFIN:         1,
	FieldRST:         1,
	FieldWindow:      65535,
}

// FieldMax returns the maximum possible raw value of field f, used as the
// normalization denominator.
func FieldMax(f FieldIndex) float64 {
	if f < 0 || int(f) >= NumFields {
		panic(fmt.Sprintf("packet: field index %d out of range", int(f)))
	}
	return fieldMax[f]
}

// Protocol numbers for the Protocol field.
const (
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoICMP = 1
)

// TCPFlags is the 8-bit TCP flag byte.
type TCPFlags uint8

// Individual TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// Has reports whether all bits of mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String renders the set flags in Snort's order, e.g. "SA" for SYN+ACK.
func (f TCPFlags) String() string {
	if f == 0 {
		return "0"
	}
	var out []byte
	for _, fl := range [...]struct {
		bit TCPFlags
		ch  byte
	}{
		{FlagFIN, 'F'}, {FlagSYN, 'S'}, {FlagRST, 'R'}, {FlagPSH, 'P'},
		{FlagACK, 'A'}, {FlagURG, 'U'}, {FlagECE, 'E'}, {FlagCWR, 'C'},
	} {
		if f.Has(fl.bit) {
			out = append(out, fl.ch)
		}
	}
	return string(out)
}

// Header is the decoded network- and transport-layer header of one packet:
// exactly the information Jaal monitors buffer and summarize. The payload
// is deliberately absent — the threat model excludes payload inspection
// (§2).
type Header struct {
	SrcIP       uint32
	DstIP       uint32
	Protocol    uint8
	TTL         uint8
	TotalLength uint16
	IPID        uint16
	FragOffset  uint16 // 13-bit fragment offset, in 8-byte units
	TOS         uint8
	SrcPort     uint16
	DstPort     uint16
	Seq         uint32
	Ack         uint32
	DataOffset  uint8 // TCP header length in 32-bit words (4 bits)
	Flags       TCPFlags
	Window      uint16
}

// flag01 converts a boolean flag to its 0/1 vector entry.
func flag01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Vector writes the raw (un-normalized) 18-field representation of h into
// dst, which must have length ≥ NumFields, and returns dst[:NumFields].
// A nil dst allocates.
func (h *Header) Vector(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, NumFields)
	}
	dst = dst[:NumFields]
	dst[FieldSrcIP] = float64(h.SrcIP)
	dst[FieldDstIP] = float64(h.DstIP)
	dst[FieldProtocol] = float64(h.Protocol)
	dst[FieldTTL] = float64(h.TTL)
	dst[FieldTotalLength] = float64(h.TotalLength)
	dst[FieldIPID] = float64(h.IPID)
	dst[FieldFragOffset] = float64(h.FragOffset)
	dst[FieldTOS] = float64(h.TOS)
	dst[FieldSrcPort] = float64(h.SrcPort)
	dst[FieldDstPort] = float64(h.DstPort)
	dst[FieldSeq] = float64(h.Seq)
	dst[FieldAck] = float64(h.Ack)
	dst[FieldDataOffset] = float64(h.DataOffset)
	dst[FieldSYN] = flag01(h.Flags.Has(FlagSYN))
	dst[FieldACK] = flag01(h.Flags.Has(FlagACK))
	dst[FieldFIN] = flag01(h.Flags.Has(FlagFIN))
	dst[FieldRST] = flag01(h.Flags.Has(FlagRST))
	dst[FieldWindow] = float64(h.Window)
	return dst
}

// NormalizedVector writes the §4.1-normalized representation (every entry
// in [0, 1]) into dst and returns dst[:NumFields]. A nil dst allocates.
func (h *Header) NormalizedVector(dst []float64) []float64 {
	dst = h.Vector(dst)
	for i := range dst {
		dst[i] /= fieldMax[i]
	}
	return dst
}

// Normalize converts a raw field value to its normalized [0, 1] form.
func Normalize(f FieldIndex, raw float64) float64 { return raw / FieldMax(f) }

// Denormalize converts a normalized field value back to raw units.
func Denormalize(f FieldIndex, norm float64) float64 { return norm * FieldMax(f) }

// SrcAddr returns the source address as a netip.Addr for display.
func (h *Header) SrcAddr() netip.Addr { return u32ToAddr(h.SrcIP) }

// DstAddr returns the destination address as a netip.Addr for display.
func (h *Header) DstAddr() netip.Addr { return u32ToAddr(h.DstIP) }

func u32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// AddrToU32 converts a 4-byte address to its uint32 form. It returns 0 for
// non-IPv4 addresses.
func AddrToU32(a netip.Addr) uint32 {
	if !a.Is4() {
		return 0
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// String renders the header as "src:port > dst:port proto flags".
func (h *Header) String() string {
	return fmt.Sprintf("%s:%d > %s:%d proto=%d flags=%s len=%d",
		h.SrcAddr(), h.SrcPort, h.DstAddr(), h.DstPort, h.Protocol, h.Flags, h.TotalLength)
}
