package packet

import "fmt"

// FlowKey identifies a flow by the 4-tuple the paper uses: source and
// destination IP addresses and port numbers (§4.1). It is comparable and
// therefore usable as a map key.
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
}

// Flow returns the flow key of the packet.
func (h *Header) Flow() FlowKey {
	return FlowKey{SrcIP: h.SrcIP, DstIP: h.DstIP, SrcPort: h.SrcPort, DstPort: h.DstPort}
}

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// FastHash returns a quick non-cryptographic 64-bit hash of the flow key,
// suitable for sharding flows across workers. Like gopacket's
// Flow.FastHash it is symmetric: a flow and its reverse hash identically,
// so both directions land on the same shard.
func (k FlowKey) FastHash() uint64 {
	a := uint64(k.SrcIP)<<16 | uint64(k.SrcPort)
	b := uint64(k.DstIP)<<16 | uint64(k.DstPort)
	// Order-independent combination keeps the hash symmetric.
	sum := a + b
	xor := a ^ b
	h := sum * 0x9e3779b97f4a7c15
	h ^= h >> 32
	h += xor * 0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0x165667b19e3779f9
	h ^= h >> 32
	return h
}

// String renders the flow as "a:pa > b:pb".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d > %s:%d", u32ToAddr(k.SrcIP), k.SrcPort, u32ToAddr(k.DstIP), k.DstPort)
}

// PrefixKey identifies a flow group by source and destination /8 prefixes.
// Jaal groups flows by routing: with shortest-path routing, flows sharing
// source and destination prefixes traverse the same monitors (§7), so the
// flow-assignment module operates on prefix pairs rather than individual
// flows.
type PrefixKey struct {
	SrcPrefix uint8
	DstPrefix uint8
}

// PrefixGroup returns the flow-group key of the packet.
func (h *Header) PrefixGroup() PrefixKey {
	return PrefixKey{SrcPrefix: uint8(h.SrcIP >> 24), DstPrefix: uint8(h.DstIP >> 24)}
}
