package packet

import (
	"encoding/binary"
	"fmt"
)

// WireSize is the fixed size in bytes of one encoded header on the wire.
// The format packs the minimal IPv4+TCP header information Jaal needs:
//
//	offset size field
//	0      4    SrcIP
//	4      4    DstIP
//	8      1    Protocol
//	9      1    TTL
//	10     2    TotalLength
//	12     2    IPID
//	14     2    FragOffset (13 bits used)
//	16     1    TOS
//	17     2    SrcPort
//	19     2    DstPort
//	21     4    Seq
//	25     4    Ack
//	29     1    DataOffset (4 bits used)
//	30     1    Flags
//	31     2    Window
//
// All multi-byte integers are big-endian (network byte order).
const WireSize = 33

// AppendEncode appends the wire encoding of h to dst and returns the
// extended slice.
//
//jaal:pair DecodeFrom
func (h *Header) AppendEncode(dst []byte) []byte {
	var buf [WireSize]byte
	binary.BigEndian.PutUint32(buf[0:], h.SrcIP)
	binary.BigEndian.PutUint32(buf[4:], h.DstIP)
	buf[8] = h.Protocol
	buf[9] = h.TTL
	binary.BigEndian.PutUint16(buf[10:], h.TotalLength)
	binary.BigEndian.PutUint16(buf[12:], h.IPID)
	binary.BigEndian.PutUint16(buf[14:], h.FragOffset&0x1fff)
	buf[16] = h.TOS
	binary.BigEndian.PutUint16(buf[17:], h.SrcPort)
	binary.BigEndian.PutUint16(buf[19:], h.DstPort)
	binary.BigEndian.PutUint32(buf[21:], h.Seq)
	binary.BigEndian.PutUint32(buf[25:], h.Ack)
	buf[29] = h.DataOffset & 0x0f
	buf[30] = byte(h.Flags)
	binary.BigEndian.PutUint16(buf[31:], h.Window)
	return append(dst, buf[:]...)
}

// Encode returns the wire encoding of h as a fresh slice.
func (h *Header) Encode() []byte { return h.AppendEncode(nil) }

// DecodeFrom parses one wire-format header from data into h, gopacket
// DecodingLayer style: the receiver is overwritten in place so hot decode
// loops allocate nothing. It returns the number of bytes consumed.
func (h *Header) DecodeFrom(data []byte) (int, error) {
	if len(data) < WireSize {
		return 0, fmt.Errorf("packet: short header: %d bytes, need %d", len(data), WireSize)
	}
	h.SrcIP = binary.BigEndian.Uint32(data[0:])
	h.DstIP = binary.BigEndian.Uint32(data[4:])
	h.Protocol = data[8]
	h.TTL = data[9]
	h.TotalLength = binary.BigEndian.Uint16(data[10:])
	h.IPID = binary.BigEndian.Uint16(data[12:])
	h.FragOffset = binary.BigEndian.Uint16(data[14:]) & 0x1fff
	h.TOS = data[16]
	h.SrcPort = binary.BigEndian.Uint16(data[17:])
	h.DstPort = binary.BigEndian.Uint16(data[19:])
	h.Seq = binary.BigEndian.Uint32(data[21:])
	h.Ack = binary.BigEndian.Uint32(data[25:])
	h.DataOffset = data[29] & 0x0f
	h.Flags = TCPFlags(data[30])
	h.Window = binary.BigEndian.Uint16(data[31:])
	return WireSize, nil
}

// EncodeBatch encodes a slice of headers back to back.
func EncodeBatch(hs []Header) []byte {
	out := make([]byte, 0, len(hs)*WireSize)
	for i := range hs {
		out = hs[i].AppendEncode(out)
	}
	return out
}

// DecodeBatch decodes a back-to-back batch of wire-format headers.
// It returns an error if data is not a whole number of headers.
func DecodeBatch(data []byte) ([]Header, error) {
	if len(data)%WireSize != 0 {
		return nil, fmt.Errorf("packet: batch of %d bytes is not a multiple of %d", len(data), WireSize)
	}
	hs := make([]Header, len(data)/WireSize)
	for i := range hs {
		if _, err := hs[i].DecodeFrom(data[i*WireSize:]); err != nil {
			return nil, err
		}
	}
	return hs, nil
}
