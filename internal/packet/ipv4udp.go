package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// MarshalIPv4UDP serializes h as a real IPv4 packet carrying a UDP
// datagram with the given payload. TCP-only fields of h (Seq, Ack,
// Flags, Window, DataOffset) are ignored.
func (h *Header) MarshalIPv4UDP(payload []byte) ([]byte, error) {
	udpLen := UDPHeaderLen + len(payload)
	totalLen := IPv4HeaderLen + udpLen
	if totalLen > 65535 {
		return nil, fmt.Errorf("packet: payload of %d bytes overflows IPv4 total length", len(payload))
	}
	buf := make([]byte, totalLen)

	buf[0] = 0x45
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:], uint16(totalLen))
	binary.BigEndian.PutUint16(buf[4:], h.IPID)
	binary.BigEndian.PutUint16(buf[6:], h.FragOffset&0x1fff)
	buf[8] = h.TTL
	buf[9] = ProtoUDP
	binary.BigEndian.PutUint32(buf[12:], h.SrcIP)
	binary.BigEndian.PutUint32(buf[16:], h.DstIP)
	binary.BigEndian.PutUint16(buf[10:], ipChecksum(buf[:IPv4HeaderLen]))

	udp := buf[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[0:], h.SrcPort)
	binary.BigEndian.PutUint16(udp[2:], h.DstPort)
	binary.BigEndian.PutUint16(udp[4:], uint16(udpLen))
	copy(udp[UDPHeaderLen:], payload)
	binary.BigEndian.PutUint16(udp[6:], udpChecksum(h.SrcIP, h.DstIP, udp))

	return buf, nil
}

// UnmarshalIPv4 parses real IPv4 wire bytes carrying either TCP or UDP
// into h, dispatching on the protocol field. For UDP, the TCP-only
// fields of h are zeroed. It returns the bytes consumed and the
// transport payload.
func (h *Header) UnmarshalIPv4(data []byte) (int, []byte, error) {
	if len(data) < IPv4HeaderLen {
		return 0, nil, fmt.Errorf("packet: %d bytes, need %d for IPv4", len(data), IPv4HeaderLen)
	}
	switch data[9] {
	case ProtoTCP:
		return h.UnmarshalIPv4TCP(data)
	case ProtoUDP:
		return h.unmarshalIPv4UDP(data)
	default:
		return 0, nil, fmt.Errorf("packet: unsupported protocol %d", data[9])
	}
}

func (h *Header) unmarshalIPv4UDP(data []byte) (int, []byte, error) {
	if version := data[0] >> 4; version != 4 {
		return 0, nil, fmt.Errorf("packet: IP version %d, want 4", version)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return 0, nil, fmt.Errorf("packet: bad IHL %d", ihl)
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:]))
	if totalLen < ihl+UDPHeaderLen || totalLen > len(data) {
		return 0, nil, fmt.Errorf("packet: total length %d invalid", totalLen)
	}
	*h = Header{
		TOS:         data[1],
		TotalLength: uint16(totalLen),
		IPID:        binary.BigEndian.Uint16(data[4:]),
		FragOffset:  binary.BigEndian.Uint16(data[6:]) & 0x1fff,
		TTL:         data[8],
		Protocol:    ProtoUDP,
		SrcIP:       binary.BigEndian.Uint32(data[12:]),
		DstIP:       binary.BigEndian.Uint32(data[16:]),
	}
	udp := data[ihl:totalLen]
	h.SrcPort = binary.BigEndian.Uint16(udp[0:])
	h.DstPort = binary.BigEndian.Uint16(udp[2:])
	return totalLen, udp[UDPHeaderLen:], nil
}

// udpChecksum computes the UDP checksum over the pseudo-header and
// datagram, with the checksum field (bytes 6–7) skipped.
func udpChecksum(srcIP, dstIP uint32, datagram []byte) uint16 {
	var sum uint32
	sum += srcIP >> 16
	sum += srcIP & 0xffff
	sum += dstIP >> 16
	sum += dstIP & 0xffff
	sum += uint32(ProtoUDP)
	sum += uint32(len(datagram))
	for i := 0; i+1 < len(datagram); i += 2 {
		if i == 6 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(datagram[i:]))
	}
	if len(datagram)%2 == 1 {
		sum += uint32(datagram[len(datagram)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	cs := ^uint16(sum)
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted as all ones
	}
	return cs
}
