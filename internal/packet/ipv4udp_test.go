package packet

import (
	"math/rand"
	"testing"
)

func sampleUDPHeader() Header {
	return Header{
		SrcIP:    0xC0A80101,
		DstIP:    0x08080808,
		Protocol: ProtoUDP,
		TTL:      64,
		IPID:     777,
		TOS:      0,
		SrcPort:  53124,
		DstPort:  53,
	}
}

func TestIPv4UDPRoundTrip(t *testing.T) {
	h := sampleUDPHeader()
	payload := []byte("dns query bytes")
	wire, err := h.MarshalIPv4UDP(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != IPv4HeaderLen+UDPHeaderLen+len(payload) {
		t.Fatalf("wire length %d", len(wire))
	}
	if !VerifyIPv4Checksum(wire) {
		t.Fatal("IPv4 checksum must verify")
	}
	var got Header
	n, gotPayload, err := got.UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) || string(gotPayload) != string(payload) {
		t.Fatalf("consumed %d, payload %q", n, gotPayload)
	}
	if got.Protocol != ProtoUDP || got.SrcIP != h.SrcIP || got.DstPort != 53 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// TCP-only fields must be zero after a UDP decode.
	if got.Seq != 0 || got.Flags != 0 || got.Window != 0 {
		t.Fatalf("TCP fields leaked into UDP decode: %+v", got)
	}
}

func TestUnmarshalIPv4Dispatch(t *testing.T) {
	tcp := sampleHeader()
	tcpWire, _ := tcp.MarshalIPv4TCP(nil)
	udp := sampleUDPHeader()
	udpWire, _ := udp.MarshalIPv4UDP(nil)

	var h Header
	if _, _, err := h.UnmarshalIPv4(tcpWire); err != nil || h.Protocol != ProtoTCP {
		t.Fatalf("TCP dispatch: %v, proto %d", err, h.Protocol)
	}
	if _, _, err := h.UnmarshalIPv4(udpWire); err != nil || h.Protocol != ProtoUDP {
		t.Fatalf("UDP dispatch: %v, proto %d", err, h.Protocol)
	}

	// ICMP is unsupported.
	icmp := append([]byte{}, tcpWire...)
	icmp[9] = ProtoICMP
	if _, _, err := h.UnmarshalIPv4(icmp); err == nil {
		t.Fatal("ICMP must be rejected")
	}
	if _, _, err := h.UnmarshalIPv4(nil); err == nil {
		t.Fatal("empty buffer must be rejected")
	}
}

func TestIPv4UDPOversized(t *testing.T) {
	h := sampleUDPHeader()
	if _, err := h.MarshalIPv4UDP(make([]byte, 66000)); err == nil {
		t.Fatal("oversized datagram must be rejected")
	}
}

func TestUnmarshalIPv4UDPNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(60))
		rng.Read(data)
		if len(data) > 9 {
			data[9] = ProtoUDP
			data[0] = 0x45
		}
		var h Header
		h.UnmarshalIPv4(data) // errors fine, panics not
	}
}
