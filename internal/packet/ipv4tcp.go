package packet

import (
	"encoding/binary"
	"fmt"
)

// This file serializes Header to and from genuine IPv4+TCP wire bytes —
// the format a monitor tapping a real link would parse. The decoder is
// written gopacket DecodingLayer style: it fills the receiver in place
// and allocates nothing on the hot path.

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// TCPHeaderLen is the length of an option-less TCP header.
const TCPHeaderLen = 20

// MarshalIPv4TCP serializes h as a real IPv4 packet carrying a TCP
// segment with the given payload, computing both checksums. The result
// is parseable by any standard tool (tcpdump, Wireshark, gopacket).
func (h *Header) MarshalIPv4TCP(payload []byte) ([]byte, error) {
	tcpLen := TCPHeaderLen + len(payload)
	totalLen := IPv4HeaderLen + tcpLen
	if totalLen > 65535 {
		return nil, fmt.Errorf("packet: payload of %d bytes overflows IPv4 total length", len(payload))
	}
	buf := make([]byte, totalLen)

	// IPv4 header.
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:], uint16(totalLen))
	binary.BigEndian.PutUint16(buf[4:], h.IPID)
	binary.BigEndian.PutUint16(buf[6:], h.FragOffset&0x1fff)
	buf[8] = h.TTL
	buf[9] = ProtoTCP
	binary.BigEndian.PutUint32(buf[12:], h.SrcIP)
	binary.BigEndian.PutUint32(buf[16:], h.DstIP)
	//jaalvet:ignore encdec — checksum field: the decoder verifies it via ipChecksum over the whole header summing to zero, not by reading offset 10 directly
	binary.BigEndian.PutUint16(buf[10:], ipChecksum(buf[:IPv4HeaderLen]))

	// TCP header.
	tcp := buf[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:], h.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], h.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], h.Seq)
	binary.BigEndian.PutUint32(tcp[8:], h.Ack)
	tcp[12] = 5 << 4 // data offset 5 words
	tcp[13] = byte(h.Flags)
	binary.BigEndian.PutUint16(tcp[14:], h.Window)
	copy(tcp[TCPHeaderLen:], payload)
	//jaalvet:ignore encdec — checksum field: verified by tcpChecksum over the whole segment, never read at a fixed offset
	binary.BigEndian.PutUint16(tcp[16:], tcpChecksum(h.SrcIP, h.DstIP, tcp))

	return buf, nil
}

// UnmarshalIPv4TCP parses real IPv4+TCP wire bytes into h, returning the
// number of bytes of the IP packet consumed and the TCP payload (a
// subslice of data; copy it if it must outlive data). Non-TCP packets,
// fragments with options, and truncated headers return an error.
func (h *Header) UnmarshalIPv4TCP(data []byte) (int, []byte, error) {
	if len(data) < IPv4HeaderLen {
		return 0, nil, fmt.Errorf("packet: %d bytes, need %d for IPv4", len(data), IPv4HeaderLen)
	}
	if version := data[0] >> 4; version != 4 {
		return 0, nil, fmt.Errorf("packet: IP version %d, want 4", version)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return 0, nil, fmt.Errorf("packet: IHL %d too small", ihl)
	}
	if len(data) < ihl {
		return 0, nil, fmt.Errorf("packet: truncated IPv4 options")
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:]))
	if totalLen < ihl || totalLen > len(data) {
		return 0, nil, fmt.Errorf("packet: total length %d outside [%d,%d]", totalLen, ihl, len(data))
	}
	proto := data[9]
	if proto != ProtoTCP {
		return 0, nil, fmt.Errorf("packet: protocol %d, want TCP", proto)
	}

	h.TOS = data[1]
	h.TotalLength = uint16(totalLen)
	h.IPID = binary.BigEndian.Uint16(data[4:])
	h.FragOffset = binary.BigEndian.Uint16(data[6:]) & 0x1fff
	h.TTL = data[8]
	h.Protocol = proto
	h.SrcIP = binary.BigEndian.Uint32(data[12:])
	h.DstIP = binary.BigEndian.Uint32(data[16:])

	tcp := data[ihl:totalLen]
	if len(tcp) < TCPHeaderLen {
		return 0, nil, fmt.Errorf("packet: %d bytes, need %d for TCP", len(tcp), TCPHeaderLen)
	}
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(tcp) {
		return 0, nil, fmt.Errorf("packet: TCP data offset %d invalid", dataOff)
	}
	h.SrcPort = binary.BigEndian.Uint16(tcp[0:])
	h.DstPort = binary.BigEndian.Uint16(tcp[2:])
	h.Seq = binary.BigEndian.Uint32(tcp[4:])
	h.Ack = binary.BigEndian.Uint32(tcp[8:])
	h.DataOffset = tcp[12] >> 4
	h.Flags = TCPFlags(tcp[13])
	h.Window = binary.BigEndian.Uint16(tcp[14:])

	return totalLen, tcp[dataOff:], nil
}

// ipChecksum computes the IPv4 header checksum over hdr with its
// checksum field zeroed or ignored (bytes 10–11 are skipped).
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum over the pseudo-header and
// segment, with the checksum field (bytes 16–17) skipped.
func tcpChecksum(srcIP, dstIP uint32, segment []byte) uint16 {
	var sum uint32
	sum += srcIP >> 16
	sum += srcIP & 0xffff
	sum += dstIP >> 16
	sum += dstIP & 0xffff
	sum += uint32(ProtoTCP)
	sum += uint32(len(segment))

	for i := 0; i+1 < len(segment); i += 2 {
		if i == 16 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(segment[i:]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum reports whether the IPv4 header checksum of raw
// wire bytes is valid.
func VerifyIPv4Checksum(data []byte) bool {
	if len(data) < IPv4HeaderLen {
		return false
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return false
	}
	var sum uint32
	for i := 0; i+1 < ihl; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum) == 0xffff
}
