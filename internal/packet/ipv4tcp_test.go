package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIPv4TCPRoundTrip(t *testing.T) {
	h := sampleHeader()
	payload := []byte("hello, wire")
	wire, err := h.MarshalIPv4TCP(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != IPv4HeaderLen+TCPHeaderLen+len(payload) {
		t.Fatalf("wire length %d", len(wire))
	}
	var got Header
	n, gotPayload, err := got.UnmarshalIPv4TCP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if string(gotPayload) != string(payload) {
		t.Fatalf("payload %q", gotPayload)
	}
	// Fields set by the marshaller must round trip; TotalLength and
	// DataOffset are rewritten by serialization.
	if got.SrcIP != h.SrcIP || got.DstIP != h.DstIP || got.SrcPort != h.SrcPort ||
		got.DstPort != h.DstPort || got.Seq != h.Seq || got.Ack != h.Ack ||
		got.Flags != h.Flags || got.Window != h.Window || got.TTL != h.TTL ||
		got.IPID != h.IPID || got.TOS != h.TOS {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if got.TotalLength != uint16(len(wire)) {
		t.Fatalf("total length %d, want %d", got.TotalLength, len(wire))
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	h := sampleHeader()
	wire, err := h.MarshalIPv4TCP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyIPv4Checksum(wire) {
		t.Fatal("generated IPv4 checksum must verify")
	}
	// Corrupt a header byte: checksum must fail.
	wire[8] ^= 0xFF
	if VerifyIPv4Checksum(wire) {
		t.Fatal("corrupted header must fail checksum")
	}
}

func TestUnmarshalIPv4TCPErrors(t *testing.T) {
	h := sampleHeader()
	wire, _ := h.MarshalIPv4TCP(nil)

	cases := map[string][]byte{
		"short":        wire[:10],
		"bad version":  append([]byte{0x65}, wire[1:]...),
		"bad ihl":      append([]byte{0x41}, wire[1:]...),
		"truncated IP": wire[:IPv4HeaderLen+4],
	}
	for name, data := range cases {
		var out Header
		if _, _, err := out.UnmarshalIPv4TCP(data); err == nil {
			t.Fatalf("case %q must fail", name)
		}
	}

	// Non-TCP protocol.
	udp := append([]byte{}, wire...)
	udp[9] = ProtoUDP
	var out Header
	if _, _, err := out.UnmarshalIPv4TCP(udp); err == nil {
		t.Fatal("UDP packet must be rejected by the TCP decoder")
	}
}

func TestMarshalOversizedPayload(t *testing.T) {
	h := sampleHeader()
	if _, err := h.MarshalIPv4TCP(make([]byte, 66000)); err == nil {
		t.Fatal("oversized payload must be rejected")
	}
}

// Property: IPv4+TCP wire round-trips arbitrary headers and payloads,
// and the checksum always verifies.
func TestIPv4TCPRoundTripProperty(t *testing.T) {
	f := func(seed int64, payloadLen uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := Header{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			Protocol: ProtoTCP, TTL: uint8(rng.Intn(256)),
			IPID: uint16(rng.Intn(65536)), TOS: uint8(rng.Intn(256)),
			FragOffset: uint16(rng.Intn(8192)),
			SrcPort:    uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Seq: rng.Uint32(), Ack: rng.Uint32(),
			Flags: TCPFlags(rng.Intn(256)), Window: uint16(rng.Intn(65536)),
		}
		payload := make([]byte, payloadLen)
		rng.Read(payload)
		wire, err := h.MarshalIPv4TCP(payload)
		if err != nil {
			return false
		}
		if !VerifyIPv4Checksum(wire) {
			return false
		}
		var got Header
		n, gotPayload, err := got.UnmarshalIPv4TCP(wire)
		if err != nil || n != len(wire) {
			return false
		}
		if len(gotPayload) != len(payload) {
			return false
		}
		return got.SrcIP == h.SrcIP && got.DstIP == h.DstIP &&
			got.Flags == h.Flags && got.Seq == h.Seq &&
			got.FragOffset == h.FragOffset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish robustness: the decoder must never panic on arbitrary bytes.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(80))
		rng.Read(data)
		var h Header
		h.UnmarshalIPv4TCP(data) // must not panic; errors are fine
	}
}

func BenchmarkUnmarshalIPv4TCP(b *testing.B) {
	h := sampleHeader()
	wire, _ := h.MarshalIPv4TCP([]byte("payload bytes here"))
	var out Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := out.UnmarshalIPv4TCP(wire); err != nil {
			b.Fatal(err)
		}
	}
}
