package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleHeader() Header {
	return Header{
		SrcIP:       0xC0A80101, // 192.168.1.1
		DstIP:       0x0A000002, // 10.0.0.2
		Protocol:    ProtoTCP,
		TTL:         64,
		TotalLength: 1500,
		IPID:        4321,
		FragOffset:  0,
		TOS:         0,
		SrcPort:     44231,
		DstPort:     22,
		Seq:         123456789,
		Ack:         987654321,
		DataOffset:  5,
		Flags:       FlagSYN | FlagACK,
		Window:      65535,
	}
}

func TestVectorLengthAndValues(t *testing.T) {
	h := sampleHeader()
	v := h.Vector(nil)
	if len(v) != NumFields {
		t.Fatalf("vector length %d, want %d", len(v), NumFields)
	}
	if v[FieldDstPort] != 22 {
		t.Fatalf("dst port entry = %v, want 22", v[FieldDstPort])
	}
	if v[FieldSYN] != 1 || v[FieldACK] != 1 || v[FieldFIN] != 0 || v[FieldRST] != 0 {
		t.Fatalf("flag entries wrong: syn=%v ack=%v fin=%v rst=%v",
			v[FieldSYN], v[FieldACK], v[FieldFIN], v[FieldRST])
	}
}

func TestVectorReusesDst(t *testing.T) {
	h := sampleHeader()
	buf := make([]float64, NumFields)
	v := h.Vector(buf)
	if &v[0] != &buf[0] {
		t.Fatal("Vector must reuse the provided buffer")
	}
}

func TestNormalizedVectorRange(t *testing.T) {
	h := sampleHeader()
	v := h.NormalizedVector(nil)
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("field %s = %v outside [0,1]", FieldIndex(i), x)
		}
	}
	if v[FieldWindow] != 1 {
		t.Fatalf("window 65535 must normalize to 1, got %v", v[FieldWindow])
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	for f := FieldIndex(0); int(f) < NumFields; f++ {
		raw := FieldMax(f) / 3
		if got := Denormalize(f, Normalize(f, raw)); got != raw {
			t.Fatalf("field %s: round trip %v != %v", f, got, raw)
		}
	}
}

func TestFieldByName(t *testing.T) {
	idx, ok := FieldByName("dst_port")
	if !ok || idx != FieldDstPort {
		t.Fatalf("FieldByName(dst_port) = %v, %v", idx, ok)
	}
	if _, ok := FieldByName("bogus"); ok {
		t.Fatal("FieldByName must reject unknown names")
	}
}

func TestFieldString(t *testing.T) {
	if FieldSYN.String() != "syn" {
		t.Fatalf("FieldSYN.String() = %q", FieldSYN.String())
	}
	if FieldIndex(99).String() != "field(99)" {
		t.Fatalf("out-of-range String() = %q", FieldIndex(99).String())
	}
}

func TestTCPFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SA" {
		t.Fatalf("flags string = %q, want SA", got)
	}
	if got := TCPFlags(0).String(); got != "0" {
		t.Fatalf("zero flags string = %q, want 0", got)
	}
}

func TestWireRoundTrip(t *testing.T) {
	h := sampleHeader()
	data := h.Encode()
	if len(data) != WireSize {
		t.Fatalf("encoded size %d, want %d", len(data), WireSize)
	}
	var got Header
	n, err := got.DecodeFrom(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != WireSize {
		t.Fatalf("consumed %d bytes, want %d", n, WireSize)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestDecodeShort(t *testing.T) {
	var h Header
	if _, err := h.DecodeFrom(make([]byte, WireSize-1)); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	hs := []Header{sampleHeader(), {SrcIP: 1, DstPort: 80, Flags: FlagRST}}
	data := EncodeBatch(hs)
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != hs[0] || got[1] != hs[1] {
		t.Fatalf("batch round trip mismatch: %+v", got)
	}
}

func TestDecodeBatchBadLength(t *testing.T) {
	if _, err := DecodeBatch(make([]byte, WireSize+1)); err == nil {
		t.Fatal("expected error for ragged batch")
	}
}

func TestFlowKey(t *testing.T) {
	h := sampleHeader()
	k := h.Flow()
	if k.SrcIP != h.SrcIP || k.DstPort != h.DstPort {
		t.Fatalf("flow key %+v does not match header", k)
	}
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.SrcPort != k.DstPort {
		t.Fatalf("reverse key %+v wrong", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse must be identity")
	}
}

func TestFastHashSymmetric(t *testing.T) {
	k := FlowKey{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 1234, DstPort: 80}
	if k.FastHash() != k.Reverse().FastHash() {
		t.Fatal("FastHash must be symmetric under flow reversal")
	}
}

func TestFastHashSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buckets := make(map[uint64]int)
	const nflows = 10000
	for i := 0; i < nflows; i++ {
		k := FlowKey{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
		}
		buckets[k.FastHash()%16]++
	}
	for b, n := range buckets {
		frac := float64(n) / nflows
		if frac < 0.03 || frac > 0.10 {
			t.Fatalf("bucket %d holds %.1f%% of flows; hash is badly skewed", b, 100*frac)
		}
	}
}

func TestPrefixGroup(t *testing.T) {
	h := sampleHeader()
	g := h.PrefixGroup()
	if g.SrcPrefix != 0xC0 || g.DstPrefix != 0x0A {
		t.Fatalf("prefix group %+v, want {C0 0A}", g)
	}
}

func TestAddrConversions(t *testing.T) {
	h := sampleHeader()
	if h.SrcAddr().String() != "192.168.1.1" {
		t.Fatalf("src addr = %s", h.SrcAddr())
	}
	if AddrToU32(h.SrcAddr()) != h.SrcIP {
		t.Fatal("AddrToU32(SrcAddr) must round trip")
	}
}

// Property: wire encode/decode round-trips arbitrary headers.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(srcIP, dstIP, seq, ack uint32, lens uint16, ipid uint16, frag uint16,
		proto, ttl, tos, doff, flags uint8, sp, dp, win uint16) bool {
		h := Header{
			SrcIP: srcIP, DstIP: dstIP, Protocol: proto, TTL: ttl,
			TotalLength: lens, IPID: ipid, FragOffset: frag & 0x1fff, TOS: tos,
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			DataOffset: doff & 0x0f, Flags: TCPFlags(flags), Window: win,
		}
		var got Header
		if _, err := got.DecodeFrom(h.Encode()); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: normalized vectors always land in [0,1] for arbitrary headers.
func TestNormalizedRangeProperty(t *testing.T) {
	f := func(srcIP, dstIP, seq, ack uint32, flags uint8) bool {
		h := Header{SrcIP: srcIP, DstIP: dstIP, Seq: seq, Ack: ack,
			Protocol: 255, TTL: 255, TotalLength: 65535, Flags: TCPFlags(flags),
			FragOffset: 8191, DataOffset: 15, Window: 65535,
			SrcPort: 65535, DstPort: 65535, IPID: 65535, TOS: 255}
		for _, x := range h.NormalizedVector(nil) {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHeaderDecode(b *testing.B) {
	h := sampleHeader()
	data := h.Encode()
	var out Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := out.DecodeFrom(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalizedVector(b *testing.B) {
	h := sampleHeader()
	buf := make([]float64, NumFields)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.NormalizedVector(buf)
	}
}
