package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateSizes(t *testing.T) {
	top, err := Generate(GenerateConfig{Name: "test", Routers: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if top.NumNodes() != 100 {
		t.Fatalf("nodes = %d, want 100", top.NumNodes())
	}
	if !top.Connected() {
		t.Fatal("generated topology must be connected")
	}
	if len(top.Gateways()) == 0 {
		t.Fatal("topology must have gateways")
	}
}

func TestGenerateTooSmall(t *testing.T) {
	if _, err := Generate(GenerateConfig{Routers: 3}); err == nil {
		t.Fatal("expected error for tiny topology")
	}
}

func TestGenerateBadFractions(t *testing.T) {
	_, err := Generate(GenerateConfig{Routers: 10, BackboneFrac: 0.6, GatewayFrac: 0.6})
	if err == nil {
		t.Fatal("expected error when tiers exhaust routers")
	}
}

func TestPaperTopologies(t *testing.T) {
	t1 := Abovenet()
	if t1.NumNodes() != 367 {
		t.Fatalf("topology 1 has %d routers, want 367", t1.NumNodes())
	}
	t2 := Exodus()
	if t2.NumNodes() != 338 {
		t.Fatalf("topology 2 has %d routers, want 338", t2.NumNodes())
	}
	for _, top := range []*Topology{t1, t2} {
		if !top.Connected() {
			t.Fatalf("%s must be connected", top.Name)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := Generate(GenerateConfig{Name: "x", Routers: 80, Seed: 9})
	b, _ := Generate(GenerateConfig{Name: "x", Routers: 80, Seed: 9})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must generate identical topologies")
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Degree(NodeID(i)) != b.Degree(NodeID(i)) {
			t.Fatalf("degree mismatch at node %d", i)
		}
	}
}

func TestDegreeDistributionHeavyTailed(t *testing.T) {
	top := Abovenet()
	maxDeg, sumDeg := 0, 0
	for i := 0; i < top.NumNodes(); i++ {
		d := top.Degree(NodeID(i))
		if d > maxDeg {
			maxDeg = d
		}
		sumDeg += d
	}
	mean := float64(sumDeg) / float64(top.NumNodes())
	// RocketFuel maps have hubs far above the mean degree.
	if float64(maxDeg) < 4*mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.2f", maxDeg, mean)
	}
}

func TestShortestPathBasics(t *testing.T) {
	top, _ := Generate(GenerateConfig{Name: "t", Routers: 60, Seed: 4})
	p, err := top.ShortestPath(0, 0)
	if err != nil || len(p) != 1 || p[0] != 0 {
		t.Fatalf("self path = %v, %v", p, err)
	}
	src, dst := NodeID(0), NodeID(top.NumNodes()-1)
	path, err := top.ShortestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path endpoints %v", path)
	}
	// Consecutive hops must be linked.
	for i := 1; i < len(path); i++ {
		if !top.HasEdge(path[i-1], path[i]) {
			t.Fatalf("hop %d: %d-%d is not a link", i, path[i-1], path[i])
		}
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	top, _ := Generate(GenerateConfig{Name: "t", Routers: 10, Seed: 4})
	if _, err := top.ShortestPath(0, 99); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	top := Exodus()
	a, err := top.ShortestPath(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := top.ShortestPath(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("repeated shortest paths must be identical")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated shortest paths must be identical")
		}
	}
}

func TestPlaceMonitors(t *testing.T) {
	top := Abovenet()
	ms, err := top.PlaceMonitors(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 25 {
		t.Fatalf("placed %d monitors, want 25", len(ms))
	}
	seen := make(map[NodeID]bool)
	for _, m := range ms {
		if seen[m] {
			t.Fatalf("duplicate monitor %d", m)
		}
		seen[m] = true
		if top.Node(m).Tier == TierGateway {
			t.Fatalf("monitor %d placed on a gateway", m)
		}
	}
}

func TestPlaceMonitorsBounds(t *testing.T) {
	top, _ := Generate(GenerateConfig{Name: "t", Routers: 10, Seed: 4})
	if _, err := top.PlaceMonitors(0); err == nil {
		t.Fatal("expected error for 0 monitors")
	}
	if _, err := top.PlaceMonitors(11); err == nil {
		t.Fatal("expected error for too many monitors")
	}
}

func TestMonitorsOnPath(t *testing.T) {
	path := []NodeID{3, 7, 12, 9}
	set := map[NodeID]bool{7: true, 9: true, 100: true}
	got := MonitorsOnPath(path, set)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("monitors on path = %v", got)
	}
}

func TestTierString(t *testing.T) {
	if TierBackbone.String() != "backbone" || TierGateway.String() != "gateway" {
		t.Fatal("tier names wrong")
	}
}

// Property: shortest paths are genuinely shortest — verified against BFS.
func TestShortestPathOptimalProperty(t *testing.T) {
	top, _ := Generate(GenerateConfig{Name: "t", Routers: 50, Seed: 11})
	bfs := func(src NodeID) []int {
		dist := make([]int, top.NumNodes())
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		q := []NodeID{src}
		for len(q) > 0 {
			cur := q[0]
			q = q[1:]
			for _, nb := range top.Neighbors(cur) {
				if dist[nb] == -1 {
					dist[nb] = dist[cur] + 1
					q = append(q, nb)
				}
			}
		}
		return dist
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := NodeID(rng.Intn(top.NumNodes()))
		dst := NodeID(rng.Intn(top.NumNodes()))
		path, err := top.ShortestPath(src, dst)
		if err != nil {
			return false
		}
		return len(path)-1 == bfs(src)[dst]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: gateway-to-gateway paths traverse at least one monitor when
// monitors cover the high-degree core (the coverage assumption behind
// flow assignment).
func TestMonitorCoverage(t *testing.T) {
	top := Abovenet()
	ms, err := top.PlaceMonitors(25)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[NodeID]bool, len(ms))
	for _, m := range ms {
		set[m] = true
	}
	gws := top.Gateways()
	rng := rand.New(rand.NewSource(12))
	covered, total := 0, 0
	for i := 0; i < 200; i++ {
		src := gws[rng.Intn(len(gws))]
		dst := gws[rng.Intn(len(gws))]
		if src == dst {
			continue
		}
		path, err := top.ShortestPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if len(MonitorsOnPath(path, set)) > 0 {
			covered++
		}
	}
	if frac := float64(covered) / float64(total); frac < 0.85 {
		t.Fatalf("only %.0f%% of gateway pairs covered by monitors", 100*frac)
	}
}
