// Package topology provides the ISP network substrate for Jaal's
// evaluation: synthetic RocketFuel-like router-level topologies, shortest
// path routing, and monitor placement.
//
// The paper evaluates on two RocketFuel topologies — Abovenet (367
// routers, "topology 1") and Exodus (338 routers, "topology 2"). Those
// map files are not shipped here, so Generate builds topologies of the
// same scale and character: a small densely meshed backbone tier, a
// mid-degree distribution tier attached preferentially (yielding the
// heavy-tailed degree distribution of measured ISP maps), and
// stub/gateway routers at the edge where traffic enters and leaves.
package topology

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a router.
type NodeID int

// Tier classifies a router's role.
type Tier uint8

// Router tiers.
const (
	// TierBackbone routers form the densely connected core.
	TierBackbone Tier = iota
	// TierDistribution routers hang off the backbone.
	TierDistribution
	// TierGateway routers are edge points of presence where flows
	// enter/exit the ISP.
	TierGateway
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierBackbone:
		return "backbone"
	case TierDistribution:
		return "distribution"
	case TierGateway:
		return "gateway"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// Node is one router.
type Node struct {
	ID   NodeID
	Tier Tier
}

// Topology is an undirected router-level graph with unit-cost links.
type Topology struct {
	// Name labels the topology ("abovenet-like", ...).
	Name  string
	nodes []Node
	adj   [][]NodeID
}

// NumNodes returns the router count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the node record for id.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Neighbors returns the adjacency list of id (shared storage; do not
// mutate).
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.adj[id] }

// Degree returns the number of links at id.
func (t *Topology) Degree(id NodeID) int { return len(t.adj[id]) }

// NumEdges returns the number of undirected links.
func (t *Topology) NumEdges() int {
	sum := 0
	for _, a := range t.adj {
		sum += len(a)
	}
	return sum / 2
}

// Gateways returns all gateway routers in ID order.
func (t *Topology) Gateways() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Tier == TierGateway {
			out = append(out, n.ID)
		}
	}
	return out
}

// NodesByTier returns all routers of the given tier in ID order.
func (t *Topology) NodesByTier(tier Tier) []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Tier == tier {
			out = append(out, n.ID)
		}
	}
	return out
}

// addEdge inserts an undirected link if absent.
func (t *Topology) addEdge(a, b NodeID) {
	if a == b {
		return
	}
	for _, n := range t.adj[a] {
		if n == b {
			return
		}
	}
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
}

// HasEdge reports whether a and b are directly linked.
func (t *Topology) HasEdge(a, b NodeID) bool {
	for _, n := range t.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// GenerateConfig sizes a synthetic topology.
type GenerateConfig struct {
	Name string
	// Routers is the total router count.
	Routers int
	// BackboneFrac is the fraction of routers in the backbone core
	// (default 0.05).
	BackboneFrac float64
	// GatewayFrac is the fraction of routers that are gateways
	// (default 0.35 — RocketFuel maps are edge-heavy).
	GatewayFrac float64
	// Attachment is the number of preferential-attachment links each
	// distribution router creates (default 2).
	Attachment int
	// Seed drives the generator.
	Seed int64
}

func (c GenerateConfig) withDefaults() GenerateConfig {
	if c.BackboneFrac <= 0 {
		c.BackboneFrac = 0.05
	}
	if c.GatewayFrac <= 0 {
		c.GatewayFrac = 0.35
	}
	if c.Attachment <= 0 {
		c.Attachment = 2
	}
	return c
}

// Abovenet returns the paper's "topology 1" analogue: 367 routers.
func Abovenet() *Topology {
	t, err := Generate(GenerateConfig{Name: "abovenet-like", Routers: 367, Seed: 1})
	if err != nil {
		panic(err) // fixed config cannot fail
	}
	return t
}

// Exodus returns the paper's "topology 2" analogue: 338 routers.
func Exodus() *Topology {
	t, err := Generate(GenerateConfig{Name: "exodus-like", Routers: 338, Seed: 2})
	if err != nil {
		panic(err) // fixed config cannot fail
	}
	return t
}

// Generate builds a connected RocketFuel-like topology.
func Generate(cfg GenerateConfig) (*Topology, error) {
	cfg = cfg.withDefaults()
	if cfg.Routers < 4 {
		return nil, fmt.Errorf("topology: need ≥ 4 routers, got %d", cfg.Routers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nBackbone := int(float64(cfg.Routers) * cfg.BackboneFrac)
	if nBackbone < 3 {
		nBackbone = 3
	}
	nGateway := int(float64(cfg.Routers) * cfg.GatewayFrac)
	if nBackbone+nGateway >= cfg.Routers {
		return nil, fmt.Errorf("topology: backbone+gateway fractions leave no distribution tier")
	}

	t := &Topology{
		Name:  cfg.Name,
		nodes: make([]Node, cfg.Routers),
		adj:   make([][]NodeID, cfg.Routers),
	}
	// Tier layout: [0, nBackbone) backbone, then distribution, gateways
	// at the tail.
	nDistribution := cfg.Routers - nBackbone - nGateway
	for i := range t.nodes {
		id := NodeID(i)
		switch {
		case i < nBackbone:
			t.nodes[i] = Node{ID: id, Tier: TierBackbone}
		case i < nBackbone+nDistribution:
			t.nodes[i] = Node{ID: id, Tier: TierDistribution}
		default:
			t.nodes[i] = Node{ID: id, Tier: TierGateway}
		}
	}

	// Backbone: a ring plus random chords for 2-connectivity and low
	// diameter, as in measured cores.
	for i := 0; i < nBackbone; i++ {
		t.addEdge(NodeID(i), NodeID((i+1)%nBackbone))
	}
	chords := nBackbone / 2
	for c := 0; c < chords; c++ {
		a := NodeID(rng.Intn(nBackbone))
		b := NodeID(rng.Intn(nBackbone))
		t.addEdge(a, b)
	}

	// Distribution: preferential attachment to already-placed routers.
	// degreeTargets holds candidate endpoints weighted by degree.
	var targets []NodeID
	for i := 0; i < nBackbone; i++ {
		for d := 0; d < t.Degree(NodeID(i)); d++ {
			targets = append(targets, NodeID(i))
		}
	}
	for i := nBackbone; i < nBackbone+nDistribution; i++ {
		id := NodeID(i)
		for l := 0; l < cfg.Attachment; l++ {
			dst := targets[rng.Intn(len(targets))]
			t.addEdge(id, dst)
			targets = append(targets, dst)
		}
		for d := 0; d < t.Degree(id); d++ {
			targets = append(targets, id)
		}
	}

	// Gateways: each attaches to 1–2 distribution routers.
	distLo, distHi := nBackbone, nBackbone+nDistribution
	for i := nBackbone + nDistribution; i < cfg.Routers; i++ {
		id := NodeID(i)
		links := 1 + rng.Intn(2)
		for l := 0; l < links; l++ {
			dst := NodeID(distLo + rng.Intn(distHi-distLo))
			t.addEdge(id, dst)
		}
	}
	return t, nil
}

// ShortestPath returns one shortest path (inclusive of endpoints) from
// src to dst using unit link costs, with deterministic tie-breaking by
// node ID. It returns an error when no path exists.
func (t *Topology) ShortestPath(src, dst NodeID) ([]NodeID, error) {
	if src == dst {
		return []NodeID{src}, nil
	}
	n := t.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, fmt.Errorf("topology: node out of range")
	}
	const unvisited = -1
	prev := make([]NodeID, n)
	dist := make([]int, n)
	for i := range prev {
		prev[i] = unvisited
		dist[i] = int(^uint(0) >> 1)
	}
	dist[src] = 0

	pq := &nodeHeap{}
	heap.Push(pq, nodeDist{node: src, dist: 0})
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if cur.dist > dist[cur.node] {
			continue
		}
		if cur.node == dst {
			break
		}
		// Deterministic neighbor order.
		nbrs := append([]NodeID(nil), t.adj[cur.node]...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, nb := range nbrs {
			if nd := cur.dist + 1; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = cur.node
				heap.Push(pq, nodeDist{node: nb, dist: nd})
			}
		}
	}
	if prev[dst] == unvisited {
		return nil, fmt.Errorf("topology: no path from %d to %d", src, dst)
	}
	var path []NodeID
	for at := dst; ; at = prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

type nodeDist struct {
	node NodeID
	dist int
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Connected reports whether the whole topology is one component.
func (t *Topology) Connected() bool {
	if t.NumNodes() == 0 {
		return true
	}
	seen := make([]bool, t.NumNodes())
	stack := []NodeID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, nb := range t.adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return count == t.NumNodes()
}

// PlaceMonitors selects count monitor locations, preferring
// high-betweenness positions cheaply approximated by degree: the
// highest-degree distribution/backbone routers, which is where a carrier
// would tap (core routers and IXP-like aggregation points, §2). Ties
// break by node ID for reproducibility.
func (t *Topology) PlaceMonitors(count int) ([]NodeID, error) {
	if count < 1 || count > t.NumNodes() {
		return nil, fmt.Errorf("topology: cannot place %d monitors in %d routers", count, t.NumNodes())
	}
	ids := make([]NodeID, t.NumNodes())
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		// Prefer non-gateway, then higher degree, then lower ID.
		ga, gb := t.nodes[a].Tier == TierGateway, t.nodes[b].Tier == TierGateway
		if ga != gb {
			return !ga
		}
		if t.Degree(a) != t.Degree(b) {
			return t.Degree(a) > t.Degree(b)
		}
		return a < b
	})
	out := append([]NodeID(nil), ids[:count]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MonitorsOnPath returns, in path order, the monitors (from the given
// set) that lie on the path.
func MonitorsOnPath(path []NodeID, monitorSet map[NodeID]bool) []NodeID {
	var out []NodeID
	for _, n := range path {
		if monitorSet[n] {
			out = append(out, n)
		}
	}
	return out
}
