// Package flowassign implements Jaal's flow assignment module (§6): the
// online assignment of flows to monitors such that every flow is watched
// by exactly one monitor on its path and the maximum monitor load is
// minimized.
//
// Three strategies are provided:
//
//   - Greedy assigns each incoming flow to the least-loaded monitor in
//     its monitor group. It needs no knowledge of flow weights and is the
//     strategy Jaal deploys; its competitive ratio is (3M)^(2/3)/2·(1+o(1))
//     (Azar, Broder & Karlin 1994).
//   - RobinHood is the optimal O(√M)-competitive algorithm for temporary
//     tasks with assignment restrictions (Azar et al. 1997). It requires
//     flow weights up front, which is impractical online; the paper uses
//     it as the ideal baseline of Fig. 9.
//   - Random assigns uniformly within the monitor group, the weak
//     baseline of Fig. 9.
package flowassign

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// MonitorID identifies a monitor.
type MonitorID int

// FlowID identifies a flow (or flow group member).
type FlowID uint64

// Assignment records where a flow was placed.
type Assignment struct {
	Flow    FlowID
	Monitor MonitorID
	Weight  float64
}

// Strategy is an online flow-assignment policy. Implementations must be
// deterministic given their construction parameters (Random takes a
// seeded RNG).
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Assign places a flow whose candidate monitors are group. The
	// weight is the flow's packet rate; strategies that cannot know it
	// online (Greedy, Random) must ignore it at decision time but may
	// use it for bookkeeping after placement. Assign reports an error
	// when group is empty.
	Assign(flow FlowID, group []MonitorID, weight float64) (MonitorID, error)
	// Remove retires a flow when it terminates, releasing its load.
	Remove(flow FlowID) error
	// Load returns the current load of a monitor.
	Load(m MonitorID) float64
}

// tracker is shared load bookkeeping.
type tracker struct {
	load  map[MonitorID]float64
	flows map[FlowID]Assignment
}

func newTracker() tracker {
	return tracker{load: make(map[MonitorID]float64), flows: make(map[FlowID]Assignment)}
}

func (t *tracker) place(f FlowID, m MonitorID, w float64) {
	t.load[m] += w
	t.flows[f] = Assignment{Flow: f, Monitor: m, Weight: w}
}

func (t *tracker) remove(f FlowID) error {
	a, ok := t.flows[f]
	if !ok {
		return fmt.Errorf("flowassign: unknown flow %d", f)
	}
	t.load[a.Monitor] -= a.Weight
	if t.load[a.Monitor] < 1e-12 {
		t.load[a.Monitor] = 0
	}
	delete(t.flows, f)
	return nil
}

func (t *tracker) assignmentOf(f FlowID) (Assignment, bool) {
	a, ok := t.flows[f]
	return a, ok
}

// sortedMonitors returns the map's keys in ascending order, the
// deterministic iteration order for load walks.
func sortedMonitors(load map[MonitorID]float64) []MonitorID {
	ids := make([]MonitorID, 0, len(load))
	for m := range load {
		ids = append(ids, m)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Greedy is Jaal's deployed strategy: least-loaded monitor in the group.
type Greedy struct {
	t tracker
}

// NewGreedy returns a Greedy strategy.
func NewGreedy() *Greedy { return &Greedy{t: newTracker()} }

// Name implements Strategy.
func (g *Greedy) Name() string { return "greedy" }

// Assign implements Strategy. Ties break on the lower monitor ID so runs
// are reproducible.
func (g *Greedy) Assign(flow FlowID, group []MonitorID, weight float64) (MonitorID, error) {
	if len(group) == 0 {
		return 0, fmt.Errorf("flowassign: empty monitor group for flow %d", flow)
	}
	best := group[0]
	bestLoad := g.t.load[best]
	for _, m := range group[1:] {
		if l := g.t.load[m]; l < bestLoad || (l == bestLoad && m < best) {
			best, bestLoad = m, l
		}
	}
	g.t.place(flow, best, weight)
	return best, nil
}

// Remove implements Strategy.
func (g *Greedy) Remove(flow FlowID) error { return g.t.remove(flow) }

// Load implements Strategy.
func (g *Greedy) Load(m MonitorID) float64 { return g.t.load[m] }

// AssignmentOf returns the current placement of a flow.
func (g *Greedy) AssignmentOf(f FlowID) (Assignment, bool) { return g.t.assignmentOf(f) }

// SnapshotGreedy is the deployed variant of Greedy: decisions use a load
// snapshot refreshed only when Refresh is called, modeling the P = 2 s
// load polling of §7 ("the flow assignment module polls monitors for
// load updates every P = 2 seconds"). Between refreshes the controller
// places flows against stale loads, which is what separates the deployed
// greedy from the instantaneous Robin-Hood baseline in Fig. 9.
type SnapshotGreedy struct {
	t        tracker
	snapshot map[MonitorID]float64
}

// NewSnapshotGreedy returns a SnapshotGreedy with an empty snapshot.
func NewSnapshotGreedy() *SnapshotGreedy {
	return &SnapshotGreedy{t: newTracker(), snapshot: make(map[MonitorID]float64)}
}

// Name implements Strategy.
func (g *SnapshotGreedy) Name() string { return "greedy(P)" }

// Refresh updates the decision snapshot to the current true loads — the
// periodic load poll. The copy walks sorted keys (mapiter): the real
// controller polls monitors in ID order, and a raw map walk here is
// exactly the unsorted-iteration hazard jaal-vet exists to catch.
func (g *SnapshotGreedy) Refresh() {
	clear(g.snapshot)
	for _, m := range sortedMonitors(g.t.load) {
		g.snapshot[m] = g.t.load[m]
	}
}

// Assign implements Strategy, deciding on the stale snapshot.
func (g *SnapshotGreedy) Assign(flow FlowID, group []MonitorID, weight float64) (MonitorID, error) {
	if len(group) == 0 {
		return 0, fmt.Errorf("flowassign: empty monitor group for flow %d", flow)
	}
	best := group[0]
	bestLoad := g.snapshot[best]
	for _, m := range group[1:] {
		if l := g.snapshot[m]; l < bestLoad || (l == bestLoad && m < best) {
			best, bestLoad = m, l
		}
	}
	g.t.place(flow, best, weight)
	return best, nil
}

// Remove implements Strategy.
func (g *SnapshotGreedy) Remove(flow FlowID) error { return g.t.remove(flow) }

// Load implements Strategy (true current load, as a monitor would report).
func (g *SnapshotGreedy) Load(m MonitorID) float64 { return g.t.load[m] }

// Random places flows uniformly at random within the group.
type Random struct {
	t   tracker
	rng *rand.Rand
}

// NewRandom returns a Random strategy driven by rng.
func NewRandom(rng *rand.Rand) *Random { return &Random{t: newTracker(), rng: rng} }

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// Assign implements Strategy.
func (r *Random) Assign(flow FlowID, group []MonitorID, weight float64) (MonitorID, error) {
	if len(group) == 0 {
		return 0, fmt.Errorf("flowassign: empty monitor group for flow %d", flow)
	}
	m := group[r.rng.Intn(len(group))]
	r.t.place(flow, m, weight)
	return m, nil
}

// Remove implements Strategy.
func (r *Random) Remove(flow FlowID) error { return r.t.remove(flow) }

// Load implements Strategy.
func (r *Random) Load(m MonitorID) float64 { return r.t.load[m] }

// RobinHood implements the Robin-Hood algorithm for online load balancing
// of temporary tasks with assignment restrictions (Azar, Kalyanasundaram,
// Plotkin, Pruhs & Waarts, J. Algorithms 1997). It maintains an estimate
// L of the optimal offline maximum load; a monitor is "rich" if its load
// is ≥ √M·L and "poor" otherwise. Jobs go to a poor monitor in their
// group when one exists; otherwise to the rich monitor that became rich
// most recently. The estimate doubles when no placement can respect it.
// The algorithm is O(√M)-competitive, the lower bound for this problem.
type RobinHood struct {
	t        tracker
	m        int     // number of monitors in the system
	estimate float64 // current lower-bound estimate L of OPT
	// richSince records when each monitor last crossed the rich
	// threshold; richer-later wins ties per the algorithm.
	richSince map[MonitorID]int
	clock     int
}

// NewRobinHood returns a RobinHood strategy for a system of m monitors.
func NewRobinHood(m int) *RobinHood {
	if m < 1 {
		panic("flowassign: RobinHood needs at least one monitor")
	}
	return &RobinHood{t: newTracker(), m: m, richSince: make(map[MonitorID]int)}
}

// Name implements Strategy.
func (r *RobinHood) Name() string { return "robinhood" }

// threshold is √M·L, the rich/poor boundary.
func (r *RobinHood) threshold() float64 { return math.Sqrt(float64(r.m)) * r.estimate }

// Assign implements Strategy. Unlike Greedy it uses the true weight when
// deciding, which is exactly the information advantage the paper grants
// the baseline ("the weights for Robin Hood are given", §8.2).
func (r *RobinHood) Assign(flow FlowID, group []MonitorID, weight float64) (MonitorID, error) {
	if len(group) == 0 {
		return 0, fmt.Errorf("flowassign: empty monitor group for flow %d", flow)
	}
	r.clock++

	// Maintain the OPT estimate: it can never be less than the weight
	// of any single job, nor less than (total load)/M. The sum walks
	// sorted keys: float addition is not associative, so summing in map
	// order would let the iteration order perturb the estimate — and
	// with it the rich/poor split and the final assignment.
	var total float64
	for _, m := range sortedMonitors(r.t.load) {
		total += r.t.load[m]
	}
	lower := math.Max(weight, (total+weight)/float64(r.m))
	for r.estimate < lower {
		if r.estimate == 0 {
			r.estimate = lower
		} else {
			r.estimate *= 2
		}
		// On re-estimate every monitor is reconsidered poor.
		r.richSince = make(map[MonitorID]int)
	}

	thr := r.threshold()
	// Prefer the least-loaded poor monitor.
	var poor []MonitorID
	for _, m := range group {
		if r.t.load[m] < thr {
			poor = append(poor, m)
		}
	}
	var chosen MonitorID
	if len(poor) > 0 {
		chosen = poor[0]
		for _, m := range poor[1:] {
			if r.t.load[m] < r.t.load[chosen] || (r.t.load[m] == r.t.load[chosen] && m < chosen) {
				chosen = m
			}
		}
	} else {
		// All rich: pick the one that became rich most recently.
		chosen = group[0]
		best := -1
		for _, m := range group {
			if since, ok := r.richSince[m]; ok && since > best {
				best, chosen = since, m
			}
		}
	}

	before := r.t.load[chosen]
	r.t.place(flow, chosen, weight)
	if before < thr && r.t.load[chosen] >= thr {
		r.richSince[chosen] = r.clock
	}
	return chosen, nil
}

// Remove implements Strategy.
func (r *RobinHood) Remove(flow FlowID) error { return r.t.remove(flow) }

// Load implements Strategy.
func (r *RobinHood) Load(m MonitorID) float64 { return r.t.load[m] }

// MaxLoad returns the maximum load over monitors for any strategy,
// given the monitor universe.
func MaxLoad(s Strategy, monitors []MonitorID) float64 {
	var mx float64
	for _, m := range monitors {
		if l := s.Load(m); l > mx {
			mx = l
		}
	}
	return mx
}

// SortedLoads returns the loads of the given monitors in descending order.
func SortedLoads(s Strategy, monitors []MonitorID) []float64 {
	out := make([]float64, len(monitors))
	for i, m := range monitors {
		out[i] = s.Load(m)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
