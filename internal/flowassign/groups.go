package flowassign

import (
	"fmt"
	"sort"
)

// GroupKey identifies a flow group: the set of flows that traverse the
// same set of monitors (§6). With shortest-path routing the key is just
// the (source prefix, destination prefix) pair of §7, but any string key
// works.
type GroupKey string

// GroupTable maps flow groups to their monitor groups — the subset of
// monitors on the group's path. A monitor can belong to many groups.
type GroupTable struct {
	groups map[GroupKey][]MonitorID
}

// NewGroupTable returns an empty table.
func NewGroupTable() *GroupTable {
	return &GroupTable{groups: make(map[GroupKey][]MonitorID)}
}

// Define binds a flow group to its monitor group. The monitor list is
// copied, deduplicated, and sorted for deterministic iteration.
func (t *GroupTable) Define(key GroupKey, monitors []MonitorID) error {
	if len(monitors) == 0 {
		return fmt.Errorf("flowassign: group %q has no monitors", key)
	}
	seen := make(map[MonitorID]bool, len(monitors))
	var list []MonitorID
	for _, m := range monitors {
		if !seen[m] {
			seen[m] = true
			list = append(list, m)
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	t.groups[key] = list
	return nil
}

// MonitorGroup returns the monitor group of a flow group.
func (t *GroupTable) MonitorGroup(key GroupKey) ([]MonitorID, bool) {
	g, ok := t.groups[key]
	return g, ok
}

// Keys returns all group keys in sorted order.
func (t *GroupTable) Keys() []GroupKey {
	out := make([]GroupKey, 0, len(t.groups))
	for k := range t.groups {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of defined groups.
func (t *GroupTable) Len() int { return len(t.groups) }

// Assigner wires a Strategy to a GroupTable and resolves flow groups to
// monitor groups at assignment time. In the deployed system the
// controller refreshes monitor loads every P = 2 s (§7); the experiment
// harness models that cadence by batching assignments between load
// observations, so Assigner itself stays synchronous.
type Assigner struct {
	Strategy Strategy
	Table    *GroupTable
}

// NewAssigner couples a strategy and a table.
func NewAssigner(s Strategy, t *GroupTable) *Assigner {
	return &Assigner{Strategy: s, Table: t}
}

// Assign places a flow belonging to group key.
func (a *Assigner) Assign(flow FlowID, key GroupKey, weight float64) (MonitorID, error) {
	group, ok := a.Table.MonitorGroup(key)
	if !ok {
		return 0, fmt.Errorf("flowassign: unknown flow group %q", key)
	}
	return a.Strategy.Assign(flow, group, weight)
}

// Remove retires a flow.
func (a *Assigner) Remove(flow FlowID) error { return a.Strategy.Remove(flow) }
