package flowassign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func monitors(n int) []MonitorID {
	out := make([]MonitorID, n)
	for i := range out {
		out[i] = MonitorID(i)
	}
	return out
}

func TestGreedyBalancesUnitFlows(t *testing.T) {
	g := NewGreedy()
	all := monitors(4)
	for f := 0; f < 100; f++ {
		if _, err := g.Assign(FlowID(f), all, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range all {
		if g.Load(m) != 25 {
			t.Fatalf("monitor %d load %v, want 25", m, g.Load(m))
		}
	}
}

func TestGreedyRespectsGroups(t *testing.T) {
	g := NewGreedy()
	group := []MonitorID{2, 5}
	for f := 0; f < 10; f++ {
		m, err := g.Assign(FlowID(f), group, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m != 2 && m != 5 {
			t.Fatalf("flow assigned outside group: %d", m)
		}
	}
	if g.Load(2)+g.Load(5) != 10 {
		t.Fatalf("group loads = %v + %v, want 10", g.Load(2), g.Load(5))
	}
}

func TestGreedyEmptyGroup(t *testing.T) {
	if _, err := NewGreedy().Assign(1, nil, 1); err == nil {
		t.Fatal("expected error for empty group")
	}
}

func TestGreedyRemoveReleasesLoad(t *testing.T) {
	g := NewGreedy()
	if _, err := g.Assign(1, []MonitorID{0}, 3); err != nil {
		t.Fatal(err)
	}
	if g.Load(0) != 3 {
		t.Fatalf("load = %v, want 3", g.Load(0))
	}
	if err := g.Remove(1); err != nil {
		t.Fatal(err)
	}
	if g.Load(0) != 0 {
		t.Fatalf("load after remove = %v, want 0", g.Load(0))
	}
	if err := g.Remove(1); err == nil {
		t.Fatal("removing an unknown flow must fail")
	}
}

func TestGreedyAssignmentOf(t *testing.T) {
	g := NewGreedy()
	if _, err := g.Assign(7, []MonitorID{3}, 2.5); err != nil {
		t.Fatal(err)
	}
	a, ok := g.AssignmentOf(7)
	if !ok || a.Monitor != 3 || a.Weight != 2.5 {
		t.Fatalf("assignment = %+v, %v", a, ok)
	}
	if _, ok := g.AssignmentOf(8); ok {
		t.Fatal("unknown flow must not resolve")
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	g := NewGreedy()
	m, err := g.Assign(1, []MonitorID{5, 2, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("tie broke to %d, want lowest ID 2", m)
	}
}

func TestRandomStaysInGroup(t *testing.T) {
	r := NewRandom(rand.New(rand.NewSource(1)))
	group := []MonitorID{1, 3}
	for f := 0; f < 50; f++ {
		m, err := r.Assign(FlowID(f), group, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m != 1 && m != 3 {
			t.Fatalf("random assigned outside group: %d", m)
		}
	}
	if r.Load(1)+r.Load(3) != 50 {
		t.Fatal("loads must total 50")
	}
	if _, err := r.Assign(99, nil, 1); err == nil {
		t.Fatal("expected error for empty group")
	}
}

func TestRobinHoodBasic(t *testing.T) {
	rh := NewRobinHood(4)
	all := monitors(4)
	for f := 0; f < 100; f++ {
		m, err := rh.Assign(FlowID(f), all, 1)
		if err != nil {
			t.Fatal(err)
		}
		_ = m
	}
	// With unit weights and full groups, Robin Hood should spread load
	// within a factor ~√M of perfect balance.
	maxL := MaxLoad(rh, all)
	if maxL > 25*math.Sqrt(4) {
		t.Fatalf("max load %v exceeds √M bound", maxL)
	}
	var total float64
	for _, m := range all {
		total += rh.Load(m)
	}
	if total != 100 {
		t.Fatalf("total load %v, want 100", total)
	}
}

func TestRobinHoodRemove(t *testing.T) {
	rh := NewRobinHood(2)
	if _, err := rh.Assign(1, []MonitorID{0, 1}, 5); err != nil {
		t.Fatal(err)
	}
	if err := rh.Remove(1); err != nil {
		t.Fatal(err)
	}
	if rh.Load(0)+rh.Load(1) != 0 {
		t.Fatal("load must be released on remove")
	}
}

func TestRobinHoodEmptyGroup(t *testing.T) {
	if _, err := NewRobinHood(3).Assign(1, nil, 1); err == nil {
		t.Fatal("expected error for empty group")
	}
}

func TestRobinHoodPanicsOnZeroMonitors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRobinHood(0)
}

// With restricted groups and heavy flows, greedy (weight-blind) can be
// beaten by Robin Hood (weight-aware); this test only asserts both remain
// within their theoretical competitive bounds against a simple optimum.
func TestCompetitiveBoundsOnRestrictedGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const M = 9
	all := monitors(M)
	groups := make([][]MonitorID, 12)
	for i := range groups {
		// Random group of 2–4 monitors.
		n := 2 + rng.Intn(3)
		perm := rng.Perm(M)
		g := make([]MonitorID, n)
		for j := 0; j < n; j++ {
			g[j] = all[perm[j]]
		}
		groups[i] = g
	}

	greedy := NewGreedy()
	rh := NewRobinHood(M)
	var totalWeight float64
	for f := 0; f < 400; f++ {
		g := groups[rng.Intn(len(groups))]
		w := 1 + rng.Float64()*4
		totalWeight += w
		if _, err := greedy.Assign(FlowID(f), g, w); err != nil {
			t.Fatal(err)
		}
		if _, err := rh.Assign(FlowID(f), g, w); err != nil {
			t.Fatal(err)
		}
	}
	// A loose lower bound for OPT: total/M.
	opt := totalWeight / M
	gMax, rMax := MaxLoad(greedy, all), MaxLoad(rh, all)
	gBound := opt * math.Pow(3*M, 2.0/3.0) // (3M)^(2/3)/2·(1+o(1)); use ×2 slack
	rBound := opt * 2 * math.Sqrt(M)
	if gMax > gBound {
		t.Fatalf("greedy max load %v exceeds bound %v", gMax, gBound)
	}
	if rMax > rBound {
		t.Fatalf("robin hood max load %v exceeds bound %v", rMax, rBound)
	}
}

func TestSortedLoads(t *testing.T) {
	g := NewGreedy()
	g.Assign(1, []MonitorID{0}, 3)
	g.Assign(2, []MonitorID{1}, 7)
	g.Assign(3, []MonitorID{2}, 5)
	loads := SortedLoads(g, monitors(3))
	if loads[0] != 7 || loads[1] != 5 || loads[2] != 3 {
		t.Fatalf("sorted loads = %v", loads)
	}
}

func TestGroupTable(t *testing.T) {
	tab := NewGroupTable()
	if err := tab.Define("a>b", []MonitorID{3, 1, 3}); err != nil {
		t.Fatal(err)
	}
	g, ok := tab.MonitorGroup("a>b")
	if !ok || len(g) != 2 || g[0] != 1 || g[1] != 3 {
		t.Fatalf("group = %v, %v (want deduped sorted [1 3])", g, ok)
	}
	if _, ok := tab.MonitorGroup("nope"); ok {
		t.Fatal("unknown group must not resolve")
	}
	if err := tab.Define("empty", nil); err == nil {
		t.Fatal("empty monitor group must be rejected")
	}
	if err := tab.Define("b>c", []MonitorID{2}); err != nil {
		t.Fatal(err)
	}
	keys := tab.Keys()
	if len(keys) != 2 || keys[0] != "a>b" || keys[1] != "b>c" {
		t.Fatalf("keys = %v", keys)
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestAssigner(t *testing.T) {
	tab := NewGroupTable()
	tab.Define("g", []MonitorID{0, 1})
	a := NewAssigner(NewGreedy(), tab)
	m, err := a.Assign(1, "g", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 && m != 1 {
		t.Fatalf("assigned to %d", m)
	}
	if _, err := a.Assign(2, "missing", 1); err == nil {
		t.Fatal("unknown group must error")
	}
	if err := a.Remove(1); err != nil {
		t.Fatal(err)
	}
}

// Property: for any arrival/departure sequence, greedy's accounted total
// load equals the sum of live flow weights.
func TestGreedyConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGreedy()
		all := monitors(1 + rng.Intn(8))
		live := map[FlowID]float64{}
		next := FlowID(0)
		for step := 0; step < 200; step++ {
			if len(live) > 0 && rng.Float64() < 0.4 {
				for f := range live {
					if err := g.Remove(f); err != nil {
						return false
					}
					delete(live, f)
					break
				}
			} else {
				w := rng.Float64() * 3
				if _, err := g.Assign(next, all, w); err != nil {
					return false
				}
				live[next] = w
				next++
			}
		}
		var want float64
		for _, w := range live {
			want += w
		}
		var got float64
		for _, m := range all {
			got += g.Load(m)
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy never assigns to a monitor when a strictly less-loaded
// monitor exists in the group at decision time.
func TestGreedyLeastLoadedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGreedy()
		all := monitors(2 + rng.Intn(6))
		for f := 0; f < 100; f++ {
			loads := make(map[MonitorID]float64)
			for _, m := range all {
				loads[m] = g.Load(m)
			}
			chosen, err := g.Assign(FlowID(f), all, rng.Float64())
			if err != nil {
				return false
			}
			for _, m := range all {
				if loads[m] < loads[chosen] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotGreedyStaleDecisions(t *testing.T) {
	g := NewSnapshotGreedy()
	group := []MonitorID{0, 1}
	// Without a refresh, the snapshot shows all-zero loads: ties break
	// to the lowest ID every time, piling flows onto monitor 0.
	for f := 0; f < 10; f++ {
		m, err := g.Assign(FlowID(f), group, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m != 0 {
			t.Fatalf("stale snapshot must keep choosing monitor 0, got %d", m)
		}
	}
	if g.Load(0) != 10 || g.Load(1) != 0 {
		t.Fatalf("true loads = %v/%v", g.Load(0), g.Load(1))
	}
	// After a refresh the snapshot sees the imbalance and switches.
	g.Refresh()
	m, err := g.Assign(100, group, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("refreshed snapshot must pick the idle monitor, got %d", m)
	}
}

func TestSnapshotGreedyRemove(t *testing.T) {
	g := NewSnapshotGreedy()
	if _, err := g.Assign(1, []MonitorID{0}, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove(1); err != nil {
		t.Fatal(err)
	}
	if g.Load(0) != 0 {
		t.Fatalf("load after remove = %v", g.Load(0))
	}
	if _, err := g.Assign(2, nil, 1); err == nil {
		t.Fatal("empty group must error")
	}
	if g.Name() != "greedy(P)" {
		t.Fatalf("name = %q", g.Name())
	}
}

// With frequent refreshes, SnapshotGreedy converges to plain Greedy.
func TestSnapshotGreedyConvergesToGreedy(t *testing.T) {
	snap := NewSnapshotGreedy()
	plain := NewGreedy()
	all := monitors(5)
	for f := 0; f < 200; f++ {
		snap.Refresh() // refresh before every decision = fresh loads
		ms, err := snap.Assign(FlowID(f), all, 1)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := plain.Assign(FlowID(f), all, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ms != mp {
			t.Fatalf("flow %d: snapshot chose %d, plain chose %d", f, ms, mp)
		}
	}
}

// runWorkload drives one strategy through a fixed seeded workload of
// assigns, removes, and (for SnapshotGreedy) periodic refreshes, and
// returns the chosen monitor per flow.
func runWorkload(t *testing.T, s Strategy, seed int64) []MonitorID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	all := monitors(7)
	var got []MonitorID
	for f := 0; f < 500; f++ {
		if sg, ok := s.(*SnapshotGreedy); ok && f%10 == 0 {
			sg.Refresh()
		}
		group := all[:2+rng.Intn(len(all)-2)]
		w := 0.1 + rng.Float64()
		m, err := s.Assign(FlowID(f), group, w)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
		if f > 0 && rng.Intn(4) == 0 {
			if err := s.Remove(FlowID(rng.Intn(f))); err != nil {
				// Already removed earlier; fine for this workload.
				continue
			}
		}
	}
	return got
}

// TestAssignmentsDeterministicAcrossRuns is the regression test for the
// unsorted-map-walk bugs: SnapshotGreedy.Refresh used to rebuild its
// snapshot in map iteration order, and RobinHood.Assign summed float64
// loads in map order (float addition is not associative), so identical
// workloads could place flows differently from run to run. Every
// strategy must now reproduce the exact same assignment sequence.
func TestAssignmentsDeterministicAcrossRuns(t *testing.T) {
	strategies := map[string]func() Strategy{
		"greedy":    func() Strategy { return NewGreedy() },
		"snapshot":  func() Strategy { return NewSnapshotGreedy() },
		"robinhood": func() Strategy { return NewRobinHood(7) },
		"random":    func() Strategy { return NewRandom(rand.New(rand.NewSource(11))) },
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			want := runWorkload(t, mk(), 42)
			for run := 1; run <= 5; run++ {
				got := runWorkload(t, mk(), 42)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("run %d: flow %d assigned to %d, first run assigned to %d",
							run, i, got[i], want[i])
					}
				}
			}
		})
	}
}
