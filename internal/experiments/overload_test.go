package experiments

import "testing"

// The overload grid's load-shedding contract, pinned at quick scale:
// shedding off tracks offered load linearly; shedding on is bounded at
// the admission ceiling, keeps detecting the flood, and the volumetric
// path names the victim from digests alone.
func TestOverloadQuick(t *testing.T) {
	res, tbl, err := Overload(true)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(tbl.Rows) != 6 {
		t.Fatalf("want 6 grid rows, got %+v", tbl)
	}
	for _, load := range []int{1, 5, 10} {
		off, on := res.Cell(load, false), res.Cell(load, true)
		if off == nil || on == nil {
			t.Fatalf("missing cells at %dx", load)
		}
		if off.Shed != 0 || off.Summarized != off.Offered {
			t.Fatalf("%dx shed-off must summarize everything: %+v", load, off)
		}
		if on.Offered != off.Offered {
			t.Fatalf("%dx modes saw different traffic: %d vs %d", load, on.Offered, off.Offered)
		}
		if on.Kept+on.Shed != uint64(on.Offered) {
			t.Fatalf("%dx shed-on accounting inconsistent: %+v", load, on)
		}
		if on.DetectedEpochs != on.ActiveEpochs {
			t.Fatalf("%dx shed-on missed the flood: %d/%d epochs", load, on.DetectedEpochs, on.ActiveEpochs)
		}
		if !on.VolumetricHit {
			t.Fatalf("%dx shed-on volumetric report must name the victim", load)
		}
	}
	if on1 := res.Cell(1, true); on1.Shed != 0 {
		t.Fatalf("1x must not shed at the provisioned watermark: %+v", on1)
	}
	five, ten := res.Cell(5, true), res.Cell(10, true)
	if five.Shed == 0 || ten.Shed == 0 {
		t.Fatal("overload cells must shed")
	}
	// The bounded-slab claim: doubling the overload must not grow the
	// summarization work — admissions are pinned at the hard ceiling.
	if ten.Summarized != five.Summarized {
		t.Fatalf("summarized grew with load under shedding: 5x=%d 10x=%d",
			five.Summarized, ten.Summarized)
	}
	if ten.ShedFraction() <= five.ShedFraction() {
		t.Fatalf("shed fraction must grow with load: 5x=%.3f 10x=%.3f",
			five.ShedFraction(), ten.ShedFraction())
	}
}
