package experiments

import (
	"fmt"
	"net/netip"

	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// TrialConfig parameterizes one detection-trial campaign for one attack.
type TrialConfig struct {
	// Attack is the evaluated attack.
	Attack rules.AttackID
	// BatchSize is n, Rank is r, Centroids is k.
	BatchSize, Rank, Centroids int
	// Monitors is M: the traffic of each trial is split across M
	// summarizers whose outputs are aggregated, as in the deployment.
	Monitors int
	// BatchesPerTrial is how many batches each monitor summarizes per
	// trial.
	BatchesPerTrial int
	// Trials is the number of positive (attack present) and negative
	// (attack absent) trials each.
	Trials int
	// TraceSeed selects the background trace (1 or 2 in the paper).
	TraceSeed int64
	// Seed decorrelates trial randomness.
	Seed int64
}

// Validate checks the configuration.
func (c TrialConfig) Validate() error {
	if c.BatchSize < 1 || c.Rank < 1 || c.Centroids < 1 ||
		c.Monitors < 1 || c.BatchesPerTrial < 1 || c.Trials < 1 {
		return fmt.Errorf("experiments: non-positive trial parameter: %+v", c)
	}
	return nil
}

// TrialSet holds the precomputed aggregates of a campaign, so threshold
// sweeps reuse the expensive summarization work.
type TrialSet struct {
	Config TrialConfig
	// Positive and Negative are per-trial aggregates.
	Positive []*inference.Aggregate
	Negative []*inference.Aggregate
	// Question is the attack's translated rule with default thresholds.
	Question *rules.Question
	// Env is the rule environment used.
	Env *rules.Environment
}

// Env returns the standard evaluation environment: HOME_NET = 10/8,
// matching the victim addresses the attack generators use.
func Env() *rules.Environment {
	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	return env
}

// BuildTrialSet generates traffic, summarizes it and aggregates the
// summaries for every trial of a campaign. This is the expensive part of
// every ROC experiment; sweeps over τ thresholds afterwards are cheap.
func BuildTrialSet(cfg TrialConfig) (*TrialSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := Env()
	q, err := rules.LibraryQuestion(cfg.Attack, env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		return nil, err
	}
	ts := &TrialSet{Config: cfg, Question: q, Env: env}

	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(trial)*1000
		pos, err := runOneTrial(cfg, seed, true)
		if err != nil {
			return nil, err
		}
		neg, err := runOneTrial(cfg, seed+500, false)
		if err != nil {
			return nil, err
		}
		ts.Positive = append(ts.Positive, pos)
		ts.Negative = append(ts.Negative, neg)
	}
	return ts, nil
}

// runOneTrial produces the aggregate of one trial.
func runOneTrial(cfg TrialConfig, seed int64, withAttack bool) (*inference.Aggregate, error) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(cfg.TraceSeed*10000 + seed))
	var atk trafficgen.Attack
	if withAttack {
		var err error
		atk, err = trafficgen.NewAttack(cfg.Attack, trafficgen.AttackConfig{
			Seed: seed, Victim: 0x0A0000FE,
		})
		if err != nil {
			return nil, err
		}
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed})

	var sums []*summary.Summary
	for m := 0; m < cfg.Monitors; m++ {
		szr, err := summary.NewSummarizer(summary.Config{
			BatchSize: cfg.BatchSize,
			Rank:      cfg.Rank,
			Centroids: cfg.Centroids,
			Seed:      seed + int64(m),
		})
		if err != nil {
			return nil, err
		}
		for b := 0; b < cfg.BatchesPerTrial; b++ {
			// Draw the monitor's share of the mixed stream.
			pkts := mix.Batch(cfg.BatchSize)
			headers := make([]packet.Header, len(pkts))
			for i, lp := range pkts {
				headers[i] = lp.Header
			}
			s, err := szr.Summarize(headers, m, uint64(b))
			if err != nil {
				return nil, err
			}
			sums = append(sums, s)
		}
	}
	return inference.AggregateSummaries(sums)
}

// Volume returns the packets one trial aggregates — the epoch volume
// the count thresholds scale against.
func (ts *TrialSet) Volume() int {
	c := ts.Config
	return c.Monitors * c.BatchesPerTrial * c.BatchSize
}

// SweepROC evaluates the trial set over a grid of threshold combinations
// and returns the ROC points. The paper sweeps combinations of
// (τ_d, τ_c, τ_v) — "each combination of threshold values is a single
// point on the graph" (§8.1); here τ_d takes the given grid (scaled by
// the question's per-attack factor) and τ_c is swept multiplicatively
// around its calibrated value. Detection for a positive trial means the
// question alerts on the trial's aggregate; a false positive is the same
// on a negative trial.
func (ts *TrialSet) SweepROC(label string, taus []float64) ROCCurve {
	curve := ROCCurve{Label: label}
	scaled := ts.Question.ScaleForVolume(ts.Volume())
	for _, tau := range taus {
		for _, cm := range CountMultipliers() {
			tc := int(float64(scaled.CountThreshold) * cm)
			if tc < 1 {
				tc = 1
			}
			q := scaled.WithDistanceThreshold(scaled.EffectiveTau(tau)).WithCountThreshold(tc)
			tp, fp := 0, 0
			for _, agg := range ts.Positive {
				if inference.EstimateSimilarity(agg, q).Alerted() {
					tp++
				}
			}
			for _, agg := range ts.Negative {
				if inference.EstimateSimilarity(agg, q).Alerted() {
					fp++
				}
			}
			curve.Points = append(curve.Points, ROCPoint{
				TauD: tau,
				TPR:  float64(tp) / float64(len(ts.Positive)),
				FPR:  float64(fp) / float64(len(ts.Negative)),
			})
		}
	}
	return curve
}

// DefaultTauGrid is the τ_d sweep used by the ROC experiments.
func DefaultTauGrid() []float64 {
	return []float64{0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.25}
}

// CountMultipliers is the τ_c sweep (relative to the calibrated value).
func CountMultipliers() []float64 {
	return []float64{0.25, 0.5, 0.75, 1, 1.5, 2.5, 4}
}
