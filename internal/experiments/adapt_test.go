package experiments

import (
	"testing"

	"repro/internal/inference"
)

// TestAdaptTrajectoryQuick pins the ISSUE 5 acceptance property at
// quick scale: on both traces the adapted engine's steady-state
// raw-fetch bytes settle within the configured budget, its attack
// window detections are no worse than the static baseline's, and its
// total feedback overhead does not exceed the static engine's.
func TestAdaptTrajectoryQuick(t *testing.T) {
	rows, tbl, err := AdaptTrajectory(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(rows) || len(rows) == 0 {
		t.Fatalf("table has %d rows for %d samples", len(tbl.Rows), len(rows))
	}

	byTrace := map[int64][]AdaptEpochRow{}
	for _, r := range rows {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	if len(byTrace) != 2 {
		t.Fatalf("expected traces 1 and 2, got %d traces", len(byTrace))
	}
	for trace, tr := range byTrace {
		var staticAtk, adaptAtk int
		var staticTotal, adaptTotal int
		var tail, tailSum int
		for i, r := range tr {
			staticTotal += r.StaticRawBytes
			adaptTotal += r.AdaptRawBytes
			if r.Attack {
				staticAtk += r.StaticAlerts
				adaptAtk += r.AdaptAlerts
			}
			// Steady state: the final two post-attack quiet epochs.
			if !r.Attack && i >= len(tr)-2 {
				tail++
				tailSum += r.AdaptRawBytes
			}
			cfg := inference.FeedbackConfig{TauD1: r.TauD1, TauD2: r.TauD2, CountScale2: r.CountScale2}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("trace %d epoch %d: adapted config invalid: %v", trace, r.Epoch, err)
			}
		}
		if staticAtk == 0 {
			t.Fatalf("trace %d: static baseline never alerted during the attack window; the workload proves nothing", trace)
		}
		if adaptAtk < staticAtk {
			t.Errorf("trace %d: adaptive detections %d worse than static %d during attack window", trace, adaptAtk, staticAtk)
		}
		if tail == 0 {
			t.Fatalf("trace %d: no post-attack quiet epochs in the schedule", trace)
		}
		// Within budget modulo the adapter's own hysteresis dead band.
		if mean := tailSum / tail; float64(mean) > adaptBudgetBytes*1.15 {
			t.Errorf("trace %d: steady-state raw-fetch mean %d B exceeds budget %d B", trace, mean, adaptBudgetBytes)
		}
		if float64(adaptTotal) > 1.05*float64(staticTotal) {
			t.Errorf("trace %d: adaptive total feedback bytes %d exceed static %d", trace, adaptTotal, staticTotal)
		}
	}
}
