package experiments

import "testing"

func TestMonitorCoverageShape(t *testing.T) {
	points, tbl, err := MonitorCoverage(150)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 || len(tbl.Rows) != 10 {
		t.Fatalf("points = %d", len(points))
	}
	// Coverage must be non-decreasing in monitor count per topology and
	// near-complete at 25 monitors.
	for topo := 0; topo < 2; topo++ {
		base := topo * 5
		for i := 1; i < 5; i++ {
			if points[base+i].Coverage < points[base+i-1].Coverage-1e-9 {
				t.Fatalf("coverage must grow with monitors: %+v", points)
			}
		}
		if points[base+3].Monitors != 25 || points[base+3].Coverage < 0.85 {
			t.Fatalf("25 monitors must cover ≥85%%: %+v", points[base+3])
		}
	}
}

func TestSketchCostTable(t *testing.T) {
	tbl, err := SketchCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestBatchSizeSweepShape(t *testing.T) {
	points, tbl, err := BatchSizeSweep(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 || len(tbl.Rows) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// Large batches must detect at least as well as tiny ones.
	if points[len(points)-1].Detection < points[0].Detection {
		t.Fatalf("detection must not degrade with batch size: %+v", points)
	}
	if points[len(points)-1].Detection < 0.75 {
		t.Fatalf("n=2000 detection %.2f too low", points[len(points)-1].Detection)
	}
}
