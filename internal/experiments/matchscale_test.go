package experiments

import "testing"

// TestMatchScale runs the harness at reduced scale and checks the
// invariants the table reports: both engines agree on every row, the
// index prunes something, and the accounting adds up.
func TestMatchScale(t *testing.T) {
	sizes := []int{100, 500}
	if !testing.Short() {
		sizes = []int{100, 1000}
	}
	points, table, err := MatchScale(sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(sizes) // two traffic profiles per size
	if len(points) != want || len(table.Rows) != want {
		t.Fatalf("got %d points / %d rows, want %d", len(points), len(table.Rows), want)
	}
	for _, pt := range points {
		if !pt.Identical {
			t.Errorf("%s/%d rules: engines disagreed", pt.Profile, pt.Rules)
		}
		if pt.Candidates+pt.Pruned != pt.Rules {
			t.Errorf("%s/%d rules: candidates %d + pruned %d != rules", pt.Profile, pt.Rules, pt.Candidates, pt.Pruned)
		}
		if pt.Matchable > pt.Candidates {
			t.Errorf("%s/%d rules: %d matchable questions but only %d candidates — the filter dropped a real match",
				pt.Profile, pt.Rules, pt.Matchable, pt.Candidates)
		}
		if pt.Pruned == 0 {
			t.Errorf("%s/%d rules: index pruned nothing — the harness is vacuous", pt.Profile, pt.Rules)
		}
		if pt.LinearNs <= 0 || pt.IndexedNs <= 0 {
			t.Errorf("%s/%d rules: non-positive timing (linear %d, indexed %d)", pt.Profile, pt.Rules, pt.LinearNs, pt.IndexedNs)
		}
	}
}
