package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sampling"
	"repro/internal/snort"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// Table1Row compares detection accuracy for one attack.
type Table1Row struct {
	Attack            rules.AttackID
	ReservoirAccuracy float64
	JaalAccuracy      float64
}

// Table1Reservoir reproduces Table 1: detection accuracy of reservoir
// sampling vs Jaal at matched communication budgets. The reservoir holds
// 250 per 1000 packets observed; Jaal runs at r=12, k=200, n=1000.
// Accuracy is the fraction of attack trials detected.
//
// The comparison captures the failure mode the paper describes:
// "reservoir sampling keeps a fixed-size running uniform sample of the
// entire stream, [so] attack packets sent over a short period of time
// will get 'diluted' in the sample by a large number of non-attack
// packets." Each trial is a stream of several batches with the attack
// bursting inside one randomly placed batch (a 2 s pulse in a longer
// window, persisting for two epochs). Jaal summarizes and checks every
// batch as its own epoch; the reservoir runs over the whole stream and
// is checked at every shipping point with the count threshold scaled by
// the configured shipping ratio.
func Table1Reservoir(sc Scale) ([]Table1Row, *Table, error) {
	const (
		reservoirSize  = 250
		n              = 1000
		r              = 12
		k              = 200
		batchesPerTrio = 5 // stream length in batches; burst spans two
	)
	env := Env()
	table := &Table{
		Title:   "Table 1 — detection accuracy: reservoir sampling (250/1000) vs Jaal (r=12, k=200, n=1000)",
		Columns: []string{"attack", "reservoir", "jaal"},
		Notes: []string{
			"paper: 54/60/42/56% reservoir vs 99/98/97/94% Jaal; shape target: Jaal ≫ reservoir on every attack",
		},
	}

	var rows []Table1Row
	for _, id := range EvaluatedAttacks {
		q, err := rules.LibraryQuestion(id, env, rules.TranslateConfig{
			DefaultDistanceThreshold: 0.05, VarianceThreshold: 0.003,
		})
		if err != nil {
			return nil, nil, err
		}
		// The reservoir side runs the genuine raw-packet engine (with
		// Snort's per-destination detection_filter tracking) over the
		// shipped samples, with the rule's count threshold scaled by
		// the configured 250-per-1000 shipping ratio.
		rawRule, err := rules.LibraryRule(id)
		if err != nil {
			return nil, nil, err
		}
		if rawRule.Filter != nil {
			// Volumetric thresholds scale with the sampling ratio;
			// semantic thresholds (e.g. "5 failed logins is brute
			// force") cannot meaningfully shrink and stay as-is.
			if rawRule.Filter.Count >= 20 {
				rawRule.Filter.Count = rawRule.Filter.Count * reservoirSize / n
			}
			rawRule.Filter.Seconds = 0 // sample has no timestamps
		}
		var resHits, jaalHits, trials int
		for t := 0; t < sc.Trials*3; t++ { // more trials: single-number comparison
			seed := int64(9000+t*101) + int64(len(id))
			rng := rand.New(rand.NewSource(seed))
			burstStart := rng.Intn(batchesPerTrio - 1)

			bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
			atk, err := trafficgen.NewAttack(id, trafficgen.AttackConfig{Seed: seed, Victim: 0x0A0000FE})
			if err != nil {
				return nil, nil, err
			}

			rsv, err := sampling.NewReservoir(reservoirSize, rand.New(rand.NewSource(seed+1)))
			if err != nil {
				return nil, nil, err
			}
			szr, err := summary.NewSummarizer(summary.Config{BatchSize: n, Rank: r, Centroids: k, Seed: seed})
			if err != nil {
				return nil, nil, err
			}

			resDetected, jaalDetected := false, false
			for b := 0; b < batchesPerTrio; b++ {
				var mix *trafficgen.Mixer
				if b == burstStart || b == burstStart+1 {
					mix = trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed + int64(b)})
				} else {
					mix = trafficgen.NewMixer(bg, nil, trafficgen.MixConfig{Seed: seed + int64(b)})
				}
				headers := make([]packet.Header, n)
				for i, lp := range mix.Batch(n) {
					headers[i] = lp.Header
				}

				// Reservoir: runs over the whole stream, checked at
				// each shipping point. The reservoir's dilution over
				// the stream's history is precisely what the static
				// threshold scaling cannot correct — the paper's
				// criticism of running uniform samples.
				for _, h := range headers {
					rsv.Observe(h)
				}
				engine := snort.NewEngine(env, []*rules.Rule{rawRule})
				if fired := engine.ProcessBatch(rsv.Sample()); fired[rawRule.SID] > 0 {
					resDetected = true
				}

				// Jaal: each batch is its own summarized epoch.
				s, err := szr.Summarize(headers, 0, uint64(b))
				if err != nil {
					return nil, nil, err
				}
				agg, err := inference.AggregateSummaries([]*summary.Summary{s})
				if err != nil {
					return nil, nil, err
				}
				if inference.EstimateSimilarity(agg, q).Alerted() {
					jaalDetected = true
				}
			}
			if resDetected {
				resHits++
			}
			if jaalDetected {
				jaalHits++
			}
			trials++
		}
		row := Table1Row{
			Attack:            id,
			ReservoirAccuracy: float64(resHits) / float64(trials),
			JaalAccuracy:      float64(jaalHits) / float64(trials),
		}
		rows = append(rows, row)
		table.Rows = append(table.Rows, []string{
			string(id), pct(row.ReservoirAccuracy), pct(row.JaalAccuracy),
		})
	}
	return rows, table, nil
}

// HeadlineResult is the §8.1 summary metric set.
type HeadlineResult struct {
	TPR      float64
	FPR      float64
	Overhead float64
}

// Headline reproduces the paper's headline numbers: average TPR/FPR
// across all five attacks with the feedback loop, plus the communication
// overhead relative to raw header transfer (paper: ≈98 % TPR, 9.1 % FPR,
// ≈35 % overhead).
func Headline(sc Scale) (*HeadlineResult, *Table, error) {
	points, _, err := Fig6Feedback(sc)
	if err != nil {
		return nil, nil, err
	}
	// The headline operating point: the configuration reaching the
	// highest TPR whose overhead has not yet exploded — the paper picks
	// the knee at 98 % TPR / 35 % overhead.
	best := points[0]
	for _, p := range points {
		if p.TPR > best.TPR || (p.TPR == best.TPR && p.Overhead < best.Overhead) {
			best = p
		}
	}
	res := &HeadlineResult{TPR: best.TPR, FPR: best.FPR, Overhead: best.Overhead}
	table := &Table{
		Title:   "§8.1 headline — average across attacks with the feedback loop",
		Columns: []string{"TPR", "FPR", "overhead_vs_raw"},
		Rows:    [][]string{{pct(res.TPR), pct(res.FPR), pct(res.Overhead)}},
		Notes: []string{
			"paper: ≈98% TPR at ≈9% FPR with ≈35% of raw-transfer bytes",
		},
	}
	return res, table, nil
}

// VarianceEstimation reproduces the §8.2 variance-estimation study: the
// relative error of the summary-based variance estimate vs k/n for
// different batch sizes (paper: error <5 % when k/n > 0.2 and n ≥ 1000).
func VarianceEstimation() (*Table, error) {
	table := &Table{
		Title:   "§8.2 — variance estimation error vs k/n",
		Columns: []string{"n", "k/n", "avg_rel_error"},
		Notes: []string{
			"paper shape: error < 5% once k/n > 0.2 at n ≥ 1000",
		},
	}
	for _, n := range []int{500, 1000, 2000} {
		for _, frac := range []float64{0.05, 0.1, 0.2, 0.3} {
			k := int(frac * float64(n))
			if k < 2 {
				continue
			}
			var sum float64
			const runs = 3
			for seed := int64(0); seed < runs; seed++ {
				e, err := variancePointError(n, k, seed)
				if err != nil {
					return nil, err
				}
				sum += e
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%d", n), f3(frac), pct(sum / runs),
			})
		}
	}
	return table, nil
}
