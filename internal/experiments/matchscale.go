package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// MatchScalePoint is one (profile, library-size) measurement of the
// ISSUE 6 question-matching harness: the per-epoch wall time of the
// linear sweep vs the indexed engine over the same aggregate, plus the
// index's pruning accounting.
type MatchScalePoint struct {
	Profile    string
	Rules      int
	Centroids  int
	LinearNs   int64
	IndexedNs  int64
	Speedup    float64
	Candidates int
	Pruned     int
	// Matchable counts the questions whose distance-matched set was
	// actually non-empty — the floor no conservative filter can prune
	// below. Candidates − Matchable is the filter's slack.
	Matchable int
	// Identical records that the two engines produced deeply equal
	// match-result sets — the byte-identity property, measured rather
	// than assumed.
	Identical bool
}

// MatchScale measures how question evaluation scales with library size.
// For each size it generates a seeded Snort-subset library, evaluates
// one epoch's aggregate with the plain linear sweep and with the
// question index, and reports the faster of reps timed repetitions.
// nil sizes defaults to the 100/1k/10k sweep of ISSUE 6; reps < 1
// defaults to 3. Timing aside, the run also checks the engines agree
// result-for-result and errors out if they ever diverge.
//
// Two traffic profiles bracket the index's operating range:
//
//   - "diffuse": the trafficgen backbone mix, whose servers scatter
//     across the whole home /8. Most host-pinned rules are genuinely
//     distance-matchable against some centroid (the Matchable column),
//     so no conservative filter can skip much — the index's win is
//     bounded by the workload, not the data structure.
//   - "hot/16": the same epoch shape with benign traffic concentrated
//     in one /16, as a single monitor's link sees. Rules pinned
//     elsewhere in the /8 are provably unmatchable and the index skips
//     them wholesale.
func MatchScale(sizes []int, reps int) ([]MatchScalePoint, *Table, error) {
	if len(sizes) == 0 {
		sizes = []int{100, 1000, 10000}
	}
	if reps < 1 {
		reps = 3
	}

	table := &Table{
		Title: "ISSUE 6 — question matching cost vs library size (one epoch)",
		Columns: []string{
			"profile", "rules", "centroids", "linear ms", "indexed ms",
			"speedup", "candidates", "matchable", "pruned", "identical",
		},
		Notes: []string{
			"linear: EvaluateAllParallel over every question",
			"indexed: candidate filter + exact estimator on survivors only",
			"matchable: questions with a non-empty distance-matched set — the pruning floor",
			"both engines produce byte-identical match results (checked per row)",
		},
	}

	profiles := []struct {
		name  string
		build func() (*inference.Aggregate, error)
	}{
		{"diffuse", diffuseAggregate},
		{"hot/16", hotSubnetAggregate},
	}

	var points []MatchScalePoint
	for _, prof := range profiles {
		agg, err := prof.build()
		if err != nil {
			return nil, nil, err
		}
		for _, n := range sizes {
			qs, err := rules.GenerateQuestions(rules.GenConfig{Rules: n, Seed: 42},
				Env(), rules.DefaultTranslateConfig())
			if err != nil {
				return nil, nil, err
			}
			ix, err := rules.NewQuestionIndex(qs, nil)
			if err != nil {
				return nil, nil, err
			}

			var linear, indexed []*inference.MatchResult
			linNs := int64(1<<63 - 1)
			ixNs := int64(1<<63 - 1)
			var cs *rules.CandidateSet
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				linear = inference.EvaluateAllParallel(agg, qs, 0)
				if d := time.Since(start).Nanoseconds(); d < linNs {
					linNs = d
				}
				start = time.Now()
				cs = inference.Candidates(agg, ix)
				indexed = inference.EvaluateAllIndexedParallel(agg, qs, ix, 0)
				if d := time.Since(start).Nanoseconds(); d < ixNs {
					ixNs = d
				}
			}
			identical := reflect.DeepEqual(linear, indexed)
			if !identical {
				return nil, nil, fmt.Errorf("experiments: matchscale: engines diverged at %d rules (%s)", n, prof.name)
			}
			matchable := 0
			for _, r := range linear {
				if len(r.AllMatchedRows) > 0 {
					matchable++
				}
			}

			pt := MatchScalePoint{
				Profile:    prof.name,
				Rules:      n,
				Centroids:  agg.Rows(),
				LinearNs:   linNs,
				IndexedNs:  ixNs,
				Speedup:    float64(linNs) / float64(ixNs),
				Candidates: cs.Count(),
				Pruned:     cs.Len() - cs.Count(),
				Matchable:  matchable,
				Identical:  identical,
			}
			points = append(points, pt)
			table.Rows = append(table.Rows, []string{
				pt.Profile,
				fmt.Sprintf("%d", pt.Rules),
				fmt.Sprintf("%d", pt.Centroids),
				fmt.Sprintf("%.3f", float64(pt.LinearNs)/1e6),
				fmt.Sprintf("%.3f", float64(pt.IndexedNs)/1e6),
				fmt.Sprintf("%.1fx", pt.Speedup),
				fmt.Sprintf("%d", pt.Candidates),
				fmt.Sprintf("%d", pt.Matchable),
				fmt.Sprintf("%d", pt.Pruned),
				fmt.Sprintf("%v", pt.Identical),
			})
		}
	}
	return points, table, nil
}

// aggregateOf summarizes per-monitor header batches at the paper's
// operating point (n=1000, k/n=0.2, §8) and aggregates them.
func aggregateOf(batches [][]packet.Header) (*inference.Aggregate, error) {
	var sums []*summary.Summary
	for m, headers := range batches {
		szr, err := summary.NewSummarizer(summary.Config{
			BatchSize: len(headers),
			Rank:      12,
			Centroids: len(headers) / 5,
			Seed:      7 + int64(m),
		})
		if err != nil {
			return nil, err
		}
		s, err := szr.Summarize(headers, m, 0)
		if err != nil {
			return nil, err
		}
		sums = append(sums, s)
	}
	return inference.AggregateSummaries(sums)
}

// diffuseAggregate builds one epoch from seeded mixed traffic: four
// monitors of 4/5 backbone background + 1/5 SYN flood, the same shape
// the controller sees in deployment.
func diffuseAggregate() (*inference.Aggregate, error) {
	const (
		monitors  = 4
		batchSize = 1000
	)
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(7))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: 7, Victim: 0x0A000001})
	if err != nil {
		return nil, err
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: 7})
	batches := make([][]packet.Header, monitors)
	for m := range batches {
		pkts := mix.Batch(batchSize)
		headers := make([]packet.Header, len(pkts))
		for i, lp := range pkts {
			headers[i] = lp.Header
		}
		batches[m] = headers
	}
	return aggregateOf(batches)
}

// hotSubnetAggregate builds one epoch whose benign traffic concentrates
// on servers inside 10.0.0.0/16 — the locality a single monitor's link
// exhibits — plus the same 1/5 SYN-flood share.
func hotSubnetAggregate() (*inference.Aggregate, error) {
	const (
		monitors  = 4
		batchSize = 1000
	)
	rng := rand.New(rand.NewSource(7))
	batches := make([][]packet.Header, monitors)
	for m := range batches {
		headers := make([]packet.Header, batchSize)
		for i := range headers {
			if i%5 == 4 {
				// SYN-flood share toward one victim.
				headers[i] = packet.Header{
					SrcIP: rng.Uint32(), DstIP: 0x0A000001,
					Protocol: packet.ProtoTCP, TTL: uint8(32 + rng.Intn(96)),
					TotalLength: 40, IPID: uint16(rng.Intn(65536)),
					SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 80,
					Seq: rng.Uint32(), DataOffset: 5,
					Flags: packet.FlagSYN, Window: 65535,
				}
				continue
			}
			headers[i] = packet.Header{
				SrcIP:       rng.Uint32(),
				DstIP:       0x0A000000 | uint32(rng.Intn(1<<16)), // 10.0.x.x
				Protocol:    packet.ProtoTCP,
				TTL:         64,
				TotalLength: uint16(40 + rng.Intn(1400)),
				IPID:        uint16(rng.Intn(65536)),
				SrcPort:     uint16(1024 + rng.Intn(60000)),
				DstPort:     [4]uint16{80, 443, 8080, 25}[rng.Intn(4)],
				Seq:         rng.Uint32(),
				Ack:         rng.Uint32(),
				DataOffset:  5,
				Flags:       packet.FlagACK,
				Window:      uint16(8192 + rng.Intn(57343)),
			}
		}
		batches[m] = headers
	}
	return aggregateOf(batches)
}
