package experiments

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// AdaptEpochRow is one epoch of the adaptive-vs-static comparison.
type AdaptEpochRow struct {
	Trace  int64
	Epoch  int
	Attack bool
	// StaticRawBytes / AdaptRawBytes are the epoch's feedback raw-fetch
	// cost under the frozen and the adapted thresholds.
	StaticRawBytes, AdaptRawBytes int
	// StaticAlerts / AdaptAlerts count the epoch's alerts.
	StaticAlerts, AdaptAlerts int
	// TauD1, TauD2, CountScale2 are the adapted thresholds of the
	// injected attack's question after this epoch.
	TauD1, TauD2, CountScale2 float64
}

// adaptBudgetBytes is the per-epoch raw-fetch byte budget the
// experiment steers toward — deliberately tight, so the attack window's
// fetch storm forces the adapter to narrow and the quiet tail must
// settle back inside it.
const adaptBudgetBytes = 8 << 10

// AdaptTrajectory runs the adaptive-threshold experiment: two identical
// pipelines consume the same seeded epoch stream — quiet background, a
// mid-run distributed SYN flood window, quiet again — one with frozen
// feedback thresholds, one adapting them against a raw-fetch byte
// budget. Repeated for both background traces. The table shows the
// per-epoch overhead-vs-detection trajectory; the property the ISSUE
// pins is in the tail rows: steady-state adapted raw-fetch bytes sit
// within the budget while the attack window's detections are no worse
// than the static baseline's.
func AdaptTrajectory(sc Scale) ([]AdaptEpochRow, *Table, error) {
	epochs := 12
	attackFrom, attackTo := 4, 8 // [from, to)
	if sc.Trials <= QuickScale().Trials {
		epochs = 9
		attackFrom, attackTo = 3, 6
	}

	var rows []AdaptEpochRow
	for _, trace := range []int64{1, 2} {
		tr, err := runAdaptTrace(sc, trace, epochs, attackFrom, attackTo)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, tr...)
	}

	table := &Table{
		Title: fmt.Sprintf("Adaptive feedback thresholds — overhead vs detections, budget %d B/epoch (§5.3)", adaptBudgetBytes),
		Columns: []string{"trace", "epoch", "phase",
			"static raw B", "adapt raw B", "static alerts", "adapt alerts",
			"τ_d1", "τ_d2", "count scale"},
	}
	for _, r := range rows {
		phase := "quiet"
		if r.Attack {
			phase = "ATTACK"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", r.Trace),
			fmt.Sprintf("%d", r.Epoch),
			phase,
			fmt.Sprintf("%d", r.StaticRawBytes),
			fmt.Sprintf("%d", r.AdaptRawBytes),
			fmt.Sprintf("%d", r.StaticAlerts),
			fmt.Sprintf("%d", r.AdaptAlerts),
			fmt.Sprintf("%.4f", r.TauD1),
			fmt.Sprintf("%.4f", r.TauD2),
			fmt.Sprintf("%.2f", r.CountScale2),
		})
	}
	table.Notes = append(table.Notes,
		"Expect: during ATTACK both engines alert; over-budget epochs push τ_d2 down / count scale up.",
		"Expect: post-attack quiet epochs settle with adapt raw B within the budget; idle epochs widen the band back.",
		"Same seeded traffic feeds both pipelines, so the static column is the exact counterfactual.")
	return rows, table, nil
}

// runAdaptTrace drives one background trace through both pipelines.
func runAdaptTrace(sc Scale, trace int64, epochs, attackFrom, attackTo int) ([]AdaptEpochRow, error) {
	const batchSize = 500
	sumCfg := summary.Config{BatchSize: batchSize, Rank: 12, Centroids: 100, MinBatch: 100, Seed: 3}
	volume := sc.Monitors * sc.BatchesPerTrial * batchSize

	env := Env()
	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05, VarianceThreshold: 0.003,
	})
	if err != nil {
		return nil, err
	}
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(volume)
	}
	fb := make(map[rules.AttackID]inference.FeedbackConfig, len(questions))
	for id := range questions {
		// A tight stage 1 opens a wide uncertain band: plenty of raw
		// fetching for the adapter to steer.
		fb[id] = inference.FeedbackConfig{TauD1: 0.008, TauD2: 0.12, CountScale2: 0.55}
	}

	build := func(ac *adapt.Config) (*core.Pipeline, error) {
		return core.NewPipeline(core.PipelineConfig{
			NumMonitors: sc.Monitors,
			Summary:     sumCfg,
			Controller: core.ControllerConfig{
				Env: env, Questions: questions, Feedback: fb,
				UseFeedback: true, Adapt: ac,
			},
		})
	}
	static, err := build(nil)
	if err != nil {
		return nil, err
	}
	ac := adapt.DefaultConfig(adaptBudgetBytes)
	ac.Seed = trace
	adaptive, err := build(&ac)
	if err != nil {
		return nil, err
	}

	// One traffic stream per trace; both pipelines ingest the identical
	// headers, so every divergence is attributable to the thresholds.
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(trace*10000 + 77))
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
		trafficgen.AttackConfig{Seed: trace, Victim: 0x0A0000FE})
	if err != nil {
		return nil, err
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: trace})

	var rows []AdaptEpochRow
	prevStatic, prevAdapt := 0, 0
	for e := 0; e < epochs; e++ {
		underAttack := e >= attackFrom && e < attackTo
		var headers []packet.Header
		if underAttack {
			for _, lp := range mix.Batch(volume) {
				headers = append(headers, lp.Header)
			}
		} else {
			headers = bg.Batch(volume)
		}

		row := AdaptEpochRow{Trace: trace, Epoch: e, Attack: underAttack}
		for _, h := range headers {
			if err := static.Ingest(h); err != nil {
				return nil, err
			}
			if err := adaptive.Ingest(h); err != nil {
				return nil, err
			}
		}
		sAlerts, err := static.RunEpoch()
		if err != nil {
			return nil, err
		}
		aAlerts, err := adaptive.RunEpoch()
		if err != nil {
			return nil, err
		}
		sStats, aStats := static.Controller.Stats(), adaptive.Controller.Stats()
		row.StaticRawBytes = sStats.FeedbackBytes() - prevStatic
		row.AdaptRawBytes = aStats.FeedbackBytes() - prevAdapt
		prevStatic, prevAdapt = sStats.FeedbackBytes(), aStats.FeedbackBytes()
		row.StaticAlerts, row.AdaptAlerts = len(sAlerts), len(aAlerts)
		cur := adaptive.Controller.FeedbackConfigs()[rules.AttackDistributedSYNFlood]
		row.TauD1, row.TauD2, row.CountScale2 = cur.TauD1, cur.TauD2, cur.CountScale2
		rows = append(rows, row)
	}
	return rows, nil
}
