package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sketch"
	"repro/internal/summary"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// CoveragePoint is one monitor-count coverage measurement.
type CoveragePoint struct {
	Monitors int
	// Coverage is the fraction of gateway-to-gateway flows whose path
	// crosses at least one monitor (§6's first requirement).
	Coverage float64
}

// MonitorCoverage measures flow coverage vs the number of monitors on
// both paper topologies — the placement question §6 assumes solved
// ("we assume that monitors have already been placed"). High-degree
// placement covers nearly all gateway pairs with few monitors, which is
// what makes the evaluation's 25-monitor configuration sufficient.
func MonitorCoverage(samples int) ([]CoveragePoint, *Table, error) {
	if samples < 1 {
		samples = 500
	}
	table := &Table{
		Title:   "§6 — flow coverage vs number of monitors (high-degree placement)",
		Columns: []string{"topology", "monitors", "coverage"},
		Notes: []string{
			"the evaluation's 25 monitors cover ≈all gateway pairs on both topologies",
		},
	}
	var points []CoveragePoint
	for _, top := range []*topology.Topology{topology.Abovenet(), topology.Exodus()} {
		gws := top.Gateways()
		rng := rand.New(rand.NewSource(99))
		type pair struct{ src, dst topology.NodeID }
		pairs := make([]pair, 0, samples)
		for len(pairs) < samples {
			s := gws[rng.Intn(len(gws))]
			d := gws[rng.Intn(len(gws))]
			if s != d {
				pairs = append(pairs, pair{s, d})
			}
		}
		for _, m := range []int{5, 10, 15, 25, 40} {
			ids, err := top.PlaceMonitors(m)
			if err != nil {
				return nil, nil, err
			}
			set := make(map[topology.NodeID]bool, len(ids))
			for _, id := range ids {
				set[id] = true
			}
			covered := 0
			for _, p := range pairs {
				path, err := top.ShortestPath(p.src, p.dst)
				if err != nil {
					return nil, nil, err
				}
				if len(topology.MonitorsOnPath(path, set)) > 0 {
					covered++
				}
			}
			pt := CoveragePoint{Monitors: m, Coverage: float64(covered) / float64(len(pairs))}
			points = append(points, pt)
			table.Rows = append(table.Rows, []string{
				top.Name, fmt.Sprintf("%d", m), pct(pt.Coverage),
			})
		}
	}
	return points, table, nil
}

// SketchCost reproduces the §2 scaling argument in numbers: covering
// every combination of the 18 header fields with one count-min sketch
// each costs ≈128 GB per monitor per epoch, against kilobytes for a Jaal
// summary carrying the same cross-field correlations.
func SketchCost() (*Table, error) {
	cm, err := sketch.NewCountMin(0.0001, 0.01)
	if err != nil {
		return nil, err
	}
	perSketch := cm.SizeBytes()
	combo := sketch.CombinationCost(packet.NumFields, 500*1024)
	jaalBytes := summary.SplitSize(12, 200, packet.NumFields) * 4

	table := &Table{
		Title:   "§2 — per-epoch transfer cost: combinatorial sketching vs one Jaal summary",
		Columns: []string{"approach", "bytes"},
		Rows: [][]string{
			{"one count-min sketch (ε=1e-4, δ=1e-2)", fmt.Sprintf("%d", perSketch)},
			{"2^18 sketches × 500 KB (all field combos)", fmt.Sprintf("%d", combo)},
			{"one Jaal summary (n=1000, r=12, k=200)", fmt.Sprintf("%d", jaalBytes)},
		},
		Notes: []string{
			"the paper's ≈128 GB per monitor per epoch vs ≈11 KB for the summary",
		},
	}
	return table, nil
}

// BatchSizePoint is one (n, accuracy) measurement at fixed k/n.
type BatchSizePoint struct {
	BatchSize int
	Detection float64
}

// BatchSizeSweep measures detection vs the batch size n at the fixed
// k/n = 0.2 ratio, the n_min motivation of §5.1: summaries over small
// batches degrade because clustering and SVD have too little data.
func BatchSizeSweep(trials int) ([]BatchSizePoint, *Table, error) {
	if trials < 1 {
		trials = 10
	}
	env := Env()
	q, err := rules.LibraryQuestion(rules.AttackDistributedSYNFlood, env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05, VarianceThreshold: 0.003,
	})
	if err != nil {
		return nil, nil, err
	}
	table := &Table{
		Title:   "§5.1 — detection vs batch size n at k/n = 0.2",
		Columns: []string{"n", "detection"},
		Notes: []string{
			"small batches (n < n_min ≈ 600) degrade summarization; accuracy recovers by n = 1000",
		},
	}
	var points []BatchSizePoint
	for _, n := range []int{100, 200, 400, 600, 1000, 2000} {
		hits := 0
		for t := 0; t < trials; t++ {
			seed := int64(8000 + t*53 + n)
			bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
			atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
				trafficgen.AttackConfig{Seed: seed, Victim: 0x0A0000FE})
			if err != nil {
				return nil, nil, err
			}
			mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed})
			headers := make([]packet.Header, n)
			for i, lp := range mix.Batch(n) {
				headers[i] = lp.Header
			}
			k := n / 5
			szr, err := summary.NewSummarizer(summary.Config{BatchSize: n, Rank: 12, Centroids: k, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			s, err := szr.Summarize(headers, 0, 0)
			if err != nil {
				return nil, nil, err
			}
			agg, err := inference.AggregateSummaries([]*summary.Summary{s})
			if err != nil {
				return nil, nil, err
			}
			if inference.EstimateSimilarity(agg, q.ScaleForVolume(n)).Alerted() {
				hits++
			}
		}
		p := BatchSizePoint{BatchSize: n, Detection: float64(hits) / float64(trials)}
		points = append(points, p)
		table.Rows = append(table.Rows, []string{fmt.Sprintf("%d", n), pct(p.Detection)})
	}
	return points, table, nil
}
