package experiments

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
)

// ScoreboardTable renders a scenario scoreboard report as the aligned
// -stats-style table the CLI prints next to the JSON.
func ScoreboardTable(r *scenario.Report) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Scenario scoreboard (%s profile)", r.Profile),
		Columns: []string{"scenario", "pos", "tp", "fp", "fn", "precision", "recall", "f1", "latency"},
		Notes: []string{
			"latency: epochs from attack onset to first correct alert per expected attack (miss = undetected)",
			"flash_crowd is the false-positive trap: all traffic benign, any alert counts as fp",
		},
	}
	for _, res := range r.Results {
		var lat []string
		for _, l := range res.Latency {
			if l.Epochs < 0 {
				lat = append(lat, l.Attack+":miss")
			} else {
				lat = append(lat, fmt.Sprintf("%s:%d", l.Attack, l.Epochs))
			}
		}
		latCell := "-"
		if len(lat) > 0 {
			latCell = strings.Join(lat, ",")
		}
		t.Rows = append(t.Rows, []string{
			res.Scenario,
			fmt.Sprintf("%d", res.Positives),
			fmt.Sprintf("%d", res.TP),
			fmt.Sprintf("%d", res.FP),
			fmt.Sprintf("%d", res.FN),
			fmt.Sprintf("%.4f", res.Precision),
			fmt.Sprintf("%.4f", res.Recall),
			fmt.Sprintf("%.4f", res.F1),
			latCell,
		})
	}
	return t
}
