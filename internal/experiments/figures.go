package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/flowassign"
	"repro/internal/inference"
	"repro/internal/linalg"
	"repro/internal/mirai"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/snort"
	"repro/internal/summary"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// EvaluatedAttacks are the five attacks of the §8.1 accuracy experiments.
var EvaluatedAttacks = []rules.AttackID{
	rules.AttackSYNFlood,
	rules.AttackDistributedSYNFlood,
	rules.AttackPortScan,
	rules.AttackSSHBruteForce,
	rules.AttackSockstress,
}

// Scale trades experiment fidelity for runtime: the full paper-scale
// sweeps (Scale=1) run in cmd/jaal-experiments and the benches; tests use
// a reduced Scale.
type Scale struct {
	// Trials per configuration (paper: 15 runs per point).
	Trials int
	// BatchesPerTrial per monitor.
	BatchesPerTrial int
	// Monitors per trial.
	Monitors int
}

// FullScale mirrors the paper's averaging.
func FullScale() Scale { return Scale{Trials: 15, BatchesPerTrial: 2, Monitors: 4} }

// QuickScale keeps tests fast.
func QuickScale() Scale { return Scale{Trials: 3, BatchesPerTrial: 1, Monitors: 2} }

// Fig4VaryK reproduces Fig. 4: ROC curves per attack for k ∈ {100, 200,
// 500} at n = 1000, r = 12, Trace 1.
func Fig4VaryK(sc Scale) (map[rules.AttackID][]ROCCurve, *Table, error) {
	ks := []int{100, 200, 500}
	out := make(map[rules.AttackID][]ROCCurve)
	table := &Table{
		Title:   "Fig. 4 — ROC vs number of centroids k (n=1000, r=12, Trace 1)",
		Columns: []string{"attack", "k", "AUC", "TPR@10%FPR"},
		Notes: []string{
			"paper shape: k=200 near-saturates accuracy; k=100 penalizes all attacks except SYN flood",
		},
	}
	for _, id := range EvaluatedAttacks {
		for _, k := range ks {
			ts, err := BuildTrialSet(TrialConfig{
				Attack: id, BatchSize: 1000, Rank: 12, Centroids: k,
				Monitors: sc.Monitors, BatchesPerTrial: sc.BatchesPerTrial,
				Trials: sc.Trials, TraceSeed: 1, Seed: int64(k),
			})
			if err != nil {
				return nil, nil, err
			}
			curve := ts.SweepROC(fmt.Sprintf("k=%d", k), DefaultTauGrid())
			out[id] = append(out[id], curve)
			table.Rows = append(table.Rows, []string{
				string(id), fmt.Sprintf("%d", k), f3(curve.AUC()), pct(curve.TPRAtFPR(0.10)),
			})
		}
	}
	return out, table, nil
}

// Fig5VaryRank reproduces Fig. 5: ROC curves per attack for r ∈ {10, 12,
// 15} at n = 2000, k = 500, Trace 1.
func Fig5VaryRank(sc Scale) (map[rules.AttackID][]ROCCurve, *Table, error) {
	ranks := []int{10, 12, 15}
	out := make(map[rules.AttackID][]ROCCurve)
	table := &Table{
		Title:   "Fig. 5 — ROC vs retained rank r (n=2000, k=500, Trace 1)",
		Columns: []string{"attack", "r", "AUC", "TPR@10%FPR"},
		Notes: []string{
			"paper shape: r=12 ≈ r=15; r=10 pays a visible accuracy penalty",
		},
	}
	for _, id := range EvaluatedAttacks {
		for _, r := range ranks {
			ts, err := BuildTrialSet(TrialConfig{
				Attack: id, BatchSize: 2000, Rank: r, Centroids: 500,
				Monitors: sc.Monitors, BatchesPerTrial: sc.BatchesPerTrial,
				Trials: sc.Trials, TraceSeed: 1, Seed: int64(100 + r),
			})
			if err != nil {
				return nil, nil, err
			}
			curve := ts.SweepROC(fmt.Sprintf("r=%d", r), DefaultTauGrid())
			out[id] = append(out[id], curve)
			table.Rows = append(table.Rows, []string{
				string(id), fmt.Sprintf("%d", r), f3(curve.AUC()), pct(curve.TPRAtFPR(0.10)),
			})
		}
	}
	return out, table, nil
}

// Fig6Point is one operating point of the feedback-loop tradeoff.
type Fig6Point struct {
	TauD2       float64
	CountScale2 float64
	TPR         float64
	FPR         float64
	Overhead    float64 // fraction of raw-header bytes
}

// Fig6Feedback reproduces Fig. 6: TPR and communication overhead as the
// second threshold τ_d2 (equivalently the acceptable FPR) grows, with
// the feedback loop fetching raw packets for uncertain centroids.
func Fig6Feedback(sc Scale) ([]Fig6Point, *Table, error) {
	const (
		n    = 1000
		r    = 12
		k    = 200
		tau1 = 0.015 // low-FPR first stage
	)
	table := &Table{
		Title:   "Fig. 6 — TPR & overhead vs stage-2 sensitivity with the feedback loop (n=1000, r=12, k=200)",
		Columns: []string{"tau_d2", "count_scale2", "TPR", "FPR", "overhead_vs_raw"},
		Notes: []string{
			"paper shape: overhead rises from ~30% to ~35% of raw while TPR climbs to ~98%; past that, overhead rises sharply for little TPR",
		},
	}

	matcher := snort.RawMatcher{Env: Env()}

	// Campaigns (the expensive summarization work) are built once per
	// attack and reused across the τ_d2 sweep.
	campaigns := make(map[rules.AttackID]*feedbackCampaign, len(EvaluatedAttacks))
	for _, id := range EvaluatedAttacks {
		camp, err := buildFeedbackCampaign(id, n, r, k, sc)
		if err != nil {
			return nil, nil, err
		}
		campaigns[id] = camp
	}

	// Stage-2 operating points: looser τ_d and relaxed τ_c together make
	// the second stage progressively more sensitive; everything stage 2
	// flags beyond stage 1 is confirmed against raw packets.
	stage2 := []struct {
		tau2       float64
		countScale float64
	}{
		{0.02, 1.0}, {0.05, 0.85}, {0.08, 0.7}, {0.12, 0.55}, {0.2, 0.4}, {0.3, 0.25},
	}

	var points []Fig6Point
	for _, s2 := range stage2 {
		var tp, fp, posN, negN int
		var summaryBytes, rawFetchedBytes, rawBaselineBytes int

		for _, id := range EvaluatedAttacks {
			camp := campaigns[id]
			cfg := inference.FeedbackConfig{
				TauD1:       camp.question.EffectiveTau(tau1),
				TauD2:       camp.question.EffectiveTau(s2.tau2),
				CountScale2: s2.countScale,
			}
			for _, tr := range camp.positive {
				res, err := inference.RunFeedback(tr.agg, camp.question, cfg, tr.fetcher, matcher)
				if err != nil {
					return nil, nil, err
				}
				posN++
				if res.Alerted {
					tp++
				}
				summaryBytes += tr.agg.Elements * 4
				rawFetchedBytes += res.RawPackets * 33
				rawBaselineBytes += tr.agg.TotalPackets * 33
			}
			for _, tr := range camp.negative {
				res, err := inference.RunFeedback(tr.agg, camp.question, cfg, tr.fetcher, matcher)
				if err != nil {
					return nil, nil, err
				}
				negN++
				if res.Alerted {
					fp++
				}
				summaryBytes += tr.agg.Elements * 4
				rawFetchedBytes += res.RawPackets * 33
				rawBaselineBytes += tr.agg.TotalPackets * 33
			}
		}
		p := Fig6Point{
			TauD2:       s2.tau2,
			CountScale2: s2.countScale,
			TPR:         float64(tp) / float64(posN),
			FPR:         float64(fp) / float64(negN),
			Overhead:    float64(summaryBytes+rawFetchedBytes) / float64(rawBaselineBytes),
		}
		points = append(points, p)
		table.Rows = append(table.Rows, []string{
			f3(p.TauD2), f3(p.CountScale2), pct(p.TPR), pct(p.FPR), pct(p.Overhead),
		})
	}
	return points, table, nil
}

// feedbackTrial is one trial with live raw-packet retention.
type feedbackTrial struct {
	agg     *inference.Aggregate
	fetcher inference.RawPacketFetcher
}

type feedbackCampaign struct {
	question *rules.Question
	positive []feedbackTrial
	negative []feedbackTrial
}

// monitorFetcher serves raw packets from per-monitor buffers.
type monitorFetcher struct {
	buffers map[int]*summary.Buffer
}

func (f *monitorFetcher) FetchRaw(ref inference.CentroidRef) ([]packet.Header, int, error) {
	b, ok := f.buffers[ref.MonitorID]
	if !ok {
		return nil, 0, fmt.Errorf("experiments: unknown monitor %d", ref.MonitorID)
	}
	hs := b.RawPackets(ref.Epoch, ref.Centroid)
	return hs, len(hs), nil
}

// buildFeedbackCampaign generates trials that retain raw packets so the
// feedback loop can fetch them.
func buildFeedbackCampaign(id rules.AttackID, n, r, k int, sc Scale) (*feedbackCampaign, error) {
	env := Env()
	q, err := rules.LibraryQuestion(id, env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05, VarianceThreshold: 0.003,
	})
	if err != nil {
		return nil, err
	}
	q = q.ScaleForVolume(n * sc.Monitors * sc.BatchesPerTrial)
	camp := &feedbackCampaign{question: q}

	build := func(seed int64, withAttack bool) (feedbackTrial, error) {
		bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
		var atk trafficgen.Attack
		if withAttack {
			var err error
			atk, err = trafficgen.NewAttack(id, trafficgen.AttackConfig{Seed: seed, Victim: 0x0A0000FE})
			if err != nil {
				return feedbackTrial{}, err
			}
		}
		mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed})
		fetch := &monitorFetcher{buffers: make(map[int]*summary.Buffer)}
		var sums []*summary.Summary
		for m := 0; m < sc.Monitors; m++ {
			buf := summary.NewBuffer(n)
			fetch.buffers[m] = buf
			szr, err := summary.NewSummarizer(summary.Config{
				BatchSize: n, Rank: r, Centroids: k, Seed: seed + int64(m),
			})
			if err != nil {
				return feedbackTrial{}, err
			}
			for b := 0; b < sc.BatchesPerTrial; b++ {
				var batch *summary.Batch
				for _, lp := range mix.Batch(n) {
					batch, _ = buf.Add(lp.Header)
				}
				if batch == nil {
					return feedbackTrial{}, fmt.Errorf("experiments: batch not sealed")
				}
				s, err := szr.Summarize(batch.Headers, m, batch.Epoch)
				if err != nil {
					return feedbackTrial{}, err
				}
				buf.Retain(batch, s)
				sums = append(sums, s)
			}
		}
		agg, err := inference.AggregateSummaries(sums)
		if err != nil {
			return feedbackTrial{}, err
		}
		return feedbackTrial{agg: agg, fetcher: fetch}, nil
	}

	for t := 0; t < sc.Trials; t++ {
		seed := int64(7000 + t*37)
		pos, err := build(seed, true)
		if err != nil {
			return nil, err
		}
		neg, err := build(seed+13, false)
		if err != nil {
			return nil, err
		}
		camp.positive = append(camp.positive, pos)
		camp.negative = append(camp.negative, neg)
	}
	return camp, nil
}

// Fig7Point is one replication operating point.
type Fig7Point struct {
	ReplicationFraction float64
	AvgThroughputLoss   float64
	WorstThroughputLoss float64
	AvgAccuracyLoss     float64
}

// Fig7Replication reproduces Fig. 7: throughput and accuracy degradation
// as the fraction of replicated traffic grows, averaged over random
// placements of the central engine (the paper uses 25 placements). A nil
// topology selects the paper's topology 1 (Abovenet); pass
// topology.Exodus() for the "results are similar for topology 2" check.
func Fig7Replication(placements int, top *topology.Topology) ([]Fig7Point, *Table, error) {
	if placements < 1 {
		placements = 25
	}
	if top == nil {
		top = topology.Abovenet()
	}
	monitors, err := top.PlaceMonitors(25)
	if err != nil {
		return nil, nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Fig. 7 — degradation vs %% traffic replicated (%s, Snort at engine)", top.Name),
		Columns: []string{"replicated", "tput_loss_avg", "tput_loss_worst", "accuracy_loss_avg"},
		Notes: []string{
			"paper shape: at 100% replication ≈70% avg (90% worst) throughput loss and ≈75% accuracy loss; Jaal's 35% corresponds to <10% avg loss",
		},
	}
	rng := rand.New(rand.NewSource(77))
	engineNodes := make([]topology.NodeID, placements)
	for i := range engineNodes {
		engineNodes[i] = monitors[rng.Intn(len(monitors))]
	}

	// Calibrate the shared-substrate capacity against the baseline
	// (no-replication) switch work, as the paper's fixed 5-server
	// substrate is sized for normal load with modest headroom.
	base, err := netsim.New(netsim.Config{
		Topology: top, LinkCapacity: 2500, EngineCapacity: 10000,
		EngineNode: engineNodes[0], Monitors: monitors, Seed: 1,
	})
	if err != nil {
		return nil, nil, err
	}
	baseRes, err := base.Run(base.RandomDemands(80, 9000, 0.1))
	if err != nil {
		return nil, nil, err
	}
	substrate := 1.3 * baseRes.NormalSwitchWork

	var points []Fig7Point
	for _, frac := range []float64{0, 0.1, 0.25, 0.35, 0.5, 0.75, 1.0} {
		var sumT, worstT, sumA float64
		for _, engine := range engineNodes {
			sim, err := netsim.New(netsim.Config{
				Topology:            top,
				LinkCapacity:        2500,
				RouterCapacity:      3000,
				EngineCapacity:      10000,
				SubstrateCapacity:   substrate,
				CollapseExponent:    2,
				EngineNode:          engine,
				Monitors:            monitors,
				ReplicationFraction: frac,
				Seed:                int64(engine),
			})
			if err != nil {
				return nil, nil, err
			}
			res, err := sim.Run(sim.RandomDemands(80, 9000, 0.1))
			if err != nil {
				return nil, nil, err
			}
			tl := res.ThroughputLossFraction()
			sumT += tl
			if tl > worstT {
				worstT = tl
			}
			sumA += res.AccuracyLossFraction()
		}
		p := Fig7Point{
			ReplicationFraction: frac,
			AvgThroughputLoss:   sumT / float64(placements),
			WorstThroughputLoss: worstT,
			AvgAccuracyLoss:     sumA / float64(placements),
		}
		points = append(points, p)
		table.Rows = append(table.Rows, []string{
			pct(p.ReplicationFraction), pct(p.AvgThroughputLoss),
			pct(p.WorstThroughputLoss), pct(p.AvgAccuracyLoss),
		})
	}

	// Jaal's own footprint for comparison: summaries are ≈35 % of raw
	// bytes, sent once per flow (deduplicated by flow assignment, §6).
	var jSum, jWorst float64
	for _, engine := range engineNodes {
		sim, err := netsim.New(netsim.Config{
			Topology:            top,
			LinkCapacity:        2500,
			RouterCapacity:      3000,
			EngineCapacity:      10000,
			SubstrateCapacity:   substrate,
			CollapseExponent:    2,
			EngineNode:          engine,
			Monitors:            monitors,
			ReplicationFraction: 0.35,
			DedupReplication:    true,
			Seed:                int64(engine),
		})
		if err != nil {
			return nil, nil, err
		}
		res, err := sim.Run(sim.RandomDemands(80, 9000, 0.1))
		if err != nil {
			return nil, nil, err
		}
		tl := res.ThroughputLossFraction()
		jSum += tl
		if tl > jWorst {
			jWorst = tl
		}
	}
	table.Rows = append(table.Rows, []string{
		"jaal(35%, dedup)", pct(jSum / float64(placements)), pct(jWorst), "n/a",
	})
	return points, table, nil
}

// Fig8Mirai reproduces Fig. 8: unchecked Mirai infections vs infections
// with Jaal detecting and shutting off scanners.
func Fig8Mirai() (unchecked, protected *mirai.Result, table *Table, err error) {
	unchecked, err = mirai.Run(mirai.DefaultConfig(false), 120, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	protected, err = mirai.Run(mirai.DefaultConfig(true), 120, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	table = &Table{
		Title:   "Fig. 8 — Mirai infections: unchecked vs Jaal detection+shutoff (150 vulnerable)",
		Columns: []string{"time_s", "infected_unchecked", "infected_with_jaal", "shutoff"},
		Notes: []string{
			"paper shape: unchecked rises near-exponentially toward 150; with Jaal (detect ≤3s, 95%) infections stay below ~50 (≥3x reduction)",
		},
	}
	for i := 0; i < len(unchecked.Samples); i += 10 {
		u := unchecked.Samples[i]
		p := protected.Samples[i]
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f", u.Time),
			fmt.Sprintf("%d", u.Infected),
			fmt.Sprintf("%d", p.Infected),
			fmt.Sprintf("%d", p.Shutoff),
		})
	}
	return unchecked, protected, table, nil
}

// Fig9Loads holds per-strategy loads across monitor groups.
type Fig9Loads struct {
	Groups    []string
	Greedy    []float64
	RobinHood []float64
	Random    []float64
}

// Fig9FlowAssign reproduces Fig. 9: time-averaged load per monitor group
// with 25 monitors, comparing greedy vs Robin-Hood (given true weights)
// vs random. A nil topology selects topology 1 (Abovenet).
func Fig9FlowAssign(flows int, top *topology.Topology) (*Fig9Loads, *Table, error) {
	if flows < 1 {
		flows = 4000
	}
	if top == nil {
		top = topology.Abovenet()
	}
	monitors, err := top.PlaceMonitors(25)
	if err != nil {
		return nil, nil, err
	}
	monitorSet := make(map[topology.NodeID]bool, len(monitors))
	idOf := make(map[topology.NodeID]flowassign.MonitorID, len(monitors))
	var allIDs []flowassign.MonitorID
	for i, m := range monitors {
		monitorSet[m] = true
		idOf[m] = flowassign.MonitorID(i)
		allIDs = append(allIDs, flowassign.MonitorID(i))
	}

	// Build flow groups from gateway pairs: the monitor group is the set
	// of monitors on the pair's shortest path.
	rng := rand.New(rand.NewSource(42))
	gws := top.Gateways()
	table := flowassign.NewGroupTable()
	type groupInfo struct {
		key flowassign.GroupKey
	}
	var groups []groupInfo
	for len(groups) < 40 {
		src := gws[rng.Intn(len(gws))]
		dst := gws[rng.Intn(len(gws))]
		if src == dst {
			continue
		}
		path, err := top.ShortestPath(src, dst)
		if err != nil {
			return nil, nil, err
		}
		on := topology.MonitorsOnPath(path, monitorSet)
		if len(on) == 0 {
			continue
		}
		ids := make([]flowassign.MonitorID, len(on))
		for i, n := range on {
			ids[i] = idOf[n]
		}
		key := flowassign.GroupKey(fmt.Sprintf("g%d", len(groups)))
		if err := table.Define(key, ids); err != nil {
			return nil, nil, err
		}
		groups = append(groups, groupInfo{key: key})
	}

	// The deployed greedy decides on loads polled every P (≈50 arrivals
	// here); Robin-Hood gets instantaneous loads and true weights — the
	// ideal-but-impractical baseline of §8.2.
	greedy := flowassign.NewSnapshotGreedy()
	rh := flowassign.NewRobinHood(len(monitors))
	random := flowassign.NewRandom(rand.New(rand.NewSource(43)))

	// Flow arrivals with heavy-tailed weights and random terminations;
	// loads are sampled periodically for the time average.
	type liveFlow struct {
		id flowassign.FlowID
	}
	var live []liveFlow
	next := flowassign.FlowID(0)
	sumLoads := map[string][]float64{
		"greedy": make([]float64, len(monitors)),
		"rh":     make([]float64, len(monitors)),
		"rand":   make([]float64, len(monitors)),
	}
	samples := 0
	for step := 0; step < flows; step++ {
		// Arrival.
		g := groups[rng.Intn(len(groups))]
		grp, _ := table.MonitorGroup(g.key)
		w := math.Exp(rng.NormFloat64() * 0.8) // heavy-tailed packet rate
		if _, err := greedy.Assign(next, grp, w); err != nil {
			return nil, nil, err
		}
		if _, err := rh.Assign(next, grp, w); err != nil {
			return nil, nil, err
		}
		if _, err := random.Assign(next, grp, w); err != nil {
			return nil, nil, err
		}
		live = append(live, liveFlow{id: next})
		next++
		// Departure with probability keeping ~500 live flows.
		for len(live) > 500 {
			i := rng.Intn(len(live))
			f := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			greedy.Remove(f.id)
			rh.Remove(f.id)
			random.Remove(f.id)
		}
		// Periodic load poll (the P=2s analogue): refresh greedy's
		// decision snapshot and sample loads for the time average.
		if step%50 == 0 {
			greedy.Refresh()
			for i := range monitors {
				sumLoads["greedy"][i] += greedy.Load(flowassign.MonitorID(i))
				sumLoads["rh"][i] += rh.Load(flowassign.MonitorID(i))
				sumLoads["rand"][i] += random.Load(flowassign.MonitorID(i))
			}
			samples++
		}
	}
	res := &Fig9Loads{}
	for i := range monitors {
		res.Groups = append(res.Groups, fmt.Sprintf("m%02d", i))
		res.Greedy = append(res.Greedy, sumLoads["greedy"][i]/float64(samples))
		res.RobinHood = append(res.RobinHood, sumLoads["rh"][i]/float64(samples))
		res.Random = append(res.Random, sumLoads["rand"][i]/float64(samples))
	}

	// Sort rows by Robin-Hood load for a readable profile.
	order := make([]int, len(monitors))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.RobinHood[order[a]] > res.RobinHood[order[b]] })

	tbl := &Table{
		Title:   fmt.Sprintf("Fig. 9 — time-averaged load per monitor (%s, 25 monitors)", top.Name),
		Columns: []string{"monitor", "greedy", "robin_hood", "random"},
		Notes: []string{
			"paper shape: greedy tracks Robin-Hood within ~10% avg / 14% worst; random is clearly unbalanced",
		},
	}
	for _, i := range order {
		tbl.Rows = append(tbl.Rows, []string{
			res.Groups[i], f3(res.Greedy[i]), f3(res.RobinHood[i]), f3(res.Random[i]),
		})
	}
	return res, tbl, nil
}

// Fig10Spectrum reproduces Fig. 10: the singular-value magnitudes of a
// batch matrix with n = 1000.
func Fig10Spectrum() ([]float64, *Table, error) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(1))
	x := summary.BuildMatrix(bg.Batch(1000))
	d, err := linalg.ComputeSVD(x)
	if err != nil {
		return nil, nil, err
	}
	table := &Table{
		Title:   "Fig. 10 — singular values of a packet matrix, n=1000",
		Columns: []string{"index", "sigma", "cum_energy"},
		Notes: []string{
			"paper shape: sharp magnitude drop beyond the top ~14 values; r=12 retains ≈90% of the energy",
		},
	}
	var total float64
	for _, s := range d.S {
		total += s * s
	}
	var acc float64
	for i, s := range d.S {
		acc += s * s
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", i+1), f3(s), pct(acc / total),
		})
	}
	return d.S, table, nil
}

// Fig11Point is one (batch size, compression) point at a fixed error.
type Fig11Point struct {
	BatchSize   int
	Epsilon     float64
	Compression float64 // η = 1 − k/n
}

// Fig11Compression reproduces Fig. 11: the compression ratio η = 1 − k/n
// achievable at a maximum variance-estimation error ε, vs batch size.
// For each n it finds the smallest k whose destination-port variance
// estimate stays within ε of ground truth.
func Fig11Compression() ([]Fig11Point, *Table, error) {
	table := &Table{
		Title:   "Fig. 11 — compression ratio vs batch size at fixed variance-estimation error",
		Columns: []string{"n", "epsilon", "k_needed", "eta"},
		Notes: []string{
			"paper shape: larger batches compress better; at n=2000, ε=5% → η≈85%",
		},
	}
	var points []Fig11Point
	for _, eps := range []float64{0.05, 0.10} {
		for _, n := range []int{500, 1000, 1500, 2000} {
			k, err := minCentroidsForVarianceError(n, eps)
			if err != nil {
				return nil, nil, err
			}
			p := Fig11Point{BatchSize: n, Epsilon: eps, Compression: 1 - float64(k)/float64(n)}
			points = append(points, p)
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%d", n), pct(eps), fmt.Sprintf("%d", k), pct(p.Compression),
			})
		}
	}
	return points, table, nil
}

// minCentroidsForVarianceError searches k (over a coarse grid) for the
// smallest value keeping the destination-port variance estimation error
// within eps, averaged over a few seeds.
func minCentroidsForVarianceError(n int, eps float64) (int, error) {
	grid := []float64{0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.50}
	for _, frac := range grid {
		k := int(frac * float64(n))
		if k < 2 {
			continue
		}
		errSum, runs := 0.0, 3
		for seed := int64(0); seed < int64(runs); seed++ {
			e, err := variancePointError(n, k, seed)
			if err != nil {
				return 0, err
			}
			errSum += e
		}
		if errSum/float64(runs) <= eps {
			return k, nil
		}
	}
	return n, nil // no compression achieves the bound
}

// variancePointError runs one (n, k) variance-estimation measurement on
// scan-heavy traffic (port variance is the postprocessor's signal).
func variancePointError(n, k int, seed int64) (float64, error) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(300 + seed))
	atk, err := trafficgen.NewAttack(rules.AttackPortScan, trafficgen.AttackConfig{Seed: seed})
	if err != nil {
		return 0, err
	}
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed})
	pkts := mix.Batch(n)
	headers := make([]packet.Header, len(pkts))
	for i, lp := range pkts {
		headers[i] = lp.Header
	}
	szr, err := summary.NewSummarizer(summary.Config{BatchSize: n, Rank: 12, Centroids: k, Seed: seed})
	if err != nil {
		return 0, err
	}
	s, err := szr.Summarize(headers, 0, 0)
	if err != nil {
		return 0, err
	}
	agg, err := inference.AggregateSummaries([]*summary.Summary{s})
	if err != nil {
		return 0, err
	}
	rows := make([]int, agg.Rows())
	for i := range rows {
		rows[i] = i
	}
	est := inference.MatchedVariance(agg, rows, packet.FieldDstPort)

	// Ground truth over the raw batch.
	x := summary.BuildMatrix(headers)
	truth := linalg.Variance(x.Col(int(packet.FieldDstPort)))
	if truth == 0 {
		return 0, nil
	}
	return math.Abs(est-truth) / truth, nil
}
