package experiments

import (
	"strings"
	"testing"

	"repro/internal/rules"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	out := tbl.Render()
	for _, want := range []string{"== demo ==", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestROCCurveAUC(t *testing.T) {
	perfect := ROCCurve{Points: []ROCPoint{{TPR: 1, FPR: 0}}}
	if auc := perfect.AUC(); auc < 0.99 {
		t.Fatalf("perfect classifier AUC = %v", auc)
	}
	diagonal := ROCCurve{Points: []ROCPoint{{TPR: 0.5, FPR: 0.5}}}
	if auc := diagonal.AUC(); auc < 0.45 || auc > 0.55 {
		t.Fatalf("random classifier AUC = %v", auc)
	}
}

func TestROCCurveTPRAtFPR(t *testing.T) {
	c := ROCCurve{Points: []ROCPoint{
		{TPR: 0.5, FPR: 0.01}, {TPR: 0.9, FPR: 0.08}, {TPR: 0.99, FPR: 0.3},
	}}
	if got := c.TPRAtFPR(0.10); got != 0.9 {
		t.Fatalf("TPR@10%% = %v, want 0.9", got)
	}
	if got := c.TPRAtFPR(0.001); got != 0 {
		t.Fatalf("TPR@0.1%% = %v, want 0", got)
	}
}

func TestTrialConfigValidate(t *testing.T) {
	bad := TrialConfig{}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero config must be invalid")
	}
}

func TestTrialSetSeparatesAttackFromBackground(t *testing.T) {
	ts, err := BuildTrialSet(TrialConfig{
		Attack: rules.AttackDistributedSYNFlood, BatchSize: 600, Rank: 12,
		Centroids: 120, Monitors: 2, BatchesPerTrial: 1, Trials: 4,
		TraceSeed: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	curve := ts.SweepROC("test", DefaultTauGrid())
	if auc := curve.AUC(); auc < 0.8 {
		t.Fatalf("distributed SYN flood AUC = %.3f, want ≥ 0.8", auc)
	}
}

func TestFig10SpectrumShape(t *testing.T) {
	s, tbl, err := Fig10Spectrum()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 18 {
		t.Fatalf("spectrum has %d values, want 18", len(s))
	}
	if len(tbl.Rows) != 18 {
		t.Fatalf("table has %d rows", len(tbl.Rows))
	}
	// Paper shape: 90% energy within the top ~14 values.
	var total, acc float64
	for _, v := range s {
		total += v * v
	}
	r90 := 0
	for i, v := range s {
		acc += v * v
		if acc >= 0.9*total {
			r90 = i + 1
			break
		}
	}
	if r90 > 14 {
		t.Fatalf("90%% energy rank = %d, want ≤ 14", r90)
	}
}

func TestFig8MiraiShape(t *testing.T) {
	unchecked, protected, tbl, err := Fig8Mirai()
	if err != nil {
		t.Fatal(err)
	}
	if protected.TotalInfected*2 >= unchecked.TotalInfected {
		t.Fatalf("protection too weak: %d vs %d", protected.TotalInfected, unchecked.TotalInfected)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty Fig. 8 table")
	}
}

func TestFig7ReplicationShape(t *testing.T) {
	points, tbl, err := Fig7Replication(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The table carries one extra row: Jaal's own deduplicated 35 %
	// operating point.
	if len(points) < 3 || len(tbl.Rows) != len(points)+1 {
		t.Fatalf("unexpected point count %d (rows %d)", len(points), len(tbl.Rows))
	}
	first, last := points[0], points[len(points)-1]
	if last.AvgThroughputLoss <= first.AvgThroughputLoss {
		t.Fatal("throughput loss must grow with replication")
	}
	if last.AvgThroughputLoss < 0.3 {
		t.Fatalf("full replication throughput loss %.2f too mild", last.AvgThroughputLoss)
	}
	// Jaal's operating point (35% replication-equivalent) must be mild.
	for _, p := range points {
		if p.ReplicationFraction == 0.35 && p.AvgThroughputLoss > 0.25 {
			t.Fatalf("35%% replication already loses %.2f throughput", p.AvgThroughputLoss)
		}
	}
}

func TestFig9FlowAssignShape(t *testing.T) {
	loads, tbl, err := Fig9FlowAssign(1500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads.Greedy) != 25 || len(tbl.Rows) != 25 {
		t.Fatalf("expected 25 monitors, got %d", len(loads.Greedy))
	}
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	gMax, rhMax, randMax := maxOf(loads.Greedy), maxOf(loads.RobinHood), maxOf(loads.Random)
	// Greedy must be in the same league as Robin-Hood and beat random.
	if gMax > rhMax*1.6 {
		t.Fatalf("greedy max load %.2f too far above Robin-Hood %.2f", gMax, rhMax)
	}
	if gMax >= randMax {
		t.Fatalf("greedy max load %.2f must beat random %.2f", gMax, randMax)
	}
}

func TestFig11CompressionShape(t *testing.T) {
	points, tbl, err := Fig11Compression()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(points) {
		t.Fatal("table/points mismatch")
	}
	// Compression at ε=10% must be at least as good as at ε=5% for the
	// same n, and large batches must compress at least as well as small.
	byKey := map[[2]int]float64{}
	for _, p := range points {
		byKey[[2]int{p.BatchSize, int(p.Epsilon * 100)}] = p.Compression
	}
	if byKey[[2]int{2000, 10}] < byKey[[2]int{2000, 5}]-1e-9 {
		t.Fatal("looser error budget must not reduce compression")
	}
	if byKey[[2]int{2000, 5}] < byKey[[2]int{500, 5}]-1e-9 {
		t.Fatal("larger batches must compress at least as well")
	}
	// Paper target: η ≈ 85% at n=2000, ε=5%. Accept ≥ 70%.
	if byKey[[2]int{2000, 5}] < 0.70 {
		t.Fatalf("compression at n=2000, ε=5%% is only %.2f", byKey[[2]int{2000, 5}])
	}
}

func TestTable1Shape(t *testing.T) {
	rows, tbl, err := Table1Reservoir(Scale{Trials: 2, BatchesPerTrial: 1, Monitors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(EvaluatedAttacks) || len(tbl.Rows) != len(rows) {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		if r.JaalAccuracy < r.ReservoirAccuracy {
			t.Fatalf("%s: Jaal %.2f must not lose to reservoir %.2f",
				r.Attack, r.JaalAccuracy, r.ReservoirAccuracy)
		}
	}
}

func TestVarianceEstimationTable(t *testing.T) {
	tbl, err := VarianceEstimation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty variance table")
	}
}
