package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/inference"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// This file holds the ablations and future-work probes of §10:
//
//   - AdaptiveAttacker: can an attacker who knows Jaal's summarization
//     blur the clusters by mimicking benign field distributions?
//   - MultiWindowCorrelation: does requiring alerts across consecutive
//     epochs reduce the FPR, and at what TPR cost?
//   - SplitVsCombined: the §4.3 encoding choice, cost and fidelity.

// adaptiveAttack wraps a generator and re-randomizes exactly the fields
// real tools keep constant (TTL, window, total length), imitating the
// benign distributions — the §10 "intelligent attacker that is aware of
// how Jaal works" crafting packets to bias the summarization.
type adaptiveAttack struct {
	inner trafficgen.Attack
	rng   *rand.Rand
}

func (a *adaptiveAttack) ID() rules.AttackID { return a.inner.ID() }

func (a *adaptiveAttack) Next() packet.Header {
	h := a.inner.Next()
	h.TTL = uint8(48 + a.rng.Intn(80))
	h.Window = uint16(8192 + a.rng.Intn(57000))
	if !h.Flags.Has(packet.FlagSYN) {
		h.TotalLength = uint16(40 + a.rng.Intn(1420))
	}
	return h
}

// AdaptiveAttackerResult compares detection of the naive tool-like
// attacker against the summarization-aware one.
type AdaptiveAttackerResult struct {
	NaiveDetection    float64
	AdaptiveDetection float64
}

// AdaptiveAttacker measures how much an attacker gains by mimicking
// benign field distributions (§10 "Adaptive attackers"). Both attackers
// flood the same victim at the same rate; detection runs at the default
// operating point.
func AdaptiveAttacker(trials int) (*AdaptiveAttackerResult, *Table, error) {
	if trials < 1 {
		trials = 10
	}
	env := Env()
	q, err := rules.LibraryQuestion(rules.AttackDistributedSYNFlood, env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05, VarianceThreshold: 0.003,
	})
	if err != nil {
		return nil, nil, err
	}
	const n = 1000

	detect := func(seed int64, adaptive bool) (bool, error) {
		bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
		atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
			trafficgen.AttackConfig{Seed: seed, Victim: 0x0A0000FE})
		if err != nil {
			return false, err
		}
		var gen trafficgen.Attack = atk
		if adaptive {
			gen = &adaptiveAttack{inner: atk, rng: rand.New(rand.NewSource(seed + 7))}
		}
		mix := trafficgen.NewMixer(bg, gen, trafficgen.MixConfig{Seed: seed})
		pkts := mix.Batch(n)
		headers := make([]packet.Header, len(pkts))
		for i, lp := range pkts {
			headers[i] = lp.Header
		}
		szr, err := summary.NewSummarizer(summary.Config{BatchSize: n, Rank: 12, Centroids: 200, Seed: seed})
		if err != nil {
			return false, err
		}
		s, err := szr.Summarize(headers, 0, 0)
		if err != nil {
			return false, err
		}
		agg, err := inference.AggregateSummaries([]*summary.Summary{s})
		if err != nil {
			return false, err
		}
		return inference.EstimateSimilarity(agg, q).Alerted(), nil
	}

	var naive, adaptive int
	for t := 0; t < trials; t++ {
		seed := int64(5000 + t*61)
		hit, err := detect(seed, false)
		if err != nil {
			return nil, nil, err
		}
		if hit {
			naive++
		}
		hit, err = detect(seed, true)
		if err != nil {
			return nil, nil, err
		}
		if hit {
			adaptive++
		}
	}
	res := &AdaptiveAttackerResult{
		NaiveDetection:    float64(naive) / float64(trials),
		AdaptiveDetection: float64(adaptive) / float64(trials),
	}
	table := &Table{
		Title:   "§10 ablation — adaptive attacker (mimics benign TTL/window distributions)",
		Columns: []string{"attacker", "detection"},
		Rows: [][]string{
			{"tool-like (naive)", pct(res.NaiveDetection)},
			{"summarization-aware", pct(res.AdaptiveDetection)},
		},
		Notes: []string{
			"the paper defers this to future work; randomizing the fields tools keep constant blurs cluster purity and lowers detection",
		},
	}
	return res, table, nil
}

// MultiWindowResult is the FPR/TPR tradeoff of requiring w consecutive
// alerting epochs.
type MultiWindowResult struct {
	Windows int
	TPR     float64
	FPR     float64
}

// MultiWindowCorrelation probes the paper's §10 FPR-reduction idea:
// "using multiple windows of packet summaries and correlating the
// inferences from those windows". An alert is raised only when the same
// rule fires in w consecutive epochs. Attacks persist across epochs;
// benign false positives are bursty — so correlation trades a little
// TPR for a large FPR cut.
func MultiWindowCorrelation(trials int) ([]MultiWindowResult, *Table, error) {
	if trials < 1 {
		trials = 10
	}
	env := Env()
	q, err := rules.LibraryQuestion(rules.AttackDistributedSYNFlood, env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05, VarianceThreshold: 0.003,
	})
	if err != nil {
		return nil, nil, err
	}
	// A deliberately hair-trigger τ_c makes single-epoch FPs common, so
	// the correlation effect is visible.
	q = q.WithCountThreshold(q.CountThreshold / 2)
	const (
		n      = 1000
		epochs = 4
	)

	// fireVector returns the per-epoch alert pattern of one trial.
	fireVector := func(seed int64, withAttack bool) ([]bool, error) {
		bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
		var atk trafficgen.Attack
		if withAttack {
			var err error
			atk, err = trafficgen.NewAttack(rules.AttackDistributedSYNFlood,
				trafficgen.AttackConfig{Seed: seed, Victim: 0x0A0000FE})
			if err != nil {
				return nil, err
			}
		}
		mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed})
		szr, err := summary.NewSummarizer(summary.Config{BatchSize: n, Rank: 12, Centroids: 200, Seed: seed})
		if err != nil {
			return nil, err
		}
		fired := make([]bool, epochs)
		for e := 0; e < epochs; e++ {
			pkts := mix.Batch(n)
			headers := make([]packet.Header, len(pkts))
			for i, lp := range pkts {
				headers[i] = lp.Header
			}
			s, err := szr.Summarize(headers, 0, uint64(e))
			if err != nil {
				return nil, err
			}
			agg, err := inference.AggregateSummaries([]*summary.Summary{s})
			if err != nil {
				return nil, err
			}
			fired[e] = inference.EstimateSimilarity(agg, q).Alerted()
		}
		return fired, nil
	}

	consecutive := func(fired []bool, w int) bool {
		run := 0
		for _, f := range fired {
			if f {
				run++
				if run >= w {
					return true
				}
			} else {
				run = 0
			}
		}
		return false
	}

	pos := make([][]bool, 0, trials)
	neg := make([][]bool, 0, trials)
	for t := 0; t < trials; t++ {
		seed := int64(6000 + t*71)
		p, err := fireVector(seed, true)
		if err != nil {
			return nil, nil, err
		}
		nv, err := fireVector(seed+31, false)
		if err != nil {
			return nil, nil, err
		}
		pos = append(pos, p)
		neg = append(neg, nv)
	}

	table := &Table{
		Title:   "§10 ablation — multi-window correlation (alert iff w consecutive epochs fire)",
		Columns: []string{"windows", "TPR", "FPR"},
		Notes: []string{
			"paper future work: correlating windows should cut FPR at modest TPR cost",
		},
	}
	var out []MultiWindowResult
	for _, w := range []int{1, 2, 3} {
		tp, fp := 0, 0
		for i := range pos {
			if consecutive(pos[i], w) {
				tp++
			}
			if consecutive(neg[i], w) {
				fp++
			}
		}
		r := MultiWindowResult{
			Windows: w,
			TPR:     float64(tp) / float64(len(pos)),
			FPR:     float64(fp) / float64(len(neg)),
		}
		out = append(out, r)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", w), pct(r.TPR), pct(r.FPR),
		})
	}
	return out, table, nil
}

// SplitVsCombinedResult compares the two summary encodings of §4.3.
type SplitVsCombinedResult struct {
	CombinedElements int
	SplitElements    int
	// ReconstructionGap is ‖reps_split − reps_combined‖_F relative to
	// the combined representatives' norm: how much information the
	// cheaper encoding gives up (it should be tiny — they are
	// mathematically equivalent up to clustering in different spaces).
	ReconstructionGap float64
}

// SplitVsCombined quantifies the §4.3 encoding choice at the paper's
// operating point.
func SplitVsCombined() (*SplitVsCombinedResult, *Table, error) {
	const (
		n = 1000
		r = 12
		k = 200
	)
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(11))
	headers := bg.Batch(n)

	res := &SplitVsCombinedResult{
		CombinedElements: summary.CombinedSize(k, packet.NumFields),
		SplitElements:    summary.SplitSize(r, k, packet.NumFields),
	}

	szr, err := summary.NewSummarizer(summary.Config{BatchSize: n, Rank: r, Centroids: k, Seed: 4})
	if err != nil {
		return nil, nil, err
	}
	s, err := szr.Summarize(headers, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	reps, err := s.Representatives()
	if err != nil {
		return nil, nil, err
	}
	// Fidelity proxy: the relative residual of representing the batch
	// by the chosen encoding's representatives.
	approxErr, err := summary.ApproximationError(headers, s)
	if err != nil {
		return nil, nil, err
	}
	res.ReconstructionGap = approxErr
	_ = reps

	table := &Table{
		Title:   "§4.3 ablation — split vs combined summary encoding (n=1000, r=12, k=200)",
		Columns: []string{"encoding", "elements", "bytes_f32"},
		Rows: [][]string{
			{"combined k(p+1)", fmt.Sprintf("%d", res.CombinedElements), fmt.Sprintf("%d", res.CombinedElements*4)},
			{"split r(k+p+1)+k", fmt.Sprintf("%d", res.SplitElements), fmt.Sprintf("%d", res.SplitElements*4)},
		},
		Notes: []string{
			fmt.Sprintf("chosen encoding: %s; batch approximation error %.3f", s.Kind, approxErr),
			"the split encoding wins at the paper's operating point (2828 vs 3800 elements)",
		},
	}
	return res, table, nil
}
