// Package experiments contains the evaluation harness that regenerates
// every table and figure of the paper's §8: detection-trial machinery,
// ROC sweeps, communication-overhead accounting, and the per-figure
// experiment drivers shared by cmd/jaal-experiments and the benchmark
// suite.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// ROCPoint is one operating point of a ROC curve: the thresholds swept
// are τ_d (and implicitly τ_c, τ_v which stay at their rule defaults).
type ROCPoint struct {
	TauD float64
	TPR  float64
	FPR  float64
}

// ROCCurve is a series of points for one configuration.
type ROCCurve struct {
	// Label names the configuration (e.g. "k=200").
	Label  string
	Points []ROCPoint
}

// AUC approximates the area under the ROC by trapezoidal integration
// over the upper envelope of the operating points: the points are a
// cloud of (τ_d, τ_c) combinations, so for each false-positive level the
// best achievable TPR defines the curve, anchored at (0,0) and (1,1).
func (c ROCCurve) AUC() float64 {
	pts := append([]ROCPoint(nil), c.Points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FPR != pts[j].FPR {
			return pts[i].FPR < pts[j].FPR
		}
		return pts[i].TPR > pts[j].TPR
	})
	fpr := []float64{0}
	tpr := []float64{0}
	best := 0.0
	for _, p := range pts {
		if p.TPR > best {
			best = p.TPR
			fpr = append(fpr, p.FPR)
			tpr = append(tpr, best)
		}
	}
	fpr = append(fpr, 1)
	tpr = append(tpr, 1)
	var auc float64
	for i := 1; i < len(fpr); i++ {
		auc += (fpr[i] - fpr[i-1]) * (tpr[i] + tpr[i-1]) / 2
	}
	return auc
}

// TPRAtFPR returns the best TPR achievable at or below the given FPR
// budget, or 0 when no point qualifies.
func (c ROCCurve) TPRAtFPR(budget float64) float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.FPR <= budget && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// Table is a rendered experiment result: rows of labeled numeric cells,
// printable as an aligned text table — the "same rows/series the paper
// reports".
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries shape commentary (what should hold vs the paper).
	Notes []string
}

// Render prints the table in aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// f3 formats a float with 3 decimals.
func f3(f float64) string { return fmt.Sprintf("%.3f", f) }
