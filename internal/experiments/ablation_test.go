package experiments

import (
	"testing"

	"repro/internal/summary"
)

func TestAdaptiveAttackerShape(t *testing.T) {
	res, tbl, err := AdaptiveAttacker(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatal("table must compare two attackers")
	}
	// The naive, tool-like attacker must be caught reliably; the
	// adaptive one must not do better than the naive one.
	if res.NaiveDetection < 0.8 {
		t.Fatalf("naive detection %.2f too low", res.NaiveDetection)
	}
	if res.AdaptiveDetection > res.NaiveDetection {
		t.Fatalf("adaptive attacker (%.2f) must not be easier to catch than naive (%.2f)",
			res.AdaptiveDetection, res.NaiveDetection)
	}
}

func TestMultiWindowCorrelationShape(t *testing.T) {
	results, tbl, err := MultiWindowCorrelation(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 window settings, got %d", len(results))
	}
	// FPR must be non-increasing in the window requirement, and the
	// persistent attack's TPR must stay high at w=2.
	for i := 1; i < len(results); i++ {
		if results[i].FPR > results[i-1].FPR+1e-9 {
			t.Fatalf("FPR must not grow with stricter correlation: %v", results)
		}
	}
	if results[1].TPR < 0.8 {
		t.Fatalf("persistent attack TPR at w=2 is %.2f, want ≥ 0.8", results[1].TPR)
	}
}

func TestSplitVsCombined(t *testing.T) {
	res, tbl, err := SplitVsCombined()
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitElements >= res.CombinedElements {
		t.Fatal("split must be cheaper at the paper's operating point")
	}
	if res.SplitElements != summary.SplitSize(12, 200, 18) {
		t.Fatalf("split size %d inconsistent", res.SplitElements)
	}
	if res.ReconstructionGap <= 0 || res.ReconstructionGap > 0.6 {
		t.Fatalf("approximation error %.3f out of plausible range", res.ReconstructionGap)
	}
	if len(tbl.Rows) != 2 {
		t.Fatal("table must list both encodings")
	}
}
