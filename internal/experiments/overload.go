package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/sketch"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// The overload ablation quantifies what the sketch-assisted ingest pass
// buys when the offered packet rate exceeds what the batch slab was
// provisioned for: with shedding off the summarization work grows
// linearly with load, with shedding on the admitted volume is pinned at
// the watermark while heavy hitters (the attack) are never shed — so
// SYN-flood detection and the volumetric verdict survive 10× overload
// at ~1× summarization cost.

// overloadVictim is the flood victim across every cell (10.0.0.42).
const overloadVictim = 0x0A00002A

// OverloadCell is one (load multiplier, shedding mode) run.
type OverloadCell struct {
	// Load is the offered-rate multiplier over the provisioned volume.
	Load int
	// Shedding reports whether the sketch ingest pass was armed.
	Shedding bool
	// Offered is the total packets offered across all epochs.
	Offered int
	// Shed and Kept split Offered per the monitors' accounting
	// (Shedding off ⇒ Shed 0, Kept = Offered).
	Shed, Kept uint64
	// Summarized is the total packets the shipped summaries stand for —
	// the SVD+k-means work actually done.
	Summarized int
	// DetectedEpochs counts active epochs with a SYN-flood alert, out
	// of ActiveEpochs.
	DetectedEpochs, ActiveEpochs int
	// VolumetricHit reports whether any active epoch's merged digest
	// report named the victim in its destination verdicts.
	VolumetricHit bool
}

// ShedFraction returns shed/offered for the cell.
func (c OverloadCell) ShedFraction() float64 {
	if c.Offered == 0 {
		return 0
	}
	return float64(c.Shed) / float64(c.Offered)
}

// OverloadResult is the full 1×/5×/10× × {shed off, shed on} grid.
type OverloadResult struct {
	// BasePackets is the provisioned per-epoch volume (the 1× point and
	// the per-monitor shed watermark).
	BasePackets int
	Cells       []OverloadCell
}

// Cell returns the cell for a load/mode pair, or nil.
func (r *OverloadResult) Cell(load int, shedding bool) *OverloadCell {
	for i := range r.Cells {
		if r.Cells[i].Load == load && r.Cells[i].Shedding == shedding {
			return &r.Cells[i]
		}
	}
	return nil
}

// Overload runs the overload grid: a two-monitor pipeline provisioned
// for BasePackets/epoch, offered 1×, 5× and 10× that rate during a
// SYN-flood window, with the sketch ingest pass off and on. Same seed
// and load ⇒ identical traffic in both modes, so every difference in a
// row pair is the shedding policy.
func Overload(quick bool) (*OverloadResult, *Table, error) {
	base, epochs, onset, offset := 3000, 6, 2, 5
	if quick {
		base, epochs, onset, offset = 1500, 5, 2, 4
	}
	loads := []int{1, 5, 10}

	env := Env()
	questions, err := rules.LibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		return nil, nil, err
	}
	// Thresholds are calibrated for the provisioned volume: overload is
	// precisely the traffic the operating point did not expect.
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(base)
	}

	res := &OverloadResult{BasePackets: base}
	for _, load := range loads {
		for _, shedding := range []bool{false, true} {
			cell, err := runOverloadCell(questions, base, load, epochs, onset, offset, shedding)
			if err != nil {
				return nil, nil, fmt.Errorf("overload %dx shedding=%v: %w", load, shedding, err)
			}
			res.Cells = append(res.Cells, *cell)
		}
	}

	t := &Table{
		Title:   fmt.Sprintf("Overload ablation (provisioned %d pkts/epoch; per-monitor watermark %d, hard ceiling 2x)", base, base*5/8),
		Columns: []string{"load", "shed", "offered", "summarized", "shed%", "detect", "volumetric"},
		Notes: []string{
			"summarized: packets the shipped summaries stand for — the SVD+k-means work done",
			"with shedding on, summarized is pinned at the admission ceiling — identical at 5x and 10x — so the slab is load-shed, not overrun",
			"detect: active epochs with a syn_flood alert / active epochs (heavy hitters are shed last)",
			"volumetric: merged sketch digests named the victim without any raw fetch",
		},
	}
	for _, c := range res.Cells {
		mode := "off"
		if c.Shedding {
			mode = "on"
		}
		vol := "-"
		if c.Shedding {
			vol = fmt.Sprintf("%v", c.VolumetricHit)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx", c.Load),
			mode,
			fmt.Sprintf("%d", c.Offered),
			fmt.Sprintf("%d", c.Summarized),
			pct(c.ShedFraction()),
			fmt.Sprintf("%d/%d", c.DetectedEpochs, c.ActiveEpochs),
			vol,
		})
	}
	return res, t, nil
}

// runOverloadCell streams one cell's traffic through a fresh pipeline.
func runOverloadCell(questions map[rules.AttackID]*rules.Question, base, load, epochs, onset, offset int, shedding bool) (*OverloadCell, error) {
	scfg := sketch.Config{}
	if shedding {
		// Each of the two monitors is provisioned for its half of the
		// base rate plus 25 % headroom; the default hard ceiling (2×)
		// bounds a monitor's slab at 1.25× the base rate no matter the
		// offered load.
		scfg = sketch.DefaultConfig(base * 5 / 8)
	}
	pipe, err := core.NewPipeline(core.PipelineConfig{
		NumMonitors: 2,
		Summary: summary.Config{
			BatchSize: 500, Rank: 12, Centroids: 100, MinBatch: 100, Seed: 11,
		},
		Sketch:     scfg,
		Controller: core.ControllerConfig{Env: Env(), Questions: questions},
	})
	if err != nil {
		return nil, err
	}

	seed := int64(9000 + load) // same traffic for both modes of a load
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(seed))
	atk, err := trafficgen.NewAttack(rules.AttackSYNFlood,
		trafficgen.AttackConfig{Seed: seed + 1, Victim: overloadVictim})
	if err != nil {
		return nil, err
	}
	// 20 % attack share: a flood decisively over the 10 % volumetric
	// verdict gate, so the digest path has a clean target at every load.
	mix := trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{Seed: seed + 2, AttackFraction: 0.2})

	cell := &OverloadCell{Load: load, Shedding: shedding}
	for e := 0; e < epochs; e++ {
		active := e >= onset && e < offset
		n := base * load
		for i := 0; i < n; i++ {
			var h packet.Header
			if active {
				h = mix.Next().Header
			} else {
				h = bg.Next()
			}
			if err := pipe.Ingest(h); err != nil {
				return nil, err
			}
		}
		cell.Offered += n
		alerts, err := pipe.RunEpoch()
		if err != nil {
			return nil, err
		}
		if active {
			cell.ActiveEpochs++
			for _, a := range alerts {
				if a.Attack == rules.AttackSYNFlood {
					cell.DetectedEpochs++
					break
				}
			}
			if rep := pipe.Controller.Volumetric(); rep != nil {
				for _, v := range rep.Verdicts {
					if v.Dimension == "dst" && v.Addr == overloadVictim {
						cell.VolumetricHit = true
					}
				}
			}
		}
		if rep := pipe.Controller.Volumetric(); rep != nil {
			cell.Shed += rep.Shed
			cell.Kept += rep.Kept
		}
	}
	if !shedding {
		cell.Kept = uint64(cell.Offered)
	}
	cell.Summarized = pipe.Controller.Stats().PacketsSummarized
	return cell, nil
}
