// Package scenario is the labelled scenario corpus and accuracy
// scoreboard: seeded end-to-end workloads — background traffic plus one
// attack family (or a benign trap) with per-packet ground truth — each
// run through the full monitor→controller pipeline and scored into
// per-scenario precision, recall, F1 and detection latency. The
// scoreboard JSON report, pinned by a tolerance-banded golden, is the
// detection regression gate for every change to verdict behaviour
// (question translation, the question index, feedback tuning, future
// anomaly heads).
package scenario

import (
	"fmt"
	"math/rand"
	"net/netip"

	"repro/internal/rules"
	"repro/internal/trafficgen"
)

// Profile fixes the pipeline and workload dimensions of a scoreboard
// run. Two profiles are defined: Quick fits the CI budget, Full is the
// paper-scale local run.
type Profile struct {
	// Name tags the report ("quick" or "full").
	Name string
	// Monitors is M; the traffic of every epoch spreads across them
	// via the flow-assignment module.
	Monitors int
	// BatchSize, Rank, Centroids, MinBatch are the summarization
	// operating point (n, r, k, n_min).
	BatchSize, Rank, Centroids, MinBatch int
	// PacketsPerEpoch is the epoch volume; count thresholds are scaled
	// to it.
	PacketsPerEpoch int
	// Epochs is the scenario length; the attack (or trap surge) is
	// active in epochs [Onset, Offset).
	Epochs, Onset, Offset int
	// Workers bounds pipeline concurrency (0 = GOMAXPROCS). The report
	// is byte-identical for every value.
	Workers int
}

// QuickProfile is the reduced-epoch CI profile (the scoreboard-quick
// job's 60 s budget).
func QuickProfile() Profile {
	return Profile{
		Name: "quick", Monitors: 2,
		BatchSize: 500, Rank: 12, Centroids: 100, MinBatch: 100,
		PacketsPerEpoch: 2000, Epochs: 8, Onset: 2, Offset: 6,
	}
}

// FullProfile is the paper-scale operating point (n = 1000, k = 200,
// four monitors) for local regression runs.
func FullProfile() Profile {
	return Profile{
		Name: "full", Monitors: 4,
		BatchSize: 1000, Rank: 12, Centroids: 200, MinBatch: 200,
		PacketsPerEpoch: 8000, Epochs: 12, Onset: 3, Offset: 9,
	}
}

// ProfileByName resolves "quick" or "full".
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "quick":
		return QuickProfile(), nil
	case "full":
		return FullProfile(), nil
	}
	return Profile{}, fmt.Errorf("scenario: unknown profile %q (want quick or full)", name)
}

// Scenario is one corpus entry: a seeded traffic recipe with ground
// truth, plus the expected-alert spec that maps the pipeline's alerts
// back onto truth.
type Scenario struct {
	// Name identifies the scenario in reports and goldens.
	Name string
	// Seed drives every random choice of the scenario (background,
	// attack, interleaving); the whole run is a pure function of it.
	Seed int64
	// Attack is the injected attack family ("" for a pure-benign trap
	// scenario). The generator comes from trafficgen.NewAttack unless
	// NewAttack overrides it.
	Attack rules.AttackID
	// NewAttack optionally builds a custom generator (a stealth-scan
	// variant, the multi-stage campaign).
	NewAttack func(cfg trafficgen.AttackConfig, p Profile) (trafficgen.Attack, error)
	// VictimPort overrides the attacked service port (0 keeps the
	// generator default).
	VictimPort uint16
	// AttackFraction caps the attack share of active-epoch traffic
	// (0 selects the per-attack paper default).
	AttackFraction float64
	// UDP marks a mixed-protocol workload: the background carries a
	// 10 % UDP share and the summarizer runs at rank 14 (mixed batches
	// carry one more latent dimension; see the UDP detection tests).
	UDP bool
	// Surge marks the flash-crowd trap: instead of an attack, a benign
	// surge is interleaved during the active window. Everything stays
	// ground-truth benign, so every alert scores as a false positive.
	Surge bool
	// Expect lists the truth attack IDs the detector must raise during
	// their active epochs — one entry for single-family scenarios, one
	// per stage for the campaign, empty for traps.
	Expect []rules.AttackID
	// Accept maps a raised alert ID to additional truth IDs it may
	// satisfy, in priority order (every alert always satisfies its own
	// ID). This encodes known rule overlap: e.g. the three flags:S
	// volumetric rules all fire on any SYN-heavy flood, and the
	// Sockstress window-0 rule fires on slowloris keepalives.
	Accept map[rules.AttackID][]rules.AttackID
	// Ignore lists alert IDs that count neither as hit nor as false
	// positive for this scenario.
	Ignore []rules.AttackID
}

// Victim is the common attacked/surged host: 10.0.0.42 in HOME_NET.
const Victim = uint32(0x0A00002A)

// Env returns the evaluation environment (HOME_NET = 10/8), matching
// the victim addresses the generators use.
func Env() *rules.Environment {
	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	return env
}

// synFamily is the rule-overlap alias set of the flags:S volumetric
// rules: each fires on any sufficiently SYN-heavy aggregate at a
// tracked destination, so within a SYN-shaped scenario all three
// satisfy the scenario's truth ID.
func synFamily(truth rules.AttackID) map[rules.AttackID][]rules.AttackID {
	out := make(map[rules.AttackID][]rules.AttackID, 3)
	for _, id := range []rules.AttackID{
		rules.AttackSYNFlood, rules.AttackDistributedSYNFlood, rules.AttackPortScan,
	} {
		if id != truth {
			out[id] = []rules.AttackID{truth}
		}
	}
	return out
}

// Catalogue returns the scenario corpus: the paper's evaluated attacks,
// the five scenario-corpus families, and the flash-crowd trap. Order is
// fixed; reports and goldens list scenarios in this order.
func Catalogue() []Scenario {
	return []Scenario{
		{
			Name: "syn_flood", Seed: 101, Attack: rules.AttackSYNFlood,
			Expect: []rules.AttackID{rules.AttackSYNFlood},
			Accept: synFamily(rules.AttackSYNFlood),
		},
		{
			Name: "distributed_syn_flood", Seed: 102, Attack: rules.AttackDistributedSYNFlood,
			Expect: []rules.AttackID{rules.AttackDistributedSYNFlood},
			Accept: synFamily(rules.AttackDistributedSYNFlood),
		},
		{
			Name: "port_scan", Seed: 103, Attack: rules.AttackPortScan,
			Expect: []rules.AttackID{rules.AttackPortScan},
			Accept: synFamily(rules.AttackPortScan),
		},
		{
			Name: "ssh_brute_force", Seed: 104, Attack: rules.AttackSSHBruteForce,
			Expect: []rules.AttackID{rules.AttackSSHBruteForce},
			Accept: synFamily(rules.AttackSSHBruteForce),
		},
		{
			// Port 443 keeps the victim off the slowloris rule's pinned
			// port 80, so the two window-0 scenarios stay separable.
			Name: "sockstress", Seed: 105, Attack: rules.AttackSockstress,
			VictimPort: 443,
			Expect:     []rules.AttackID{rules.AttackSockstress},
		},
		{
			// The SSH rule pins port 22, the Mirai rule port 23; the
			// normalized gap (1/65535 averaged over the active fields) is
			// far below the summary's distance resolution, so the SSH rule
			// legitimately fires on telnet-scan mass.
			Name: "mirai_scan", Seed: 106, Attack: rules.AttackMiraiScan,
			Expect: []rules.AttackID{rules.AttackMiraiScan},
			Accept: map[rules.AttackID][]rules.AttackID{
				rules.AttackSSHBruteForce: {rules.AttackMiraiScan},
			},
		},
		{
			Name: "udp_flood", Seed: 107, Attack: rules.AttackUDPFlood, UDP: true,
			Expect: []rules.AttackID{rules.AttackUDPFlood},
		},
		{
			// The UDP-flood rule (any UDP mass at a tracked home
			// destination) legitimately fires on reflection traffic too.
			Name: "reflection_ddos", Seed: 108, Attack: rules.AttackReflection, UDP: true,
			Expect: []rules.AttackID{rules.AttackReflection},
			Accept: map[rules.AttackID][]rules.AttackID{
				rules.AttackUDPFlood: {rules.AttackReflection},
			},
		},
		{
			// The Sockstress window-0 rule fires on slowloris keepalives
			// (same zero-window ACK mass at one victim).
			Name: "slowloris", Seed: 109, Attack: rules.AttackSlowloris,
			Expect: []rules.AttackID{rules.AttackSlowloris},
			Accept: map[rules.AttackID][]rules.AttackID{
				rules.AttackSockstress: {rules.AttackSlowloris},
			},
		},
		{
			Name: "stealth_fin_scan", Seed: 110, Attack: rules.AttackStealthScan,
			NewAttack: stealthVariant(trafficgen.StealthFIN),
			Expect:    []rules.AttackID{rules.AttackStealthScan},
		},
		{
			Name: "stealth_xmas_scan", Seed: 111, Attack: rules.AttackStealthScan,
			NewAttack: stealthVariant(trafficgen.StealthXmas),
			Expect:    []rules.AttackID{rules.AttackStealthScan},
		},
		{
			// Three stages across the active window: reconnaissance scan,
			// SSH brute-force infection, bulk exfiltration. Each stage
			// must be detected in its own epochs.
			Name: "campaign", Seed: 112, Attack: rules.AttackPortScan,
			NewAttack: newCampaign,
			Expect:    trafficgen.CampaignStages,
			Accept: map[rules.AttackID][]rules.AttackID{
				rules.AttackSYNFlood:            {rules.AttackPortScan, rules.AttackSSHBruteForce},
				rules.AttackDistributedSYNFlood: {rules.AttackPortScan, rules.AttackSSHBruteForce},
				rules.AttackPortScan:            {rules.AttackSSHBruteForce},
			},
		},
		{
			// The false-positive trap: a benign flash crowd at one home
			// server. Ground truth is all-benign; any alert is a false
			// positive and recall is vacuously perfect.
			Name: "flash_crowd", Seed: 113, Surge: true,
		},
	}
}

// stealthVariant builds a NewAttack hook for one stealth-scan variant.
func stealthVariant(v trafficgen.StealthVariant) func(trafficgen.AttackConfig, Profile) (trafficgen.Attack, error) {
	return func(cfg trafficgen.AttackConfig, _ Profile) (trafficgen.Attack, error) {
		return trafficgen.NewStealthScan(rand.New(rand.NewSource(cfg.Seed)), cfg, v), nil
	}
}

// newCampaign sizes the campaign stages to one active epoch of attack
// traffic each (the paper's 10 % injection cap), so stage transitions
// land on epoch boundaries and every stage is scored against a whole
// epoch of its own truth; the final exfiltration stage runs unbounded
// through the rest of the active window.
func newCampaign(cfg trafficgen.AttackConfig, p Profile) (trafficgen.Attack, error) {
	return trafficgen.NewCampaign(cfg, p.PacketsPerEpoch/10)
}
