package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/par"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// surgeEvery interleaves one flash-crowd packet per this many stream
// slots during a trap scenario's active window (a 12.5 % benign surge —
// above the attack injection cap, as real crowds are).
const surgeEvery = 8

// corpusFeedback returns the per-attack two-stage feedback configs the
// corpus runs with. Only SSH brute force carries one today: its
// summary-side operating point (τ_d at the port-pinned 1e-4, count 20)
// is deliberately strict — the organic port-22 mass concentrating on
// the Zipf-head server reaches cluster counts of ≈16, so a summary-only
// verdict cannot tell a small brute force from a popular server's
// login traffic. Stage 2 relaxes both knobs (6× the distance threshold
// to recover attack mass hiding in contaminated clusters, count back to
// the rule's literal 8), and everything stage 1 missed is settled by
// fetching the raw packets behind the suspect window: the Snort engine
// then enforces the literal 8-SYNs-to-one-destination filter, which
// benign windows never satisfy (their cluster mass is mixed traffic,
// not 8 literal port-22 SYNs on one server). The other questions keep
// the plain single-threshold path: their operating points already
// separate cleanly on summaries, and an empty Feedback entry means no
// raw fetches are ever issued for them.
func corpusFeedback(questions map[rules.AttackID]*rules.Question) map[rules.AttackID]inference.FeedbackConfig {
	q, ok := questions[rules.AttackSSHBruteForce]
	if !ok {
		return nil
	}
	return map[rules.AttackID]inference.FeedbackConfig{
		rules.AttackSSHBruteForce: {
			TauD1:       q.DistanceThreshold,
			TauD2:       6 * q.DistanceThreshold,
			CountScale2: 0.4,
		},
	}
}

// Run executes one scenario end to end under a profile: builds the
// pipeline, streams every epoch's labelled traffic through it, and
// scores the raised alerts against ground truth. The result is a pure
// function of (scenario, profile).
func Run(s Scenario, p Profile) (*Result, error) {
	env := Env()
	questions, err := rules.ScenarioLibraryQuestions(env, rules.TranslateConfig{
		DefaultDistanceThreshold: 0.05,
		VarianceThreshold:        0.003,
	})
	if err != nil {
		return nil, err
	}
	for id, q := range questions {
		questions[id] = q.ScaleForVolume(p.PacketsPerEpoch)
	}

	rank := p.Rank
	if s.UDP {
		// Mixed-protocol batches carry one more latent dimension than
		// the TCP-only calibration point (see the UDP detection tests).
		rank = p.Rank + 2
	}
	pipe, err := core.NewPipeline(core.PipelineConfig{
		NumMonitors: p.Monitors,
		Summary: summary.Config{
			BatchSize: p.BatchSize, Rank: rank, Centroids: p.Centroids,
			MinBatch: p.MinBatch, Seed: s.Seed,
		},
		Controller: core.ControllerConfig{
			Env: env, Questions: questions, Workers: p.Workers,
			Feedback: corpusFeedback(questions), UseFeedback: true,
		},
		Workers: p.Workers,
	})
	if err != nil {
		return nil, err
	}

	bgcfg := trafficgen.DefaultBackgroundConfig(s.Seed)
	if s.UDP {
		bgcfg.UDPFraction = 0.10
	}
	bg := trafficgen.NewBackground(bgcfg)

	var mix *trafficgen.Mixer
	if s.Attack != "" {
		acfg := trafficgen.AttackConfig{
			Seed: s.Seed + 1, Victim: Victim, VictimPort: s.VictimPort,
		}
		var atk trafficgen.Attack
		if s.NewAttack != nil {
			atk, err = s.NewAttack(acfg, p)
		} else {
			atk, err = trafficgen.NewAttack(s.Attack, acfg)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		mix = trafficgen.NewMixer(bg, atk, trafficgen.MixConfig{
			Seed: s.Seed + 2, AttackFraction: s.AttackFraction,
		})
	}
	var surge *trafficgen.FlashCrowd
	if s.Surge {
		surge = trafficgen.NewFlashCrowd(trafficgen.AttackConfig{
			Seed: s.Seed + 3, Victim: Victim, VictimPort: 443,
		})
	}

	// truth[e] counts the attack packets each truth ID contributed to
	// epoch e — the per-epoch ground-truth labels alerts score against.
	truth := make([]map[rules.AttackID]int, p.Epochs)
	alerts := make([][]*inference.Alert, p.Epochs)
	for e := 0; e < p.Epochs; e++ {
		truth[e] = make(map[rules.AttackID]int)
		active := e >= p.Onset && e < p.Offset
		for i := 0; i < p.PacketsPerEpoch; i++ {
			var lp trafficgen.LabeledPacket
			switch {
			case active && mix != nil:
				lp = mix.Next()
			case active && surge != nil && i%surgeEvery == 0:
				// Surge packets are ground-truth benign: the trap's
				// entire point is that this mass must not alert.
				lp = trafficgen.LabeledPacket{Header: surge.Next(), Label: trafficgen.LabelBenign}
			default:
				lp = trafficgen.LabeledPacket{Header: bg.Next(), Label: trafficgen.LabelBenign}
			}
			if lp.Label == trafficgen.LabelAttack {
				truth[e][rules.AttackID(lp.Attack)]++
			}
			if err := pipe.Ingest(lp.Header); err != nil {
				return nil, err
			}
		}
		as, err := pipe.RunEpoch()
		if err != nil {
			return nil, err
		}
		alerts[e] = as
	}
	return score(s, p, truth, alerts), nil
}

// RunAll executes the whole catalogue with at most workers scenarios in
// flight (0 = GOMAXPROCS) and the same bound on each pipeline's
// internal concurrency. Results are joined in catalogue order, so the
// report is byte-identical for every worker count.
func RunAll(p Profile, workers int) (*Report, error) {
	p.Workers = workers
	scenarios := Catalogue()
	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))
	par.For(len(scenarios), workers, func(i int) {
		results[i], errs[i] = Run(scenarios[i], p)
	})
	rep := &Report{Profile: p.Name}
	for i, r := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("scenario %s: %w", scenarios[i].Name, errs[i])
		}
		rep.Results = append(rep.Results, *r)
	}
	return rep, nil
}
