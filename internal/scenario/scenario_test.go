package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/inference"
	"repro/internal/rules"
)

// updateScoreboardGolden regenerates testdata/scoreboard.golden from
// the current pipeline output. Run it after an intentional detection
// change (threshold retuning, new rule, new scenario):
//
//	go test ./internal/scenario/ -run TestScoreboardGolden -update-scoreboard-golden
var updateScoreboardGolden = flag.Bool("update-scoreboard-golden", false,
	"rewrite testdata/scoreboard.golden from the current pipeline output")

const goldenPath = "testdata/scoreboard.golden"

// TestScoreboardGolden is the detection regression gate: the quick
// profile's scoreboard must stay within the tolerance bands of the
// checked-in golden.
func TestScoreboardGolden(t *testing.T) {
	rep, err := RunAll(QuickProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if *updateScoreboardGolden {
		if err := WriteGolden(goldenPath, rep); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := LoadGolden(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-scoreboard-golden to create): %v", err)
	}
	for _, v := range Compare(rep, want) {
		t.Errorf("violation: %s", v)
	}
}

// TestScoreboardWorkerDeterminism pins the report — down to the bytes
// of its JSON — against the worker count, on a reduced profile so the
// three runs stay cheap under -race.
func TestScoreboardWorkerDeterminism(t *testing.T) {
	p := Profile{
		Name: "det", Monitors: 2,
		BatchSize: 400, Rank: 12, Centroids: 80, MinBatch: 80,
		PacketsPerEpoch: 1200, Epochs: 4, Onset: 1, Offset: 3,
	}
	var first []byte
	for _, workers := range []int{1, 4, 8} {
		rep, err := RunAll(p, workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
			continue
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("report bytes differ between workers=1 and workers=%d", workers)
		}
	}
}

func TestCatalogueShape(t *testing.T) {
	cat := Catalogue()
	if len(cat) < 10 {
		t.Fatalf("corpus has %d scenarios, want ≥ 10", len(cat))
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	traps := 0
	for _, s := range cat {
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if seeds[s.Seed] {
			t.Fatalf("scenario %s reuses seed %d", s.Name, s.Seed)
		}
		seeds[s.Seed] = true
		if s.Surge {
			traps++
			if len(s.Expect) != 0 || s.Attack != "" {
				t.Fatalf("trap %s must inject no attack and expect no alerts", s.Name)
			}
			continue
		}
		if len(s.Expect) == 0 {
			t.Fatalf("scenario %s expects no detection", s.Name)
		}
	}
	for _, want := range []string{
		"reflection_ddos", "slowloris", "stealth_fin_scan",
		"stealth_xmas_scan", "campaign", "flash_crowd",
	} {
		if !names[want] {
			t.Fatalf("catalogue missing the %s scenario", want)
		}
	}
	if traps != 1 {
		t.Fatalf("want exactly one false-positive trap, have %d", traps)
	}
}

// TestScoreSemantics pins the grading rules on a hand-built alert
// stream: Ignore drops alerts, Accept aliases them onto the scenario's
// truth, a late-summarized batch's alert covers the previous epoch,
// below-threshold traces are tolerated, and false positives dedupe per
// (epoch, alert).
func TestScoreSemantics(t *testing.T) {
	s := Scenario{
		Name:   "unit",
		Expect: []rules.AttackID{"a"},
		Accept: map[rules.AttackID][]rules.AttackID{"b": {"a"}},
		Ignore: []rules.AttackID{"c"},
	}
	p := Profile{PacketsPerEpoch: 1000, Epochs: 5, Onset: 1, Offset: 3}
	truth := []map[rules.AttackID]int{
		{}, {"a": 100}, {"a": 100, "d": 3}, {}, {},
	}
	alerts := [][]*inference.Alert{
		{{Attack: "c"}},                // ignored
		{},                             // miss, covered by e2's carryover
		{{Attack: "b"}},                // accepted alias, covers e2 and e1
		{{Attack: "d"}},                // trace of d in e2: tolerated
		{{Attack: "x"}, {Attack: "x"}}, // one deduped false positive
	}
	res := score(s, p, truth, alerts)
	if res.Positives != 2 || res.TP != 2 || res.FN != 0 {
		t.Fatalf("positives/tp/fn = %d/%d/%d, want 2/2/0", res.Positives, res.TP, res.FN)
	}
	if res.FP != 1 {
		t.Fatalf("fp = %d, want 1 (ignored, tolerated and duplicate alerts must not count)", res.FP)
	}
	if res.Recall != 1 || res.Precision != 0.6667 {
		t.Fatalf("precision/recall = %v/%v", res.Precision, res.Recall)
	}
	if len(res.Latency) != 1 || res.Latency[0] != (LatencyEntry{Attack: "a", Epochs: 1}) {
		t.Fatalf("latency = %+v, want a:1 (onset e1, first hit e2)", res.Latency)
	}
}

// TestGoldenPlumbing round-trips a report through the golden files and
// checks that perturbed scores fail the gate with a violation naming
// the scenario and metric.
func TestGoldenPlumbing(t *testing.T) {
	rep := &Report{Profile: "quick", Results: []Result{
		{
			Scenario: "syn_flood", Positives: 4, TP: 4,
			Precision: 1, Recall: 1, F1: 1,
			Latency: []LatencyEntry{{Attack: "syn_flood", Epochs: 0}},
		},
		{Scenario: "flash_crowd", Precision: 1, Recall: 1, F1: 1},
	}}
	path := filepath.Join(t.TempDir(), "scoreboard.golden")
	if err := WriteGolden(path, rep); err != nil {
		t.Fatal(err)
	}
	want, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := Compare(rep, want); len(v) != 0 {
		t.Fatalf("clean round trip reports violations: %v", v)
	}
	b1, err := Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("golden bytes changed across write/load")
	}

	perturb := func(f func(*Report)) []string {
		var bad Report
		if err := json.Unmarshal(b1, &bad); err != nil {
			t.Fatal(err)
		}
		f(&bad)
		return Compare(&bad, want)
	}
	cases := []struct {
		name     string
		mutate   func(*Report)
		contains []string
	}{
		{"score drift", func(r *Report) { r.Results[0].F1 = 0.5 }, []string{"syn_flood", "f1"}},
		{"detected to missed", func(r *Report) { r.Results[0].Latency[0].Epochs = -1 },
			[]string{"syn_flood", "latency[syn_flood]", "detected/missed"}},
		{"trap false positive", func(r *Report) { r.Results[1].FP = 1 }, []string{"flash_crowd", "fp"}},
		{"scenario dropped", func(r *Report) { r.Results = r.Results[:1] }, []string{"flash_crowd", "missing"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := perturb(tc.mutate)
			if len(v) == 0 {
				t.Fatal("perturbed report passed the gate")
			}
			joined := strings.Join(v, "\n")
			for _, want := range tc.contains {
				if !strings.Contains(joined, want) {
					t.Fatalf("violations must name %q; got:\n%s", want, joined)
				}
			}
		})
	}
}
