package scenario

import (
	"math"
	"sort"

	"repro/internal/inference"
	"repro/internal/rules"
)

// Result is one scenario's scorecard. Positive instances are
// (epoch, truth-ID) pairs in which the attack was active; an instance
// is a true positive when at least one accepted alert covered it.
// False positives are distinct (epoch, alert-ID) pairs that matched no
// active truth (and were neither a below-threshold trace of the attack
// nor ignored).
type Result struct {
	Scenario  string  `json:"scenario"`
	Positives int     `json:"positives"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// Latency is per expected truth ID: epochs from attack onset to the
	// first correct alert (-1 when the attack went undetected).
	Latency []LatencyEntry `json:"latency,omitempty"`
}

// LatencyEntry is one truth ID's detection latency.
type LatencyEntry struct {
	Attack string `json:"attack"`
	Epochs int    `json:"epochs"`
}

// Report is the scoreboard output: every catalogue scenario's Result in
// catalogue order, tagged with the profile that produced it.
type Report struct {
	Profile string   `json:"profile"`
	Results []Result `json:"results"`
}

// activeThreshold is the emitted-packet count at which a truth ID
// counts as active in an epoch: 1 % of the epoch volume. Below it (but
// above zero) the attack left only a trace — e.g. the tail of a
// campaign stage straddling an epoch boundary — and alerts for it are
// tolerated without counting either way.
func activeThreshold(p Profile) int {
	t := p.PacketsPerEpoch / 100
	if t < 1 {
		t = 1
	}
	return t
}

type instance struct {
	epoch int
	id    rules.AttackID
}

// score grades one scenario's alert stream against its ground truth.
func score(s Scenario, p Profile, truth []map[rules.AttackID]int, alerts [][]*inference.Alert) *Result {
	thresh := activeThreshold(p)
	activeAt := func(e int, id rules.AttackID) bool {
		return e >= 0 && e < len(truth) && truth[e][id] >= thresh
	}
	traceAt := func(e int, id rules.AttackID) bool {
		return e >= 0 && e < len(truth) && truth[e][id] > 0
	}
	ignored := make(map[rules.AttackID]bool, len(s.Ignore))
	for _, id := range s.Ignore {
		ignored[id] = true
	}

	detected := make(map[instance]bool)
	firstHit := make(map[rules.AttackID]int)
	fpSeen := make(map[instance]bool)
	fp := 0
	for e, as := range alerts {
		for _, a := range as {
			if ignored[a.Attack] {
				continue
			}
			candidates := append([]rules.AttackID{a.Attack}, s.Accept[a.Attack]...)
			matched := false
			for _, id := range candidates {
				// A batch below MinBatch at the epoch boundary is
				// summarized one epoch late, so an alert also covers the
				// previous epoch's activity.
				for _, de := range []int{0, -1} {
					if activeAt(e+de, id) {
						detected[instance{e + de, id}] = true
						if _, ok := firstHit[id]; !ok {
							firstHit[id] = e
						}
						matched = true
					}
				}
				if matched {
					break
				}
			}
			if matched {
				continue
			}
			tolerated := false
			for _, id := range candidates {
				if traceAt(e, id) || traceAt(e-1, id) {
					tolerated = true
					break
				}
			}
			if !tolerated {
				key := instance{e, a.Attack}
				if !fpSeen[key] {
					fpSeen[key] = true
					fp++
				}
			}
		}
	}

	res := &Result{Scenario: s.Name, FP: fp}
	for e := range truth {
		ids := make([]rules.AttackID, 0, len(truth[e]))
		for id := range truth[e] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if !activeAt(e, id) {
				continue
			}
			res.Positives++
			if detected[instance{e, id}] {
				res.TP++
			} else {
				res.FN++
			}
		}
	}

	res.Precision = ratio(res.TP, res.TP+res.FP)
	res.Recall = ratio(res.TP, res.Positives)
	if res.Precision+res.Recall > 0 {
		res.F1 = round4(2 * res.Precision * res.Recall / (res.Precision + res.Recall))
	}

	for _, id := range s.Expect {
		onset := -1
		for e := range truth {
			if activeAt(e, id) {
				onset = e
				break
			}
		}
		lat := -1
		if hit, ok := firstHit[id]; ok && onset >= 0 {
			lat = hit - onset
			if lat < 0 {
				lat = 0
			}
		}
		res.Latency = append(res.Latency, LatencyEntry{Attack: string(id), Epochs: lat})
	}
	return res
}

// ratio returns a/b rounded to 4 decimals, and 1 when there were no
// chances to be wrong (b == 0): a trap with zero false positives has
// perfect precision, a trap with zero positives has perfect recall.
func ratio(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return round4(float64(a) / float64(b))
}

func round4(x float64) float64 { return math.Round(x*10000) / 10000 }
