package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Tolerance bands of the golden gate. The golden pins the scoreboard
// within bands rather than exactly: detection-side changes legitimately
// move scores a little (threshold retuning, index pruning order), and
// the gate should catch regressions, not noise.
const (
	// ScoreBand bounds how far precision/recall/F1 may drift.
	ScoreBand = 0.15
	// LatencyBand bounds detection-latency drift in epochs. A
	// transition between detected and missed is always a violation.
	LatencyBand = 2
	// FPBand bounds false-positive count drift per scenario. Trap
	// scenarios (no positives at all) are held exactly: any new false
	// positive on the flash crowd is a regression.
	FPBand = 2
)

// Marshal renders a report as the canonical golden bytes: indented
// JSON, scenarios in catalogue order, trailing newline.
func Marshal(r *Report) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadGolden reads a golden report from disk.
func LoadGolden(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("scenario: parsing golden %s: %w", path, err)
	}
	return &r, nil
}

// WriteGolden writes the canonical golden bytes for a report.
func WriteGolden(path string, r *Report) error {
	b, err := Marshal(r)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Compare checks a fresh report against the golden within the
// tolerance bands and returns one human-readable violation per
// breached metric, each naming the scenario and metric. An empty slice
// means the gate passes.
func Compare(got, want *Report) []string {
	var v []string
	if got.Profile != want.Profile {
		v = append(v, fmt.Sprintf("profile: got %q, golden %q", got.Profile, want.Profile))
	}
	wantBy := make(map[string]Result, len(want.Results))
	for _, r := range want.Results {
		wantBy[r.Scenario] = r
	}
	gotBy := make(map[string]bool, len(got.Results))
	for _, g := range got.Results {
		gotBy[g.Scenario] = true
		w, ok := wantBy[g.Scenario]
		if !ok {
			v = append(v, fmt.Sprintf("%s: not in golden (run with -update after adding a scenario)", g.Scenario))
			continue
		}
		v = append(v, compareResult(g, w)...)
	}
	for _, w := range want.Results {
		if !gotBy[w.Scenario] {
			v = append(v, fmt.Sprintf("%s: in golden but missing from report", w.Scenario))
		}
	}
	return v
}

func compareResult(got, want Result) []string {
	var v []string
	band := func(metric string, g, w float64) {
		if math.Abs(g-w) > ScoreBand {
			v = append(v, fmt.Sprintf("%s: %s %.4f outside ±%.2f of golden %.4f",
				got.Scenario, metric, g, ScoreBand, w))
		}
	}
	band("precision", got.Precision, want.Precision)
	band("recall", got.Recall, want.Recall)
	band("f1", got.F1, want.F1)

	fpBand := FPBand
	if want.Positives == 0 {
		fpBand = 0 // trap scenarios are exact
	}
	if d := got.FP - want.FP; d > fpBand || d < -fpBand {
		v = append(v, fmt.Sprintf("%s: fp %d outside ±%d of golden %d",
			got.Scenario, got.FP, fpBand, want.FP))
	}

	wantLat := make(map[string]int, len(want.Latency))
	for _, l := range want.Latency {
		wantLat[l.Attack] = l.Epochs
	}
	for _, l := range got.Latency {
		wl, ok := wantLat[l.Attack]
		if !ok {
			v = append(v, fmt.Sprintf("%s: latency[%s] not in golden", got.Scenario, l.Attack))
			continue
		}
		switch {
		case (l.Epochs < 0) != (wl < 0):
			v = append(v, fmt.Sprintf("%s: latency[%s] changed detected/missed: got %d, golden %d",
				got.Scenario, l.Attack, l.Epochs, wl))
		case l.Epochs >= 0 && abs(l.Epochs-wl) > LatencyBand:
			v = append(v, fmt.Sprintf("%s: latency[%s] %d outside ±%d of golden %d",
				got.Scenario, l.Attack, l.Epochs, LatencyBand, wl))
		}
	}
	return v
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
