// Package trace is Jaal's cross-process epoch tracer: it records
// causally-linked spans for every stage of an epoch — monitor
// capture/seal, summarize, encode, wire ship, controller decode,
// inference, feedback raw fetches, alert emission — and assembles them
// into one timeline per controller epoch, across process boundaries.
//
// Where internal/obs answers "how long do summarizations take on
// average", this package answers "where did epoch 41's two seconds go,
// which monitor was the straggler, and how long did that alert take
// from packet capture to delivery". Monitor-side spans are staged
// per monitor and either adopted directly (in-process pipeline) or
// shipped to the controller as a compact trace-context block appended
// to the MsgSummary payload (see context.go); the controller merges
// them with its own spans, computes the critical path, and derives the
// end-to-end detection latency per alert (jaal_alert_latency_seconds).
//
// The same two properties that hold for obs hold here:
//
//   - Tracing never affects outputs. Spans are a write-only side
//     channel; alerts are byte-identical with tracing on or off
//     (TestPipelineTraceDeterminism), and with tracing off the wire
//     frames carry no context block at all, so old peers interop.
//   - Disabled is (almost) free: one atomic load and a branch per
//     instrumentation point, zero allocations
//     (BenchmarkTraceDisabled).
//
// The package is intentionally absent from the detrand analyzer's
// deterministic set: it owns the wall-clock reads, so instrumented
// packages (core, summary, netsim) need no new time.Now calls and no
// new suppressions.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// on gates all recording. Exporters read assembled traces regardless,
// so a /trace scrape after SetEnabled(false) still sees the ring.
var on atomic.Bool

// SetEnabled turns epoch tracing on or off process-wide.
func SetEnabled(v bool) { on.Store(v) }

// Enabled reports whether tracing is active.
func Enabled() bool { return on.Load() }

// ControllerProc is the process ID used for spans recorded by the
// controller itself (Proc/Monitor fields); monitors use their own IDs.
const ControllerProc = -1

// Stage identifies one pipeline stage of an epoch.
type Stage uint8

// Pipeline stages, in rough causal order.
const (
	// StageCapture spans a batch's fill time at a monitor: first
	// buffered header to seal.
	StageCapture Stage = 1
	// StageSummarize spans one batch's SVD+k-means summarization.
	StageSummarize Stage = 2
	// StageEncode spans marshalling the queued summaries to wire form.
	StageEncode Stage = 3
	// StageShip spans one monitor's full poll round trip as seen by the
	// controller (request → last frame).
	StageShip Stage = 4
	// StageCollect spans one monitor's CollectSummaries call.
	StageCollect Stage = 5
	// StageDecode spans decoding one received summary at the controller.
	StageDecode Stage = 6
	// StageInfer spans one inference round (aggregate + all questions).
	StageInfer Stage = 7
	// StageRawFetch spans one feedback raw-packet fetch round trip.
	StageRawFetch Stage = 8
	// StageAlertEmit spans assembling and emitting the epoch's alerts.
	StageAlertEmit Stage = 9
	// StageEpoch spans the whole epoch (RunEpoch or poll+process).
	StageEpoch Stage = 10
	// StageSimRoute spans netsim's demand routing + replication passes.
	StageSimRoute Stage = 11
	// StageSimResolve spans netsim's congestion/engine resolution pass.
	StageSimResolve Stage = 12
)

// String names the stage as it appears in exports.
func (s Stage) String() string {
	switch s {
	case StageCapture:
		return "capture"
	case StageSummarize:
		return "summarize"
	case StageEncode:
		return "encode"
	case StageShip:
		return "ship"
	case StageCollect:
		return "collect"
	case StageDecode:
		return "decode"
	case StageInfer:
		return "infer"
	case StageRawFetch:
		return "raw_fetch"
	case StageAlertEmit:
		return "alert_emit"
	case StageEpoch:
		return "epoch"
	case StageSimRoute:
		return "sim_route"
	case StageSimResolve:
		return "sim_resolve"
	default:
		return "stage(" + itoa(int64(s)) + ")"
	}
}

// MarshalJSON renders the stage by name so /trace output and golden
// files stay readable and stable.
func (s Stage) MarshalJSON() ([]byte, error) {
	name := s.String()
	b := make([]byte, 0, len(name)+2)
	b = append(b, '"')
	b = append(b, name...)
	return append(b, '"'), nil
}

// SpanRecord is one completed span inside an epoch trace.
type SpanRecord struct {
	// Stage is the pipeline stage this span timed.
	Stage Stage `json:"stage"`
	// Proc is the process that recorded the span: a monitor ID, or
	// ControllerProc for the controller.
	Proc int32 `json:"proc"`
	// Monitor is the monitor the stage concerns (the polled monitor for
	// ship/decode spans, the recording monitor for its own stages), or
	// ControllerProc for monitor-agnostic controller stages.
	Monitor int32 `json:"monitor"`
	// Seq is the monitor's batch sequence number for per-batch stages,
	// or the controller epoch for epoch-scoped stages.
	Seq uint64 `json:"seq"`
	// Start is the span's wall-clock start (Unix nanoseconds), shifted
	// into the controller's clock for remote spans (see
	// AddRemoteContext).
	Start int64 `json:"start_unix_nano"`
	// Dur is the span's duration in nanoseconds, measured on the
	// recording process's monotonic clock.
	Dur int64 `json:"dur_nanos"`
}

// end returns the span's end time in Unix nanoseconds.
func (r SpanRecord) end() int64 { return r.Start + r.Dur }

// EpochTrace is one assembled cross-process epoch timeline.
type EpochTrace struct {
	// Epoch is the controller epoch the trace covers.
	Epoch uint64 `json:"epoch"`
	// Start is the earliest span start (Unix nanoseconds).
	Start int64 `json:"start_unix_nano"`
	// Dur is the whole trace's wall extent in nanoseconds.
	Dur int64 `json:"dur_nanos"`
	// Spans are every recorded span, in deterministic
	// (Proc, Monitor, Stage, Seq, Start) order.
	Spans []SpanRecord `json:"spans"`
	// Alerts is how many alerts the epoch raised.
	Alerts int `json:"alerts"`
	// AlertLatencySeconds is the end-to-end detection latency for the
	// epoch's alerts — earliest capture start to alert emission — when
	// Alerts > 0 and a latency could be derived; 0 otherwise.
	AlertLatencySeconds float64 `json:"alert_latency_seconds,omitempty"`
	// SlowestMonitor is the monitor whose chain ended last (the
	// critical-path straggler), or ControllerProc when no monitor span
	// was recorded.
	SlowestMonitor int32 `json:"slowest_monitor"`
	// CriticalPath names the stages on the critical path: the slowest
	// monitor's chain in start order, then the controller's own stages.
	CriticalPath []string `json:"critical_path"`
	// CriticalSeconds is the wall extent of the critical path.
	CriticalSeconds float64 `json:"critical_seconds"`
	// CounterDeltas, set only on slow-epoch exemplars, holds the obs
	// counter movement that accompanied the epoch (counter name →
	// increase since the previous finished epoch).
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
}

// hAlertLatency is the per-alert end-to-end detection latency: the time
// from the earliest captured packet contributing to the epoch to the
// moment the alert was emitted. This is the paper's detection-latency
// claim (§6) made measurable per alert.
var hAlertLatency = obs.NewHistogram("jaal_alert_latency_seconds",
	"end-to-end capture-to-emission latency of raised alerts", obs.DurationBuckets())

// Config tunes the collector. The zero value selects the defaults.
type Config struct {
	// RingSize is how many finished epoch traces the ring retains
	// (default 64).
	RingSize int
	// SlowThreshold pins epochs whose wall extent exceeds it as
	// exemplars with full span detail and obs counter deltas
	// (default 250ms; <0 disables exemplars).
	SlowThreshold time.Duration
	// MaxExemplars bounds the pinned slow epochs (default 8; oldest
	// evicted first).
	MaxExemplars int
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.MaxExemplars <= 0 {
		c.MaxExemplars = 8
	}
	return c
}

// maxPendingEpochs bounds the in-flight assembly map: a controller that
// never calls FinishEpoch (or a monitor process, which has no epochs)
// cannot grow it without bound — the oldest pending epoch is dropped.
const maxPendingEpochs = 64

// maxStagedSpans bounds the per-monitor staging queue the same way: a
// monitor that is never polled drops its oldest staged spans.
const maxStagedSpans = 4096

// collector is the process-wide trace state.
type collector struct {
	mu sync.Mutex
	// staged holds monitor-side spans awaiting shipment (TakeContext)
	// or adoption (AdoptMonitorSpans), keyed by monitor ID.
	staged map[int32][]SpanRecord
	// epochs holds controller-side spans being assembled per epoch.
	epochs map[uint64][]SpanRecord
	ring   *Ring
	// exemplars pins slow epochs, oldest first.
	exemplars []*EpochTrace
	cfg       Config
	// prevCounters is the obs counter snapshot at the last finished
	// epoch, for exemplar deltas.
	prevCounters map[string]int64
}

var col = newCollector(Config{})

func newCollector(cfg Config) *collector {
	cfg = cfg.withDefaults()
	return &collector{
		staged: make(map[int32][]SpanRecord),
		epochs: make(map[uint64][]SpanRecord),
		ring:   NewRing(cfg.RingSize),
		cfg:    cfg,
	}
}

// Configure replaces the collector's tuning (ring size, slow-epoch
// threshold, exemplar cap) and clears all assembled state. Call it
// before SetEnabled; it is not safe to race with active recording.
func Configure(cfg Config) {
	col.mu.Lock()
	defer col.mu.Unlock()
	cfg = cfg.withDefaults()
	col.cfg = cfg
	col.ring = NewRing(cfg.RingSize)
	col.staged = make(map[int32][]SpanRecord)
	col.epochs = make(map[uint64][]SpanRecord)
	col.exemplars = nil
	col.prevCounters = nil
}

// Reset drops all staged and assembled state but keeps the
// configuration (tests and benchmarks).
func Reset() {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.staged = make(map[int32][]SpanRecord)
	col.epochs = make(map[uint64][]SpanRecord)
	col.ring = NewRing(col.cfg.RingSize)
	col.exemplars = nil
	col.prevCounters = nil
}

// stageMonitor queues a monitor-side span for later shipment/adoption.
func (c *collector) stageMonitor(rec SpanRecord) {
	c.mu.Lock()
	q := c.staged[rec.Proc]
	if len(q) >= maxStagedSpans {
		q = q[1:]
	}
	c.staged[rec.Proc] = append(q, rec)
	c.mu.Unlock()
}

// stageEpoch adds a controller-side span to its epoch's assembly.
func (c *collector) stageEpoch(epoch uint64, rec SpanRecord) {
	c.mu.Lock()
	c.addEpochLocked(epoch, rec)
	c.mu.Unlock()
}

func (c *collector) addEpochLocked(epoch uint64, recs ...SpanRecord) {
	if _, ok := c.epochs[epoch]; !ok && len(c.epochs) >= maxPendingEpochs {
		oldest := epoch
		for e := range c.epochs {
			if e < oldest {
				oldest = e
			}
		}
		delete(c.epochs, oldest)
	}
	c.epochs[epoch] = append(c.epochs[epoch], recs...)
}

// RecordSpan adds a pre-measured monitor-side span — used for stages
// whose start predates the instrumentation point, like a batch's
// capture window, whose first-packet time is stamped by the buffer.
// No-op while tracing is disabled.
func RecordSpan(st Stage, monitorID int, seq uint64, startUnixNano, durNanos int64) {
	if !on.Load() {
		return
	}
	col.stageMonitor(SpanRecord{
		Stage: st, Proc: int32(monitorID), Monitor: int32(monitorID),
		Seq: seq, Start: startUnixNano, Dur: durNanos,
	})
}

// TakeContext drains the monitor's staged spans into a shippable
// Context, or returns nil when tracing is off or nothing is staged.
// The monitor server calls it once per summary poll.
func TakeContext(monitorID int) *Context {
	if !on.Load() {
		return nil
	}
	id := int32(monitorID)
	col.mu.Lock()
	spans := col.staged[id]
	delete(col.staged, id)
	col.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	return &Context{MonitorID: monitorID, SentUnixNano: time.Now().UnixNano(), Spans: spans}
}

// AddRemoteContext merges a monitor's shipped spans into an epoch's
// assembly. recvUnixNano is the controller-side receive time; every
// remote span is shifted by (recv − sent) so monitor clocks that
// disagree with the controller's still yield causal timelines (a
// shipped span always ends at or before the frame carrying it was
// received). No-op while tracing is disabled or ctx is nil.
func AddRemoteContext(epoch uint64, ctx *Context, recvUnixNano int64) {
	if !on.Load() || ctx == nil || len(ctx.Spans) == 0 {
		return
	}
	shift := recvUnixNano - ctx.SentUnixNano
	col.mu.Lock()
	for _, rec := range ctx.Spans {
		rec.Start += shift
		col.addEpochLocked(epoch, rec)
	}
	col.mu.Unlock()
}

// AdoptMonitorSpans moves a monitor's staged spans into an epoch's
// assembly without clock shifting — the in-process pipeline's
// equivalent of ship+AddRemoteContext. No-op while tracing is disabled.
func AdoptMonitorSpans(epoch uint64, monitorID int) {
	if !on.Load() {
		return
	}
	id := int32(monitorID)
	col.mu.Lock()
	spans := col.staged[id]
	delete(col.staged, id)
	if len(spans) > 0 {
		col.addEpochLocked(epoch, spans...)
	}
	col.mu.Unlock()
}

// FinishEpoch seals epoch's assembly into an EpochTrace: spans are
// sorted deterministically, the critical path computed, per-alert
// detection latency derived (and observed into
// jaal_alert_latency_seconds), and the trace pushed into the ring
// (plus the exemplar set when slow). It returns the trace, or nil when
// tracing is disabled or the epoch recorded no spans.
func FinishEpoch(epoch uint64, alerts int) *EpochTrace {
	if !on.Load() {
		return nil
	}
	col.mu.Lock()
	spans := col.epochs[epoch]
	delete(col.epochs, epoch)
	col.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}

	// Deterministic order: worker scheduling decides which span was
	// *recorded* first, but the sorted sequence — and with it the
	// topology a golden test sees — is the same at any worker count.
	//jaal:alloc-ok sorting runs once per epoch seal, over at most a few hundred spans
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Monitor != b.Monitor {
			return a.Monitor < b.Monitor
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Start < b.Start
	})

	t := &EpochTrace{Epoch: epoch, Spans: spans, Alerts: alerts}
	start, end := spans[0].Start, spans[0].end()
	for _, r := range spans[1:] {
		if r.Start < start {
			start = r.Start
		}
		if r.end() > end {
			end = r.end()
		}
	}
	t.Start, t.Dur = start, end-start

	t.SlowestMonitor, t.CriticalPath, t.CriticalSeconds = criticalPath(spans)

	if alerts > 0 {
		if lat := alertLatency(spans, end); lat > 0 {
			t.AlertLatencySeconds = lat
			for i := 0; i < alerts; i++ {
				hAlertLatency.Observe(lat)
			}
		}
	}

	col.mu.Lock()
	if col.cfg.SlowThreshold >= 0 && time.Duration(t.Dur) > col.cfg.SlowThreshold {
		t.CounterDeltas = counterDeltasLocked()
		col.exemplars = append(col.exemplars, t)
		if len(col.exemplars) > col.cfg.MaxExemplars {
			col.exemplars = col.exemplars[len(col.exemplars)-col.cfg.MaxExemplars:]
		}
	} else {
		// Keep the baseline fresh so a later exemplar's deltas span one
		// epoch, not the whole run.
		refreshCountersLocked()
	}
	col.ring.Add(t)
	col.mu.Unlock()
	return t
}

// criticalPath finds the straggler chain: the monitor whose last span
// ends latest (ties to the smaller ID), followed by the controller's
// own stages, in start order.
func criticalPath(spans []SpanRecord) (slowest int32, path []string, seconds float64) {
	slowest = ControllerProc
	var slowestEnd int64
	for _, r := range spans {
		if r.Monitor < 0 {
			continue
		}
		switch {
		case slowest == ControllerProc || r.end() > slowestEnd:
			slowest, slowestEnd = r.Monitor, r.end()
		case r.end() == slowestEnd && r.Monitor < slowest:
			slowest = r.Monitor
		}
	}

	var chain []SpanRecord
	for _, r := range spans {
		onPath := (slowest != ControllerProc && r.Monitor == slowest) ||
			(r.Proc == ControllerProc && r.Monitor == ControllerProc)
		if onPath {
			chain = append(chain, r) //jaal:alloc-ok critical-path extraction runs once per epoch; chain length is the epoch's span count
		}
	}
	if len(chain) == 0 {
		return slowest, nil, 0
	}
	//jaal:alloc-ok once per epoch, on the already-extracted chain
	sort.SliceStable(chain, func(i, j int) bool {
		if chain[i].Start != chain[j].Start {
			return chain[i].Start < chain[j].Start
		}
		return chain[i].Stage < chain[j].Stage
	})
	start, end := chain[0].Start, chain[0].end()
	for _, r := range chain {
		path = append(path, r.Stage.String())
		if r.end() > end {
			end = r.end()
		}
	}
	return slowest, path, float64(end-start) / float64(time.Second)
}

// alertLatency derives the end-to-end detection latency: earliest
// capture (or failing that, earliest span) start to the alert-emit end
// (or failing that, the trace end).
func alertLatency(spans []SpanRecord, traceEnd int64) float64 {
	var capStart, anyStart, emitEnd int64
	capStart, anyStart = -1, -1
	for _, r := range spans {
		if anyStart < 0 || r.Start < anyStart {
			anyStart = r.Start
		}
		if r.Stage == StageCapture && (capStart < 0 || r.Start < capStart) {
			capStart = r.Start
		}
		if r.Stage == StageAlertEmit && r.end() > emitEnd {
			emitEnd = r.end()
		}
	}
	start := capStart
	if start < 0 {
		start = anyStart
	}
	if emitEnd == 0 {
		emitEnd = traceEnd
	}
	if start < 0 || emitEnd <= start {
		return 0
	}
	return float64(emitEnd-start) / float64(time.Second)
}

// counterDeltasLocked computes per-counter movement since the previous
// snapshot and refreshes the baseline. Caller holds col.mu.
func counterDeltasLocked() map[string]int64 {
	cur := obs.CounterValues()
	deltas := make(map[string]int64)
	for name, v := range cur {
		if d := v - col.prevCounters[name]; d != 0 {
			deltas[name] = d
		}
	}
	col.prevCounters = cur
	if len(deltas) == 0 {
		return nil
	}
	return deltas
}

func refreshCountersLocked() {
	if obs.Enabled() {
		col.prevCounters = obs.CounterValues()
	}
}

// Snapshot returns up to n finished traces, newest first (n <= 0 means
// all retained).
func Snapshot(n int) []*EpochTrace {
	col.mu.Lock()
	r := col.ring
	col.mu.Unlock()
	return r.Snapshot(n)
}

// Exemplars returns the pinned slow epochs, oldest first.
func Exemplars() []*EpochTrace {
	col.mu.Lock()
	out := make([]*EpochTrace, len(col.exemplars))
	copy(out, col.exemplars)
	col.mu.Unlock()
	return out
}

// NowNano returns the current wall clock in Unix nanoseconds while
// tracing is enabled, and 0 otherwise. Deterministic packages use it to
// stamp capture times without importing time — the clock read lives
// here, where the detrand analyzer permits it, and costs one atomic
// load when tracing is off.
func NowNano() int64 {
	if !on.Load() {
		return 0
	}
	return time.Now().UnixNano()
}

// itoa is a minimal non-negative integer formatter, avoiding strconv in
// the Stage hot path (String is only called by exporters, but keeping
// the package's import surface small is free).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
