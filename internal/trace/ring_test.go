package trace

import (
	"sync"
	"testing"
)

func TestRingFillAndWraparound(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	for e := uint64(1); e <= 6; e++ {
		r.Add(&EpochTrace{Epoch: e})
	}
	if r.Len() != 4 {
		t.Fatalf("Len after wrap = %d, want 4", r.Len())
	}
	snap := r.Snapshot(0)
	want := []uint64{6, 5, 4, 3} // newest first; 1 and 2 overwritten
	if len(snap) != len(want) {
		t.Fatalf("snapshot size = %d, want %d", len(snap), len(want))
	}
	for i, w := range want {
		if snap[i].Epoch != w {
			t.Fatalf("snapshot[%d].Epoch = %d, want %d", i, snap[i].Epoch, w)
		}
	}
}

func TestRingSnapshotLimit(t *testing.T) {
	r := NewRing(8)
	for e := uint64(1); e <= 5; e++ {
		r.Add(&EpochTrace{Epoch: e})
	}
	snap := r.Snapshot(2)
	if len(snap) != 2 || snap[0].Epoch != 5 || snap[1].Epoch != 4 {
		t.Fatalf("Snapshot(2) = %+v, want epochs 5,4", snap)
	}
	// Requesting more than retained clamps.
	if got := r.Snapshot(100); len(got) != 5 {
		t.Fatalf("Snapshot(100) size = %d, want 5", len(got))
	}
}

func TestRingMinimumSize(t *testing.T) {
	r := NewRing(0)
	r.Add(&EpochTrace{Epoch: 1})
	r.Add(&EpochTrace{Epoch: 2})
	snap := r.Snapshot(0)
	if len(snap) != 1 || snap[0].Epoch != 2 {
		t.Fatalf("size-0 ring snapshot = %+v, want just epoch 2", snap)
	}
}

// TestRingConcurrentWriters hammers a small ring from several writers
// while readers snapshot, under -race in CI: every observed slot must be
// a fully-formed trace (never nil mid-overwrite, never torn).
func TestRingConcurrentWriters(t *testing.T) {
	r := NewRing(8)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := uint64(w*perWriter + i)
				r.Add(&EpochTrace{Epoch: e, Spans: []SpanRecord{
					{Stage: StageEpoch, Proc: ControllerProc, Monitor: ControllerProc, Seq: e, Dur: 1},
				}})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		for _, tr := range r.Snapshot(0) {
			if tr == nil {
				t.Fatal("snapshot observed a nil slot")
			}
			if len(tr.Spans) != 1 || tr.Spans[0].Seq != tr.Epoch {
				t.Fatalf("torn trace: %+v", tr)
			}
		}
	}
	if r.Len() != 8 {
		t.Fatalf("final Len = %d, want 8", r.Len())
	}
}
