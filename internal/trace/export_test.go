package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func exportFixture() []*EpochTrace {
	return []*EpochTrace{
		{
			Epoch: 1,
			Spans: []SpanRecord{
				{Stage: StageCapture, Proc: 0, Monitor: 0, Seq: 10, Start: 1_000_000, Dur: 250_000},
				{Stage: StageShip, Proc: ControllerProc, Monitor: 0, Seq: 1, Start: 1_300_000, Dur: 50_000},
				{Stage: StageInfer, Proc: ControllerProc, Monitor: ControllerProc, Seq: 1, Start: 1_400_000, Dur: 100_000},
			},
		},
		nil, // a dropped slot must not crash the exporter
		{
			Epoch: 2,
			Spans: []SpanRecord{
				{Stage: StageCapture, Proc: 1, Monitor: 1, Seq: 11, Start: 2_000_000, Dur: 300_000},
			},
		},
	}
}

func TestWriteTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, exportFixture()); err != nil {
		t.Fatalf("WriteTraceEvents: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int64          `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}

	var meta, spans int
	names := map[int64]string{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				t.Fatalf("metadata event named %q", ev.Name)
			}
			names[ev.Pid], _ = ev.Args["name"].(string)
			meta++
		case "X":
			spans++
			if ev.Dur <= 0 || ev.Ts <= 0 {
				t.Fatalf("X event with ts %g dur %g", ev.Ts, ev.Dur)
			}
			if _, ok := ev.Args["epoch"]; !ok {
				t.Fatalf("X event %q missing epoch arg", ev.Name)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if spans != 4 {
		t.Fatalf("exported %d span events, want 4", spans)
	}
	// Three recording processes: controller (-1), monitor 0, monitor 1.
	if meta != 3 || names[1] != "controller" || names[2] != "monitor 0" || names[3] != "monitor 1" {
		t.Fatalf("process names = %v (%d meta events)", names, meta)
	}

	// Timestamp unit: Ts is microseconds, span start was 1_000_000 ns.
	first := file.TraceEvents[meta] // metadata is prepended
	if first.Ts != 1_000 || first.Dur != 250 {
		t.Fatalf("first X event ts/dur = %g/%g µs, want 1000/250", first.Ts, first.Dur)
	}
	// Controller spans about monitor 0 land in the controller process
	// (pid 1) on monitor 0's thread (tid 2).
	ship := file.TraceEvents[meta+1]
	if ship.Name != "ship" || ship.Pid != 1 || ship.Tid != 2 {
		t.Fatalf("ship event = %+v, want pid 1 tid 2", ship)
	}
}

func TestWriteTraceEventsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, nil); err != nil {
		t.Fatalf("WriteTraceEvents(nil): %v", err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
}

func TestWriteTraceFile(t *testing.T) {
	withTracing(t)
	col.stageEpoch(1, SpanRecord{Stage: StageEpoch, Proc: ControllerProc, Monitor: ControllerProc, Seq: 1, Start: 100, Dur: 10})
	FinishEpoch(1, 0)
	col.stageEpoch(2, SpanRecord{Stage: StageEpoch, Proc: ControllerProc, Monitor: ControllerProc, Seq: 2, Start: 200, Dur: 10})
	FinishEpoch(2, 0)

	path := filepath.Join(t.TempDir(), "epochs.trace.json")
	if err := WriteTraceFile(path); err != nil {
		t.Fatalf("WriteTraceFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	// Oldest epoch first among the X events.
	var epochs []float64
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			epochs = append(epochs, ev.Args["epoch"].(float64))
		}
	}
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 2 {
		t.Fatalf("epoch order in file = %v, want [1 2]", epochs)
	}
}
