package trace

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// traceResponse is the /trace endpoint's JSON shape.
type traceResponse struct {
	// Enabled reports whether tracing is currently recording.
	Enabled bool `json:"enabled"`
	// Traces are the most recent finished epochs, newest first.
	Traces []*EpochTrace `json:"traces"`
	// Exemplars are the pinned slow epochs (oldest first), each with
	// the obs counter deltas that accompanied it.
	Exemplars []*EpochTrace `json:"exemplars,omitempty"`
}

// Handler serves the trace ring as JSON: the last N finished epoch
// traces (?n=, default all retained) plus the slow-epoch exemplars.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		resp := traceResponse{
			Enabled:   Enabled(),
			Traces:    Snapshot(n),
			Exemplars: Exemplars(),
		}
		if resp.Traces == nil {
			resp.Traces = []*EpochTrace{}
		}
		enc := json.NewEncoder(w)
		enc.Encode(resp)
	})
}

// The endpoint rides the existing -obs server: any binary that links
// this package (every daemon and the core pipeline does) gets /trace
// next to /metrics for free.
func init() {
	obs.RegisterHandler("/trace", Handler())
}
