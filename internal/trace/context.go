package trace

import (
	"encoding/binary"
	"fmt"
)

// Context is the compact trace-context block a monitor appends to its
// MsgSummary payload: every span staged since the last poll, plus the
// send timestamp the controller uses to shift the spans into its own
// clock (AddRemoteContext).
//
// Wire format (big-endian), appended after the summary bytes — the
// summary's own length is computable from its header
// (summary.EncodedLen), so the receiver splits the payload without a
// length prefix:
//
//	byte[2]  magic "JT"
//	byte     version (1)
//	byte     flags (0, reserved)
//	uint32   monitor ID
//	int64    send time, Unix nanoseconds
//	uint16   span count
//	span ×   byte stage, uint64 seq, int64 start (Unix ns), int64 dur (ns)
//
// Version tolerance: a receiver that sees the magic with an unknown
// version ignores the whole block (DecodeContext returns nil, nil), so
// a newer monitor interops with an older controller's tracer and vice
// versa; with tracing disabled no block is sent at all, which is how
// pre-trace peers see today's frames, byte-identical.
type Context struct {
	// MonitorID is the sending monitor.
	MonitorID int
	// SentUnixNano is the monitor's clock at context assembly.
	SentUnixNano int64
	// Spans are the staged spans, Proc/Monitor already stamped.
	Spans []SpanRecord
}

const (
	ctxMagic0 = 'J'
	ctxMagic1 = 'T'
	// ctxVersion is the current trace-context block version.
	ctxVersion = 1
	// ctxHeaderSize is magic + version + flags + monitorID + sent + count.
	ctxHeaderSize = 2 + 1 + 1 + 4 + 8 + 2
	// ctxSpanSize is one encoded span: stage + seq + start + dur.
	ctxSpanSize = 1 + 8 + 8 + 8
	// maxContextSpans bounds a decoded block; a monitor stages at most
	// maxStagedSpans, so anything above is corrupt.
	maxContextSpans = maxStagedSpans
)

// AppendWire appends the context's wire encoding to dst.
//
//jaal:pair DecodeContext
func (c *Context) AppendWire(dst []byte) []byte {
	dst = append(dst, ctxMagic0, ctxMagic1, ctxVersion, 0) //jaalvet:ignore encdec — byte 3 is the reserved flags byte: written zero today, deliberately ignored by decoders for forward compatibility
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.MonitorID))
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.SentUnixNano))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(c.Spans)))
	for _, s := range c.Spans {
		dst = append(dst, byte(s.Stage))
		dst = binary.BigEndian.AppendUint64(dst, s.Seq)
		dst = binary.BigEndian.AppendUint64(dst, uint64(s.Start))
		dst = binary.BigEndian.AppendUint64(dst, uint64(s.Dur))
	}
	return dst
}

// DecodeContext parses a trace-context block. A block with the right
// magic but an unknown version decodes to (nil, nil) — the
// version-tolerance contract — while truncation, a bad magic or an
// inconsistent length is an error: the block rides a summary frame
// whose boundaries are exact, so any mismatch means corruption.
func DecodeContext(p []byte) (*Context, error) {
	if len(p) < ctxHeaderSize {
		return nil, fmt.Errorf("trace: context block of %d bytes, want >= %d", len(p), ctxHeaderSize)
	}
	if p[0] != ctxMagic0 || p[1] != ctxMagic1 {
		return nil, fmt.Errorf("trace: bad context magic %#x%x", p[0], p[1])
	}
	if p[2] != ctxVersion {
		return nil, nil // future version: ignore, stay interoperable
	}
	n := int(binary.BigEndian.Uint16(p[16:]))
	if n > maxContextSpans {
		return nil, fmt.Errorf("trace: context claims %d spans, limit %d", n, maxContextSpans)
	}
	if want := ctxHeaderSize + n*ctxSpanSize; len(p) != want {
		return nil, fmt.Errorf("trace: context block of %d bytes, want %d for %d spans", len(p), want, n)
	}
	c := &Context{
		MonitorID:    int(binary.BigEndian.Uint32(p[4:])),
		SentUnixNano: int64(binary.BigEndian.Uint64(p[8:])),
	}
	off := ctxHeaderSize
	if n > 0 {
		c.Spans = make([]SpanRecord, n)
	}
	for i := 0; i < n; i++ {
		c.Spans[i] = SpanRecord{
			Stage:   Stage(p[off]),
			Proc:    int32(c.MonitorID),
			Monitor: int32(c.MonitorID),
			Seq:     binary.BigEndian.Uint64(p[off+1:]),
			Start:   int64(binary.BigEndian.Uint64(p[off+9:])),
			Dur:     int64(binary.BigEndian.Uint64(p[off+17:])),
		}
		off += ctxSpanSize
	}
	return c, nil
}
