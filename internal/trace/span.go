package trace

import (
	"time"

	"repro/internal/obs"
)

// Span flags: which consumers were armed when the span started. A span
// records only into the consumers that were enabled at Start — the
// obs/trace gates are not re-read at End, so a mid-span toggle cannot
// produce a half-recorded stage.
const (
	spanTimed  uint8 = 1 << iota // the timer ran (any consumer, or forced)
	spanHist                     // observe seconds into the histogram
	spanTrace                    // record a SpanRecord
	spanStaged                   // monitor-side: stage for ship/adoption
)

// Span times one pipeline stage into up to three consumers from one
// instrumentation point: the obs histogram (aggregate view), the active
// epoch trace (timeline view), and — via End's return value — the
// caller's epoch log. It subsumes the old obs.Span. It is a value
// type: with every consumer disabled, Start* returns a zero Span and
// the whole construct costs two atomic loads and no allocation
// (BenchmarkTraceDisabled).
//
// Usage:
//
//	defer trace.StartSpan(hEpochSeconds, trace.StageInfer, trace.ControllerProc, epoch).End()
type Span struct {
	start   time.Time
	h       *obs.Histogram
	seq     uint64
	monitor int32
	stage   Stage
	flags   uint8
}

// StartSpan begins timing a controller-side stage: the finished span
// joins epoch seq's assembly (FinishEpoch seals it). h may be nil for
// stages without an aggregate histogram; monitor is the monitor the
// stage concerns, or ControllerProc.
func StartSpan(h *obs.Histogram, st Stage, monitor int, seq uint64) Span {
	return startSpan(false, false, h, st, monitor, seq)
}

// StartSpanWhen is StartSpan with a force switch: when force is true
// the timer runs even with obs and tracing both disabled, so End still
// returns a real duration — for callers feeding an epoch log that has
// its own enablement (a non-nil EpochLogger).
func StartSpanWhen(force bool, h *obs.Histogram, st Stage, monitor int, seq uint64) Span {
	return startSpan(false, force, h, st, monitor, seq)
}

// StartMonitorSpan begins timing a monitor-side stage: the finished
// span is staged under monitorID until a poll ships it (TakeContext)
// or the in-process pipeline adopts it (AdoptMonitorSpans). seq is the
// monitor's batch sequence number, or the polled epoch for poll-scoped
// stages.
func StartMonitorSpan(h *obs.Histogram, st Stage, monitorID int, seq uint64) Span {
	return startSpan(true, false, h, st, monitorID, seq)
}

// StartMonitorSpanWhen is StartMonitorSpan with StartSpanWhen's force
// switch.
func StartMonitorSpanWhen(force bool, h *obs.Histogram, st Stage, monitorID int, seq uint64) Span {
	return startSpan(true, force, h, st, monitorID, seq)
}

func startSpan(staged, force bool, h *obs.Histogram, st Stage, monitor int, seq uint64) Span {
	var fl uint8
	if h != nil && obs.Enabled() {
		fl |= spanHist
	}
	if on.Load() {
		fl |= spanTrace
		if staged {
			fl |= spanStaged
		}
	}
	if fl == 0 && !force {
		return Span{}
	}
	return Span{
		start:   time.Now(),
		h:       h,
		seq:     seq,
		monitor: int32(monitor),
		stage:   st,
		flags:   fl | spanTimed,
	}
}

// End stops the span, records it into every consumer armed at Start,
// and returns the elapsed time. Inert (zero) spans return 0 and record
// nothing.
func (s Span) End() time.Duration {
	if s.flags&spanTimed == 0 {
		return 0
	}
	d := time.Since(s.start)
	if s.flags&spanHist != 0 {
		s.h.Observe(d.Seconds())
	}
	if s.flags&spanTrace != 0 {
		rec := SpanRecord{
			Stage:   s.stage,
			Monitor: s.monitor,
			Seq:     s.seq,
			Start:   s.start.UnixNano(),
			Dur:     int64(d),
		}
		if s.flags&spanStaged != 0 {
			rec.Proc = s.monitor
			col.stageMonitor(rec)
		} else {
			rec.Proc = ControllerProc
			col.stageEpoch(s.seq, rec)
		}
	}
	return d
}
