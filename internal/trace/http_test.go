package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestHandlerDisabled(t *testing.T) {
	SetEnabled(false)
	Reset()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var resp struct {
		Enabled bool              `json:"enabled"`
		Traces  []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if resp.Enabled {
		t.Fatal("enabled = true with tracing off")
	}
	if resp.Traces == nil {
		t.Fatal("traces serialized as null, want []")
	}
}

func TestHandlerServesRing(t *testing.T) {
	withTracing(t)
	for e := uint64(1); e <= 3; e++ {
		col.stageEpoch(e, SpanRecord{Stage: StageEpoch, Proc: ControllerProc, Monitor: ControllerProc, Seq: e, Start: int64(e), Dur: 1})
		FinishEpoch(e, 0)
	}
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace?n=2", nil))
	var resp struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			Epoch uint64 `json:"epoch"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if !resp.Enabled {
		t.Fatal("enabled = false with tracing on")
	}
	if len(resp.Traces) != 2 || resp.Traces[0].Epoch != 3 || resp.Traces[1].Epoch != 2 {
		t.Fatalf("traces = %+v, want newest-first epochs 3,2", resp.Traces)
	}
}
