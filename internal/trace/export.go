package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace-event export: the -trace-out file format, loadable by
// Perfetto (ui.perfetto.dev) and chrome://tracing. Each span becomes a
// complete ("X") event; each process (controller, monitor N) gets a
// process_name metadata event so the timeline groups lanes by process,
// with per-monitor threads inside the controller lane showing the
// parallel poll fan-out.

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object container form, which both loaders
// accept and which leaves room for metadata next to the event array.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// pid maps a recording process to a Chrome trace pid: controller = 1,
// monitor N = N+2 (pids must be distinct and non-negative).
func pid(proc int32) int64 {
	if proc < 0 {
		return 1
	}
	return int64(proc) + 2
}

// tid maps a span's monitor to a lane inside its process: controller
// spans about monitor N land on thread N+2 (so the poll fan-out renders
// as parallel tracks), everything else on thread 1.
func tid(monitor int32) int64 {
	if monitor < 0 {
		return 1
	}
	return int64(monitor) + 2
}

// WriteTraceEvents writes the traces as a Chrome trace-event JSON
// object. The traces may be in any order; loaders sort by timestamp.
func WriteTraceEvents(w io.Writer, traces []*EpochTrace) error {
	var events []traceEvent
	procs := make(map[int32]bool)
	for _, t := range traces {
		if t == nil {
			continue
		}
		for _, s := range t.Spans {
			procs[s.Proc] = true
			events = append(events, traceEvent{
				Name: s.Stage.String(),
				Ph:   "X",
				Ts:   float64(s.Start) / 1e3,
				Dur:  float64(s.Dur) / 1e3,
				Pid:  pid(s.Proc),
				Tid:  tid(s.Monitor),
				Args: map[string]any{"epoch": t.Epoch, "seq": s.Seq, "monitor": s.Monitor},
			})
		}
	}
	// Name the processes, in sorted order so the output is stable.
	ids := make([]int32, 0, len(procs))
	for p := range procs {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	meta := make([]traceEvent, 0, len(ids))
	for _, p := range ids {
		name := "controller"
		if p >= 0 {
			name = "monitor " + itoa(int64(p))
		}
		meta = append(meta, traceEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid(p),
			Tid:  0,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"})
}

// WriteTraceFile dumps every retained trace (ring order, oldest first)
// to path in Chrome trace-event form — the -trace-out implementation
// shared by the daemon binaries.
func WriteTraceFile(path string) error {
	traces := Snapshot(0)
	// Snapshot is newest-first; emit oldest-first so a reader scanning
	// the file sees chronological epochs.
	for i, j := 0, len(traces)-1; i < j; i, j = i+1, j-1 {
		traces[i], traces[j] = traces[j], traces[i]
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTraceEvents(f, traces); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
