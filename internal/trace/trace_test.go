package trace

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// withTracing enables tracing on fresh collector state and restores the
// disabled default when the test ends.
func withTracing(t testing.TB) {
	t.Helper()
	Reset()
	SetEnabled(true)
	t.Cleanup(func() {
		SetEnabled(false)
		Reset()
	})
}

func TestDisabledIsNoop(t *testing.T) {
	SetEnabled(false)
	Reset()

	if sp := StartSpan(nil, StageInfer, ControllerProc, 1); sp != (Span{}) {
		t.Fatalf("disabled StartSpan returned armed span %+v", sp)
	}
	if d := StartSpan(nil, StageInfer, ControllerProc, 1).End(); d != 0 {
		t.Fatalf("disabled span End = %v, want 0", d)
	}
	RecordSpan(StageCapture, 0, 1, 100, 50)
	if ctx := TakeContext(0); ctx != nil {
		t.Fatalf("disabled TakeContext = %+v, want nil", ctx)
	}
	if tr := FinishEpoch(1, 0); tr != nil {
		t.Fatalf("disabled FinishEpoch = %+v, want nil", tr)
	}
	if n := NowNano(); n != 0 {
		t.Fatalf("disabled NowNano = %d, want 0", n)
	}
}

func TestStartSpanWhenForcesTimer(t *testing.T) {
	SetEnabled(false)
	Reset()
	sp := StartSpanWhen(true, nil, StageCollect, 0, 1)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("forced span End = %v, want > 0", d)
	}
	// Forced timing must not leak a record into the collector.
	SetEnabled(true)
	defer SetEnabled(false)
	if tr := FinishEpoch(1, 0); tr != nil {
		t.Fatalf("forced span leaked a record: %+v", tr)
	}
}

func TestSpanRecordsIntoEpoch(t *testing.T) {
	withTracing(t)

	sp := StartSpan(nil, StageInfer, ControllerProc, 7)
	time.Sleep(time.Millisecond)
	sp.End()

	tr := FinishEpoch(7, 0)
	if tr == nil {
		t.Fatal("FinishEpoch returned nil after a recorded span")
	}
	if tr.Epoch != 7 || len(tr.Spans) != 1 {
		t.Fatalf("trace = epoch %d, %d spans; want epoch 7, 1 span", tr.Epoch, len(tr.Spans))
	}
	r := tr.Spans[0]
	if r.Stage != StageInfer || r.Proc != ControllerProc || r.Monitor != ControllerProc {
		t.Fatalf("span = %+v, want infer/controller", r)
	}
	if r.Dur <= 0 || tr.Dur != r.Dur {
		t.Fatalf("span dur %d, trace dur %d; want equal and positive", r.Dur, tr.Dur)
	}
	// The epoch is consumed: finishing again yields nothing.
	if tr2 := FinishEpoch(7, 0); tr2 != nil {
		t.Fatalf("second FinishEpoch returned %+v, want nil", tr2)
	}
}

func TestMonitorStagingAndTakeContext(t *testing.T) {
	withTracing(t)

	RecordSpan(StageCapture, 3, 11, 1000, 500)
	StartMonitorSpan(nil, StageSummarize, 3, 11).End()

	ctx := TakeContext(3)
	if ctx == nil || ctx.MonitorID != 3 || len(ctx.Spans) != 2 {
		t.Fatalf("TakeContext = %+v, want 2 spans for monitor 3", ctx)
	}
	if ctx.SentUnixNano == 0 {
		t.Fatal("TakeContext did not stamp SentUnixNano")
	}
	for _, s := range ctx.Spans {
		if s.Proc != 3 || s.Monitor != 3 {
			t.Fatalf("staged span has proc %d monitor %d, want 3/3", s.Proc, s.Monitor)
		}
	}
	// The staging queue drains.
	if again := TakeContext(3); again != nil {
		t.Fatalf("second TakeContext = %+v, want nil", again)
	}
}

func TestAdoptMonitorSpans(t *testing.T) {
	withTracing(t)

	RecordSpan(StageCapture, 1, 4, 2000, 300)
	AdoptMonitorSpans(9, 1)

	tr := FinishEpoch(9, 0)
	if tr == nil || len(tr.Spans) != 1 {
		t.Fatalf("adopted trace = %+v, want 1 span", tr)
	}
	if s := tr.Spans[0]; s.Start != 2000 || s.Dur != 300 {
		t.Fatalf("adopted span = %+v, want unshifted 2000+300", s)
	}
}

func TestAddRemoteContextShiftsClock(t *testing.T) {
	withTracing(t)

	// The monitor's clock reads 1_000 when it sends; the controller
	// receives at its own 5_000 — every remote span shifts by +4_000.
	ctx := &Context{
		MonitorID:    2,
		SentUnixNano: 1_000,
		Spans: []SpanRecord{
			{Stage: StageSummarize, Proc: 2, Monitor: 2, Seq: 1, Start: 400, Dur: 100},
		},
	}
	AddRemoteContext(5, ctx, 5_000)

	tr := FinishEpoch(5, 0)
	if tr == nil || len(tr.Spans) != 1 {
		t.Fatalf("remote trace = %+v, want 1 span", tr)
	}
	if s := tr.Spans[0]; s.Start != 4_400 {
		t.Fatalf("remote span start = %d, want 400 + (5000-1000) = 4400", s.Start)
	}
}

func TestFinishEpochDeterministicOrder(t *testing.T) {
	withTracing(t)

	// Stage out of order across two monitors and the controller; the
	// sealed trace must sort by (Proc, Monitor, Stage, Seq, Start).
	col.stageEpoch(3, SpanRecord{Stage: StageInfer, Proc: ControllerProc, Monitor: ControllerProc, Seq: 3, Start: 50, Dur: 5})
	col.stageEpoch(3, SpanRecord{Stage: StageDecode, Proc: ControllerProc, Monitor: 1, Seq: 3, Start: 40, Dur: 5})
	col.stageEpoch(3, SpanRecord{Stage: StageSummarize, Proc: 1, Monitor: 1, Seq: 0, Start: 30, Dur: 5})
	col.stageEpoch(3, SpanRecord{Stage: StageCapture, Proc: 0, Monitor: 0, Seq: 0, Start: 20, Dur: 5})
	col.stageEpoch(3, SpanRecord{Stage: StageCapture, Proc: 0, Monitor: 0, Seq: 1, Start: 25, Dur: 5})

	tr := FinishEpoch(3, 0)
	if tr == nil {
		t.Fatal("FinishEpoch returned nil")
	}
	want := []struct {
		proc int32
		st   Stage
		seq  uint64
	}{
		{ControllerProc, StageInfer, 3}, // controller spans first (Proc -1), controller-wide (Monitor -1) before per-monitor
		{ControllerProc, StageDecode, 3},
		{0, StageCapture, 0},
		{0, StageCapture, 1},
		{1, StageSummarize, 0},
	}
	if len(tr.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(tr.Spans), len(want))
	}
	for i, w := range want {
		g := tr.Spans[i]
		if g.Proc != w.proc || g.Stage != w.st || g.Seq != w.seq {
			t.Fatalf("span[%d] = proc %d stage %v seq %d, want proc %d stage %v seq %d",
				i, g.Proc, g.Stage, g.Seq, w.proc, w.st, w.seq)
		}
	}
	if tr.Start != 20 || tr.Dur != 35 { // 20 … 55 (infer ends at 50+5)
		t.Fatalf("trace extent = start %d dur %d, want 20/35", tr.Start, tr.Dur)
	}
}

func TestCriticalPath(t *testing.T) {
	withTracing(t)

	// Monitor 0 finishes at 40; monitor 1 straggles to 80; the
	// controller's own inference runs 100..120. Critical path = monitor
	// 1's chain (capture, ship) then the controller stages.
	col.stageEpoch(2, SpanRecord{Stage: StageCapture, Proc: 0, Monitor: 0, Seq: 0, Start: 10, Dur: 30})
	col.stageEpoch(2, SpanRecord{Stage: StageCapture, Proc: 1, Monitor: 1, Seq: 0, Start: 10, Dur: 40})
	col.stageEpoch(2, SpanRecord{Stage: StageShip, Proc: ControllerProc, Monitor: 1, Seq: 2, Start: 60, Dur: 20})
	col.stageEpoch(2, SpanRecord{Stage: StageInfer, Proc: ControllerProc, Monitor: ControllerProc, Seq: 2, Start: 100, Dur: 20})

	tr := FinishEpoch(2, 0)
	if tr == nil {
		t.Fatal("FinishEpoch returned nil")
	}
	if tr.SlowestMonitor != 1 {
		t.Fatalf("slowest monitor = %d, want 1", tr.SlowestMonitor)
	}
	wantPath := []string{"capture", "ship", "infer"}
	if len(tr.CriticalPath) != len(wantPath) {
		t.Fatalf("critical path = %v, want %v", tr.CriticalPath, wantPath)
	}
	for i, s := range wantPath {
		if tr.CriticalPath[i] != s {
			t.Fatalf("critical path = %v, want %v", tr.CriticalPath, wantPath)
		}
	}
	// Path extent: 10 … 120.
	if got, want := tr.CriticalSeconds, 110/float64(time.Second); got != want {
		t.Fatalf("critical seconds = %g, want %g", got, want)
	}
}

func TestAlertLatency(t *testing.T) {
	withTracing(t)

	col.stageEpoch(4, SpanRecord{Stage: StageCapture, Proc: 0, Monitor: 0, Seq: 0, Start: 1_000, Dur: 100})
	col.stageEpoch(4, SpanRecord{Stage: StageInfer, Proc: ControllerProc, Monitor: ControllerProc, Seq: 4, Start: 2_000, Dur: 500})
	col.stageEpoch(4, SpanRecord{Stage: StageAlertEmit, Proc: ControllerProc, Monitor: ControllerProc, Seq: 4, Start: 2_500, Dur: 500})

	tr := FinishEpoch(4, 2)
	if tr == nil {
		t.Fatal("FinishEpoch returned nil")
	}
	if tr.Alerts != 2 {
		t.Fatalf("alerts = %d, want 2", tr.Alerts)
	}
	// Earliest capture 1_000 to alert-emit end 3_000.
	if got, want := tr.AlertLatencySeconds, 2_000/float64(time.Second); got != want {
		t.Fatalf("alert latency = %g s, want %g s", got, want)
	}
}

func TestAlertLatencyWithoutCaptureFallsBack(t *testing.T) {
	withTracing(t)

	col.stageEpoch(6, SpanRecord{Stage: StageInfer, Proc: ControllerProc, Monitor: ControllerProc, Seq: 6, Start: 100, Dur: 400})
	tr := FinishEpoch(6, 1)
	if tr == nil {
		t.Fatal("FinishEpoch returned nil")
	}
	// Earliest span start 100 to trace end 500.
	if got, want := tr.AlertLatencySeconds, 400/float64(time.Second); got != want {
		t.Fatalf("alert latency = %g s, want %g s", got, want)
	}
}

func TestSlowEpochExemplars(t *testing.T) {
	Configure(Config{SlowThreshold: 1, MaxExemplars: 2})
	SetEnabled(true)
	t.Cleanup(func() {
		SetEnabled(false)
		Configure(Config{})
	})
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.ResetAll()
	})

	for e := uint64(0); e < 4; e++ {
		col.stageEpoch(e, SpanRecord{Stage: StageEpoch, Proc: ControllerProc, Monitor: ControllerProc,
			Seq: e, Start: int64(e) * 1000, Dur: 100})
		if tr := FinishEpoch(e, 0); tr == nil {
			t.Fatalf("epoch %d did not finish", e)
		}
	}
	ex := Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplar count = %d, want MaxExemplars = 2", len(ex))
	}
	// Oldest evicted: the survivors are the last two epochs.
	if ex[0].Epoch != 2 || ex[1].Epoch != 3 {
		t.Fatalf("exemplar epochs = %d,%d; want 2,3", ex[0].Epoch, ex[1].Epoch)
	}
}

func TestFastEpochsAreNotExemplars(t *testing.T) {
	Configure(Config{SlowThreshold: time.Hour})
	SetEnabled(true)
	t.Cleanup(func() {
		SetEnabled(false)
		Configure(Config{})
	})
	col.stageEpoch(1, SpanRecord{Stage: StageEpoch, Proc: ControllerProc, Monitor: ControllerProc, Seq: 1, Start: 0, Dur: 10})
	FinishEpoch(1, 0)
	if ex := Exemplars(); len(ex) != 0 {
		t.Fatalf("fast epoch pinned as exemplar: %+v", ex)
	}
}

func TestPendingEpochEviction(t *testing.T) {
	withTracing(t)

	// Fill beyond the pending cap; the oldest epoch's assembly is
	// dropped rather than growing without bound.
	for e := uint64(0); e <= maxPendingEpochs; e++ {
		col.stageEpoch(e, SpanRecord{Stage: StageInfer, Proc: ControllerProc, Monitor: ControllerProc, Seq: e})
	}
	if tr := FinishEpoch(0, 0); tr != nil {
		t.Fatalf("evicted epoch 0 still finished: %+v", tr)
	}
	if tr := FinishEpoch(maxPendingEpochs, 0); tr == nil {
		t.Fatal("newest epoch lost")
	}
}

func TestStagedSpanCap(t *testing.T) {
	withTracing(t)

	for i := 0; i < maxStagedSpans+5; i++ {
		RecordSpan(StageCapture, 0, uint64(i), int64(i), 1)
	}
	ctx := TakeContext(0)
	if ctx == nil || len(ctx.Spans) != maxStagedSpans {
		t.Fatalf("staged %d spans, want cap %d", len(ctx.Spans), maxStagedSpans)
	}
	// Oldest dropped: the first surviving span is seq 5.
	if ctx.Spans[0].Seq != 5 {
		t.Fatalf("oldest surviving seq = %d, want 5", ctx.Spans[0].Seq)
	}
}

// BenchmarkTraceDisabled pins the disabled-path cost of one full
// instrumentation point (StartSpan + End): it must stay within a few
// nanoseconds with zero allocations, the contract that lets span sites
// sit on per-batch paths unguarded.
func BenchmarkTraceDisabled(b *testing.B) {
	SetEnabled(false)
	obs.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StartSpan(hAlertLatency, StageInfer, ControllerProc, uint64(i)).End()
	}
}

// BenchmarkNowNanoDisabled pins the capture-stamp cost with tracing
// off: one atomic load.
func BenchmarkNowNanoDisabled(b *testing.B) {
	SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if NowNano() != 0 {
			b.Fatal("tracing enabled during benchmark")
		}
	}
}
