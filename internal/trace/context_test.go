package trace

import (
	"bytes"
	"testing"
)

func testContext() *Context {
	return &Context{
		MonitorID:    7,
		SentUnixNano: 1_722_000_000_123,
		Spans: []SpanRecord{
			{Stage: StageCapture, Proc: 7, Monitor: 7, Seq: 41, Start: 1_000, Dur: 250},
			{Stage: StageSummarize, Proc: 7, Monitor: 7, Seq: 41, Start: 1_300, Dur: 90},
			{Stage: StageEncode, Proc: 7, Monitor: 7, Seq: 42, Start: 1_400, Dur: 10},
		},
	}
}

func TestContextRoundTrip(t *testing.T) {
	in := testContext()
	wire := in.AppendWire(nil)
	if len(wire) != ctxHeaderSize+len(in.Spans)*ctxSpanSize {
		t.Fatalf("wire length = %d, want %d", len(wire), ctxHeaderSize+len(in.Spans)*ctxSpanSize)
	}
	out, err := DecodeContext(wire)
	if err != nil {
		t.Fatalf("DecodeContext: %v", err)
	}
	if out.MonitorID != in.MonitorID || out.SentUnixNano != in.SentUnixNano {
		t.Fatalf("header = %d/%d, want %d/%d",
			out.MonitorID, out.SentUnixNano, in.MonitorID, in.SentUnixNano)
	}
	if len(out.Spans) != len(in.Spans) {
		t.Fatalf("got %d spans, want %d", len(out.Spans), len(in.Spans))
	}
	for i, want := range in.Spans {
		got := out.Spans[i]
		if got.Stage != want.Stage || got.Seq != want.Seq ||
			got.Start != want.Start || got.Dur != want.Dur {
			t.Fatalf("span[%d] = %+v, want %+v", i, got, want)
		}
		// Decode re-attributes ownership to the sending monitor.
		if got.Proc != int32(in.MonitorID) || got.Monitor != int32(in.MonitorID) {
			t.Fatalf("span[%d] proc/monitor = %d/%d, want %d", i, got.Proc, got.Monitor, in.MonitorID)
		}
	}
}

func TestContextAppendsAfterPayload(t *testing.T) {
	payload := []byte("summary-bytes")
	wire := testContext().AppendWire(append([]byte(nil), payload...))
	if !bytes.HasPrefix(wire, payload) {
		t.Fatal("AppendWire did not preserve the payload prefix")
	}
	if _, err := DecodeContext(wire[len(payload):]); err != nil {
		t.Fatalf("trailer after payload did not decode: %v", err)
	}
}

func TestDecodeContextUnknownVersionIgnored(t *testing.T) {
	wire := testContext().AppendWire(nil)
	wire[2] = 99 // future version: an old peer must skip, not fail
	ctx, err := DecodeContext(wire)
	if err != nil || ctx != nil {
		t.Fatalf("unknown version = (%+v, %v), want (nil, nil)", ctx, err)
	}
}

func TestDecodeContextErrors(t *testing.T) {
	good := testContext().AppendWire(nil)
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"short header", func(b []byte) []byte { return b[:ctxHeaderSize-1] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"truncated spans", func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }},
		{"nspans overflow", func(b []byte) []byte {
			b[ctxHeaderSize-2], b[ctxHeaderSize-1] = 0xFF, 0xFF
			return b
		}},
	}
	for _, tc := range cases {
		wire := tc.mut(append([]byte(nil), good...))
		if _, err := DecodeContext(wire); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}

func TestDecodeContextEmptySpans(t *testing.T) {
	wire := (&Context{MonitorID: 1, SentUnixNano: 5}).AppendWire(nil)
	ctx, err := DecodeContext(wire)
	if err != nil || ctx == nil || len(ctx.Spans) != 0 {
		t.Fatalf("empty context = (%+v, %v), want 0 spans, nil err", ctx, err)
	}
}

// FuzzDecodeContext drives the wire decoder with arbitrary bytes. Two
// invariants: the decoder never panics, and any accepted version-1
// block re-encodes to the input (modulo the reserved flags byte, which
// decode tolerates but encode always writes as 0) — every other wire
// field is preserved in the struct, so decode∘encode is the identity.
func FuzzDecodeContext(f *testing.F) {
	f.Add(testContext().AppendWire(nil))
	f.Add((&Context{MonitorID: 1, SentUnixNano: 5}).AppendWire(nil))
	f.Add([]byte{})
	f.Add([]byte{'J', 'T', 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx, err := DecodeContext(data)
		if err != nil || ctx == nil {
			return
		}
		want := append([]byte(nil), data...)
		want[3] = 0 // reserved flags byte: not round-tripped
		if re := ctx.AppendWire(nil); !bytes.Equal(re, want) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", want, re)
		}
	})
}
