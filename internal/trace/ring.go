package trace

import "sync"

// Ring is a fixed-size ring of finished epoch traces: the newest
// RingSize epochs are retained, older ones overwritten. Writers pay one
// mutex'd pointer store; snapshots copy out under the same lock, so the
// /trace endpoint never observes a half-written slot
// (TestRingConcurrentWriters runs this under -race).
type Ring struct {
	mu  sync.Mutex
	buf []*EpochTrace
	// next is the slot the next Add writes; n counts total adds.
	next int
	n    int
}

// NewRing returns a ring retaining size traces (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{buf: make([]*EpochTrace, size)}
}

// Add appends a trace, overwriting the oldest once full.
func (r *Ring) Add(t *EpochTrace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.n++
	r.mu.Unlock()
}

// Len returns how many traces are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		return r.n
	}
	return len(r.buf)
}

// Snapshot returns up to n retained traces, newest first (n <= 0 means
// all retained). The returned slice is a copy; the traces themselves
// are immutable once finished.
func (r *Ring) Snapshot(n int) []*EpochTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := r.n
	if have > len(r.buf) {
		have = len(r.buf)
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]*EpochTrace, 0, n)
	for i := 1; i <= n; i++ {
		// Walk backwards from the most recent write.
		idx := (r.next - i + len(r.buf)*2) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
