package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestReservoirFillsToSize(t *testing.T) {
	r, err := NewReservoir(10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Observe(packet.Header{IPID: uint16(i)})
	}
	if len(r.Sample()) != 5 {
		t.Fatalf("sample size %d, want 5 (underfilled)", len(r.Sample()))
	}
	for i := 5; i < 100; i++ {
		r.Observe(packet.Header{IPID: uint16(i)})
	}
	if len(r.Sample()) != 10 {
		t.Fatalf("sample size %d, want 10", len(r.Sample()))
	}
	if r.Seen() != 100 {
		t.Fatalf("seen = %d, want 100", r.Seen())
	}
}

func TestReservoirInvalidArgs(t *testing.T) {
	if _, err := NewReservoir(0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("size 0 must be rejected")
	}
	if _, err := NewReservoir(5, nil); err == nil {
		t.Fatal("nil rng must be rejected")
	}
}

// Uniformity: every stream position should appear in the sample with
// probability size/stream. We check inclusion frequency of the first
// element across many runs.
func TestReservoirUniformity(t *testing.T) {
	const (
		streamLen = 200
		size      = 20
		trials    = 2000
	)
	included := 0
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoir(size, rand.New(rand.NewSource(int64(trial))))
		for i := 0; i < streamLen; i++ {
			r.Observe(packet.Header{Seq: uint32(i)})
		}
		for _, h := range r.Sample() {
			if h.Seq == 0 {
				included++
				break
			}
		}
	}
	got := float64(included) / trials
	want := float64(size) / streamLen // 0.10
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("first-element inclusion rate %.3f, want ≈%.3f", got, want)
	}
}

func TestReservoirReset(t *testing.T) {
	r, _ := NewReservoir(5, rand.New(rand.NewSource(2)))
	for i := 0; i < 20; i++ {
		r.Observe(packet.Header{})
	}
	r.Reset()
	if r.Seen() != 0 || len(r.Sample()) != 0 {
		t.Fatal("reset must empty the reservoir")
	}
}

func TestReservoirScaleFactor(t *testing.T) {
	r, _ := NewReservoir(10, rand.New(rand.NewSource(3)))
	if r.ScaleFactor() != 0 {
		t.Fatal("empty reservoir scale factor must be 0")
	}
	for i := 0; i < 100; i++ {
		r.Observe(packet.Header{})
	}
	if sf := r.ScaleFactor(); sf != 10 {
		t.Fatalf("scale factor = %v, want 10", sf)
	}
}

func TestReservoirSampleIsCopy(t *testing.T) {
	r, _ := NewReservoir(2, rand.New(rand.NewSource(4)))
	r.Observe(packet.Header{IPID: 7})
	s := r.Sample()
	s[0].IPID = 99
	if r.Sample()[0].IPID != 7 {
		t.Fatal("Sample must return a copy")
	}
}

func TestUniformSampler(t *testing.T) {
	s, err := NewUniformSampler(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate() != 4 {
		t.Fatalf("rate = %d", s.Rate())
	}
	sampled := 0
	for i := 0; i < 100; i++ {
		if s.Observe() {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4", sampled)
	}
	if _, err := NewUniformSampler(0); err == nil {
		t.Fatal("rate 0 must be rejected")
	}
}
