// Package sampling provides the packet-sampling baselines the paper
// compares against (§8, Table 1): reservoir sampling (Vitter 1985) and
// NetFlow-style uniform 1-in-N sampling.
//
// Reservoir sampling keeps a fixed-size uniform sample of the whole
// stream; because attack packets sent over a short interval get diluted
// by the far more numerous benign packets, fine-grained signatures are
// poorly represented in the sample — the failure mode Table 1 measures.
package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/packet"
)

// Reservoir maintains a uniform random sample of a packet stream.
type Reservoir struct {
	size int
	rng  *rand.Rand
	seen int
	buf  []packet.Header
}

// NewReservoir builds a reservoir of the given size. The paper's Table 1
// configuration uses size 250 against batches of 1000 to match Jaal's
// communication budget at r=12, k=200, n=1000.
func NewReservoir(size int, rng *rand.Rand) (*Reservoir, error) {
	if size < 1 {
		return nil, fmt.Errorf("sampling: reservoir size %d < 1", size)
	}
	if rng == nil {
		return nil, fmt.Errorf("sampling: nil rng")
	}
	return &Reservoir{size: size, rng: rng, buf: make([]packet.Header, 0, size)}, nil
}

// Observe feeds one packet through the sampler (Algorithm R).
func (r *Reservoir) Observe(h packet.Header) {
	r.seen++
	if len(r.buf) < r.size {
		r.buf = append(r.buf, h)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.size {
		r.buf[j] = h
	}
}

// Seen returns how many packets have been observed.
func (r *Reservoir) Seen() int { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []packet.Header {
	out := make([]packet.Header, len(r.buf))
	copy(out, r.buf)
	return out
}

// Reset empties the reservoir for the next epoch.
func (r *Reservoir) Reset() {
	r.buf = r.buf[:0]
	r.seen = 0
}

// ScaleFactor returns seen/len(sample): multiply per-sample counts by
// this to estimate stream counts.
func (r *Reservoir) ScaleFactor() float64 {
	if len(r.buf) == 0 {
		return 0
	}
	return float64(r.seen) / float64(len(r.buf))
}

// UniformSampler is NetFlow-style deterministic 1-in-N sampling.
type UniformSampler struct {
	n     int
	count int
}

// NewUniformSampler samples every n-th packet.
func NewUniformSampler(n int) (*UniformSampler, error) {
	if n < 1 {
		return nil, fmt.Errorf("sampling: sample rate %d < 1", n)
	}
	return &UniformSampler{n: n}, nil
}

// Observe returns true when the packet is sampled.
func (s *UniformSampler) Observe() bool {
	s.count++
	return s.count%s.n == 0
}

// Rate returns N of the 1-in-N configuration.
func (s *UniformSampler) Rate() int { return s.n }
