package sketch

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"
)

// The inlined hash must match hash/fnv over the 16-byte concatenation
// of the 8-byte row salt and the 8-byte key — same function the old
// code wanted, minus the allocation and the byte(row) truncation.
func TestCountMinHashMatchesFNV(t *testing.T) {
	cm, err := NewCountMinDims(1000, 300)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		row := rng.Intn(cm.Depth())
		key := rng.Uint64()
		h := fnv.New64a()
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:8], uint64(row))
		binary.BigEndian.PutUint64(buf[8:16], key)
		h.Write(buf[:])
		want := int(h.Sum64() % uint64(cm.Width()))
		if got := cm.hash(row, key); got != want {
			t.Fatalf("row %d key %#x: hash = %d, want %d", row, key, got, want)
		}
	}
}

// Regression for the byte(row) salt truncation: with depth > 255, rows
// 0 and 256 used to collide into the same bucket stream, silently
// reducing the effective depth. Every row must now hash independently.
func TestCountMinRowSaltBeyond255(t *testing.T) {
	// δ = 1e-120 forces depth ⌈ln 1e120⌉ = 277 > 255.
	cm, err := NewCountMin(0.1, 1e-120)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Depth() <= 255 {
		t.Fatalf("depth = %d, need > 255 to exercise the regression", cm.Depth())
	}
	for _, key := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		same := 0
		for row := 256; row < cm.Depth(); row++ {
			if cm.hash(row, key) == cm.hash(row-256, key) {
				same++
			}
		}
		// With the truncated salt every pair collided; independent
		// hashes collide with probability 1/width ≈ 3.6 %. Allow a
		// generous margin.
		if same > cm.Depth()/8 {
			t.Fatalf("key %#x: %d of %d row pairs (r, r-256) share buckets — salt truncation is back", key, same, cm.Depth()-256)
		}
	}
}

// Distribution sanity: each row spreads distinct keys roughly uniformly
// over its buckets, including rows ≥ 256.
func TestCountMinHashDistribution(t *testing.T) {
	cm, err := NewCountMinDims(64, 300)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 64 * 64 // 64 expected per bucket
	for _, row := range []int{0, 1, 255, 256, 299} {
		hist := make([]int, cm.Width())
		for k := 0; k < keys; k++ {
			hist[cm.hash(row, uint64(k)*0x9e3779b97f4a7c15)]++
		}
		for b, n := range hist {
			if n < 16 || n > 160 {
				t.Fatalf("row %d bucket %d holds %d of %d keys (expected ≈64) — hash badly skewed", row, b, n, keys)
			}
		}
	}
}

// Satellite requirement: Add must be allocation-free before the sketch
// can sit on the ingest path (the hotalloc analyzer gates this too).
func TestCountMinAddZeroAlloc(t *testing.T) {
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		cm.Add(key, 1)
		key++
	})
	if allocs != 0 {
		t.Fatalf("CountMin.Add allocates %.1f times per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		_ = cm.Estimate(key)
		key++
	})
	if allocs != 0 {
		t.Fatalf("CountMin.Estimate allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm, err := NewCountMin(0.005, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Add(uint64(i), 1)
	}
}

func TestCountMinMergeAndReset(t *testing.T) {
	a, _ := NewCountMin(0.01, 0.01)
	b, _ := NewCountMin(0.01, 0.01)
	for i := uint64(0); i < 100; i++ {
		a.Add(i, 2)
		b.Add(i, 3)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 500 {
		t.Fatalf("merged total = %d, want 500", a.Total())
	}
	for i := uint64(0); i < 100; i++ {
		if est := a.Estimate(i); est < 5 {
			t.Fatalf("key %d: merged estimate %d < 5", i, est)
		}
	}
	other, _ := NewCountMinDims(16, 2)
	if err := a.Merge(other); err == nil {
		t.Fatal("dimension-mismatched merge must fail")
	}
	a.Reset()
	if a.Total() != 0 || a.Estimate(1) != 0 {
		t.Fatal("Reset must clear counts and total")
	}
}

func TestCountMinWireRoundTrip(t *testing.T) {
	cm, _ := NewCountMinDims(37, 3)
	for i := uint64(0); i < 500; i++ {
		cm.Add(i%17, 1)
	}
	wire := cm.AppendWire(nil)
	got, n, err := DecodeCountMin(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if got.Total() != cm.Total() || got.Width() != cm.Width() || got.Depth() != cm.Depth() {
		t.Fatal("round-trip changed dimensions or total")
	}
	for i := uint64(0); i < 17; i++ {
		if got.Estimate(i) != cm.Estimate(i) {
			t.Fatalf("key %d: estimate changed across round-trip", i)
		}
	}
	for cut := 0; cut < len(wire); cut += 7 {
		if _, _, err := DecodeCountMin(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

func TestHLLEstimate(t *testing.T) {
	h := NewHLL()
	if got := h.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %d, want 0", got)
	}
	rng := rand.New(rand.NewSource(3))
	for _, truth := range []int{10, 100, 1000, 50000} {
		h.Reset()
		seen := make(map[uint64]bool, truth)
		for len(seen) < truth {
			k := rng.Uint64()
			seen[k] = true
		}
		for k := range seen {
			h.Add(k)
			h.Add(k) // duplicates must not inflate
		}
		est := float64(h.Estimate())
		if est < float64(truth)*0.7 || est > float64(truth)*1.3 {
			t.Fatalf("truth %d: estimate %.0f outside ±30%%", truth, est)
		}
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(), NewHLL()
	for i := uint64(0); i < 1000; i++ {
		a.Add(i * 0x9e3779b97f4a7c15)
	}
	for i := uint64(1000); i < 2000; i++ {
		b.Add(i * 0x9e3779b97f4a7c15)
	}
	a.Merge(b)
	est := float64(a.Estimate())
	if est < 2000*0.7 || est > 2000*1.3 {
		t.Fatalf("union estimate %.0f outside ±30%% of 2000", est)
	}
}

func TestHLLAddZeroAlloc(t *testing.T) {
	h := NewHLL()
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		h.Add(key)
		key++
	})
	if allocs != 0 {
		t.Fatalf("HLL.Add allocates %.1f times per op, want 0", allocs)
	}
}
