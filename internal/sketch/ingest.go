package sketch

import "fmt"

// Config sizes and arms the ingest sketch pass. The zero value is
// disabled; DefaultConfig returns the armed operating point.
type Config struct {
	// Enabled puts the sketch pass on the ingest path. Off means the
	// monitor behaves byte-identically to a sketchless build.
	Enabled bool
	// Epsilon/Delta size the count-min sketches (width ⌈e/ε⌉, depth
	// ⌈ln 1/δ⌉). Zero selects the defaults (ε=0.005, δ=0.01: 544×5,
	// ~21 KB per dimension).
	Epsilon float64
	Delta   float64
	// ShedWatermark is the per-epoch admitted-packet budget: once this
	// many packets have been admitted to the batch slab in the current
	// epoch, further mice packets are shed/subsampled. 0 means never
	// shed (sketch + digest only).
	ShedWatermark int
	// HeavyDivisor classifies a packet as heavy-hitter traffic when the
	// count-min estimate of its destination or source reaches
	// offered/HeavyDivisor. Heavy packets are exempt from the mice
	// watermark (shed only past the hard ceiling). Default 50 (≥ 2 % of
	// epoch traffic).
	HeavyDivisor int
	// HardLimitFactor sets the epoch's hard admission ceiling at
	// HardLimitFactor × ShedWatermark kept packets. Past the ceiling
	// everything is shed, heavy or not: backbone mixes are Zipf enough
	// that heavy traffic alone can swamp the slab, and a bounded slab is
	// the whole point of the watermark. Default 2; set it large to make
	// heavy traffic effectively exempt at any load.
	HardLimitFactor int
	// MiceKeep subsamples mice flows above the watermark: 1 in MiceKeep
	// mice packets is still admitted so background structure survives
	// in the summaries. 0 sheds all mice above the watermark. Default 8.
	MiceKeep int
	// TopK is the number of heavy hitters tracked per dimension for the
	// digest. Default 8, max 255.
	TopK int
	// MinTotal is the observed-packet floor before heavy classification
	// activates; below it every packet is mice for shedding purposes
	// (but the watermark is rarely hit that early). Default 256.
	MinTotal int
}

// DefaultConfig returns the armed default operating point with the
// given watermark.
func DefaultConfig(watermark int) Config {
	return Config{Enabled: true, ShedWatermark: watermark}
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.005
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.HeavyDivisor == 0 {
		c.HeavyDivisor = 50
	}
	if c.HardLimitFactor == 0 {
		c.HardLimitFactor = 2
	}
	if c.MiceKeep == 0 {
		c.MiceKeep = 8
	}
	if c.TopK == 0 {
		c.TopK = 8
	}
	if c.TopK > digestMaxHitters {
		c.TopK = digestMaxHitters
	}
	if c.MinTotal == 0 {
		c.MinTotal = 256
	}
	return c
}

// topK tracks the heaviest keys seen so far with bounded memory: a
// fixed-capacity unordered list updated in place, O(K) per touch and
// zero allocations after construction.
type topK struct {
	entries []HeavyHitter // len = used, cap = K
}

func newTopK(k int) topK { return topK{entries: make([]HeavyHitter, 0, k)} }

// touch records the current estimate for key, inserting or displacing
// the lightest entry when the list is full.
func (t *topK) touch(key uint32, est uint64) {
	minIdx := -1
	var minCount uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if e.Key == key {
			if est > e.Count {
				e.Count = est
			}
			return
		}
		if e.Count < minCount {
			minCount = e.Count
			minIdx = i
		}
	}
	if len(t.entries) < cap(t.entries) {
		t.entries = append(t.entries, HeavyHitter{Key: key, Count: est})
		return
	}
	if minIdx >= 0 && est > minCount {
		t.entries[minIdx] = HeavyHitter{Key: key, Count: est}
	}
}

func (t *topK) reset() { t.entries = t.entries[:0] }

// sorted returns a fresh descending copy (count desc, key asc on ties —
// deterministic for digests).
func (t *topK) sorted() []HeavyHitter {
	out := make([]HeavyHitter, len(t.entries))
	copy(out, t.entries)
	for i := 1; i < len(out); i++ { // insertion sort; K ≤ 255
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Count > b.Count || (a.Count == b.Count && a.Key <= b.Key) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// Ingest is the per-monitor sketch pass: it observes every offered
// packet, maintains the epoch sketches, and decides keep/shed under the
// watermark. Not safe for concurrent use; the monitor calls it under
// its ingest lock. Observe is zero-alloc.
type Ingest struct {
	cfg   Config
	dst   *CountMin
	src   *CountMin
	flows *HLL

	offered  uint64
	shed     uint64
	kept     uint64
	miceTick uint64

	topDst topK
	topSrc topK
}

// NewIngest builds the sketch pass. Returns nil (and no error) when the
// config is disabled.
func NewIngest(cfg Config) (*Ingest, error) {
	if !cfg.Enabled {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	if cfg.ShedWatermark < 0 {
		return nil, fmt.Errorf("sketch: negative shed watermark %d", cfg.ShedWatermark)
	}
	dst, err := NewCountMin(cfg.Epsilon, cfg.Delta)
	if err != nil {
		return nil, err
	}
	src, err := NewCountMin(cfg.Epsilon, cfg.Delta)
	if err != nil {
		return nil, err
	}
	return &Ingest{
		cfg: cfg, dst: dst, src: src, flows: NewHLL(),
		topDst: newTopK(cfg.TopK), topSrc: newTopK(cfg.TopK),
	}, nil
}

// Observe sketches one offered packet and reports whether the monitor
// should admit it to the batch slab. Below the watermark everything is
// admitted; between the watermark and the hard ceiling
// (HardLimitFactor × watermark) only heavy-hitter traffic (destination
// or source estimate ≥ offered/HeavyDivisor) and a deterministic
// 1-in-MiceKeep mice subsample survive; past the ceiling everything is
// shed, so the slab's epoch volume is bounded at any offered load.
func (g *Ingest) Observe(srcIP, dstIP uint32, flowHash uint64) bool {
	g.offered++
	g.dst.Add(uint64(dstIP), 1)
	g.src.Add(uint64(srcIP), 1)
	g.flows.Add(flowHash)

	estDst := g.dst.Estimate(uint64(dstIP))
	estSrc := g.src.Estimate(uint64(srcIP))
	threshold := g.offered / uint64(g.cfg.HeavyDivisor)
	if threshold > 0 {
		if estDst >= threshold {
			g.topDst.touch(dstIP, estDst)
		}
		if estSrc >= threshold {
			g.topSrc.touch(srcIP, estSrc)
		}
	}

	keep := true
	if g.cfg.ShedWatermark > 0 && g.kept >= uint64(g.cfg.ShedWatermark) {
		if g.kept >= uint64(g.cfg.HardLimitFactor)*uint64(g.cfg.ShedWatermark) {
			keep = false
		} else {
			heavy := g.offered >= uint64(g.cfg.MinTotal) && threshold > 0 &&
				(estDst >= threshold || estSrc >= threshold)
			if !heavy {
				g.miceTick++
				keep = g.cfg.MiceKeep > 0 && g.miceTick%uint64(g.cfg.MiceKeep) == 0
			}
		}
	}
	if keep {
		g.kept++
	} else {
		g.shed++
	}
	return keep
}

// Offered, Shed and Kept expose the epoch's packet accounting.
func (g *Ingest) Offered() uint64 { return g.offered }

// Shed returns the packets dropped before the batch slab this epoch.
func (g *Ingest) Shed() uint64 { return g.shed }

// Kept returns the packets admitted to the batch slab this epoch.
func (g *Ingest) Kept() uint64 { return g.kept }

// Digest snapshots the epoch's sketch state into a wire-ready digest.
// Called once per epoch at summary-collection time; the copies it makes
// are off the per-packet path.
func (g *Ingest) Digest(monitorID int, epoch uint64) *Digest {
	flows := NewHLL()
	flows.Merge(g.flows)
	return &Digest{
		MonitorID: monitorID,
		Epoch:     epoch,
		Offered:   g.offered,
		Shed:      g.shed,
		Kept:      g.kept,
		Flows:     flows,
		TopDst:    g.topDst.sorted(),
		TopSrc:    g.topSrc.sorted(),
	}
}

// Reset clears all epoch state (sketches, counters, heavy-hitter lists)
// for the next epoch without reallocating.
func (g *Ingest) Reset() {
	g.dst.Reset()
	g.src.Reset()
	g.flows.Reset()
	g.offered, g.shed, g.kept, g.miceTick = 0, 0, 0, 0
	g.topDst.reset()
	g.topSrc.reset()
}
