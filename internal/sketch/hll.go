package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// hllRegisters is the fixed register count m. 256 registers give a
// ~6.5 % standard error — plenty for the volumetric verdicts the digest
// feeds (is this epoch 10× flows or 1×?) at 256 bytes on the wire.
const hllRegisters = 256

// hllAlpha is the bias-correction constant α_m for m = 256
// (Flajolet et al. 2007: α_m = 0.7213/(1+1.079/m) for m ≥ 128).
var hllAlpha = 0.7213 / (1 + 1.079/float64(hllRegisters))

// HLL is a fixed-size HyperLogLog cardinality sketch over uint64 keys
// (flow hashes). The zero value is NOT ready; use NewHLL.
type HLL struct {
	registers []uint8
}

// NewHLL builds an empty flow-cardinality sketch.
func NewHLL() *HLL {
	return &HLL{registers: make([]uint8, hllRegisters)}
}

// splitmix64 finalizes a key into a well-mixed 64-bit hash. The flow
// keys fed to Add are already FastHash outputs, but HLL needs every bit
// pattern equally likely; one splitmix round decorrelates cheaply.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add observes one key. Zero allocations.
func (h *HLL) Add(key uint64) {
	x := splitmix64(key)
	idx := x >> 56 // top 8 bits pick the register (m = 256)
	// Rank of the remaining 56 bits: position of the first 1-bit,
	// counting from 1; all-zero tail saturates at 57.
	tail := x << 8
	rank := uint8(bits.LeadingZeros64(tail)) + 1
	if tail == 0 {
		rank = 57
	}
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the cardinality estimate with the standard
// small-range (linear counting) correction.
func (h *HLL) Estimate() uint64 {
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	m := float64(hllRegisters)
	est := hllAlpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return uint64(est + 0.5)
}

// Reset clears the sketch for the next epoch without reallocating.
func (h *HLL) Reset() {
	for i := range h.registers {
		h.registers[i] = 0
	}
}

// Merge takes the register-wise max with another sketch; the result
// estimates the cardinality of the union of the two streams, which is
// exact for monitors observing disjoint flow partitions and still sound
// under overlap.
func (h *HLL) Merge(o *HLL) {
	for i, v := range o.registers {
		if v > h.registers[i] {
			h.registers[i] = v
		}
	}
}

// AppendWire serializes the m register bytes.
//
//jaal:pair decodeHLL
func (h *HLL) AppendWire(dst []byte) []byte {
	return append(dst, h.registers...)
}

// decodeHLL parses m register bytes into a fresh sketch.
func decodeHLL(p []byte) (*HLL, error) {
	if len(p) < hllRegisters {
		return nil, fmt.Errorf("sketch: hll registers truncated (have %d, need %d)", len(p), hllRegisters)
	}
	h := NewHLL()
	copy(h.registers, p[:hllRegisters])
	return h, nil
}
