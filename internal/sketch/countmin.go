// Package sketch implements a count-min sketch, the targeted-measurement
// baseline the paper discusses (§2, §8): sketches give strong per-query
// guarantees but are bound to one pre-declared dimension (or field
// combination), which is why attack signatures over arbitrary header-field
// correlations would need a combinatorial number of them — the scaling
// argument motivating Jaal's summaries.
package sketch

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// CountMin is a count-min sketch over uint64 keys.
type CountMin struct {
	width  int
	depth  int
	counts [][]uint64
	total  uint64
}

// NewCountMin builds a sketch with error bound epsilon (relative to the
// stream total) at failure probability delta: width = ⌈e/ε⌉, depth =
// ⌈ln(1/δ)⌉ (Cormode & Muthukrishnan).
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: need 0<ε<1 and 0<δ<1, got %v, %v", epsilon, delta)
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	cm := &CountMin{width: w, depth: d, counts: make([][]uint64, d)}
	for i := range cm.counts {
		cm.counts[i] = make([]uint64, w)
	}
	return cm, nil
}

// hash computes the row-i bucket for a key using FNV with a per-row salt.
func (c *CountMin) hash(row int, key uint64) int {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(row)
	binary.BigEndian.PutUint64(buf[1:], key)
	h.Write(buf[:])
	return int(h.Sum64() % uint64(c.width))
}

// Add increments the key's count.
func (c *CountMin) Add(key uint64, delta uint64) {
	for row := 0; row < c.depth; row++ {
		c.counts[row][c.hash(row, key)] += delta
	}
	c.total += delta
}

// Estimate returns the (over-)estimate of the key's count.
func (c *CountMin) Estimate(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for row := 0; row < c.depth; row++ {
		if v := c.counts[row][c.hash(row, key)]; v < min {
			min = v
		}
	}
	return min
}

// Total returns the stream total.
func (c *CountMin) Total() uint64 { return c.total }

// SizeBytes returns the serialized size: the communication cost a
// monitor would pay shipping this sketch, used in the paper's §2
// back-of-envelope comparison.
func (c *CountMin) SizeBytes() int { return c.width * c.depth * 8 }

// Width and Depth expose the dimensions.
func (c *CountMin) Width() int { return c.width }

// Depth returns the number of hash rows.
func (c *CountMin) Depth() int { return c.depth }

// CombinationCost returns the §2 scaling argument in numbers: the bytes
// needed to cover every subset of f header fields with one sketch each of
// the given per-sketch size. For f = 18 and 500 KB sketches this is the
// paper's ≈128 GB per monitor per epoch.
func CombinationCost(fields int, perSketchBytes int) uint64 {
	return (uint64(1) << uint(fields)) * uint64(perSketchBytes)
}
