// Package sketch implements the per-epoch ingest sketches: a count-min
// sketch for heavy-hitter estimates and a HyperLogLog flow-cardinality
// sketch. The paper discusses sketches as the targeted-measurement
// baseline (§2, §8): strong per-query guarantees bound to one
// pre-declared dimension, which is why covering arbitrary header-field
// correlations needs a combinatorial number of them — the scaling
// argument motivating Jaal's summaries. Here they play the AMON role
// instead: a cheap pass *in front of* the expensive summarizer that
// classifies flows as heavy or mice so a monitor can shed load under
// overload, and a compact digest the controller can use for volumetric
// verdicts without raw fetches.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FNV-1a constants (hash/fnv), inlined so the hot path never constructs
// a hasher.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvFold8 folds the eight big-endian bytes of v into an FNV-1a state.
func fnvFold8(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= (v >> uint(shift)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// CountMin is a count-min sketch over uint64 keys.
type CountMin struct {
	width int
	depth int
	// counts is the depth×width matrix stored flat (row-major): one
	// allocation, cache-friendly rows, and Reset is a single clear.
	counts []uint64
	// rowBase[r] is the FNV-1a state after folding row r's full 8-byte
	// salt. Precomputing it makes hash() equivalent to hashing the
	// 16-byte concatenation salt‖key without touching a buffer, and the
	// 8-byte salt fixes the old byte(row) truncation where rows ≥ 256
	// silently reused row r%256's bucket stream.
	rowBase []uint64
	total   uint64
}

// NewCountMin builds a sketch with error bound epsilon (relative to the
// stream total) at failure probability delta: width = ⌈e/ε⌉, depth =
// ⌈ln(1/δ)⌉ (Cormode & Muthukrishnan).
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: need 0<ε<1 and 0<δ<1, got %v, %v", epsilon, delta)
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewCountMinDims(w, d)
}

// NewCountMinDims builds a sketch with explicit dimensions (used by the
// digest decoder and by callers that size by memory budget instead of
// error bound).
func NewCountMinDims(width, depth int) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("sketch: need width ≥ 1 and depth ≥ 1, got %d×%d", width, depth)
	}
	cm := &CountMin{
		width:   width,
		depth:   depth,
		counts:  make([]uint64, width*depth),
		rowBase: make([]uint64, depth),
	}
	for r := range cm.rowBase {
		cm.rowBase[r] = fnvFold8(fnvOffset64, uint64(r))
	}
	return cm, nil
}

// hash computes the row's bucket for a key: FNV-1a over the 16-byte
// big-endian concatenation of the row salt and the key, with the salt
// half precomputed into rowBase. Zero allocations.
func (c *CountMin) hash(row int, key uint64) int {
	return int(fnvFold8(c.rowBase[row], key) % uint64(c.width))
}

// Add increments the key's count.
func (c *CountMin) Add(key uint64, delta uint64) {
	for row := 0; row < c.depth; row++ {
		c.counts[row*c.width+c.hash(row, key)] += delta
	}
	c.total += delta
}

// Estimate returns the (over-)estimate of the key's count.
func (c *CountMin) Estimate(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for row := 0; row < c.depth; row++ {
		if v := c.counts[row*c.width+c.hash(row, key)]; v < min {
			min = v
		}
	}
	return min
}

// Total returns the stream total.
func (c *CountMin) Total() uint64 { return c.total }

// Reset clears the sketch for the next epoch without reallocating.
func (c *CountMin) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.total = 0
}

// Merge adds another sketch's counts cell-wise. Count-min sketches with
// identical dimensions (and therefore identical hash streams) merge
// exactly: the merged estimate obeys the same ε·total bound over the
// combined stream.
func (c *CountMin) Merge(o *CountMin) error {
	if o.width != c.width || o.depth != c.depth {
		return fmt.Errorf("sketch: merge dimension mismatch %d×%d vs %d×%d", c.width, c.depth, o.width, o.depth)
	}
	for i, v := range o.counts {
		c.counts[i] += v
	}
	c.total += o.total
	return nil
}

// AppendWire serializes the sketch: u32 width, u32 depth, u64 total,
// then depth×width u64 counts, all big-endian.
//
//jaal:pair DecodeCountMin
func (c *CountMin) AppendWire(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.width))
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.depth))
	dst = binary.BigEndian.AppendUint64(dst, c.total)
	for _, v := range c.counts {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeCountMin parses a sketch serialized by AppendWire and returns
// the number of bytes consumed.
func DecodeCountMin(p []byte) (*CountMin, int, error) {
	if len(p) < 16 {
		return nil, 0, fmt.Errorf("sketch: count-min header truncated (%d bytes)", len(p))
	}
	w := int(binary.BigEndian.Uint32(p[0:4]))
	d := int(binary.BigEndian.Uint32(p[4:8]))
	if w < 1 || d < 1 || w > 1<<20 || d > 1<<10 {
		return nil, 0, fmt.Errorf("sketch: implausible count-min dimensions %d×%d", w, d)
	}
	need := 16 + w*d*8
	if len(p) < need {
		return nil, 0, fmt.Errorf("sketch: count-min counts truncated (have %d, need %d)", len(p), need)
	}
	cm, err := NewCountMinDims(w, d)
	if err != nil {
		return nil, 0, err
	}
	cm.total = binary.BigEndian.Uint64(p[8:16])
	for i := range cm.counts {
		cm.counts[i] = binary.BigEndian.Uint64(p[16+i*8:])
	}
	return cm, need, nil
}

// SizeBytes returns the serialized size: the communication cost a
// monitor would pay shipping this sketch, used in the paper's §2
// back-of-envelope comparison.
func (c *CountMin) SizeBytes() int { return c.width * c.depth * 8 }

// Width and Depth expose the dimensions.
func (c *CountMin) Width() int { return c.width }

// Depth returns the number of hash rows.
func (c *CountMin) Depth() int { return c.depth }

// CombinationCost returns the §2 scaling argument in numbers: the bytes
// needed to cover every subset of f header fields with one sketch each of
// the given per-sketch size. For f = 18 and 500 KB sketches this is the
// paper's ≈128 GB per monitor per epoch.
func CombinationCost(fields int, perSketchBytes int) uint64 {
	return (uint64(1) << uint(fields)) * uint64(perSketchBytes)
}
