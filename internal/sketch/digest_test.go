package sketch

import (
	"bytes"
	"testing"
)

func sampleDigest() *Digest {
	flows := NewHLL()
	for i := uint64(0); i < 500; i++ {
		flows.Add(i * 0x9e3779b97f4a7c15)
	}
	return &Digest{
		MonitorID: 3,
		Epoch:     42,
		Offered:   20000,
		Shed:      12000,
		Kept:      8000,
		Flows:     flows,
		TopDst: []HeavyHitter{
			{Key: 0x0A00002A, Count: 9000},
			{Key: 0x0A000001, Count: 400},
		},
		TopSrc: []HeavyHitter{{Key: 0xC0A80001, Count: 8800}},
	}
}

func TestDigestWireRoundTrip(t *testing.T) {
	d := sampleDigest()
	wire := d.AppendWire(nil)
	if !IsDigest(wire) {
		t.Fatal("IsDigest must recognize an encoded digest")
	}
	got, n, err := DecodeDigest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if got.MonitorID != d.MonitorID || got.Epoch != d.Epoch ||
		got.Offered != d.Offered || got.Shed != d.Shed || got.Kept != d.Kept {
		t.Fatalf("accounting changed across round-trip: %+v", got)
	}
	if got.FlowEstimate() != d.FlowEstimate() {
		t.Fatalf("flow estimate %d != %d", got.FlowEstimate(), d.FlowEstimate())
	}
	if len(got.TopDst) != 2 || got.TopDst[0] != d.TopDst[0] || got.TopDst[1] != d.TopDst[1] {
		t.Fatalf("TopDst changed: %+v", got.TopDst)
	}
	if len(got.TopSrc) != 1 || got.TopSrc[0] != d.TopSrc[0] {
		t.Fatalf("TopSrc changed: %+v", got.TopSrc)
	}
}

// The digest must decode from the front of a longer payload (it sits
// before the trace trailer) and report its exact block length.
func TestDigestDecodePrefix(t *testing.T) {
	wire := sampleDigest().AppendWire(nil)
	blockLen := len(wire)
	wire = append(wire, []byte("trailing trace trailer bytes")...)
	got, n, err := DecodeDigest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || n != blockLen {
		t.Fatalf("consumed %d, want block length %d", n, blockLen)
	}
}

// Unknown versions skip the whole block without error so old readers
// survive new senders.
func TestDigestUnknownVersionSkips(t *testing.T) {
	wire := sampleDigest().AppendWire(nil)
	wire[2] = 99
	got, n, err := DecodeDigest(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("unknown version must yield a nil digest")
	}
	if n != len(wire) {
		t.Fatalf("unknown version consumed %d of %d bytes", n, len(wire))
	}
}

func TestDigestDecodeRejectsCorruption(t *testing.T) {
	wire := sampleDigest().AppendWire(nil)
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := DecodeDigest(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
	bad := bytes.Clone(wire)
	bad[0] = 'X'
	if _, _, err := DecodeDigest(bad); err == nil {
		t.Fatal("bad magic must fail")
	}
	bad = bytes.Clone(wire)
	bad[7] = 0xFF // block length beyond payload
	if _, _, err := DecodeDigest(bad); err == nil {
		t.Fatal("oversized block length must fail")
	}
}

// FuzzDecodeDigest shakes the decoder with arbitrary bytes; it must
// never panic, and every accepted digest must re-encode decodable.
func FuzzDecodeDigest(f *testing.F) {
	f.Add(sampleDigest().AppendWire(nil))
	f.Add((&Digest{}).AppendWire(nil))
	short := sampleDigest().AppendWire(nil)
	f.Add(short[:9])
	f.Fuzz(func(t *testing.T, p []byte) {
		d, n, err := DecodeDigest(p)
		if err != nil {
			return
		}
		if n < 8 || n > len(p) {
			t.Fatalf("consumed %d of %d bytes", n, len(p))
		}
		if d == nil {
			return // version skip
		}
		if _, _, err := DecodeDigest(d.AppendWire(nil)); err != nil {
			t.Fatalf("re-encode of accepted digest failed: %v", err)
		}
	})
}

func TestIngestDisabled(t *testing.T) {
	g, err := NewIngest(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Fatal("disabled config must yield a nil pass")
	}
}

func TestIngestKeepsEverythingBelowWatermark(t *testing.T) {
	g, err := NewIngest(DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !g.Observe(uint32(i), uint32(i%7), uint64(i)) {
			t.Fatalf("packet %d shed below the watermark", i)
		}
	}
	if g.Shed() != 0 || g.Kept() != 1000 || g.Offered() != 1000 {
		t.Fatalf("accounting off: offered=%d kept=%d shed=%d", g.Offered(), g.Kept(), g.Shed())
	}
}

func TestIngestZeroWatermarkNeverSheds(t *testing.T) {
	g, err := NewIngest(Config{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if !g.Observe(uint32(i), 1, uint64(i)) {
			t.Fatal("watermark 0 must never shed")
		}
	}
}

// Above the watermark, heavy-hitter traffic survives and mice are
// subsampled at 1-in-MiceKeep.
func TestIngestShedsMiceNotHeavy(t *testing.T) {
	cfg := DefaultConfig(500)
	// Lift the hard ceiling out of reach: this test pins the
	// watermark-band semantics (heavy exempt, mice subsampled);
	// TestIngestHardCeilingBoundsKept covers the ceiling itself.
	cfg.HardLimitFactor = 1000
	g, err := NewIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const victim = uint32(0x0A00002A)
	heavyKept, miceOffered, miceKept := 0, 0, 0
	for i := 0; i < 20000; i++ {
		if i%2 == 0 {
			// Heavy flow: half of all traffic hits one victim.
			if g.Observe(uint32(0xC0A80000+i%4), victim, uint64(i%64)) {
				heavyKept++
			}
		} else {
			// Mice: unique src/dst/flow per packet.
			miceOffered++
			if g.Observe(uint32(i)<<8, uint32(i)|0xF0000000, uint64(i)*0x9e3779b97f4a7c15) {
				miceKept++
			}
		}
	}
	if g.Offered() != 20000 || g.Kept()+g.Shed() != 20000 {
		t.Fatalf("accounting off: offered=%d kept=%d shed=%d", g.Offered(), g.Kept(), g.Shed())
	}
	if g.Shed() == 0 {
		t.Fatal("overloaded run must shed")
	}
	if heavyKept != 10000 {
		t.Fatalf("heavy-hitter packets kept %d of 10000 — heavy traffic must never be shed", heavyKept)
	}
	// Mice shed to roughly 1-in-MiceKeep past the watermark.
	if miceKept >= miceOffered/2 {
		t.Fatalf("mice kept %d of %d — subsampling not engaged", miceKept, miceOffered)
	}
	d := g.Digest(1, 9)
	if d.Offered != 20000 || d.Shed != g.Shed() || d.Kept != g.Kept() {
		t.Fatalf("digest accounting mismatch: %+v", d)
	}
	if len(d.TopDst) == 0 || d.TopDst[0].Key != victim {
		t.Fatalf("victim missing from TopDst: %+v", d.TopDst)
	}
	if est := d.FlowEstimate(); est < 5000 {
		t.Fatalf("flow estimate %d too low for ~10k distinct mice flows", est)
	}

	g.Reset()
	if g.Offered() != 0 || g.Shed() != 0 || g.Kept() != 0 {
		t.Fatal("Reset must clear accounting")
	}
	if d2 := g.Digest(1, 10); len(d2.TopDst) != 0 || d2.FlowEstimate() != 0 {
		t.Fatalf("Reset must clear sketches: %+v", d2)
	}
}

// Past HardLimitFactor × watermark kept packets, even heavy-hitter
// traffic is shed: the epoch's slab admission is hard-bounded at any
// offered load.
func TestIngestHardCeilingBoundsKept(t *testing.T) {
	g, err := NewIngest(DefaultConfig(500)) // default factor 2 → ceiling 1000
	if err != nil {
		t.Fatal(err)
	}
	const victim = uint32(0x0A00002A)
	for i := 0; i < 50000; i++ {
		// Every packet hits one destination: all-heavy traffic.
		g.Observe(uint32(0xC0A80000+i%4), victim, uint64(i%64))
	}
	if g.Kept() != 1000 {
		t.Fatalf("kept %d heavy packets, want exactly the 1000-packet ceiling", g.Kept())
	}
	if g.Shed() != 49000 {
		t.Fatalf("shed %d, want 49000", g.Shed())
	}
	// The digest still reports the full pre-shed picture.
	d := g.Digest(0, 1)
	if d.Offered != 50000 || len(d.TopDst) == 0 || d.TopDst[0].Key != victim {
		t.Fatalf("ceiling must not blind the digest: %+v", d)
	}
}

func TestIngestObserveZeroAlloc(t *testing.T) {
	g, err := NewIngest(DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	var i uint32
	allocs := testing.AllocsPerRun(2000, func() {
		g.Observe(i, i%5, uint64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("Ingest.Observe allocates %.1f times per op, want 0", allocs)
	}
}
