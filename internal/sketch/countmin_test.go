package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCountMinValidation(t *testing.T) {
	bad := [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}}
	for _, c := range bad {
		if _, err := NewCountMin(c[0], c[1]); err == nil {
			t.Fatalf("ε=%v δ=%v must be rejected", c[0], c[1])
		}
	}
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Width() < 250 || cm.Depth() < 4 {
		t.Fatalf("dimensions %dx%d too small for ε=δ=0.01", cm.Width(), cm.Depth())
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm, _ := NewCountMin(0.01, 0.01)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		key := uint64(rng.Intn(500))
		cm.Add(key, 1)
		truth[key]++
	}
	for key, want := range truth {
		if got := cm.Estimate(key); got < want {
			t.Fatalf("key %d: estimate %d < true count %d", key, got, want)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	cm, _ := NewCountMin(0.01, 0.01)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(2))
	const total = 20000
	for i := 0; i < total; i++ {
		key := uint64(rng.Intn(1000))
		cm.Add(key, 1)
		truth[key]++
	}
	// CM guarantee: estimate ≤ true + ε·total w.h.p.
	slack := uint64(0.01*total) + 1
	violations := 0
	for key, want := range truth {
		if cm.Estimate(key) > want+slack {
			violations++
		}
	}
	if violations > len(truth)/50 { // ≤2% violations tolerated
		t.Fatalf("%d of %d keys exceed the CM error bound", violations, len(truth))
	}
}

func TestCountMinTotalAndSize(t *testing.T) {
	cm, _ := NewCountMin(0.1, 0.1)
	cm.Add(1, 5)
	cm.Add(2, 7)
	if cm.Total() != 12 {
		t.Fatalf("total = %d, want 12", cm.Total())
	}
	if cm.SizeBytes() != cm.Width()*cm.Depth()*8 {
		t.Fatal("size accounting wrong")
	}
}

func TestCombinationCost(t *testing.T) {
	// §2: 2^18 sketches × 500 KB = 128 GB.
	got := CombinationCost(18, 500*1024)
	const want = uint64(1<<18) * 500 * 1024
	if got != want {
		t.Fatalf("combination cost = %d, want %d", got, want)
	}
	// The paper quotes this as ≈128 GB per monitor per epoch.
	if got < 128e9 {
		t.Fatalf("cost %d bytes must be at least 128 GB, the paper's figure", got)
	}
}

// Property: estimates are monotone in additions.
func TestCountMinMonotoneProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		cm, err := NewCountMin(0.05, 0.05)
		if err != nil {
			return false
		}
		prev := map[uint64]uint64{}
		for _, k := range keys {
			before := cm.Estimate(k)
			if before < prev[k] {
				return false
			}
			cm.Add(k, 1)
			if cm.Estimate(k) < before+1 {
				return false
			}
			prev[k] = cm.Estimate(k)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
