package sketch

import (
	"encoding/binary"
	"fmt"
)

// The digest rides as a version-tolerant trailer after the summary
// bytes in a MsgSummary payload (same side-channel pattern as the trace
// trailer): magic "JS", a version byte, a flags byte, then a u32 block
// length covering the whole block. Unlike the trace trailer, the block
// length makes the digest skippable, so it must sit BEFORE the trace
// trailer (which claims everything to the end of the payload).
const (
	digestMagic0  = 'J'
	digestMagic1  = 'S'
	digestVersion = 1
	// digestMaxHitters bounds the per-dimension heavy-hitter list.
	digestMaxHitters = 255
)

// HeavyHitter is one heavy key (an IPv4 address in the ingest digests)
// and its count-min estimate.
type HeavyHitter struct {
	Key   uint32
	Count uint64
}

// Digest is a monitor's per-epoch sketch summary: shed accounting
// totals, the flow-cardinality registers, and the top heavy hitters by
// destination and source. It is what the controller gets "for free"
// alongside the summaries to issue volumetric verdicts without raw
// fetches.
type Digest struct {
	MonitorID int
	Epoch     uint64
	// Offered/Shed/Kept are the epoch's packet accounting: every packet
	// offered to Ingest, the subset shed before the batch slab, and the
	// subset admitted (Offered = Shed + Kept). Offered is the honest
	// pre-shed traffic volume the controller should weight by.
	Offered uint64
	Shed    uint64
	Kept    uint64
	// Flows is the flow-cardinality sketch (nil only in hand-built
	// digests; the codec always carries registers).
	Flows *HLL
	// TopDst and TopSrc are the heaviest destination and source
	// addresses with their count-min estimates, descending.
	TopDst []HeavyHitter
	TopSrc []HeavyHitter
}

// FlowEstimate returns the estimated distinct-flow count.
func (d *Digest) FlowEstimate() uint64 {
	if d.Flows == nil {
		return 0
	}
	return d.Flows.Estimate()
}

// IsDigest reports whether p begins with a sketch-digest trailer.
func IsDigest(p []byte) bool {
	return len(p) >= 2 && p[0] == digestMagic0 && p[1] == digestMagic1
}

// AppendWire serializes the digest block: magic "JS", version, flags,
// u32 block length, u32 monitor ID, u64 epoch, u64 offered, u64 shed,
// u64 kept, u16 register count + registers, then the two heavy-hitter
// lists as u8 count + (u32 key, u64 estimate) pairs.
//
//jaal:pair DecodeDigest
func (d *Digest) AppendWire(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, digestMagic0, digestMagic1, digestVersion, 0)
	dst = binary.BigEndian.AppendUint32(dst, 0) // block length, patched below
	dst = binary.BigEndian.AppendUint32(dst, uint32(d.MonitorID))
	dst = binary.BigEndian.AppendUint64(dst, d.Epoch)
	dst = binary.BigEndian.AppendUint64(dst, d.Offered)
	dst = binary.BigEndian.AppendUint64(dst, d.Shed)
	dst = binary.BigEndian.AppendUint64(dst, d.Kept)
	flows := d.Flows
	if flows == nil {
		flows = NewHLL()
	}
	dst = binary.BigEndian.AppendUint16(dst, hllRegisters)
	dst = flows.AppendWire(dst)
	for _, hh := range [][]HeavyHitter{d.TopDst, d.TopSrc} {
		if len(hh) > digestMaxHitters {
			hh = hh[:digestMaxHitters]
		}
		dst = append(dst, byte(len(hh)))
		for _, h := range hh {
			dst = binary.BigEndian.AppendUint32(dst, h.Key)
			dst = binary.BigEndian.AppendUint64(dst, h.Count)
		}
	}
	binary.BigEndian.PutUint32(dst[start+4:], uint32(len(dst)-start))
	return dst
}

// DecodeDigest parses a digest block from the front of p and returns
// the digest plus the number of bytes consumed. A block with an unknown
// version is skipped: (nil, blockLen, nil), so readers stay compatible
// with future senders. Anything malformed is an error.
func DecodeDigest(p []byte) (*Digest, int, error) {
	if len(p) < 8 {
		return nil, 0, fmt.Errorf("sketch: digest header truncated (%d bytes)", len(p))
	}
	if p[0] != digestMagic0 || p[1] != digestMagic1 {
		return nil, 0, fmt.Errorf("sketch: bad digest magic %q", p[:2])
	}
	blockLen := int(binary.BigEndian.Uint32(p[4:8]))
	if blockLen < 8 || blockLen > len(p) {
		return nil, 0, fmt.Errorf("sketch: digest block length %d out of range (payload %d)", blockLen, len(p))
	}
	if p[2] != digestVersion {
		// Version-tolerant: skip the whole block.
		return nil, blockLen, nil
	}
	body := p[8:blockLen]
	const fixed = 4 + 8 + 8 + 8 + 8 + 2
	if len(body) < fixed {
		return nil, 0, fmt.Errorf("sketch: digest body truncated (%d bytes)", len(body))
	}
	d := &Digest{
		MonitorID: int(binary.BigEndian.Uint32(body[0:4])),
		Epoch:     binary.BigEndian.Uint64(body[4:12]),
		Offered:   binary.BigEndian.Uint64(body[12:20]),
		Shed:      binary.BigEndian.Uint64(body[20:28]),
		Kept:      binary.BigEndian.Uint64(body[28:36]),
	}
	regs := int(binary.BigEndian.Uint16(body[36:38]))
	if regs != hllRegisters {
		return nil, 0, fmt.Errorf("sketch: digest v1 carries %d hll registers, got %d", hllRegisters, regs)
	}
	body = body[fixed:]
	flows, err := decodeHLL(body)
	if err != nil {
		return nil, 0, err
	}
	d.Flows = flows
	body = body[hllRegisters:]
	for i := 0; i < 2; i++ {
		if len(body) < 1 {
			return nil, 0, fmt.Errorf("sketch: digest heavy-hitter list %d truncated", i)
		}
		n := int(body[0])
		body = body[1:]
		if len(body) < n*12 {
			return nil, 0, fmt.Errorf("sketch: digest heavy-hitter entries truncated (have %d, need %d)", len(body), n*12)
		}
		hh := make([]HeavyHitter, n)
		for j := range hh {
			hh[j].Key = binary.BigEndian.Uint32(body[j*12:])
			hh[j].Count = binary.BigEndian.Uint64(body[j*12+4:])
		}
		body = body[n*12:]
		if i == 0 {
			d.TopDst = hh
		} else {
			d.TopSrc = hh
		}
	}
	if len(body) != 0 {
		return nil, 0, fmt.Errorf("sketch: %d trailing bytes inside digest block", len(body))
	}
	return d, blockLen, nil
}
