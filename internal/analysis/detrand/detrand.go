// Package detrand forbids nondeterministic sources — the global
// math/rand functions and the argless wall clock — inside the
// packages whose outputs must be byte-identical across same-seed runs
// (analysis.DeterministicPackages).
//
// Randomness must flow from an injected, seeded *rand.Rand (the
// netsim Config.Rand / summary Config.Seed pattern); time must derive
// from epoch counters or an injected clock (inference.Clock). The
// analyzer flags:
//
//   - calls to math/rand package-level functions that read the global
//     source (Intn, Float64, Perm, Shuffle, …) — constructors like
//     rand.New, rand.NewSource and rand.NewZipf are fine, and method
//     calls on a *rand.Rand value never match;
//   - calls to time.Now and time.Since, which stamp values with the
//     wall clock (the pre-fix inference/alert.go bug: Alert.Time from
//     time.Now made same-seed alert streams differ byte-for-byte).
//
// Timings that feed only the observability side channel are legitimate
// (they never influence outputs — DESIGN.md "Observability") and are
// suppressed at the call site with //jaalvet:ignore detrand plus the
// justification.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detrand checker.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and wall-clock reads in deterministic packages",
	Run:  run,
}

// globalSafe lists the math/rand package-level names that do not touch
// the global source: constructors and types.
var globalSafe = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !globalSafe[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"call to math/rand.%s uses the process-global RNG in deterministic package %s; draw from an injected, seeded *rand.Rand instead",
						sel.Sel.Name, pass.Pkg.Path())
				}
			case "time":
				if name := sel.Sel.Name; name == "Now" || name == "Since" {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in deterministic package %s; derive timestamps from the epoch or an injected clock",
						name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
