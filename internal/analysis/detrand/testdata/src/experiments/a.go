// Negative detrand fixture: "experiments" is not in the deterministic
// package set, so wall clocks and global randomness pass unflagged
// (the experiment harness times real work).
package experiments

import (
	"math/rand"
	"time"
)

func wallClockTiming() time.Duration {
	start := time.Now()
	_ = rand.Intn(100)
	return time.Since(start)
}
