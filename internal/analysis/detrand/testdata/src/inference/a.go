// Positive detrand fixture: package path "inference" is in the
// deterministic set, so global randomness and wall-clock reads are
// findings. newAlert reproduces the pre-fix internal/inference/alert.go
// bug (Alert.Time stamped with time.Now).
package inference

import (
	"math/rand"
	"time"
)

type alert struct {
	epoch uint64
	t     time.Time
}

func newAlert(epoch uint64) *alert {
	return &alert{epoch: epoch, t: time.Now()} // want `time\.Now reads the wall clock in deterministic package inference`
}

func jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond // want `math/rand\.Intn uses the process-global RNG`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle uses the process-global RNG`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Injected RNGs and the constructors that build them are fine, as is
// epoch-derived time.
func allowed(rng *rand.Rand, base time.Time, epoch uint64) time.Time {
	_ = rng.Intn(100)
	fresh := rand.New(rand.NewSource(7))
	_ = fresh.Float64()
	_ = rand.NewZipf(fresh, 1.2, 1, 100)
	return base.Add(time.Duration(epoch) * time.Second)
}

// A reviewed exception is silenced with the suppression convention.
func suppressed() time.Time {
	return time.Now() //jaalvet:ignore detrand — fixture: timing feeds only a metrics side channel
}
