// Fixtures for the hotalloc analyzer. The package basename "core" puts
// these functions under the configured hot roots; reachability flows
// from (*Monitor).Ingest and (*Pipeline).RunEpoch into helpers and
// function literals.
package core

import (
	"fmt"
	"sync"
)

type Monitor struct {
	mu    sync.Mutex
	ready []int
}

// Ingest is a hot root: every allocation here is per packet.
func (m *Monitor) Ingest(h int) error {
	name := fmt.Sprintf("pkt-%d", h) // want `fmt\.Sprintf allocates in the hot path`
	_ = name
	sink(h) // want `h \(non-pointer int\) is boxed into interface any per call in the hot path`
	sink(m) // clean: pointers are pointer-shaped, boxing allocates nothing
	return m.summarize(h)
}

// summarize is reached from Ingest (and is a root itself).
func (m *Monitor) summarize(h int) error {
	var batch []int
	batch = append(batch, h)       // want `append grows capacity-less slice batch in the hot path`
	tags := map[int]string{h: "x"} // want `map literal allocates in the hot path`
	_ = tags
	pair := []int{h, h + 1} // want `slice literal allocates in the hot path`
	_ = pair
	sized := make([]int, 0, 8)
	sized = append(sized, h) // clean: presized
	_ = sized
	m.assertPositive(h)
	m.publish(h)
	m.flush(h)
	return nil
}

// publish is hot transitively; appending to a field is not a
// capacity-less local growth (retention buffers grow by design).
func (m *Monitor) publish(s int) {
	m.ready = append(m.ready, s)
}

// flush shows a reviewed growth silenced with a reason.
func (m *Monitor) flush(h int) {
	var acc []int
	acc = append(acc, h) //jaal:alloc-ok flush runs once per sealed batch, amortized over the batch size
	_ = acc
}

type Pipeline struct{ n int }

// RunEpoch is a hot root; the literal it fans out is the actual loop
// body, so its allocations count too.
func (p *Pipeline) RunEpoch() {
	each(p.n, func(i int) {
		s := fmt.Sprint(i) // want `fmt\.Sprint allocates in the hot path`
		_ = s
	})
}

func each(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// assertPositive is hot via summarize's callers, but everything here
// is exempt: boxing into a variadic ...any is a reporting sink, and
// allocations feeding a panic happen once, on the way down.
func (m *Monitor) assertPositive(h int) {
	if h < 0 {
		record("bad header", h) // clean: variadic ...any boxing is exempt
		panic(fmt.Sprintf("negative header %d", h))
	}
}

func record(msg string, args ...any) { _, _ = msg, args }

// Cold is not reachable from any root: allocations are fine here.
func Cold() string {
	var xs []string
	xs = append(xs, fmt.Sprintf("cold"))
	return xs[0]
}

func sink(v any) { _ = v }
