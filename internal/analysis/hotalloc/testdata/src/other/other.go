// A package with no hot roots: the same shapes stay silent.
package other

import "fmt"

type Monitor struct{}

func (m *Monitor) Ingest(h int) string {
	var xs []string
	xs = append(xs, fmt.Sprintf("pkt-%d", h))
	return xs[0]
}
