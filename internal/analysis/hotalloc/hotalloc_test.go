package hotalloc_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

func Test(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata", "core", "other")
}

// TestBareAnnotationReported pins that //jaal:alloc-ok without a reason
// suppresses nothing and is itself a finding. (This cannot live in a
// fixture: the bare annotation is the only comment on its line, leaving
// no room for a want clause.)
func TestBareAnnotationReported(t *testing.T) {
	const src = `package core

type Monitor struct{}

func (m *Monitor) Ingest(h int) {
	var xs []int
	//jaal:alloc-ok
	xs = append(xs, h)
	_ = xs
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "core.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := analysis.TypeCheck("core", fset, []*ast.File{f},
		analysis.NewImporter(fset, map[string]string{}))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{{
		Path: "core", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info,
	}}, []*analysis.Analyzer{hotalloc.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var gotBare, gotAppend bool
	for _, fd := range findings {
		if strings.Contains(fd.Message, "needs a reason") {
			gotBare = true
		}
		if strings.Contains(fd.Message, "append grows capacity-less slice xs") {
			gotAppend = true
		}
	}
	if !gotBare {
		t.Errorf("bare //jaal:alloc-ok not reported; findings: %v", findings)
	}
	if !gotAppend {
		t.Errorf("bare //jaal:alloc-ok wrongly suppressed the append finding; findings: %v", findings)
	}
}
