// Package hotalloc flags per-call allocations on the packet hot path.
// Jaal's monitors summarize every packet of an ISP-scale stream; an
// allocation per packet (or per question per epoch) is the difference
// between the summarization budget of §4 holding and the collector
// falling behind. The analyzer computes the set of functions reachable
// from the hot roots — packet ingest, batch summarization, the
// controller's epoch round, and the worker-pool internals — and
// reports allocation sites inside them:
//
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln (per-call formatting)
//   - append to a local slice declared without capacity (growth
//     reallocations; presize with make(T, 0, n) or annotate)
//   - map and slice composite literals
//   - call arguments boxing a non-pointer value into an interface
//     parameter (each boxing heap-allocates the value); variadic
//     ...any parameters are exempt — those are reporting sinks, and
//     the Sprintf rule already covers hot formatting
//
// Arguments of panic(...) are never reported: an assertion message
// allocates once, on the way down.
//
// Reachability crosses package boundaries: packages are analyzed
// importers-first, and every cross-package callee reached from hot code
// is recorded in the shared pass state, becoming a root when its own
// package is analyzed. Function literals inside hot functions are hot
// (they are the loop bodies fanned out by par.For).
//
// A reviewed allocation is silenced in place with a reason:
//
//	buf = append(buf, b) //jaal:alloc-ok sealed-batch flush, amortized over MinBatch packets
//
// An annotation without a reason suppresses nothing and is itself
// reported.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hotalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag per-call allocations (Sprintf, growth appends, literals, interface boxing) in code reachable from the packet hot path",
	Run:  run,
}

// hotRoots seeds reachability, keyed by package basename. Methods are
// named (recv).Name with the receiver type rendered as written.
var hotRoots = map[string][]string{
	"core": {
		"(*Monitor).Ingest",
		"(*Monitor).summarize",
		"(*Controller).ProcessEpoch",
		"(*Pipeline).Ingest",
		"(*Pipeline).RunEpoch",
	},
	"par": {
		"(*task).run",
		"dispatch",
		"Rows",
		"For",
	},
}

const allocOK = "//jaal:alloc-ok"

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}}

	// marks carries hot cross-package callees between packages of one
	// run (keyed by types.Func.FullName). Importers-first visiting means
	// every caller package already deposited its marks.
	marks, _ := pass.Shared["marks"].(map[string]bool)
	if marks == nil {
		marks = map[string]bool{}
		if pass.Shared != nil {
			pass.Shared["marks"] = marks
		}
	}
	c.marks = marks

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
				c.order = append(c.order, obj)
			}
		}
	}

	// Seed: configured roots for this package plus marks deposited by
	// already-analyzed importer packages.
	roots := map[string]bool{}
	for _, r := range hotRoots[lastElem(pass.Pkg.Path())] {
		roots[r] = true
	}
	hot := map[*types.Func]bool{}
	var queue []*types.Func
	for _, obj := range c.order {
		if roots[declName(c.decls[obj])] || marks[obj.FullName()] {
			hot[obj] = true
			queue = append(queue, obj)
		}
	}

	// Reachability: same-package callees join the queue, cross-package
	// callees are marked for their own package's pass.
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		ast.Inspect(c.decls[obj].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := c.callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg() == pass.Pkg {
				if d := c.decls[fn]; d != nil && !hot[fn] {
					hot[fn] = true
					queue = append(queue, fn)
				}
			} else if strings.Contains(fn.Pkg().Path(), "/") {
				// Module-internal only: stdlib packages are never
				// analyzed, and marking them would just grow the map.
				marks[fn.FullName()] = true
			}
			return true
		})
	}

	c.scanAllocOK()
	for _, obj := range c.order {
		if hot[obj] {
			c.checkFunc(c.decls[obj])
		}
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	order []*types.Func
	marks map[string]bool
	// ok maps file name → lines carrying a reasoned //jaal:alloc-ok.
	ok map[string]map[int]bool
}

// scanAllocOK collects the //jaal:alloc-ok annotations, reporting any
// without a reason (they suppress nothing).
func (c *checker) scanAllocOK() {
	c.ok = map[string]map[int]bool{}
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rest, found := strings.CutPrefix(cm.Text, allocOK)
				if !found {
					continue
				}
				reason := strings.TrimSpace(rest)
				for _, sep := range []string{"—", "--"} {
					reason = strings.TrimSpace(strings.TrimPrefix(reason, sep))
				}
				pos := c.pass.Position(cm.Pos())
				if reason == "" {
					c.pass.Reportf(cm.Pos(), "jaal:alloc-ok annotation needs a reason")
					continue
				}
				if c.ok[pos.Filename] == nil {
					c.ok[pos.Filename] = map[int]bool{}
				}
				c.ok[pos.Filename][pos.Line] = true
			}
		}
	}
}

// allowed reports whether pos is covered by a reasoned alloc-ok
// annotation on its line or the line above.
func (c *checker) allowed(pos token.Pos) bool {
	p := c.pass.Position(pos)
	lines := c.ok[p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.allowed(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// checkFunc reports the allocation sites of one hot function. FuncLit
// bodies are included: a literal defined on the hot path runs on it.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	capless := c.caplessLocals(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(c.pass, n) {
				// Allocations that feed a panic happen once, on the way
				// down: assertion messages are not the hot path.
				return false
			}
			c.checkCall(n, capless)
		case *ast.CompositeLit:
			t := c.pass.TypesInfo.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				c.reportf(n.Pos(), "map literal allocates in the hot path")
			case *types.Slice:
				if len(n.Elts) > 0 {
					c.reportf(n.Pos(), "slice literal allocates in the hot path")
				}
			}
		}
		return true
	})
}

// caplessLocals collects local slice variables declared with no
// capacity: `var xs []T`, `xs := []T{}`, or an explicit nil. Growing
// one with append reallocates log-many times.
func (c *checker) caplessLocals(body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(ident *ast.Ident) {
		v, ok := c.pass.TypesInfo.Defs[ident].(*types.Var)
		if !ok || v == nil {
			return
		}
		if _, ok := v.Type().Underlying().(*types.Slice); ok {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if lit, ok := n.Rhs[i].(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
					mark(ident)
				} else if id, ok := n.Rhs[i].(*ast.Ident); ok && id.Name == "nil" {
					mark(ident)
				}
			}
		}
		return true
	})
	return out
}

// checkCall reports Sprintf-family calls, growth appends and boxing
// arguments of one call.
func (c *checker) checkCall(call *ast.CallExpr, capless map[*types.Var]bool) {
	if fn := c.callee(call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln":
			c.reportf(call.Pos(), "fmt.%s allocates in the hot path", fn.Name())
			return
		}
	}

	if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "append" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[ident].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if target, ok := call.Args[0].(*ast.Ident); ok {
				if v, ok := c.pass.TypesInfo.Uses[target].(*types.Var); ok && capless[v] {
					c.reportf(call.Pos(),
						"append grows capacity-less slice %s in the hot path (presize with make or annotate //jaal:alloc-ok)",
						target.Name)
				}
			}
		}
		return
	}

	// Interface boxing: a non-pointer value passed where an interface
	// parameter is expected heap-allocates a copy on every call.
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if ok && !hasEllipsis(call) {
		for i, arg := range call.Args {
			pt := paramType(sig, i)
			if pt == nil || !types.IsInterface(pt) {
				continue
			}
			tv, ok := c.pass.TypesInfo.Types[arg]
			if !ok || tv.IsNil() || tv.Type == nil {
				continue
			}
			if !boxes(tv.Type) {
				continue
			}
			c.reportf(arg.Pos(), "%s (non-pointer %s) is boxed into interface %s per call in the hot path",
				types.ExprString(arg), tv.Type.String(), pt.String())
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// heap-allocates: true for multi-word and non-pointer-shaped types.
// Pointers, maps, channels and funcs are pointer-shaped (one word, no
// allocation); interfaces are not conversions.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return false
	}
	return true
}

func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params == nil {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		// Variadic interface parameters (fmt-style ...any) box, but the
		// call is almost always reporting or error formatting; the
		// Sprintf rule already covers hot formatting, so stay quiet.
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func hasEllipsis(call *ast.CallExpr) bool { return call.Ellipsis.IsValid() }

// isPanic recognizes a call to the builtin panic.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := c.pass.TypesInfo.Selections[fun]; ok {
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// declName renders a declaration the way hotRoots names it:
// "(recv).Name" for methods, "Name" for functions.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
