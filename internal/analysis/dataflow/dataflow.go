// Package dataflow is a small forward dataflow engine over the basic
// blocks of internal/analysis/cfg: classic gen/kill iteration to a
// fixpoint via a worklist. An analyzer describes its lattice through
// the Problem interface — the entry fact, a monotone per-block transfer
// function, the join of predecessor facts, and fact equality — and
// Forward returns each block's IN fact, from which the analyzer replays
// transfers statement by statement to report at precise positions.
//
// The engine is deliberately minimal: facts are opaque values, blocks
// are processed in index order (deterministic output for deterministic
// input), and termination relies on the analyzer's lattice having
// finite height — true for the set-of-locks and similar facts jaal-vet
// computes, where every fact is drawn from the function's finite
// syntax. A safety valve caps iteration at maxPasses sweeps so a
// non-monotone transfer degrades to a truncated (conservative for
// may-analyses) result instead of a hang.
package dataflow

import (
	"repro/internal/analysis/cfg"
)

// Problem describes one forward dataflow problem.
type Problem[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Transfer computes the fact after executing block b with fact in.
	// It must not mutate in.
	Transfer(b *cfg.Block, in F) F
	// Join merges two facts flowing into the same block (set union for
	// may-analyses, intersection for must-analyses). It must not mutate
	// its arguments.
	Join(a, b F) F
	// Equal reports whether two facts are the same, ending iteration.
	Equal(a, b F) bool
}

// maxPasses bounds full sweeps over the graph. Lock-set style lattices
// stabilize in O(loop nesting depth) sweeps; anything still moving
// after this many is a broken transfer function, not a real program.
const maxPasses = 64

// Forward solves p over g and returns the IN fact of every block.
// Blocks unreachable from entry keep the entry fact (their IN joins
// nothing), which over-approximates safely for may-analyses.
func Forward[F any](g *cfg.Graph, p Problem[F]) map[*cfg.Block]F {
	n := len(g.Blocks)
	in := make([]F, n)
	out := make([]F, n)
	hasOut := make([]bool, n)
	for i := range in {
		in[i] = p.Entry()
	}

	dirty := make([]bool, n)
	for i := range dirty {
		dirty[i] = true
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for i, b := range g.Blocks {
			if !dirty[i] {
				continue
			}
			dirty[i] = false
			// IN = join over predecessor OUTs (entry fact when none).
			f := p.Entry()
			joined := false
			for _, pred := range b.Preds {
				if !hasOut[pred.Index] {
					continue
				}
				if !joined {
					f = out[pred.Index]
					joined = true
				} else {
					f = p.Join(f, out[pred.Index])
				}
			}
			in[i] = f
			o := p.Transfer(b, f)
			if hasOut[i] && p.Equal(o, out[i]) {
				continue
			}
			out[i] = o
			hasOut[i] = true
			changed = true
			for _, s := range b.Succs {
				dirty[s.Index] = true
			}
		}
		if !changed {
			break
		}
	}

	res := make(map[*cfg.Block]F, n)
	for i, b := range g.Blocks {
		res[b] = in[i]
	}
	return res
}
