package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
)

// heldProblem is a miniature of what lockheld does: a may-analysis over
// sets of strings. Calling lock("x") gens x, unlock("x") kills x; the
// join is set union. Facts are immutable maps.
type heldProblem struct{}

type fact map[string]bool

func (heldProblem) Entry() fact { return fact{} }

func (heldProblem) Transfer(b *cfg.Block, in fact) fact {
	out := in
	mutate := func(name string, add bool) {
		// Copy-on-write so shared facts are never aliased.
		next := make(fact, len(out)+1)
		for k := range out {
			next[k] = true
		}
		if add {
			next[name] = true
		} else {
			delete(next, name)
		}
		out = next
	}
	for _, s := range b.Stmts {
		for _, n := range cfg.Exec(s) {
			ast.Inspect(n, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || len(call.Args) != 1 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok {
					return true
				}
				name := strings.Trim(lit.Value, `"`)
				switch fn.Name {
				case "lock":
					mutate(name, true)
				case "unlock":
					mutate(name, false)
				}
				return true
			})
		}
	}
	return out
}

func (heldProblem) Join(a, b fact) fact {
	u := make(fact, len(a)+len(b))
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}

func (heldProblem) Equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keys(f fact) string {
	var ks []string
	for k := range f {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

// solve parses src as a single function body, runs heldProblem, and
// returns the IN fact of the block containing the marker statement
// probe() — identified by scanning block statements.
func solve(t *testing.T, src string) (g *cfg.Graph, in map[*cfg.Block]fact) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := file.Decls[0].(*ast.FuncDecl).Body
	g = cfg.New(body)
	return g, Forward[fact](g, heldProblem{})
}

// inAt finds the block whose statements include a call to probe() and
// returns its IN fact.
func inAt(t *testing.T, g *cfg.Graph, in map[*cfg.Block]fact) fact {
	t.Helper()
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			found := false
			for _, n := range cfg.Exec(s) {
				ast.Inspect(n, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
							found = true
						}
					}
					return true
				})
			}
			if found {
				return in[b]
			}
		}
	}
	t.Fatal("no probe() in fixture")
	return nil
}

func TestFactFlowsAcrossBlocks(t *testing.T) {
	// Forward returns IN facts per block, so the probe must sit in a
	// later block than the lock to observe it.
	g, in := solve(t, `
		lock("a")
		if cond() {
			work()
		}
		probe()
	`)
	if got := keys(inAt(t, g, in)); got != "a" {
		t.Errorf("cross-block flow: IN at probe = %q, want %q", got, "a")
	}
}

func TestBranchJoinIsUnion(t *testing.T) {
	// One branch locks a, the other locks b; a may-analysis must see
	// both at the join.
	g, in := solve(t, `
		if cond() {
			lock("a")
		} else {
			lock("b")
		}
		probe()
	`)
	if got := keys(inAt(t, g, in)); got != "a,b" {
		t.Errorf("branch join: IN at probe = %q, want %q", got, "a,b")
	}
}

func TestBalancedBranchesLeaveNothing(t *testing.T) {
	g, in := solve(t, `
		if cond() {
			lock("a")
			unlock("a")
		}
		probe()
	`)
	if got := keys(inAt(t, g, in)); got != "" {
		t.Errorf("balanced branch: IN at probe = %q, want empty", got)
	}
}

func TestLoopFixpoint(t *testing.T) {
	// The lock acquired inside the loop body flows around the back edge
	// into the header, so the header's IN must include it after the
	// first iteration — a fact only a fixpoint (not a single sweep in
	// block order) produces when the back edge points at an
	// earlier-indexed block.
	g, in := solve(t, `
		for cond() {
			probe()
			lock("a")
		}
	`)
	if got := keys(inAt(t, g, in)); got != "a" {
		t.Errorf("loop fixpoint: IN at probe = %q, want %q", got, "a")
	}
}

func TestLoopWithReleaseConverges(t *testing.T) {
	// lock/unlock balanced inside the body: nothing escapes the loop.
	g, in := solve(t, `
		for cond() {
			lock("a")
			work()
			unlock("a")
		}
		probe()
	`)
	if got := keys(inAt(t, g, in)); got != "" {
		t.Errorf("balanced loop: IN at probe = %q, want empty", got)
	}
}

func TestUnreachableKeepsEntryFact(t *testing.T) {
	g, in := solve(t, `
		lock("a")
		return
		probe()
	`)
	if got := keys(inAt(t, g, in)); got != "" {
		t.Errorf("unreachable block: IN at probe = %q, want entry fact (empty)", got)
	}
}

func TestAllBlocksHaveFacts(t *testing.T) {
	g, in := solve(t, `
		lock("a")
		for cond() {
			if other() {
				unlock("a")
			}
		}
		probe()
	`)
	if len(in) != len(g.Blocks) {
		t.Fatalf("Forward returned %d facts for %d blocks", len(in), len(g.Blocks))
	}
	// The probe sits after a loop that may or may not have released: a
	// may-analysis keeps "a".
	if got := keys(inAt(t, g, in)); got != "a" {
		t.Errorf("maybe-released: IN at probe = %q, want %q (may-analysis)", got, "a")
	}
}
