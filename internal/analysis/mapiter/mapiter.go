// Package mapiter flags `for … range` over map values inside the
// deterministic package set (analysis.DeterministicPackages), where Go's
// randomized iteration order can leak into outputs.
//
// Two pre-fix bugs in this tree motivate the check (ISSUE 3):
// flowassign's SnapshotGreedy.Refresh walked the live load map while
// rebuilding its snapshot, and RobinHood.Assign summed float64 loads in
// map order — float addition is not associative, so even a
// "commutative" sum differs across runs.
//
// One loop shape is recognized as inherently order-insensitive and
// allowed without a suppression: the key-collection idiom feeding a
// sort,
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, …)
//
// i.e. a single-statement body appending exactly the key (value unused)
// to a slice. Everything else needs either sorted-key iteration or a
// //jaalvet:ignore mapiter suppression stating why order cannot reach
// an output.
package mapiter

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the mapiter checker.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration in deterministic packages unless it is a key-collection feeding a sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollection(rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration order is nondeterministic and %s must produce identical output across runs; iterate over sorted keys",
				pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// isKeyCollection reports whether the loop is exactly
// `for k := range m { s = append(s, k) }` (value unused).
func isKeyCollection(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rng.Value != nil {
		if v, ok := rng.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	lhs, ok2 := asg.Lhs[0].(*ast.Ident)
	if !ok || !ok2 || dst.Name != lhs.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}
