// Negative mapiter fixture: "tools" carries no reproducibility
// obligation, so raw map walks pass unflagged.
package tools

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
