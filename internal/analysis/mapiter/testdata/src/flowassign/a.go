// Positive mapiter fixture: package path "flowassign" is in the
// deterministic set. refresh and total reproduce the two pre-fix
// internal/flowassign bugs: SnapshotGreedy.Refresh rebuilding its
// snapshot in map order, and RobinHood summing float64 loads in map
// order (float addition is not associative).
package flowassign

import "sort"

type monitorID int

type snapshotGreedy struct {
	load     map[monitorID]float64
	snapshot map[monitorID]float64
}

func (g *snapshotGreedy) refresh() {
	for m, l := range g.load { // want `map iteration order is nondeterministic`
		g.snapshot[m] = l
	}
}

func (g *snapshotGreedy) total() float64 {
	var t float64
	for _, l := range g.load { // want `map iteration order is nondeterministic`
		t += l
	}
	return t
}

// The key-collection idiom feeding a sort is order-insensitive and
// allowed without a suppression.
func (g *snapshotGreedy) keys() []monitorID {
	ids := make([]monitorID, 0, len(g.load))
	for m := range g.load {
		ids = append(ids, m)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Slice iteration is always fine.
func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// A reviewed order-insensitive walk is silenced with the convention.
func (g *snapshotGreedy) clearAll() {
	//jaalvet:ignore mapiter — fixture: per-entry delete, order cannot matter
	for m := range g.snapshot {
		delete(g.snapshot, m)
	}
}
