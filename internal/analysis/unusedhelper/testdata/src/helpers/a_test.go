package helpers

import "testing"

func TestOnly(t *testing.T) {
	if testOnly() != 7 {
		t.Fatal("testOnly broken")
	}
}
