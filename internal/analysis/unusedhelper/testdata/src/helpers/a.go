package helpers

// Do is the exported entry point; exported functions are out of scope
// even when nothing in this package calls them.
func Do() int { return caller() }

// caller is alive: Do calls it.
func caller() int { return refTarget() + 1 }

// refTarget is alive through a plain call.
func refTarget() int { return 0 }

// hooked is alive through a function-value reference, not a call.
func hooked() {}

var hook = hooked

var _ = hook

func dead() int { return 42 } // want `func dead has no callers`

// testOnly is called from a_test.go only; test files count as callers.
func testOnly() int { return 7 }

//jaalvet:ignore unusedhelper — reserved fixture: suppressed dead helper must stay silent
func kept() {}

type widget struct{ n int }

// bump is a method: interface satisfaction makes package-local
// liveness undecidable, so methods are out of scope.
func (w *widget) bump() { w.n++ }

var _ = (&widget{}).bump

func init() {}
