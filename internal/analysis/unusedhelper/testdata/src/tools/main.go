package main

func main() { run() }

func run() {}

func orphan() {} // want `func orphan has no callers`
