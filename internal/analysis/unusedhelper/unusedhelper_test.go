package unusedhelper_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unusedhelper"
)

func TestUnusedHelper(t *testing.T) {
	analysistest.Run(t, unusedhelper.Analyzer, "testdata", "helpers", "tools")
}
