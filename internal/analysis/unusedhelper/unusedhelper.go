// Package unusedhelper flags unexported top-level functions with no
// callers in their package — dead helpers that survive refactors
// because the compiler only rejects unused imports and variables, not
// unused functions.
//
// The pre-fix bug motivating the check (ISSUE 5): inference kept a
// diffRows helper from an earlier feedback-loop shape long after
// RunFeedback stopped calling it, and the stale code silently implied
// an obsolete fetch-set semantics to every reader.
//
// Methods are out of scope (interface satisfaction makes "no callers"
// undecidable package-locally), as are exported functions, init, main
// and the blank identifier. A helper referenced only from the
// package's _test.go files is NOT dead: test files sit outside the
// analyzed unit (analysis.Load excludes them), so the checker scans
// them syntactically and treats any identifier match as a use. That
// over-approximates — a same-named local in a test keeps a dead helper
// alive — which is the right failure direction for a vet check.
// Intentionally kept helpers take a
// //jaalvet:ignore unusedhelper — <reason> suppression.
package unusedhelper

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the unusedhelper checker.
var Analyzer = &analysis.Analyzer{
	Name: "unusedhelper",
	Doc:  "flag unexported top-level functions with no callers in their package (test files count as callers)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	used := make(map[types.Object]bool)
	for _, obj := range pass.TypesInfo.Uses {
		used[obj] = true
	}
	testUsed, ok := testFileIdents(pass)
	if !ok {
		// Unparseable test files: bail out rather than risk flagging a
		// helper whose only caller we failed to read.
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Position(f.Pos()).Filename, "_test.go") {
			// Fixture runs may type-check test files as part of the
			// package; real loads never include them. Either way their
			// declarations are not production helpers.
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name.IsExported() {
				continue
			}
			name := fd.Name.Name
			if name == "init" || name == "main" || name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil || used[obj] || testUsed[name] {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"func %s has no callers in package %s; delete it, or suppress with a reason if it is kept deliberately",
				name, pass.Pkg.Name())
		}
	}
	return nil
}

// testFileIdents parses the package directory's _test.go files (which
// the loader excludes from the type-checked unit) and returns every
// identifier they mention. Matching is by name, not by object — an
// over-approximation that can only hide findings, never invent them.
func testFileIdents(pass *analysis.Pass) (map[string]bool, bool) {
	idents := make(map[string]bool)
	if len(pass.Files) == 0 {
		return idents, true
	}
	dir := filepath.Dir(pass.Position(pass.Files[0].Pos()).Filename)
	names, err := filepath.Glob(filepath.Join(dir, "*_test.go"))
	if err != nil {
		return nil, false
	}
	fset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			return nil, false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				idents[id.Name] = true
			}
			return true
		})
	}
	return idents, true
}
