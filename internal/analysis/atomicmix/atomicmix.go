// Package atomicmix flags struct fields that are accessed both through
// sync/atomic functions (atomic.AddInt64(&s.n, 1)) and through plain
// reads/writes (s.n++) within one package. Mixing the two races: the
// plain access tears or is reordered against the atomic one, and the
// race detector only notices if both sides fire in the same run —
// which is exactly the class of latent bug internal/par and
// internal/obs cannot afford (their discipline today is typed
// sync/atomic values, which this analyzer does not restrict).
//
// Intentional cold-path plain access (a constructor initializing a
// field before the value is shared) is suppressed at the site with
// //jaalvet:ignore atomicmix plus the justification.
package atomicmix

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicmix checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag fields accessed both via sync/atomic functions and plainly",
	Run:  run,
}

// atomicFns are the sync/atomic package-level functions whose first
// argument is the address of the word they operate on.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func run(pass *analysis.Pass) error {
	atomicFields := map[*types.Var]bool{}      // fields reached via atomic.*(&x.f, …)
	atomicArgs := map[*ast.SelectorExpr]bool{} // the selectors inside those calls
	plain := map[*types.Var][]*ast.SelectorExpr{}

	// First pass: find atomic accesses.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "sync/atomic" || !atomicFns[sel.Sel.Name] {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			fieldSel, ok := addr.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fv := fieldVar(pass, fieldSel); fv != nil {
				atomicFields[fv] = true
				atomicArgs[fieldSel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Second pass: find plain accesses to the same fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			if fv := fieldVar(pass, sel); fv != nil && atomicFields[fv] {
				plain[fv] = append(plain[fv], sel)
			}
			return true
		})
	}
	for fv, sels := range plain {
		for _, sel := range sels {
			pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in %s; this plain access races with it — use the atomic API (or a typed atomic.%s)",
				fv.Name(), pass.Pkg.Path(), suggestTyped(fv))
		}
	}
	return nil
}

// fieldVar resolves a selector to the struct field it denotes, or nil.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// suggestTyped names the typed sync/atomic replacement for the field.
func suggestTyped(fv *types.Var) string {
	if b, ok := fv.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Value"
}
