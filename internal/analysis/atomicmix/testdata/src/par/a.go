// Positive atomicmix fixture: the same field reached through
// sync/atomic in one method and through a plain read in another —
// the mixed-access race the worker pool cannot afford.
package par

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) value() int64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere in par; this plain access races with it`
}

// Typed atomics are the house style and are never restricted.
type typed struct {
	n atomic.Int64
}

func (t *typed) inc()         { t.n.Add(1) }
func (t *typed) value() int64 { return t.n.Load() }

// A constructor initializing the word before the value is shared is a
// reviewed exception, silenced with the convention.
func newCounter(seed int64) *counter {
	c := &counter{}
	//jaalvet:ignore atomicmix — fixture: c is not yet shared, plain init is safe
	c.n = seed
	return c
}
