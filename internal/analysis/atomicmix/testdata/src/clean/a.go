// Negative atomicmix fixture: typed atomics plus unrelated plain
// fields — no mixed access, no findings.
package clean

import "sync/atomic"

type stats struct {
	hits atomic.Int64
	name string
}

func (s *stats) bump()         { s.hits.Add(1) }
func (s *stats) label() string { return s.name }

// Plain access to a field never touched by sync/atomic is fine.
type plainOnly struct {
	n int64
}

func (p *plainOnly) inc() { p.n++ }
