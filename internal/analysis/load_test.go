package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module in a temp dir and returns it.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadSurfacesCompileError(t *testing.T) {
	// A package with a type error must fail with the underlying
	// compiler message, not a bare "did not load cleanly".
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.com/broken\n\ngo 1.22\n",
		"main.go": "package broken\n\nfunc f() int { return \"not an int\" }\n",
	})
	_, err := Load(dir, ".")
	if err == nil {
		t.Fatal("Load succeeded on a package with a type error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "example.com/broken") {
		t.Errorf("error does not name the package: %v", err)
	}
	if strings.HasSuffix(strings.TrimSpace(msg), "did not load cleanly") {
		t.Errorf("error lost the underlying compiler message: %v", err)
	}
	// The gc error for this program mentions the string constant or a
	// type mismatch; either way detail must survive.
	if !strings.Contains(msg, "not an int") && !strings.Contains(msg, "string") && !strings.Contains(msg, "cannot use") {
		t.Errorf("error carries no compiler detail: %v", err)
	}
}

func TestLoadSurfacesSyntaxError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.com/synbad\n\ngo 1.22\n",
		"main.go": "package synbad\n\nfunc f( {\n",
	})
	_, err := Load(dir, ".")
	if err == nil {
		t.Fatal("Load succeeded on a package with a syntax error")
	}
	if msg := err.Error(); !strings.Contains(msg, "main.go") {
		t.Errorf("syntax error does not point at the offending file: %v", err)
	}
}

func TestLoadSurfacesBrokenImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.com/impbad\n\ngo 1.22\n",
		"main.go": "package impbad\n\nimport _ \"example.com/impbad/nosuch\"\n",
	})
	_, err := Load(dir, ".")
	if err == nil {
		t.Fatal("Load succeeded on a package with a missing import")
	}
	if msg := err.Error(); !strings.Contains(msg, "nosuch") {
		t.Errorf("error does not name the missing import: %v", err)
	}
}

func TestImporterMissingExportData(t *testing.T) {
	// The unitchecker-style importer must fail loudly when a dependency
	// has no export data, naming the unresolved path.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", "package p\n\nimport \"fmt\"\n\nvar _ = fmt.Sprint\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = TypeCheck("p", fset, []*ast.File{f}, NewImporter(fset, map[string]string{}))
	if err == nil {
		t.Fatal("TypeCheck succeeded with no export data for fmt")
	}
	if !strings.Contains(err.Error(), "no export data") || !strings.Contains(err.Error(), "fmt") {
		t.Errorf("missing-export error lacks detail: %v", err)
	}
}
