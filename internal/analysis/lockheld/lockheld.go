// Package lockheld flags blocking operations reached while a sync
// mutex is held. Holding a lock across network I/O, a sleep, a channel
// operation or a Wait turns one slow peer into a stall for every
// goroutine contending on that lock — the exact failure mode the
// controller's feedback loop must not have (one dead monitor must cost
// declines, not epochs).
//
// The analysis is flow-sensitive: each function body is lowered to a
// control-flow graph (internal/analysis/cfg) and a may-hold lock set is
// propagated by forward dataflow (internal/analysis/dataflow), so a
// lock released on every path before the blocking call is not reported
// and a lock acquired on only one branch still is. Lock sets are keyed
// by the rendered receiver expression (f.mu, c.inner.mu); Lock and
// RLock acquire, Unlock and RUnlock release. A deferred Unlock does
// not release for the analysis — it runs at function exit, which is
// exactly why the blocking call in between is a stall.
//
// Blocking operations: methods Read/Write/Accept/ReadFrom/WriteTo on
// net types, net.Dial*/net.Listen*, time.Sleep, WaitGroup.Wait and
// Cond.Wait, the wire package's ReadFrame/WriteFrame, channel sends and
// receives (unless inside a select with a default), range over a
// channel, and select without a default. Calls to same-package
// functions that transitively block are themselves blocking, and a
// call through a same-package interface blocks if any same-package
// implementation does — that is how a memoizing wrapper holding its
// mutex across an interface fetch is caught even though the remote
// implementation lives in another file. Function literals are analyzed
// as separate functions; defer and go statements are not charged to
// the enclosing function (they run at exit / on another goroutine).
package lockheld

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the lockheld checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flag blocking operations (network I/O, sleeps, channel ops, Wait) reached while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		funcs: map[*types.Func]*funcInfo{},
		comm:  map[ast.Stmt]bool{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, cl := range sel.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						c.comm[cc.Comm] = true
					}
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd}
			c.funcs[obj] = fi
			c.order = append(c.order, fi)
		}
	}

	// Transitive blocking classification: a function blocks if its body
	// contains a blocking operation or calls something that does. The
	// fixpoint is monotone (blocks only flips false→true), so iteration
	// order does not affect the result.
	for changed := true; changed; {
		changed = false
		for _, fi := range c.order {
			if fi.blocks {
				continue
			}
			if c.bodyBlocks(fi.decl.Body) {
				fi.blocks = true
				changed = true
			}
		}
	}

	for _, fi := range c.order {
		c.analyzeFunc(fi.decl.Body)
	}
	// Function literals run on whatever goroutine invokes them; each is
	// analyzed as its own function with an empty entry lock set.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.analyzeFunc(lit.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	funcs map[*types.Func]*funcInfo
	order []*funcInfo
	// comm marks the communication statements of select clauses: the
	// select header is the blocking point, not the chosen comm.
	comm map[ast.Stmt]bool
}

type funcInfo struct {
	decl   *ast.FuncDecl
	blocks bool
}

// lockset is the may-hold dataflow fact: rendered lock expression →
// position of the acquiring Lock call (the earliest, under join).
type lockset map[string]token.Pos

type problem struct{ c *checker }

func (p problem) Entry() lockset { return lockset{} }

func (p problem) Transfer(b *cfg.Block, in lockset) lockset {
	out := in
	for _, s := range b.Stmts {
		out = p.c.step(out, s, nil)
	}
	return out
}

func (p problem) Join(a, b lockset) lockset {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(lockset, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if cur, ok := out[k]; !ok || v < cur {
			out[k] = v
		}
	}
	return out
}

func (p problem) Equal(a, b lockset) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// analyzeFunc solves the lock-set dataflow over one body and replays
// each block from its IN fact, reporting blocking operations reached
// with a non-empty lock set.
func (c *checker) analyzeFunc(body *ast.BlockStmt) {
	g := cfg.New(body)
	ins := dataflow.Forward[lockset](g, problem{c})
	for _, b := range g.Blocks {
		held := ins[b]
		for _, s := range b.Stmts {
			held = c.step(held, s, c.report)
		}
	}
}

func (c *checker) report(pos token.Pos, desc string, held lockset) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s (locked at line %d)", k, c.pass.Position(held[k]).Line)
	}
	c.pass.Reportf(pos, "%s held across blocking %s", strings.Join(parts, ", "), desc)
}

// step applies one statement's lock transitions to held, emitting a
// finding for each blocking operation executed while a lock is held
// (emit is nil during dataflow transfer). Copy-on-write: held is never
// mutated.
func (c *checker) step(held lockset, s ast.Stmt, emit func(token.Pos, string, lockset)) lockset {
	switch s := s.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at function exit, goroutine bodies on
		// another goroutine: neither executes here. In particular a
		// deferred Unlock does not release the lock for the code below.
		return held
	case *ast.SelectStmt:
		// The select statement itself is the blocking point (cfg places
		// the chosen comm in the clause block). With a default clause it
		// is a non-blocking poll.
		if emit != nil && len(held) > 0 && !hasDefault(s) {
			emit(s.Pos(), "select without default", held)
		}
		return held
	case *ast.RangeStmt:
		for _, n := range cfg.Exec(s) {
			held = c.scan(held, n, s, emit)
		}
		if emit != nil && len(held) > 0 {
			if t := c.pass.TypesInfo.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					emit(s.X.Pos(), "range over channel", held)
				}
			}
		}
		return held
	}
	for _, n := range cfg.Exec(s) {
		held = c.scan(held, n, s, emit)
	}
	return held
}

// scan walks the nodes of one statement that execute in the current
// block, applying Lock/Unlock transitions and reporting blocking
// operations. FuncLit subtrees are skipped (separate functions).
func (c *checker) scan(held lockset, n ast.Node, stmt ast.Stmt, emit func(token.Pos, string, lockset)) lockset {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, op, pos := c.lockOp(x); op != opNone {
				if op == opLock {
					out := make(lockset, len(held)+1)
					for k, v := range held {
						out[k] = v
					}
					out[key] = pos
					held = out
				} else if _, ok := held[key]; ok {
					out := make(lockset, len(held)-1)
					for k, v := range held {
						if k != key {
							out[k] = v
						}
					}
					held = out
				}
				return true
			}
			if emit != nil && len(held) > 0 {
				if desc, ok := c.blockingCall(x); ok {
					emit(x.Pos(), desc, held)
				}
			}
		case *ast.SendStmt:
			if emit != nil && len(held) > 0 && !c.comm[stmt] {
				emit(x.Arrow, "channel send", held)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && emit != nil && len(held) > 0 && !c.comm[stmt] {
				emit(x.OpPos, "channel receive", held)
			}
		}
		return true
	})
	return held
}

const (
	opNone = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a mutex acquire/release. The lock key is
// the rendered receiver expression, so f.mu and f.c.mu are distinct
// locks; selection through an embedded mutex renders the embedding
// struct. Only methods defined in package sync qualify (sync.Locker
// values included).
func (c *checker) lockOp(call *ast.CallExpr) (string, int, token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone, token.NoPos
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone, token.NoPos
	}
	fn := c.methodObj(sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone, token.NoPos
	}
	return types.ExprString(sel.X), op, call.Pos()
}

// methodObj resolves the *types.Func a selector call names, through
// method selections (embedding included) or package-qualified uses.
func (c *checker) methodObj(sel *ast.SelectorExpr) *types.Func {
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok {
		fn, _ := s.Obj().(*types.Func)
		return fn
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn
}

// blockingCall reports whether a call can block, and how to describe
// it. Same-package callees use the transitive classification; a call
// through a same-package interface blocks if any same-package
// implementation does.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := c.callee(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	desc := "call to " + types.ExprString(call.Fun)
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return desc, true
		}
	case "net":
		if isMethod {
			switch fn.Name() {
			case "Read", "Write", "Accept", "ReadFrom", "WriteTo":
				return desc, true
			}
		} else if strings.HasPrefix(fn.Name(), "Dial") || strings.HasPrefix(fn.Name(), "Listen") {
			return desc, true
		}
	case "sync":
		if isMethod && fn.Name() == "Wait" {
			return desc, true
		}
	}
	if fn.Pkg() != c.pass.Pkg && lastElem(fn.Pkg().Path()) == "wire" &&
		(fn.Name() == "ReadFrame" || fn.Name() == "WriteFrame") {
		return desc, true
	}
	if fn.Pkg() == c.pass.Pkg {
		if isMethod && types.IsInterface(sig.Recv().Type()) {
			iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
			if iface != nil && c.ifaceBlocks(iface, fn.Name()) {
				return desc, true
			}
			return "", false
		}
		if fi := c.funcs[fn]; fi != nil && fi.blocks {
			return desc, true
		}
	}
	return "", false
}

// ifaceBlocks reports whether any package-level type implementing
// iface has a blocking method of the given name. This is what connects
// a fetcher's interface call to the remote implementation that crosses
// the network.
func (c *checker) ifaceBlocks(iface *types.Interface, name string) bool {
	scope := c.pass.Pkg.Scope()
	for _, nm := range scope.Names() {
		tn, ok := scope.Lookup(nm).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		T := tn.Type()
		if types.IsInterface(T) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(T, iface):
			impl = T
		case types.Implements(types.NewPointer(T), iface):
			impl = types.NewPointer(T)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, c.pass.Pkg, name)
		if m, ok := obj.(*types.Func); ok {
			if fi := c.funcs[m]; fi != nil && fi.blocks {
				return true
			}
		}
	}
	return false
}

// callee resolves the static callee of a call, or nil for func values
// and builtins.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return c.methodObj(fun)
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// bodyBlocks reports whether a body contains a blocking operation
// outside FuncLit/defer/go subtrees, under the current transitive
// classification.
func (c *checker) bodyBlocks(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && c.comm[s] {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !hasDefault(x) {
				found = true
				return false
			}
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if _, ok := c.blockingCall(x); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
