// Fixtures for the lockheld analyzer: blocking operations reached
// while a mutex is held. The memoFetcher at the bottom reproduces the
// core fetcher bug (mutex held across an interface fetch whose remote
// implementation crosses the network).
package locks

import (
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

type Store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	n    int
}

// ---- direct net I/O under the lock; defer does not release ----

func (s *Store) Flush(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(p) // want `s\.mu \(locked at line \d+\) held across blocking call to s\.conn\.Write`
	return err
}

// ---- released on the straight path before blocking: clean ----

func (s *Store) FlushSafe(p []byte) error {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	_, err := s.conn.Write(p[:n])
	return err
}

// ---- acquired on one branch only: may-hold still reports ----

func (s *Store) MaybeLocked(cond bool, p []byte) {
	if cond {
		s.mu.Lock()
	}
	s.conn.Write(p) // want `s\.mu \(locked at line \d+\) held across blocking call to s\.conn\.Write`
	if cond {
		s.mu.Unlock()
	}
}

// ---- released on every branch: clean ----

func (s *Store) Balanced(cond bool, p []byte) {
	s.mu.Lock()
	if cond {
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.conn.Write(p)
}

// ---- read locks count too ----

func (s *Store) Snapshot(p []byte) {
	s.rw.RLock()
	s.conn.Write(p) // want `s\.rw \(locked at line \d+\) held across blocking call to s\.conn\.Write`
	s.rw.RUnlock()
}

// ---- sleeping under the lock, directly and transitively ----

func (s *Store) Backoff() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `s\.mu \(locked at line \d+\) held across blocking call to time\.Sleep`
	s.mu.Unlock()
}

func pause() { time.Sleep(time.Millisecond) }

func (s *Store) Retry() {
	s.mu.Lock()
	pause() // want `s\.mu \(locked at line \d+\) held across blocking call to pause`
	s.mu.Unlock()
}

// ---- dialing and framed I/O under the lock ----

func (s *Store) Reconnect(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, err := net.Dial("tcp", addr) // want `s\.mu \(locked at line \d+\) held across blocking call to net\.Dial`
	if err != nil {
		return err
	}
	s.conn = conn
	return nil
}

func (s *Store) Hello() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return wire.WriteFrame(s.conn, wire.MsgHello, nil) // want `s\.mu \(locked at line \d+\) held across blocking call to wire\.WriteFrame`
}

// ---- several locks held at once: all named, sorted ----

func (s *Store) Both(h *Hub) {
	h.mu.Lock()
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `h\.mu \(locked at line \d+\), s\.mu \(locked at line \d+\) held across blocking call to time\.Sleep`
	s.mu.Unlock()
	h.mu.Unlock()
}

// ---- channel operations ----

type Hub struct {
	mu sync.Mutex
	ch chan int
}

func (h *Hub) Publish(v int) {
	h.mu.Lock()
	h.ch <- v // want `h\.mu \(locked at line \d+\) held across blocking channel send`
	h.mu.Unlock()
}

func (h *Hub) Next() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return <-h.ch // want `h\.mu \(locked at line \d+\) held across blocking channel receive`
}

// A select with a default is a non-blocking poll: clean.
func (h *Hub) Poll() (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case v := <-h.ch:
		return v, true
	default:
		return 0, false
	}
}

func (h *Hub) WaitNext() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	select { // want `h\.mu \(locked at line \d+\) held across blocking select without default`
	case v := <-h.ch:
		return v
	}
}

func (h *Hub) Drain() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for v := range h.ch { // want `h\.mu \(locked at line \d+\) held across blocking range over channel`
		total += v
	}
	return total
}

// ---- goroutine bodies run elsewhere; deferred Waits run at exit ----

func (h *Hub) Kick(wg *sync.WaitGroup) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() { h.ch <- 1 }() // clean: the send runs on its own goroutine
	defer wg.Wait()           // clean: runs after the unlock at exit
	h.ch = nil
}

func (h *Hub) Gather(wg *sync.WaitGroup) {
	h.mu.Lock()
	wg.Wait() // want `h\.mu \(locked at line \d+\) held across blocking call to wg\.Wait`
	h.mu.Unlock()
}

// ---- a reviewed finding is silenced with a reason ----

func (s *Store) Exchange(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(p) //jaalvet:ignore lockheld — the mutex is this connection's serialization; holding it across I/O is the design
	return err
}

// ---- reproduction of the core fetcher bug: a memoizing wrapper holds
// its mutex across the interface fetch, and one implementation of the
// interface crosses the network ----

type Source interface {
	Fetch(id int) []byte
}

type localSource struct{ data map[int][]byte }

func (l *localSource) Fetch(id int) []byte { return l.data[id] }

type remoteSource struct {
	mu   sync.Mutex
	conn net.Conn
}

func (r *remoteSource) Fetch(id int) []byte {
	buf := make([]byte, 64)
	r.mu.Lock()
	n, err := r.conn.Read(buf) // want `r\.mu \(locked at line \d+\) held across blocking call to r\.conn\.Read`
	r.mu.Unlock()
	if err != nil {
		return nil
	}
	return buf[:n]
}

type memoFetcher struct {
	mu   sync.Mutex
	src  Source
	memo map[int][]byte
}

func (f *memoFetcher) Get(id int) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b, ok := f.memo[id]; ok {
		return b
	}
	b := f.src.Fetch(id) // want `f\.mu \(locked at line \d+\) held across blocking call to f\.src\.Fetch`
	f.memo[id] = b
	return b
}

var (
	_ Source = (*localSource)(nil)
	_ Source = (*remoteSource)(nil)
)
