package lockcopy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockcopy"
)

func TestLockcopy(t *testing.T) {
	analysistest.Run(t, lockcopy.Analyzer, "testdata", "reg", "buf")
}
