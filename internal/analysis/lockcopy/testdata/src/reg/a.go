// Positive lockcopy fixture: copy() and append() moving values whose
// type contains a lock — the copylocks gap go vet does not cover.
package reg

import "sync"

type entry struct {
	mu sync.Mutex
	n  int
}

func grow(entries []entry) []entry {
	bigger := make([]entry, len(entries)*2)
	copy(bigger, entries) // want `copy duplicates reg\.entry values, copying their sync\.Mutex`
	return bigger
}

func add(entries []entry, e entry) []entry {
	return append(entries, e) // want `append copies a reg\.entry value, copying its sync\.Mutex`
}

func merge(dst, src []entry) []entry {
	return append(dst, src...) // want `append copies a reg\.entry value, copying its sync\.Mutex`
}

// Pointer slices move pointers, never lock state.
func growPtrs(entries []*entry) []*entry {
	bigger := make([]*entry, len(entries)*2)
	copy(bigger, entries)
	return bigger
}

// Lock-free element types are untouched.
func growBytes(b []byte, extra ...byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return append(out, extra...)
}

// A reviewed copy of never-locked values is silenced with the
// convention.
func snapshotUnshared(entries []entry) []entry {
	out := make([]entry, len(entries))
	//jaalvet:ignore lockcopy — fixture: entries are construction-time only, locks never held
	copy(out, entries)
	return out
}
