// Negative lockcopy fixture: plain data types flow through copy and
// append without findings.
package buf

type sample struct {
	ts  uint64
	val float64
}

func clone(xs []sample) []sample {
	out := make([]sample, len(xs))
	copy(out, xs)
	return out
}

func push(xs []sample, s sample) []sample {
	return append(xs, s)
}
