// Package lockcopy extends go vet's copylocks to two copy channels vet
// does not look at: the copy and append builtins. `copy(dst, src)` over
// a slice whose element type contains a sync.Mutex (or any other
// no-copy type) duplicates held lock state element by element, and
// `append(s, v)` does the same for the appended value — both compile
// silently and pass vet today. The registry/snapshot code in
// internal/obs and the pool bookkeeping in internal/par traffic in
// exactly such slices, so the gap is live here.
//
// A type "contains a lock" when it transitively holds a field of type
// sync.Mutex, RWMutex, WaitGroup, Once, Cond, Map, Pool, or any
// sync/atomic value type — i.e. anything whose copy go vet would flag
// in an assignment.
package lockcopy

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockcopy checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockcopy",
	Doc:  "flag copy() and append() moving lock-containing values, which go vet's copylocks misses",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "copy":
				if len(call.Args) != 2 {
					return true
				}
				if elem := sliceElem(pass, call.Args[0]); elem != nil {
					if lock := lockPath(elem); lock != "" {
						pass.Reportf(call.Pos(),
							"copy duplicates %s values, copying their %s; copy pointers or reinitialize the locks",
							elem, lock)
					}
				}
			case "append":
				for _, arg := range call.Args[1:] {
					tv, ok := pass.TypesInfo.Types[arg]
					if !ok || tv.Type == nil {
						continue
					}
					t := tv.Type
					// append(dst, src...) copies src's elements.
					if call.Ellipsis.IsValid() {
						if elem := elemOf(t); elem != nil {
							t = elem
						}
					}
					if lock := lockPath(t); lock != "" {
						pass.Reportf(arg.Pos(),
							"append copies a %s value, copying its %s; store pointers in the slice instead",
							t, lock)
					}
				}
			}
			return true
		})
	}
	return nil
}

func sliceElem(pass *analysis.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return elemOf(tv.Type)
}

func elemOf(t types.Type) types.Type {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		return sl.Elem()
	}
	return nil
}

// lockPath reports how t contains a no-copy type ("" when it does not),
// e.g. "sync.Mutex" or "field mu sync.Mutex".
func lockPath(t types.Type) string {
	return lockPathRec(t, map[types.Type]bool{})
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if name := noCopyName(t); name != "" {
		return name
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathRec(u.Field(i).Type(), seen); p != "" {
				return p
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	return ""
}

// noCopyName matches the sync and sync/atomic types that must not be
// copied once in use.
func noCopyName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
			return "sync." + obj.Name()
		}
	case "sync/atomic":
		switch obj.Name() {
		case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
			return "sync/atomic." + obj.Name()
		}
	}
	return ""
}
