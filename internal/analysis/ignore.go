package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression convention: a finding is silenced by an inline
// comment
//
//	//jaalvet:ignore <analyzer>[,<analyzer>...] — <reason>
//
// placed either on the offending line or on the line directly above
// it. The reason is mandatory — a suppression records a reviewed,
// justified exception, not an opt-out — and a bare or unparseable
// jaalvet:ignore comment is itself reported as a finding by the
// driver. "--" is accepted in place of the em dash.

const ignorePrefix = "//jaalvet:ignore"

// suppressions records, per file and line, which analyzers are silenced.
type suppressions struct {
	// byLine maps filename → line → analyzer names (or "all").
	byLine map[string]map[int]map[string]bool
}

// covers reports whether a finding at p from the named analyzer is
// suppressed. A suppression on line L covers findings on L (trailing
// comment) and L+1 (comment on its own line above the offender).
func (s *suppressions) covers(p token.Position, analyzer string) bool {
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// scanSuppressions walks every comment in files, building the
// suppression table and reporting malformed jaalvet:ignore comments
// (missing analyzer name or missing reason) as findings.
func scanSuppressions(fset *token.FileSet, files []*ast.File) (*suppressions, []Finding) {
	sup := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	var malformed []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				names, reason := splitIgnore(rest)
				if len(names) == 0 || reason == "" {
					malformed = append(malformed, Finding{
						Position: pos,
						Analyzer: "jaalvet",
						Message:  "malformed suppression: want //jaalvet:ignore <analyzer> — <reason>",
					})
					continue
				}
				lines := sup.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup.byLine[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return sup, malformed
}

// splitIgnore parses "<analyzer>[,<analyzer>...] — <reason>" (or with
// "--" as the separator). A missing separator or empty reason yields
// reason == "".
func splitIgnore(s string) (names []string, reason string) {
	s = strings.TrimSpace(s)
	var sep int
	var sepLen int
	if i := strings.Index(s, "—"); i >= 0 {
		sep, sepLen = i, len("—")
	} else if i := strings.Index(s, "--"); i >= 0 {
		sep, sepLen = i, 2
	} else {
		return nil, ""
	}
	reason = strings.TrimSpace(s[sep+sepLen:])
	for _, n := range strings.Split(s[:sep], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, reason
}
