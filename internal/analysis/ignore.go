package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression convention: a finding is silenced by an inline
// comment
//
//	//jaalvet:ignore <analyzer>[,<analyzer>...] — <reason>
//
// placed either on the offending line or on the line directly above
// it. The reason is mandatory — a suppression records a reviewed,
// justified exception, not an opt-out — and a bare or unparseable
// jaalvet:ignore comment is itself reported as a finding by the
// driver. "--" is accepted in place of the em dash.
//
// Suppressions that silence nothing are stale: the code they excused
// was fixed or deleted and the comment now misleads reviewers. The
// driver reports them separately (RunDetailed's Stale list) so callers
// can warn without failing the build.

const ignorePrefix = "//jaalvet:ignore"

// supEntry is one parsed jaalvet:ignore comment.
type supEntry struct {
	pos   token.Position
	names map[string]bool // analyzer names, or "all"
	used  bool            // covered at least one diagnostic this run
}

// suppressions records, per file and line, which analyzers are silenced.
type suppressions struct {
	// byLine maps filename → line → entries on that line.
	byLine  map[string]map[int][]*supEntry
	entries []*supEntry
}

// covers reports whether a finding at p from the named analyzer is
// suppressed, marking the covering entry as used. A suppression on
// line L covers findings on L (trailing comment) and L+1 (comment on
// its own line above the offender).
func (s *suppressions) covers(p token.Position, analyzer string) bool {
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, e := range lines[line] {
			if e.names[analyzer] || e.names["all"] {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns a finding for every suppression that silenced nothing,
// provided every analyzer it names actually ran (a suppression for an
// analyzer excluded via -checks cannot be judged). "all" entries are
// only judged when ran is nil, meaning the full analyzer set ran.
func (s *suppressions) stale(ran map[string]bool) []Finding {
	var out []Finding
	for _, e := range s.entries {
		if e.used {
			continue
		}
		judgeable := true
		for n := range e.names {
			if n == "all" {
				if ran != nil {
					judgeable = false
				}
				continue
			}
			if ran != nil && !ran[n] {
				judgeable = false
			}
		}
		if !judgeable {
			continue
		}
		out = append(out, Finding{
			Position: e.pos,
			Analyzer: "jaalvet",
			Message:  "stale suppression: no diagnostic on this or the next line matches " + joinNames(e.names),
		})
	}
	return out
}

func joinNames(names map[string]bool) string {
	var ns []string
	for n := range names {
		ns = append(ns, n)
	}
	// Tiny sets; insertion sort keeps output deterministic.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
	return strings.Join(ns, ",")
}

// scanSuppressions walks every comment in files, building the
// suppression table and reporting malformed jaalvet:ignore comments
// (missing analyzer name or missing reason) as findings.
func scanSuppressions(fset *token.FileSet, files []*ast.File) (*suppressions, []Finding) {
	sup := &suppressions{byLine: make(map[string]map[int][]*supEntry)}
	var malformed []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				names, reason := splitIgnore(rest)
				if len(names) == 0 || reason == "" {
					malformed = append(malformed, Finding{
						Position: pos,
						Analyzer: "jaalvet",
						Message:  "malformed suppression: want //jaalvet:ignore <analyzer> — <reason>",
					})
					continue
				}
				e := &supEntry{pos: pos, names: make(map[string]bool, len(names))}
				for _, n := range names {
					e.names[n] = true
				}
				lines := sup.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*supEntry)
					sup.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], e)
				sup.entries = append(sup.entries, e)
			}
		}
	}
	return sup, malformed
}

// splitIgnore parses "<analyzer>[,<analyzer>...] — <reason>" (or with
// "--" as the separator). A missing separator or empty reason yields
// reason == "".
func splitIgnore(s string) (names []string, reason string) {
	s = strings.TrimSpace(s)
	var sep int
	var sepLen int
	if i := strings.Index(s, "—"); i >= 0 {
		sep, sepLen = i, len("—")
	} else if i := strings.Index(s, "--"); i >= 0 {
		sep, sepLen = i, 2
	} else {
		return nil, ""
	}
	reason = strings.TrimSpace(s[sep+sepLen:])
	for _, n := range strings.Split(s[:sep], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, reason
}
