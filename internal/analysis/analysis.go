// Package analysis is Jaal's static-analysis framework: a dependency-free
// reimplementation of the core golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) plus a package loader and a suppression
// convention, used by the jaal-vet multichecker (cmd/jaal-vet) to enforce
// the repo's determinism, observability hot-path and concurrency
// invariants mechanically.
//
// The runtime determinism tests (TestPipelineParallelDeterminism,
// TestPipelineObsDeterminism) only catch violations that happen to fire
// during a test run; the analyzers here reject whole bug classes at
// review time instead. Each analyzer lives in its own subpackage
// (detrand, mapiter, obshot, atomicmix, lockcopy, wireerr) with
// analysistest fixtures under testdata/src.
//
// The API mirrors x/tools so the analyzers port verbatim if the real
// module ever becomes a dependency; only the loader differs — it shells
// out to `go list -deps -export -json` and type-checks against compiler
// export data, the same strategy as go vet's unitchecker, so it needs
// nothing outside the standard library and the go toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //jaalvet:ignore suppressions. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by jaal-vet -list.
	Doc string
	// Run executes the analyzer on one package. Diagnostics are
	// reported through the pass; the returned error aborts the whole
	// vet run (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	// Analyzer is the currently running checker.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed sources (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's fact tables for Files.
	TypesInfo *types.Info
	// Shared is a per-analyzer scratch map that persists across the
	// packages of one Run, letting an analyzer carry facts between
	// packages (e.g. hotalloc's reachability marks). Packages are
	// visited importers-first — a package runs before anything it
	// imports — so facts flow in call direction: by the time a callee's
	// package is analyzed, every caller package already deposited its
	// facts. The map is nil-safe to read but only non-nil inside Run.
	Shared map[string]any

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a diagnostic position against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// DeterministicPackages names the packages whose outputs must be
// byte-identical across same-seed runs, worker counts, and
// observability settings (DESIGN.md "Performance"; PAPER.md §6). The
// detrand and mapiter analyzers fire only inside these packages.
var DeterministicPackages = map[string]bool{
	"adapt":      true,
	"core":       true,
	"summary":    true,
	"linalg":     true,
	"inference":  true,
	"flowassign": true,
	"netsim":     true,
	"trafficgen": true,
}

// IsDeterministic reports whether the import path names a package with
// the reproducibility obligation. It matches on the final path element
// so both the real tree (repro/internal/core) and analysistest fixture
// paths (core) qualify.
func IsDeterministic(pkgPath string) bool {
	return DeterministicPackages[lastPathElem(pkgPath)]
}

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
