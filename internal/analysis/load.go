package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
}

// goList runs the go command in dir and decodes its JSON object stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Incomplete"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// NewImporter returns a types.Importer that resolves import paths
// through compiler export data files (as produced by `go list -export`).
// This is the unitchecker strategy: no source re-typechecking of
// dependencies, no network, no modules beyond what is already built.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// ExportData maps every dependency of the given packages (resolved in
// dir's module context) to its export data file, compiling as needed.
func ExportData(dir string, pkgs ...string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	entries, err := goList(dir, append([]string{"-deps", "-export"}, pkgs...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// TypeCheck parses no files itself: it type-checks the given parsed
// files as package path, resolving imports through imp.
func TypeCheck(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load loads, parses and type-checks the packages matched by patterns,
// resolved in dir's module context. Test files are excluded: the
// invariants govern production code, and determinism tests themselves
// legitimately use wall clocks and unseeded randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		if e.Incomplete {
			return nil, fmt.Errorf("analysis: package %s did not load cleanly", e.ImportPath)
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := TypeCheck(e.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: e.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Finding is one surviving diagnostic with its position resolved.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings — suppressions already applied, malformed suppression
// comments reported as findings themselves — in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		sup, malformed := scanSuppressions(pkg.Fset, pkg.Files)
		out = append(out, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diagnostics {
				p := pkg.Fset.Position(d.Pos)
				if !sup.covers(p, a.Name) {
					out = append(out, Finding{Position: p, Analyzer: d.Analyzer, Message: d.Message})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := out[i].Position, out[j].Position
		if fi.Filename != fj.Filename {
			return fi.Filename < fj.Filename
		}
		if fi.Line != fj.Line {
			return fi.Line < fj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
