package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	// Error carries the load/build error for this package when the -e
	// flag let go list continue past it. Without decoding this field
	// the loader can only say "did not load cleanly" — the actual
	// compiler message (syntax error, broken import) lives here.
	Error      *listError
	DepsErrors []*listError
}

// listError mirrors go list's PackageError JSON shape.
type listError struct {
	Pos string // file:line:col, may be empty
	Err string
}

func (e *listError) String() string {
	if e.Pos != "" {
		return e.Pos + ": " + e.Err
	}
	return e.Err
}

// goList runs the go command in dir and decodes its JSON object stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error,DepsErrors"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// NewImporter returns a types.Importer that resolves import paths
// through compiler export data files (as produced by `go list -export`).
// This is the unitchecker strategy: no source re-typechecking of
// dependencies, no network, no modules beyond what is already built.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// ExportData maps every dependency of the given packages (resolved in
// dir's module context) to its export data file, compiling as needed.
func ExportData(dir string, pkgs ...string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	entries, err := goList(dir, append([]string{"-deps", "-export"}, pkgs...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// TypeCheck parses no files itself: it type-checks the given parsed
// files as package path, resolving imports through imp.
func TypeCheck(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load loads, parses and type-checks the packages matched by patterns,
// resolved in dir's module context. Test files are excluded: the
// invariants govern production code, and determinism tests themselves
// legitimately use wall clocks and unseeded randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		if e.Incomplete || e.Error != nil {
			// Surface the underlying compiler/loader message instead of
			// a bare "did not load cleanly": go list -e keeps going past
			// broken packages and parks the reason in Error/DepsErrors.
			switch {
			case e.Error != nil:
				return nil, fmt.Errorf("analysis: package %s did not load cleanly: %s", e.ImportPath, e.Error)
			case len(e.DepsErrors) > 0:
				return nil, fmt.Errorf("analysis: package %s did not load cleanly: dependency error: %s", e.ImportPath, e.DepsErrors[0])
			default:
				return nil, fmt.Errorf("analysis: package %s did not load cleanly (no detail from go list)", e.ImportPath)
			}
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := TypeCheck(e.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: e.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Finding is one surviving diagnostic with its position resolved.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// AnalyzerStats counts one analyzer's activity across a whole run.
type AnalyzerStats struct {
	// Findings is the number of surviving (unsuppressed) diagnostics.
	Findings int
	// Suppressed is the number of diagnostics silenced by a
	// //jaalvet:ignore comment.
	Suppressed int
}

// Result is the full outcome of a vet run.
type Result struct {
	// Findings are the surviving diagnostics (suppressions applied,
	// malformed suppression comments included) in file/line order.
	Findings []Finding
	// Stale lists jaalvet:ignore comments that silenced nothing —
	// advisory, reported separately so callers can warn without
	// failing.
	Stale []Finding
	// Stats maps analyzer name → counts; only analyzers with activity
	// appear. Malformed suppressions count under "jaalvet".
	Stats map[string]*AnalyzerStats
}

// Run applies every analyzer to every package and returns the surviving
// findings — suppressions already applied, malformed suppression
// comments reported as findings themselves — in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	res, err := RunDetailed(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunDetailed is Run plus per-analyzer counts and stale-suppression
// detection. Packages are visited importers-first (a package before
// everything it imports) so analyzers using Pass.Shared see caller
// packages before callee packages; findings are still reported in
// file/line order regardless.
func RunDetailed(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{Stats: make(map[string]*AnalyzerStats)}
	stat := func(name string) *AnalyzerStats {
		s := res.Stats[name]
		if s == nil {
			s = &AnalyzerStats{}
			res.Stats[name] = s
		}
		return s
	}
	ran := make(map[string]bool, len(analyzers))
	shared := make(map[string]map[string]any, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		shared[a.Name] = make(map[string]any)
	}
	for _, pkg := range importersFirst(pkgs) {
		sup, malformed := scanSuppressions(pkg.Fset, pkg.Files)
		res.Findings = append(res.Findings, malformed...)
		stat("jaalvet").Findings += len(malformed)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Shared:    shared[a.Name],
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diagnostics {
				p := pkg.Fset.Position(d.Pos)
				if sup.covers(p, a.Name) {
					stat(a.Name).Suppressed++
				} else {
					res.Findings = append(res.Findings, Finding{Position: p, Analyzer: d.Analyzer, Message: d.Message})
					stat(a.Name).Findings++
				}
			}
		}
		res.Stale = append(res.Stale, sup.stale(ran)...)
	}
	sortFindings(res.Findings)
	sortFindings(res.Stale)
	if s, ok := res.Stats["jaalvet"]; ok && s.Findings == 0 && s.Suppressed == 0 {
		delete(res.Stats, "jaalvet")
	}
	return res, nil
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		fi, fj := fs[i].Position, fs[j].Position
		if fi.Filename != fj.Filename {
			return fi.Filename < fj.Filename
		}
		if fi.Line != fj.Line {
			return fi.Line < fj.Line
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// importersFirst orders packages so that every package precedes the
// packages it imports (reverse dependency order), deterministically:
// roots and import edges are both walked in path order. Call direction
// follows import direction, so cross-package facts deposited by an
// importer are visible when its dependencies are analyzed.
func importersFirst(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	roots := make([]*Package, len(pkgs))
	copy(roots, pkgs)
	sort.Slice(roots, func(i, j int) bool { return roots[i].Path < roots[j].Path })

	// DFS post-order over import edges puts dependencies first;
	// reversing it puts importers first.
	var post []*Package
	visited := make(map[string]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p.Path] {
			return
		}
		visited[p.Path] = true
		imps := p.Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, ip := range imps {
			paths = append(paths, ip.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if q := byPath[path]; q != nil {
				visit(q)
			}
		}
		post = append(post, p)
	}
	for _, p := range roots {
		visit(p)
	}
	out := make([]*Package, len(post))
	for i, p := range post {
		out[len(post)-1-i] = p
	}
	return out
}
