// Package spanend enforces the span lifecycle contract of the tracing
// layer (internal/trace, and historically internal/obs): every value
// returned by a Start*Span* constructor must reach an End() call.
// A span that is started but never ended silently drops its stage from
// the epoch timeline and, when a histogram is attached, from the
// aggregate metrics — the instrumentation point looks wired but records
// nothing.
//
// The analyzer flags a Start*Span* call whose result is
//
//   - discarded (`trace.StartSpan(...)` as a statement),
//   - assigned to the blank identifier, or
//   - bound to a local variable that is never the receiver of an
//     End() call anywhere in the file (closures included).
//
// Chained endings (`defer trace.StartSpan(...).End()`) and escaping
// results (returned, passed to another function, stored in a struct)
// are accepted — ownership of the End obligation moved elsewhere.
package spanend

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the spanend checker.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "require End() on every Start*Span* result",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

// spanPackage reports whether path is one of the packages whose span
// constructors carry the End obligation.
func spanPackage(path string) bool {
	return path == "trace" || strings.HasSuffix(path, "/trace") ||
		path == "obs" || strings.HasSuffix(path, "/obs")
}

// spanStart resolves call's callee when it is a span constructor:
// a function named Start…Span… from a span package.
func spanStart(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !spanPackage(fn.Pkg().Path()) {
		return nil
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Start") || !strings.Contains(name, "Span") {
		return nil
	}
	return fn
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	if spanPackage(pass.Pkg.Path()) {
		// The span packages own the lifecycle; their internals (and
		// tests exercising non-End paths) are exempt.
		return
	}

	// tracked maps a local span variable to the constructor call that
	// produced it, pending proof of an End.
	tracked := map[*types.Var]*ast.CallExpr{}

	// Pass 1: classify every span-start call by its syntactic context.
	// The parent stack tells a discarded result from a chained .End()
	// from an escaping use.
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)

		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := spanStart(pass, call)
		if fn == nil {
			return true
		}
		switch parent := parentOf(stack).(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"result of %s.%s discarded: the span never Ends and records nothing",
				fn.Pkg().Name(), fn.Name())
		case *ast.SelectorExpr:
			// Chained use: only an immediate .End() settles the span;
			// any other selector loses the value unended.
			if parent.Sel.Name != "End" {
				pass.Reportf(call.Pos(),
					"result of %s.%s used without End(): chain .End() or bind it to a variable",
					fn.Pkg().Name(), fn.Name())
			}
		case *ast.AssignStmt:
			// Only the whole-result binding forms are lifecycle events;
			// a start call on the RHS of a multi-value expression is an
			// escape (handled by default).
			for i, rhs := range parent.Rhs {
				if rhs != ast.Expr(call) || i >= len(parent.Lhs) {
					continue
				}
				id, ok := parent.Lhs[i].(*ast.Ident)
				if !ok {
					continue // field/index destination: escaped
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"result of %s.%s assigned to _: the span never Ends and records nothing",
						fn.Pkg().Name(), fn.Name())
					continue
				}
				if v := localVar(pass, id); v != nil {
					tracked[v] = call
				}
			}
		}
		return true
	})

	if len(tracked) == 0 {
		return
	}

	// Pass 2: settle each tracked variable. An `x.End` selector ends
	// it; any other read escapes it (the End obligation moved with the
	// value) — except a blank assignment `_ = x`, which reads the span
	// only to satisfy the compiler. A variable with neither End nor
	// escape is a dead span.
	ended := map[*types.Var]bool{}
	escaped := map[*types.Var]bool{}
	stack = stack[:0]
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || tracked[v] == nil {
			return true
		}
		switch parent := parentOf(stack).(type) {
		case *ast.SelectorExpr:
			if parent.X == ast.Expr(id) && parent.Sel.Name == "End" {
				ended[v] = true
				return true
			}
		case *ast.AssignStmt:
			if allBlank(parent.Lhs) {
				return true // `_ = x` keeps the compiler quiet, not the span
			}
		}
		escaped[v] = true
		return true
	})
	for v, call := range tracked {
		if ended[v] || escaped[v] {
			continue
		}
		pass.Reportf(call.Pos(),
			"span %s is started but never Ends: it records nothing", v.Name())
	}
}

// allBlank reports whether every assignment destination is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		if id, ok := e.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// parentOf returns the syntactic parent of the node on top of stack.
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// localVar resolves id to the variable it defines or uses.
func localVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}
