// Positive spanend fixture: span constructors whose results never
// reach End(), alongside every accepted ending/escape form.
package spanfix

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

var h = obs.NewHistogram("spanfix_seconds", "fixture", nil)

// A discarded result can never End.
func discarded(epoch uint64) {
	trace.StartSpan(h, trace.StageInfer, trace.ControllerProc, epoch) // want `result of trace\.StartSpan discarded`
}

// Blank assignment is a discard with extra steps.
func blank(epoch uint64) {
	_ = trace.StartMonitorSpan(nil, trace.StageSummarize, 0, epoch) // want `result of trace\.StartMonitorSpan assigned to _`
}

// A local that is only blank-read later still never Ends.
func neverEnded(epoch uint64) int {
	sp := trace.StartSpan(h, trace.StageInfer, trace.ControllerProc, epoch) // want `span sp is started but never Ends`
	n := 1 + 1
	_ = sp
	return n
}

// The canonical chained form.
func chained(epoch uint64) {
	defer trace.StartSpan(h, trace.StageInfer, trace.ControllerProc, epoch).End()
}

// Bind, work, End — including an End inside a closure.
func boundAndEnded(epoch uint64) {
	sp := trace.StartSpanWhen(true, nil, trace.StageCollect, 0, epoch)
	sp.End()
	sp2 := trace.StartMonitorSpanWhen(false, nil, trace.StageEncode, 1, epoch)
	func() { sp2.End() }()
}

// End via defer on the variable.
func deferEnded(epoch uint64) {
	sp := trace.StartSpan(nil, trace.StageShip, 2, epoch)
	defer sp.End()
}

// Escaping results move the End obligation to the consumer.
func escapes(epoch uint64) trace.Span {
	sp := trace.StartSpan(nil, trace.StageDecode, 3, epoch)
	consume(sp)
	return trace.StartSpan(nil, trace.StageInfer, trace.ControllerProc, epoch)
}

func consume(sp trace.Span) { sp.End() }

// A reviewed exception is silenced with the convention.
func suppressed(epoch uint64) {
	//jaalvet:ignore spanend — fixture: process exits before End could run
	trace.StartSpan(h, trace.StageInfer, trace.ControllerProc, epoch)
}
