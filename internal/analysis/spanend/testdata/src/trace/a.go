// Negative spanend fixture: a package whose import path ends in the
// span-package set is the lifecycle owner — its internals (tests of
// non-End paths included) start spans freely.
package trace

import "repro/internal/trace"

func lifecycleOwner(epoch uint64) {
	trace.StartSpan(nil, trace.StageInfer, trace.ControllerProc, epoch)
	_ = trace.StartMonitorSpan(nil, trace.StageEncode, 0, epoch)
}
