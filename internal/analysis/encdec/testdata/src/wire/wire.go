// Fixture codecs for the encdec analyzer: each Encode/Decode pair
// exercises one rule. The shapes mirror internal/wire, internal/summary
// and internal/trace.
package wire

import (
	"encoding/binary"
	"fmt"
)

// ---- symmetric pair, decoder reads out of order: no findings ----

func EncodeGood(id int, epoch uint64, pending int) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint32(buf[0:], uint32(id))
	binary.BigEndian.PutUint64(buf[4:], epoch)
	binary.BigEndian.PutUint32(buf[12:], uint32(pending))
	return buf
}

func DecodeGood(p []byte) (int, uint64, int, error) {
	if len(p) != 16 {
		return 0, 0, 0, errShort
	}
	pending := int(binary.BigEndian.Uint32(p[12:])) // out of order: fine
	id := int(binary.BigEndian.Uint32(p[0:]))
	epoch := binary.BigEndian.Uint64(p[4:])
	return id, epoch, pending, nil
}

// ---- reserved byte written but never read (the trace.AppendWire
// flags-byte bug, reproduced) ----

func AppendHeader(dst []byte, id uint32, n uint16) []byte {
	dst = append(dst, 'J', 'T', 1, 0) // want `AppendHeader writes 1 bytes at offset 3 that ParseHeader never reads`
	dst = binary.BigEndian.AppendUint32(dst, id)
	dst = binary.BigEndian.AppendUint16(dst, n)
	return dst
}

func ParseHeader(p []byte) (uint32, uint16, error) {
	if len(p) < 10 {
		return 0, 0, errShort
	}
	if p[0] != 'J' || p[1] != 'T' || p[2] != 1 {
		return 0, 0, errShort
	}
	n := binary.BigEndian.Uint16(p[8:])
	id := binary.BigEndian.Uint32(p[4:])
	return id, n, nil
}

// ---- width disagreement at a shared offset ----

func EncodeCount(v uint32) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf[0:], v) // want `offset 0: EncodeCount writes 4 bytes but DecodeCount reads 2`
	return buf
}

func DecodeCount(p []byte) (uint16, error) {
	if len(p) < 2 {
		return 0, errShort
	}
	return binary.BigEndian.Uint16(p[0:]), nil
}

// ---- decoder reads bytes the encoder never wrote ----

func EncodeTiny(v uint16) []byte {
	buf := make([]byte, 2)
	binary.BigEndian.PutUint16(buf[0:], v)
	return buf
}

func DecodeTiny(p []byte) (uint16, byte, error) {
	if len(p) < 3 {
		return 0, 0, errShort
	}
	flags := p[2] // want `DecodeTiny reads 1 bytes at offset 2 that EncodeTiny never writes`
	return binary.BigEndian.Uint16(p[0:]), flags, nil
}

// ---- encoder allocation does not match its writes ----

func EncodeShortAlloc(a, b uint32) []byte {
	buf := make([]byte, 6) // want `EncodeShortAlloc sizes buf at 6 bytes but its writes cover 8`
	binary.BigEndian.PutUint32(buf[0:], a)
	binary.BigEndian.PutUint32(buf[4:], b)
	return buf
}

func DecodeShortAlloc(p []byte) (uint32, uint32, error) {
	if len(p) < 8 {
		return 0, 0, errShort
	}
	return binary.BigEndian.Uint32(p[0:]), binary.BigEndian.Uint32(p[4:]), nil
}

// ---- repeated-field loops must agree on element width ----

func AppendVals(dst []byte, xs []uint32) []byte {
	for _, x := range xs {
		dst = binary.BigEndian.AppendUint32(dst, x) // want `field 1: AppendVals writes 4 bytes where ParseVals reads 8`
	}
	return dst
}

func ParseVals(p []byte) []uint64 {
	var out []uint64
	for off := 0; off+8 <= len(p); off += 8 {
		out = append(out, binary.BigEndian.Uint64(p[off:]))
	}
	return out
}

// ---- optional fields must be gated by the same condition ----

func AppendOpt(dst []byte, v uint32, extended bool) []byte {
	dst = binary.BigEndian.AppendUint32(dst, v)
	if extended { // want `conditional fields gated differently`
		dst = binary.BigEndian.AppendUint16(dst, 7)
	}
	return dst
}

func ParseOpt(p []byte) (uint32, uint16) {
	var extra uint16
	v := binary.BigEndian.Uint32(p[0:])
	if p[0] == 9 { // want `ParseOpt reads 1 bytes at offset 0 that AppendOpt never writes`
		extra = binary.BigEndian.Uint16(p[4:])
	}
	return v, extra
}

// ---- structural mismatch: a repeated block with no counterpart ----

func AppendBlock(dst []byte, vs []uint16) []byte {
	for _, v := range vs { // want `AppendBlock has 1 gated/looped field blocks but ParseBlock has 0`
		dst = binary.BigEndian.AppendUint16(dst, v)
	}
	return dst
}

func ParseBlock(p []byte) uint16 {
	return binary.BigEndian.Uint16(p[0:]) // want `ParseBlock reads 2 bytes at offset 0 that AppendBlock never writes`
}

// ---- //jaal:pair joins names the stems cannot ----

//jaal:pair ReadChunk
func AppendBlob(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v) // want `offset 0: AppendBlob writes 8 bytes but ReadChunk reads 4`
}

func ReadChunk(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, errShort
	}
	return binary.BigEndian.Uint32(p[0:]), nil
}

// ---- byte order must agree ----

func EncodeLE(v uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf[0:], v) // want `offset 0: EncodeLE writes LittleEndian but DecodeLE reads BigEndian`
	return buf
}

func DecodeLE(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, errShort
	}
	return binary.BigEndian.Uint32(p[0:]), nil
}

// ---- same-package helpers are inlined on both sides ----

func EncodeList(xs []uint32) []byte {
	buf := make([]byte, 0, len(xs)*4)
	return appendAll(buf, xs)
}

func DecodeList(p []byte) ([]uint32, error) {
	if len(p)%4 != 0 {
		return nil, errShort
	}
	out := make([]uint32, len(p)/4)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	return out, nil
}

func appendAll(dst []byte, xs []uint32) []byte {
	for _, x := range xs {
		dst = binary.BigEndian.AppendUint32(dst, x)
	}
	return dst
}

// ---- kind-gated fields, gated identically: no findings ----

type Rec struct {
	Kind  byte
	V     uint64
	Extra uint32
}

func MarshalRec(r *Rec) []byte {
	var dst []byte
	dst = append(dst, r.Kind)
	dst = binary.BigEndian.AppendUint64(dst, r.V)
	if r.Kind == 2 {
		dst = binary.BigEndian.AppendUint32(dst, r.Extra)
	}
	return dst
}

func UnmarshalRec(p []byte) (*Rec, error) {
	if len(p) < 9 {
		return nil, errShort
	}
	r := &Rec{Kind: p[0]}
	r.V = binary.BigEndian.Uint64(p[1:])
	if r.Kind == 2 {
		if len(p) < 13 {
			return nil, errShort
		}
		r.Extra = binary.BigEndian.Uint32(p[9:])
	}
	return r, nil
}

// ---- diagnostic reads are not wire structure: the byte reads inside
// fmt.Errorf / panic arguments (the summary codec's "unknown kind
// byte %d" branch) must not make an error branch op-bearing ----

func MarshalKind(v uint16) []byte {
	buf := make([]byte, 3)
	buf[0] = 1
	binary.BigEndian.PutUint16(buf[1:], v)
	return buf
}

func UnmarshalKind(p []byte) (uint16, error) {
	if len(p) < 3 {
		return 0, errShort
	}
	if p[0] > 3 {
		panic(fmt.Sprintf("wire: kind byte %d out of range", p[0]))
	}
	if p[0] != 1 {
		return 0, fmt.Errorf("wire: unknown kind byte %d", p[0])
	}
	return binary.BigEndian.Uint16(p[1:]), nil
}

type wireError string

func (e wireError) Error() string { return string(e) }

const errShort = wireError("short")
