// A package outside the codec set (wire, summary, packet, trace): the
// analyzer must stay silent even on an asymmetric pair.
package other

import "encoding/binary"

func EncodeThing(v uint32) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf[0:], v)
	return buf
}

func DecodeThing(p []byte) uint64 {
	return binary.BigEndian.Uint64(p[0:])
}
