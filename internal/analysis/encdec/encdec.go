// Package encdec checks wire-format symmetry: for every encoder/decoder
// pair in a codec package (wire, summary, packet, trace), the byte-level
// writes of the encoder must mirror the byte-level reads of the decoder
// in offset, width and count — including fields behind version or kind
// gates, which must be gated by the same condition on both sides.
//
// Pairing is by name stem: EncodeX↔DecodeX, AppendX↔ParseX,
// MarshalX↔UnmarshalX, WriteX↔ReadX (prefixes mix freely — an AppendX
// pairs with a DecodeX of the same stem). Irregular pairs are declared
// with a doc-comment directive on either side:
//
//	//jaal:pair DecodeFrom
//
// The checker extracts an operation sketch from each side:
// binary.BigEndian.{PutUintN,AppendUintN,UintN} calls, byte-slice index
// reads and writes, and single-byte appends, each with a width and an
// offset (literal, sequentially assigned for append chains, or
// unknown). Same-package helper calls are inlined, op-free branches
// (length guards, error checks) are dropped, loops and op-bearing
// conditionals become structural groups that must match pairwise. When
// every offset on both sides is known the comparison is positional —
// a decoder may read fields in any order — otherwise widths are
// compared in sequence. Encoders that allocate make([]byte, N) with a
// constant N (or a local [N]byte array) are additionally checked to
// write exactly N bytes.
package encdec

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the encdec checker.
var Analyzer = &analysis.Analyzer{
	Name: "encdec",
	Doc:  "require encoder writes and decoder reads to agree in offset, width, count and gating",
	Run:  run,
}

// codecPackages names the package basenames whose encode/decode pairs
// are checked.
var codecPackages = map[string]bool{
	"wire":    true,
	"summary": true,
	"packet":  true,
	"trace":   true,
}

var encoderPrefixes = []string{"Encode", "Append", "Marshal", "Write"}
var decoderPrefixes = []string{"Decode", "Parse", "Unmarshal", "Read"}

const pairDirective = "//jaal:pair"

func run(pass *analysis.Pass) error {
	if !codecPackages[lastElem(pass.Pkg.Path())] {
		return nil
	}

	ex := &extractor{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		visiting: map[*ast.FuncDecl]bool{},
	}
	byName := map[string]*ast.FuncDecl{}
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fns = append(fns, fd)
			byName[fd.Name.Name] = fd
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				ex.decls[obj] = fd
			}
		}
	}

	type pair struct{ enc, dec *ast.FuncDecl }
	var pairs []pair
	paired := map[*ast.FuncDecl]bool{}

	// Explicit //jaal:pair directives first: they override stems.
	for _, fd := range fns {
		other := directiveTarget(fd)
		if other == "" {
			continue
		}
		cp := byName[other]
		if cp == nil {
			pass.Reportf(fd.Pos(), "jaal:pair names %s, which is not a function in this package", other)
			continue
		}
		if paired[fd] || paired[cp] {
			continue
		}
		enc, dec := fd, cp
		if role(dec.Name.Name) == "enc" || role(enc.Name.Name) == "dec" {
			enc, dec = dec, enc
		}
		pairs = append(pairs, pair{enc, dec})
		paired[enc], paired[dec] = true, true
	}

	// Stem pairing for the rest.
	encByStem := map[string]*ast.FuncDecl{}
	for _, fd := range fns {
		if paired[fd] || role(fd.Name.Name) != "enc" {
			continue
		}
		encByStem[stem(fd.Name.Name)] = fd
	}
	for _, fd := range fns {
		if paired[fd] || role(fd.Name.Name) != "dec" {
			continue
		}
		if enc := encByStem[stem(fd.Name.Name)]; enc != nil && !paired[enc] {
			pairs = append(pairs, pair{enc, fd})
			paired[enc], paired[fd] = true, true
		}
	}

	sort.Slice(pairs, func(i, j int) bool { return pairs[i].enc.Pos() < pairs[j].enc.Pos() })
	for _, pr := range pairs {
		encItems := filterRole(ex.extractFunc(pr.enc), true)
		decItems := filterRole(ex.extractFunc(pr.dec), false)
		if !hasOps(encItems) && !hasOps(decItems) {
			continue // not a byte codec (JSON writers etc.)
		}
		assignSequential(encItems)
		cmp := &comparer{pass: pass, encName: pr.enc.Name.Name, decName: pr.dec.Name.Name, encPos: pr.enc.Pos()}
		cmp.compare(encItems, decItems)
		checkAllocTotal(pass, ex, pr.enc, encItems)
	}
	return nil
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// role classifies a function name as encoder ("enc"), decoder ("dec"),
// or neither.
func role(name string) string {
	for _, p := range decoderPrefixes {
		if strings.HasPrefix(name, p) {
			return "dec"
		}
	}
	for _, p := range encoderPrefixes {
		if strings.HasPrefix(name, p) {
			return "enc"
		}
	}
	return ""
}

// stem strips the role prefix: EncodeLoadReport → LoadReport.
func stem(name string) string {
	for _, p := range append(append([]string{}, decoderPrefixes...), encoderPrefixes...) {
		if strings.HasPrefix(name, p) {
			return strings.TrimPrefix(name, p)
		}
	}
	return name
}

// directiveTarget returns the counterpart named by a //jaal:pair doc
// comment, or "".
func directiveTarget(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, pairDirective); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// ---- operation sketch ----

// op is one byte-level access.
type op struct {
	write  bool
	width  int
	off    int          // -1 when not statically known
	seq    bool         // append-style: offset follows the previous append
	buf    types.Object // buffer variable, nil when unknown
	endian string
	pos    token.Pos
}

// item is an op or a structural group (loop body, gated branch).
type item struct {
	op    *op
	kind  string // "", "loop", "cond"
	sig   string // normalized condition, kind=="cond"
	pos   token.Pos
	items []item
}

type extractor struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	visiting map[*ast.FuncDecl]bool
}

func (x *extractor) extractFunc(fd *ast.FuncDecl) []item {
	if x.visiting[fd] {
		return nil
	}
	x.visiting[fd] = true
	defer delete(x.visiting, fd)
	return x.stmts(fd.Body.List)
}

func (x *extractor) stmts(list []ast.Stmt) []item {
	var out []item
	for _, s := range list {
		out = append(out, x.stmt(s)...)
	}
	return out
}

func (x *extractor) stmt(s ast.Stmt) []item {
	switch s := s.(type) {
	case *ast.IfStmt:
		var out []item
		if s.Init != nil {
			out = append(out, x.stmt(s.Init)...)
		}
		out = append(out, x.expr(s.Cond)...)
		out = append(out, x.branch("cond", x.condSig(s.Cond), s.Body.Pos(), x.stmts(s.Body.List))...)
		if s.Else != nil {
			out = append(out, x.branch("cond", "!("+x.condSig(s.Cond)+")", s.Else.Pos(), x.stmt(s.Else))...)
		}
		return out
	case *ast.ForStmt:
		var out []item
		if s.Init != nil {
			out = append(out, x.stmt(s.Init)...)
		}
		if s.Cond != nil {
			out = append(out, x.expr(s.Cond)...)
		}
		body := x.stmts(s.Body.List)
		if s.Post != nil {
			body = append(body, x.stmt(s.Post)...)
		}
		return append(out, x.branch("loop", "", s.Pos(), body)...)
	case *ast.RangeStmt:
		out := x.expr(s.X)
		return append(out, x.branch("loop", "", s.Pos(), x.stmts(s.Body.List))...)
	case *ast.SwitchStmt:
		var out []item
		if s.Init != nil {
			out = append(out, x.stmt(s.Init)...)
		}
		if s.Tag != nil {
			out = append(out, x.expr(s.Tag)...)
		}
		for _, cc := range s.Body.List {
			c := cc.(*ast.CaseClause)
			sig := "default"
			if len(c.List) > 0 {
				var parts []string
				for _, e := range c.List {
					parts = append(parts, x.condSig(e))
				}
				sig = strings.Join(parts, ",")
			}
			out = append(out, x.branch("cond", sig, c.Pos(), x.stmts(c.Body))...)
		}
		return out
	case *ast.TypeSwitchStmt:
		var out []item
		for _, cc := range s.Body.List {
			c := cc.(*ast.CaseClause)
			out = append(out, x.branch("cond", "type", c.Pos(), x.stmts(c.Body))...)
		}
		return out
	case *ast.SelectStmt:
		var out []item
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			out = append(out, x.branch("cond", "comm", c.Pos(), x.stmts(c.Body))...)
		}
		return out
	case *ast.BlockStmt:
		return x.stmts(s.List)
	case *ast.LabeledStmt:
		return x.stmt(s.Stmt)
	case *ast.AssignStmt:
		var out []item
		for _, lhs := range s.Lhs {
			if o := x.indexWrite(lhs); o != nil {
				out = append(out, item{op: o})
			}
		}
		for _, rhs := range s.Rhs {
			out = append(out, x.expr(rhs)...)
		}
		return out
	case *ast.DeferStmt, *ast.GoStmt:
		return nil
	case *ast.ExprStmt:
		return x.expr(s.X)
	case *ast.ReturnStmt:
		var out []item
		for _, e := range s.Results {
			out = append(out, x.expr(e)...)
		}
		return out
	case *ast.DeclStmt:
		var out []item
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						out = append(out, x.expr(e)...)
					}
				}
			}
		}
		return out
	default:
		return nil
	}
}

// branch wraps body items into a group, dropping op-free branches
// (length guards and error returns are not wire structure).
func (x *extractor) branch(kind, sig string, pos token.Pos, body []item) []item {
	if !hasOps(body) {
		return nil
	}
	return []item{{kind: kind, sig: sig, pos: pos, items: body}}
}

// expr collects ops from an expression tree in evaluation order.
func (x *extractor) expr(e ast.Expr) []item {
	var out []item
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if x.diagnostic(n) {
				// Reads inside error-formatting and panic arguments
				// describe a failure; they are not wire structure.
				return false
			}
			if items, handled := x.call(n); handled {
				out = append(out, items...)
				return false
			}
		case *ast.IndexExpr:
			if o := x.indexRead(n); o != nil {
				out = append(out, item{op: o})
				return false
			}
		}
		return true
	})
	return out
}

// call handles the recognized op-producing calls; handled=false lets
// the generic walk continue.
func (x *extractor) call(call *ast.CallExpr) ([]item, bool) {
	// binary.BigEndian.{PutUintN, AppendUintN, UintN}.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
			(inner.Sel.Name == "BigEndian" || inner.Sel.Name == "LittleEndian") {
			endian := inner.Sel.Name
			name := sel.Sel.Name
			width := widthOf(name)
			if width > 0 && len(call.Args) >= 1 {
				var out []item
				switch {
				case strings.HasPrefix(name, "PutUint"):
					buf, off := x.bufAndOff(call.Args[0])
					out = append(out, item{op: &op{write: true, width: width, off: off, buf: buf, endian: endian, pos: call.Pos()}})
					for _, a := range call.Args[1:] {
						out = append(out, x.expr(a)...)
					}
				case strings.HasPrefix(name, "AppendUint"):
					buf, _ := x.bufAndOff(call.Args[0])
					out = append(out, item{op: &op{write: true, width: width, off: -1, seq: true, buf: buf, endian: endian, pos: call.Pos()}})
					for _, a := range call.Args[1:] {
						out = append(out, x.expr(a)...)
					}
				default: // UintN read
					buf, off := x.bufAndOff(call.Args[0])
					out = append(out, item{op: &op{width: width, off: off, buf: buf, endian: endian, pos: call.Pos()}})
				}
				return out, true
			}
		}
	}
	// append(dst, b0, b1, ...) of byte values.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) >= 2 {
		if x.isByteSlice(call.Args[0]) {
			var out []item
			if call.Ellipsis == token.NoPos {
				buf, _ := x.bufAndOff(call.Args[0])
				for _, a := range call.Args[1:] {
					if x.isByteValue(a) {
						out = append(out, item{op: &op{write: true, width: 1, off: -1, seq: true, buf: buf, pos: a.Pos()}})
					}
					out = append(out, x.expr(a)...)
				}
			}
			// append(dst, local[:]...) flushes a buffer whose writes
			// were already counted: no ops.
			return out, true
		}
	}
	// Same-package helper: inline its sketch.
	if fd := x.callee(call); fd != nil {
		inlined := x.extractFunc(fd)
		var out []item
		out = append(out, inlined...)
		for _, a := range call.Args {
			out = append(out, x.expr(a)...)
		}
		return out, true
	}
	return nil, false
}

// diagnostic reports whether call formats a failure — a fmt-package
// call or a builtin panic. Byte reads inside such arguments (the
// "unknown kind byte %d" style) are diagnostic, not decode ops.
func (x *extractor) diagnostic(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, builtin := x.pass.TypesInfo.Uses[fun].(*types.Builtin)
			return builtin
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := x.pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() == "fmt"
			}
		}
	}
	return false
}

// callee resolves a call to a same-package FuncDecl, or nil.
func (x *extractor) callee(call *ast.CallExpr) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := x.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != x.pass.Pkg {
		return nil
	}
	return x.decls[fn]
}

// indexWrite recognizes buf[i] = v on a byte buffer.
func (x *extractor) indexWrite(lhs ast.Expr) *op {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok || !x.isByteSlice(ix.X) {
		return nil
	}
	buf, _ := x.bufAndOff(ix.X)
	return &op{write: true, width: 1, off: x.constVal(ix.Index), buf: buf, pos: ix.Pos()}
}

// indexRead recognizes a read of buf[i] on a byte buffer.
func (x *extractor) indexRead(ix *ast.IndexExpr) *op {
	if !x.isByteSlice(ix.X) {
		return nil
	}
	buf, _ := x.bufAndOff(ix.X)
	return &op{width: 1, off: x.constVal(ix.Index), buf: buf, pos: ix.Pos()}
}

// bufAndOff unwraps buf, buf[k:], buf[k] to the underlying buffer
// object and the static offset (bare buffer = offset 0).
func (x *extractor) bufAndOff(e ast.Expr) (types.Object, int) {
	off := 0
	for {
		switch t := e.(type) {
		case *ast.SliceExpr:
			if t.Low == nil {
				off = 0
			} else {
				off = x.constVal(t.Low)
			}
			e = t.X
		case *ast.IndexExpr:
			off = x.constVal(t.Index)
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.Ident:
			var obj types.Object = x.pass.TypesInfo.Uses[t]
			if obj == nil {
				obj = x.pass.TypesInfo.Defs[t]
			}
			return obj, off
		case *ast.SelectorExpr:
			return x.pass.TypesInfo.Uses[t.Sel], off
		default:
			return nil, off
		}
	}
}

// constVal evaluates e as a compile-time int, or -1.
func (x *extractor) constVal(e ast.Expr) int {
	tv, ok := x.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return -1
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok || v < 0 {
		return -1
	}
	return int(v)
}

func (x *extractor) isByteSlice(e ast.Expr) bool {
	tv, ok := x.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		return isByte(t.Elem())
	case *types.Array:
		return isByte(t.Elem())
	case *types.Pointer:
		if a, ok := t.Elem().Underlying().(*types.Array); ok {
			return isByte(a.Elem())
		}
	}
	return false
}

func (x *extractor) isByteValue(e ast.Expr) bool {
	tv, ok := x.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return isByte(tv.Type)
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.UntypedInt)
}

func widthOf(name string) int {
	switch {
	case strings.HasSuffix(name, "16"):
		return 2
	case strings.HasSuffix(name, "32"):
		return 4
	case strings.HasSuffix(name, "64"):
		return 8
	}
	return 0
}

// condSig renders a condition with function-local variables normalized
// to "·", so Marshal's `s.Kind == KindSplit` and Unmarshal's
// `s.Kind == KindSplit` compare equal regardless of receiver names.
func (x *extractor) condSig(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := x.pass.TypesInfo.Uses[e]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() != x.pass.Pkg.Scope() && !v.IsField() {
				return "·"
			}
		}
		return e.Name
	case *ast.SelectorExpr:
		return x.condSig(e.X) + "." + e.Sel.Name
	case *ast.BinaryExpr:
		return x.condSig(e.X) + e.Op.String() + x.condSig(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + x.condSig(e.X)
	case *ast.ParenExpr:
		return x.condSig(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		var args []string
		for _, a := range e.Args {
			args = append(args, x.condSig(a))
		}
		return x.condSig(e.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.IndexExpr:
		return x.condSig(e.X) + "[" + x.condSig(e.Index) + "]"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// ---- filtering and offset assignment ----

// filterRole keeps writes (wantWrite) or reads, recursively, dropping
// groups left empty.
func filterRole(items []item, wantWrite bool) []item {
	var out []item
	for _, it := range items {
		if it.op != nil {
			if it.op.write == wantWrite {
				out = append(out, it)
			}
			continue
		}
		kids := filterRole(it.items, wantWrite)
		if hasOps(kids) {
			g := it
			g.items = kids
			out = append(out, g)
		}
	}
	return out
}

func hasOps(items []item) bool {
	for _, it := range items {
		if it.op != nil {
			return true
		}
		if hasOps(it.items) {
			return true
		}
	}
	return false
}

// assignSequential gives append-chain ops concrete offsets for the
// straight-line prefix of the function: the first append lands at 0,
// each next right after. The chain stops at the first group (loops
// repeat, gates may not run), after which appended offsets stay
// unknown.
func assignSequential(items []item) {
	run := 0
	for i := range items {
		it := &items[i]
		if it.op == nil {
			return // group reached: further append offsets are unknowable
		}
		if it.op.seq && it.op.off < 0 && run >= 0 {
			it.op.off = run
			run += it.op.width
		} else if it.op.seq && it.op.off < 0 {
			return
		}
	}
}

// ---- comparison ----

type comparer struct {
	pass             *analysis.Pass
	encName, decName string
	encPos           token.Pos
}

func (c *comparer) compare(enc, dec []item) {
	encOps, encGroups := split(enc)
	decOps, decGroups := split(dec)

	c.compareOps(encOps, decOps)

	if len(encGroups) != len(decGroups) {
		pos := c.encPos
		if len(encGroups) > 0 {
			pos = encGroups[0].pos
		} else if len(decGroups) > 0 {
			pos = decGroups[0].pos
		}
		c.pass.Reportf(pos, "%s has %d gated/looped field blocks but %s has %d; wire structure differs",
			c.encName, len(encGroups), c.decName, len(decGroups))
		return
	}
	for i := range encGroups {
		eg, dg := encGroups[i], decGroups[i]
		if eg.kind != dg.kind {
			c.pass.Reportf(eg.pos, "%s block %d is a %s but %s has a %s; wire structure differs",
				c.encName, i+1, eg.kind, c.decName, dg.kind)
			continue
		}
		if eg.kind == "cond" && eg.sig != dg.sig {
			c.pass.Reportf(eg.pos, "conditional fields gated differently: %s writes under %q, %s reads under %q",
				c.encName, eg.sig, c.decName, dg.sig)
		}
		c.compare(eg.items, dg.items)
	}
}

func split(items []item) (ops []*op, groups []item) {
	for _, it := range items {
		if it.op != nil {
			ops = append(ops, it.op)
		} else {
			groups = append(groups, it)
		}
	}
	return ops, groups
}

func (c *comparer) compareOps(writes, reads []*op) {
	if allKnown(writes) && allKnown(reads) {
		c.compareByOffset(writes, reads)
		return
	}
	// Positional fallback: widths in order.
	n := len(writes)
	if len(reads) < n {
		n = len(reads)
	}
	for i := 0; i < n; i++ {
		if writes[i].width != reads[i].width {
			c.pass.Reportf(writes[i].pos, "field %d: %s writes %d bytes where %s reads %d",
				i+1, c.encName, writes[i].width, c.decName, reads[i].width)
			return // later positions shift; one report is the signal
		}
		if writes[i].endian != "" && reads[i].endian != "" && writes[i].endian != reads[i].endian {
			c.pass.Reportf(writes[i].pos, "field %d: %s writes %s but %s reads %s",
				i+1, c.encName, writes[i].endian, c.decName, reads[i].endian)
		}
	}
	if len(writes) != len(reads) {
		pos := c.encPos
		if len(writes) > n {
			pos = writes[n].pos
		} else if len(reads) > n {
			pos = reads[n].pos
		}
		c.pass.Reportf(pos, "%s writes %d fields but %s reads %d", c.encName, len(writes), c.decName, len(reads))
	}
}

// compareByOffset matches writes to reads by (offset, width) sets —
// decoders may read fields in any order — after collapsing duplicate
// accesses to the same bytes.
func (c *comparer) compareByOffset(writes, reads []*op) {
	type key struct{ off, width int }
	wset := map[key]*op{}
	for _, o := range writes {
		wset[key{o.off, o.width}] = o
	}
	rset := map[key]*op{}
	for _, o := range reads {
		rset[key{o.off, o.width}] = o
	}
	var unmatchedW []*op
	for k, o := range wset {
		r, ok := rset[k]
		if !ok {
			unmatchedW = append(unmatchedW, o)
			continue
		}
		if o.endian != "" && r.endian != "" && o.endian != r.endian {
			c.pass.Reportf(o.pos, "offset %d: %s writes %s but %s reads %s", o.off, c.encName, o.endian, c.decName, r.endian)
		}
		delete(rset, k)
	}
	sort.Slice(unmatchedW, func(i, j int) bool { return unmatchedW[i].off < unmatchedW[j].off })
	var unmatchedR []*op
	for _, o := range rset {
		unmatchedR = append(unmatchedR, o)
	}
	sort.Slice(unmatchedR, func(i, j int) bool { return unmatchedR[i].off < unmatchedR[j].off })

	for _, w := range unmatchedW {
		// A read at the same offset with another width is a width
		// mismatch, clearer than two one-sided reports.
		merged := false
		for i, r := range unmatchedR {
			if r.off == w.off {
				c.pass.Reportf(w.pos, "offset %d: %s writes %d bytes but %s reads %d",
					w.off, c.encName, w.width, c.decName, r.width)
				unmatchedR = append(unmatchedR[:i], unmatchedR[i+1:]...)
				merged = true
				break
			}
		}
		if !merged {
			c.pass.Reportf(w.pos, "%s writes %d bytes at offset %d that %s never reads",
				c.encName, w.width, w.off, c.decName)
		}
	}
	for _, r := range unmatchedR {
		c.pass.Reportf(r.pos, "%s reads %d bytes at offset %d that %s never writes",
			c.decName, r.width, r.off, c.encName)
	}
}

func allKnown(ops []*op) bool {
	for _, o := range ops {
		if o.off < 0 {
			return false
		}
	}
	return true
}

// ---- allocation-total check ----

// checkAllocTotal verifies that an encoder allocating make([]byte, N)
// with constant N > 0, or writing through a local [N]byte array, covers
// exactly N bytes with its statically-known writes.
func checkAllocTotal(pass *analysis.Pass, ex *extractor, enc *ast.FuncDecl, items []item) {
	// Collect constant-sized buffers declared in the encoder itself.
	sized := map[types.Object]struct {
		n   int
		pos token.Pos
	}{}
	ast.Inspect(enc.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 || i >= len(n.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
					continue
				}
				if !ex.isByteSlice(rhs) {
					continue
				}
				size := ex.constVal(call.Args[1])
				if size <= 0 {
					continue
				}
				if lid, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := ex.pass.TypesInfo.Defs[lid]; obj != nil {
						sized[obj] = struct {
							n   int
							pos token.Pos
						}{size, call.Pos()}
					}
				}
			}
		case *ast.ValueSpec:
			if arr, ok := n.Type.(*ast.ArrayType); ok && arr.Len != nil {
				size := ex.constVal(arr.Len)
				if size > 0 && len(n.Names) == 1 {
					if obj := ex.pass.TypesInfo.Defs[n.Names[0]]; obj != nil && ex.isByteSliceType(obj.Type()) {
						sized[obj] = struct {
							n   int
							pos token.Pos
						}{size, n.Pos()}
					}
				}
			}
		}
		return true
	})
	if len(sized) == 0 {
		return
	}
	// Top-level known writes per buffer.
	covered := map[types.Object]int{}
	known := map[types.Object]bool{}
	for o := range sized {
		known[o] = true
	}
	for _, it := range items {
		if it.op == nil {
			// Writes inside loops/gates are not statically sized; any
			// buffer touched there is exempt.
			exemptBuffers(it.items, known)
			continue
		}
		o := it.op
		if o.buf == nil {
			continue
		}
		if _, tracked := sized[o.buf]; !tracked {
			continue
		}
		if o.off < 0 {
			known[o.buf] = false
			continue
		}
		if end := o.off + o.width; end > covered[o.buf] {
			covered[o.buf] = end
		}
	}
	for obj, s := range sized {
		if !known[obj] || covered[obj] == 0 {
			continue
		}
		if covered[obj] != s.n {
			pass.Reportf(s.pos, "%s sizes %s at %d bytes but its writes cover %d",
				enc.Name.Name, obj.Name(), s.n, covered[obj])
		}
	}
}

func exemptBuffers(items []item, known map[types.Object]bool) {
	for _, it := range items {
		if it.op != nil {
			if it.op.buf != nil {
				known[it.op.buf] = false
			}
			continue
		}
		exemptBuffers(it.items, known)
	}
}

func (x *extractor) isByteSliceType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	}
	return false
}
