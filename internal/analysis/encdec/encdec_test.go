package encdec_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/encdec"
)

func Test(t *testing.T) {
	analysistest.Run(t, encdec.Analyzer, "testdata", "wire", "other")
}
