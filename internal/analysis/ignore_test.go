package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestSplitIgnore(t *testing.T) {
	cases := []struct {
		in     string
		names  []string
		reason string
	}{
		{" detrand — seeded elsewhere", []string{"detrand"}, "seeded elsewhere"},
		{" detrand,mapiter — reviewed", []string{"detrand", "mapiter"}, "reviewed"},
		{" mapiter -- ascii separator works", []string{"mapiter"}, "ascii separator works"},
		// scanSuppressions treats empty names or an empty reason as
		// malformed; splitIgnore just reports what it parsed.
		{" detrand", nil, ""}, // no separator
		{" detrand — ", []string{"detrand"}, ""},
		{" — reason but no name", nil, "reason but no name"},
		{"", nil, ""},
	}
	for _, c := range cases {
		names, reason := splitIgnore(c.in)
		if reason != c.reason {
			t.Errorf("splitIgnore(%q) reason = %q, want %q", c.in, reason, c.reason)
		}
		if len(names) != len(c.names) {
			t.Errorf("splitIgnore(%q) names = %v, want %v", c.in, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("splitIgnore(%q) names = %v, want %v", c.in, names, c.names)
				break
			}
		}
	}
}

func TestSuppressionsCover(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //jaalvet:ignore detrand — trailing form
	//jaalvet:ignore mapiter — line-above form
	_ = 2
	//jaalvet:ignore
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup, malformed := scanSuppressions(fset, []*ast.File{f})

	if len(malformed) != 1 {
		t.Fatalf("malformed findings = %d, want 1 (the bare //jaalvet:ignore)", len(malformed))
	}
	if malformed[0].Analyzer != "jaalvet" {
		t.Errorf("malformed finding analyzer = %q, want jaalvet", malformed[0].Analyzer)
	}

	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	if !sup.covers(at(4), "detrand") {
		t.Error("trailing suppression does not cover its own line")
	}
	if !sup.covers(at(6), "mapiter") {
		t.Error("line-above suppression does not cover the next line")
	}
	if sup.covers(at(4), "mapiter") {
		t.Error("suppression leaks to an analyzer it does not name")
	}
	if sup.covers(at(7), "detrand") {
		t.Error("suppression covers a line it should not")
	}
}
