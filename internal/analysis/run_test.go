package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parsePkg type-checks src (importing nothing) as a one-file package.
func parsePkg(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	tpkg, info, err := TypeCheck(path, fset, files, NewImporter(fset, nil))
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// markerAnalyzer reports every assignment to an identifier named "bad".
var markerAnalyzer = &Analyzer{
	Name: "marker",
	Doc:  "test analyzer: flags writes to variables named bad",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "bad" {
						p.Reportf(id.Pos(), "write to bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

func TestRunDetailedCountsAndStale(t *testing.T) {
	pkg := parsePkg(t, "p", `package p

func f() {
	bad := 1 //jaalvet:ignore marker — reviewed: fixture exercises suppression counting
	_ = bad
	bad = 2
	good := 3 //jaalvet:ignore marker — stale: nothing on this line trips marker
	_ = good
}
`)
	res, err := RunDetailed([]*Package{pkg}, []*Analyzer{markerAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Findings); got != 1 {
		t.Fatalf("findings = %d (%v), want 1 (the unsuppressed bad = 2)", got, res.Findings)
	}
	s := res.Stats["marker"]
	if s == nil || s.Findings != 1 || s.Suppressed != 1 {
		t.Errorf("stats[marker] = %+v, want Findings:1 Suppressed:1", s)
	}
	if got := len(res.Stale); got != 1 {
		t.Fatalf("stale = %d (%v), want 1", got, res.Stale)
	}
	if !strings.Contains(res.Stale[0].Message, "stale suppression") || res.Stale[0].Position.Line != 7 {
		t.Errorf("stale finding = %v, want stale-suppression message at line 7", res.Stale[0])
	}
}

func TestStaleSkipsAnalyzersNotRun(t *testing.T) {
	// A suppression naming an analyzer excluded from this run cannot be
	// judged stale: the analyzer might have fired had it run.
	pkg := parsePkg(t, "p", `package p

func f() {
	x := 1 //jaalvet:ignore otherchecker — justified elsewhere
	_ = x
}
`)
	res, err := RunDetailed([]*Package{pkg}, []*Analyzer{markerAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) != 0 {
		t.Errorf("stale = %v, want none: otherchecker did not run", res.Stale)
	}
}

func TestSharedPersistsAcrossPackages(t *testing.T) {
	// The analyzer records each package it sees in Shared; by the end
	// the map holds all packages, proving one map is threaded through.
	a := parsePkg(t, "a", "package a")
	b := parsePkg(t, "b", "package b")
	var final map[string]any
	capture := &Analyzer{
		Name: "capture",
		Doc:  "test analyzer: records visited packages in Shared",
		Run: func(p *Pass) error {
			p.Shared[p.Pkg.Path()] = true
			final = p.Shared
			return nil
		},
	}
	if _, err := RunDetailed([]*Package{a, b}, []*Analyzer{capture}); err != nil {
		t.Fatal(err)
	}
	if len(final) != 2 || final["a"] == nil || final["b"] == nil {
		t.Errorf("Shared after run = %v, want entries for both packages", final)
	}
}

func TestImportersFirstOrder(t *testing.T) {
	// Build a tiny import chain with real types.Packages: c imports b
	// imports a. Load order input is alphabetical; importers-first must
	// yield c, b, a.
	fset := token.NewFileSet()
	mk := func(path, src string, imp map[string]*Package) *Package {
		f, err := parser.ParseFile(fset, path+".go", src, 0)
		if err != nil {
			t.Fatal(err)
		}
		tpkg, info, err := TypeCheck(path, fset, []*ast.File{f}, pkgImporter(imp))
		if err != nil {
			t.Fatal(err)
		}
		return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	}
	a := mk("example.com/a", "package a\nfunc A() {}", nil)
	b := mk("example.com/b", `package b
import "example.com/a"
func B() { a.A() }`, map[string]*Package{"example.com/a": a})
	c := mk("example.com/c", `package c
import "example.com/b"
func C() { b.B() }`, map[string]*Package{"example.com/b": b})

	got := importersFirst([]*Package{a, b, c})
	want := []*Package{c, b, a}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("importersFirst order = %v, want [c b a]", paths(got))
		}
	}
}

func paths(ps []*Package) []string {
	var out []string
	for _, p := range ps {
		out = append(out, p.Path)
	}
	return out
}

// pkgImporter resolves imports against already-type-checked Packages.
type pkgImporter map[string]*Package

func (m pkgImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p.Types, nil
	}
	return nil, fmt.Errorf("no package %q", path)
}
