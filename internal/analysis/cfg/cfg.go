// Package cfg builds per-function control-flow graphs over go/ast, the
// foundation of the flow-sensitive jaal-vet analyzers (lockheld and
// friends). Like the rest of internal/analysis it is stdlib-only and
// mirrors the shape of golang.org/x/tools/go/cfg closely enough that an
// analyzer ports over if the real module ever becomes a dependency.
//
// A Graph is a set of basic blocks: maximal straight-line statement
// runs with control entering at the top and leaving at the bottom.
// Control statements (if, for, range, switch, select) appear as the
// last statement of the block that evaluates their header — only the
// header expression executes there; their bodies live in successor
// blocks. Exec reports which parts of a statement execute inside its
// own block, so dataflow transfer functions never walk into a nested
// region that belongs to another block.
//
// Placement invariant (pinned by the golden and fuzz tests): every
// statement of the function body except *ast.BlockStmt, *ast.CaseClause,
// *ast.CommClause and *ast.LabeledStmt is placed in exactly one block.
// Statements after a return/branch land in a fresh unreachable block
// (no predecessors) rather than being dropped, so the invariant holds
// for dead code too.
//
// Flow modelled: if/else chains, for (cond and infinite), range,
// switch/type switch with fallthrough, select (each comm clause a
// successor), labeled and bare break/continue, goto (forward and
// backward), return. Not modelled: panic/recover unwinding, and defer
// bodies run at their lexical position (a DeferStmt is an ordinary
// statement of its block; the deferred call's execution at function
// exit is a per-analyzer concern).
package cfg

import (
	"go/ast"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks, assigned in
	// construction order (entry first); dumps and worklists key on it.
	Index int
	// Stmts are the statements placed in this block, in execution
	// order. A control statement is last and contributes only its
	// header expression here (see Exec).
	Stmts []ast.Stmt
	// Succs are the possible control transfers out of the block, in a
	// deterministic order (then before else, case bodies in source
	// order, loop body before loop exit).
	Succs []*Block
	// Preds are the reverse edges, filled once construction finishes.
	Preds []*Block
}

// Graph is one function's control-flow graph.
type Graph struct {
	// Blocks holds every block, entry at index 0, exit last.
	Blocks []*Block
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the virtual block every return (and the fall-off-the-end
	// path) edges to. It holds no statements.
	Exit *Block
}

// New builds the control-flow graph of one function body. A nil body
// (declaration without implementation) yields a graph with only entry
// and exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{labels: map[string]*labelTarget{}}
	entry := b.newBlock()
	b.cur = entry
	exit := b.newBlock() // created early so returns can edge to it; re-indexed below
	b.exit = exit
	if body != nil {
		b.stmts(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, exit)
	}
	b.patchGotos()
	// Move the exit block to the end of the slice, where readers (and
	// the golden dumps) expect it.
	blocks := make([]*Block, 0, len(b.blocks))
	for _, blk := range b.blocks {
		if blk != exit {
			blocks = append(blocks, blk)
		}
	}
	blocks = append(blocks, exit)
	for i, blk := range blocks {
		blk.Index = i
	}
	g := &Graph{Blocks: blocks, Entry: entry, Exit: exit}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// Exec returns the nodes of s that execute inside s's own block. For a
// leaf statement that is the statement itself; for a control statement
// only its header expression (an if's condition, a switch's tag, a
// range's operand) — inits, bodies and clause expressions live in
// other blocks or are placed as separate statements.
func Exec(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond == nil {
			return nil
		}
		return []ast.Node{s.Cond}
	case *ast.RangeStmt:
		return []ast.Node{s.X}
	case *ast.SwitchStmt:
		if s.Tag == nil {
			return nil
		}
		return []ast.Node{s.Tag}
	case *ast.TypeSwitchStmt:
		return []ast.Node{s.Assign}
	case *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

// labelTarget records where a label points for goto resolution, plus
// the break/continue targets when the label names a loop or switch.
type labelTarget struct {
	block *Block // statement the label marks (goto target)
	brk   *Block // labeled break target, nil until the loop is entered
	cont  *Block // labeled continue target (loops only)
}

// loopCtx is one enclosing breakable/continuable region.
type loopCtx struct {
	label string // "" for unlabeled
	brk   *Block
	cont  *Block // nil for switch/select (not continuable)
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	blocks []*Block
	cur    *Block // nil while the current point is unreachable-from-above
	exit   *Block
	loops  []loopCtx
	labels map[string]*labelTarget
	gotos  []pendingGoto
	// pendingLabel carries a just-seen label into the loop/switch it
	// marks, so labeled break/continue resolve to the right region.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// ensure returns the current block, creating a fresh unreachable block
// when control cannot reach this point — dead statements still need a
// home for the placement invariant.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) place(s ast.Stmt) {
	blk := b.ensure()
	blk.Stmts = append(blk.Stmts, s)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findLoop resolves a break/continue target. label is "" for the bare
// form (innermost region); continue skips non-continuable regions.
func (b *builder) findLoop(label string, needCont bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needCont && lc.cont == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block at the label so gotos have a target that
		// begins with the labeled statement.
		target := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		lt := &labelTarget{block: target}
		b.labels[s.Label.Name] = lt
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.place(s)
		b.edge(b.cur, b.exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.place(s)
		switch s.Tok.String() {
		case "break":
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if lc := b.findLoop(label, false); lc != nil {
				b.edge(b.cur, lc.brk)
			}
		case "continue":
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if lc := b.findLoop(label, true); lc != nil {
				b.edge(b.cur, lc.cont)
			}
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		case "fallthrough":
			// Resolved by the switch builder, which knows the next
			// clause's block; recorded here so the edge can be added.
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: fallthroughLabel})
		}
		b.cur = nil

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.place(s) // header: evaluates s.Cond
		cond := b.cur
		join := b.newBlock()

		thenEntry := b.newBlock()
		b.edge(cond, thenEntry)
		b.cur = thenEntry
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, join)
		}

		if s.Else != nil {
			elseEntry := b.newBlock()
			b.edge(cond, elseEntry)
			b.cur = elseEntry
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		header.Stmts = append(header.Stmts, s) // header: evaluates s.Cond
		join := b.newBlock()

		// The continue target is the post block when one exists, else
		// the header.
		var post *Block
		cont := header
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.attachLabel(label, join, cont)

		body := b.newBlock()
		b.edge(header, body)
		if s.Cond != nil {
			b.edge(header, join)
		}
		b.loops = append(b.loops, loopCtx{label: label, brk: join, cont: cont})
		b.cur = body
		b.stmts(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, header)
		}
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		header.Stmts = append(header.Stmts, s) // header: evaluates s.X
		join := b.newBlock()
		b.attachLabel(label, join, header)
		body := b.newBlock()
		b.edge(header, body)
		b.edge(header, join)
		b.loops = append(b.loops, loopCtx{label: label, brk: join, cont: header})
		b.cur = body
		b.stmts(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.cur = join

	case *ast.SwitchStmt:
		b.switchStmt(s, s.Init, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s, s.Init, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.place(s) // header: the blocking choice happens here
		header := b.cur
		join := b.newBlock()
		b.attachLabel(label, join, nil)
		b.loops = append(b.loops, loopCtx{label: label, brk: join})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			clause := b.newBlock()
			b.edge(header, clause)
			b.cur = clause
			if comm.Comm != nil {
				// The chosen communication executes first in its clause.
				b.stmt(comm.Comm)
			}
			b.stmts(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			// `select {}` blocks forever: join is unreachable.
			b.cur = nil
		}
		b.cur = join

	default:
		// Leaf statements: assign, expr, send, inc/dec, decl, go,
		// defer, empty.
		b.place(s)
	}
}

// fallthroughLabel is the reserved pending-goto label the switch
// builder patches to the next clause's body block.
const fallthroughLabel = "\x00fallthrough"

// switchStmt builds expression and type switches: header evaluates the
// tag, each case body is a successor (default included), and a switch
// without a default also edges straight to the join.
func (b *builder) switchStmt(s ast.Stmt, init ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	b.place(s) // header: evaluates the tag / type-switch assign
	header := b.cur
	join := b.newBlock()
	b.attachLabel(label, join, nil)

	clauses := make([]*Block, len(body.List))
	for i := range body.List {
		clauses[i] = b.newBlock()
		b.edge(header, clauses[i])
	}
	hasDefault := false
	b.loops = append(b.loops, loopCtx{label: label, brk: join})
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		gotoMark := len(b.gotos)
		b.cur = clauses[i]
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		// Patch this clause's fallthroughs to the next clause body.
		for j := gotoMark; j < len(b.gotos); j++ {
			if b.gotos[j].label == fallthroughLabel {
				if i+1 < len(clauses) {
					b.edge(b.gotos[j].from, clauses[i+1])
				}
				b.gotos[j] = pendingGoto{} // consumed
			}
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.edge(header, join)
	}
	b.cur = join
}

// takeLabel consumes the pending label set by an enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// attachLabel records the break/continue targets for a labeled region.
func (b *builder) attachLabel(label string, brk, cont *Block) {
	if label == "" {
		return
	}
	if lt := b.labels[label]; lt != nil {
		lt.brk = brk
		lt.cont = cont
	}
}

// patchGotos resolves recorded goto edges now that every label's block
// exists. A goto to an unknown label (ill-formed source) is dropped —
// the type checker rejects it anyway.
func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if g.from == nil || g.label == fallthroughLabel {
			continue
		}
		if lt := b.labels[g.label]; lt != nil {
			b.edge(g.from, lt.block)
		}
	}
}
