package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders the graph in the compact textual form the golden tests
// pin down: one line per block with its statements (control statements
// shown as their header only) and successor indices.
//
//	b0: x := 0; for x < n -> b1 b3
//	b1: x++ -> b0
//	b3(exit): ->
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		name := fmt.Sprintf("b%d", blk.Index)
		switch blk {
		case g.Exit:
			name += "(exit)"
		case g.Entry:
			name += "(entry)"
		}
		var stmts []string
		for _, s := range blk.Stmts {
			stmts = append(stmts, renderStmt(fset, s))
		}
		var succs []string
		for _, s := range blk.Succs {
			succs = append(succs, fmt.Sprintf("b%d", s.Index))
		}
		fmt.Fprintf(&sb, "%s: %s -> %s\n", name, strings.Join(stmts, "; "), strings.Join(succs, " "))
	}
	return sb.String()
}

// renderStmt prints a statement for the dump: leaf statements in full
// (single line), control statements as a header sketch.
func renderStmt(fset *token.FileSet, s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.IfStmt:
		return "if " + renderNode(fset, s.Cond)
	case *ast.ForStmt:
		if s.Cond == nil {
			return "for"
		}
		return "for " + renderNode(fset, s.Cond)
	case *ast.RangeStmt:
		return "range " + renderNode(fset, s.X)
	case *ast.SwitchStmt:
		if s.Tag == nil {
			return "switch"
		}
		return "switch " + renderNode(fset, s.Tag)
	case *ast.TypeSwitchStmt:
		return "switch " + renderNode(fset, s.Assign)
	case *ast.SelectStmt:
		return "select"
	default:
		return renderNode(fset, s)
	}
}

// renderNode prints any node on one line.
func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	// Collapse any multi-line rendering (composite literals etc.).
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
