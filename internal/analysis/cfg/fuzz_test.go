package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// FuzzBuild feeds arbitrary function bodies through the builder and
// asserts the placement invariant: every placeable statement lands in
// exactly one block, even for pathological nesting, dead code and
// label/goto tangles the fixtures never wrote down.
func FuzzBuild(f *testing.F) {
	if data, err := os.ReadFile(filepath.Join("testdata", "funcs.go")); err == nil {
		f.Add(string(data))
	}
	f.Add(`package p
func f(n int) int {
l:
	for i := 0; i < n; i++ {
		switch {
		case i > 2:
			break l
		default:
			continue
		}
	}
	goto l
}`)
	f.Add("package p\nfunc g(ch chan int) { select { case <-ch: default: } }")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, 0)
		if err != nil {
			return // not valid Go: out of scope
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkInvariants(t, fset, fd.Name.Name, fd.Body)
		}
	})
}
