package cfg

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-cfg-golden", false, "rewrite testdata/funcs.golden from the current builder output")

// TestGoldenDumps pins the block/edge structure of every fixture
// function against testdata/funcs.golden. Regenerate with
// -update-cfg-golden after an intentional builder change.
func TestGoldenDumps(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "funcs.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		g := New(fd.Body)
		fmt.Fprintf(&sb, "func %s\n%s\n", fd.Name.Name, g.Dump(fset))
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "funcs.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-cfg-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dumps drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// placeable reports whether the invariant requires s to land in exactly
// one block: everything except the pure containers (blocks, clauses)
// and the label wrapper, whose inner statement is placed instead.
func placeable(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
		return false
	}
	return true
}

// checkInvariants asserts the placement invariant and basic graph
// sanity for one function body; shared by the unit test and the fuzz
// target.
func checkInvariants(t *testing.T, fset *token.FileSet, name string, body *ast.BlockStmt) {
	t.Helper()
	g := New(body)

	if g.Entry == nil || g.Exit == nil || len(g.Blocks) < 2 {
		t.Fatalf("%s: degenerate graph", name)
	}
	if g.Blocks[0] != g.Entry || g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Errorf("%s: entry/exit not at slice boundaries", name)
	}
	if len(g.Exit.Stmts) != 0 || len(g.Exit.Succs) != 0 {
		t.Errorf("%s: exit block must be empty and terminal", name)
	}

	// Every placed statement appears exactly once, and indices match
	// slice positions.
	seen := map[ast.Stmt]int{}
	for i, blk := range g.Blocks {
		if blk.Index != i {
			t.Errorf("%s: block %d carries index %d", name, i, blk.Index)
		}
		for _, s := range blk.Stmts {
			seen[s]++
		}
		for _, succ := range blk.Succs {
			if succ.Index < 0 || succ.Index >= len(g.Blocks) || g.Blocks[succ.Index] != succ {
				t.Errorf("%s: b%d has a successor outside the graph", name, i)
			}
		}
	}
	for s, n := range seen {
		if n != 1 {
			t.Errorf("%s: statement at %v placed %d times", name, fset.Position(s.Pos()), n)
		}
	}
	// Walk the body: every placeable statement must have been placed —
	// but not statements inside nested function literals (which get
	// their own graphs) and not a type switch's header assign, which
	// executes as part of the TypeSwitchStmt itself (see Exec).
	headerAssigns := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if ts, ok := n.(*ast.TypeSwitchStmt); ok {
			headerAssigns[ts.Assign] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && placeable(s) && !headerAssigns[s] {
			if seen[s] != 1 {
				t.Errorf("%s: statement at %v not placed in any block", name, fset.Position(s.Pos()))
			}
		}
		return true
	})

	// Preds must mirror Succs exactly.
	for _, blk := range g.Blocks {
		for _, succ := range blk.Succs {
			found := 0
			for _, p := range succ.Preds {
				if p == blk {
					found++
				}
			}
			if found == 0 {
				t.Errorf("%s: edge b%d->b%d missing from Preds", name, blk.Index, succ.Index)
			}
		}
	}
}

func TestInvariantsOnFixtures(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "funcs.go"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			checkInvariants(t, fset, fd.Name.Name, fd.Body)
		}
	}
}

// TestExecPrunesNestedRegions asserts Exec never yields a node that
// belongs to another block (an if body, a loop body).
func TestExecPrunesNestedRegions(t *testing.T) {
	src := `package p
func f(n int, ch chan int) {
	if n > 0 { n-- }
	for i := 0; i < n; i++ { n += i }
	for _, v := range []int{1} { n += v }
	switch n { case 1: n = 0 }
	select { case <-ch: }
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	g := New(body)
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			for _, n := range Exec(s) {
				ast.Inspect(n, func(inner ast.Node) bool {
					if _, ok := inner.(*ast.BlockStmt); ok {
						t.Errorf("Exec(%T) leaked a nested block at %v", s, fset.Position(inner.Pos()))
					}
					return true
				})
			}
		}
	}
}
