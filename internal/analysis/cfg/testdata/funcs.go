// Fixture functions for the CFG golden dumps: each exercises one shape
// the builder must model (testdata is invisible to the go tool, so this
// file is parsed, never compiled).
package fixtures

func straight(a, b int) int {
	c := a + b
	c *= 2
	return c
}

func ifElse(n int) int {
	if n > 0 {
		n--
	} else {
		n++
	}
	return n
}

func ifInit(m map[string]int) int {
	if v, ok := m["k"]; ok {
		return v
	}
	return 0
}

func loop(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

func infinite(ch chan int) {
	for {
		v := <-ch
		if v == 0 {
			break
		}
	}
}

func ranges(xs []int) int {
	total := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		total += x
	}
	return total
}

func labeledBreak(grid [][]int) int {
outer:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] == 0 {
				break outer
			}
			if grid[i][j] < 0 {
				continue outer
			}
		}
	}
	return 0
}

func switches(t byte) string {
	switch t {
	case 1:
		return "one"
	case 2:
		fallthrough
	case 3:
		return "few"
	default:
		return "many"
	}
}

func typeSwitch(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case string:
		return len(x)
	}
	return 0
}

func selects(in, out chan int, done chan struct{}) {
	for {
		select {
		case v := <-in:
			out <- v
		case <-done:
			return
		default:
			return
		}
	}
}

func deferred(mu interface{ Lock() }, f func()) {
	mu.Lock()
	defer f()
	f()
}

func gotos(n int) int {
again:
	n--
	if n > 0 {
		goto again
	}
	return n
}

func deadCode(n int) int {
	return n
	n++ // unreachable: still placed, in a predecessor-less block
	return n
}
