// Package linearscan keeps the controller's per-epoch inference hot
// path sublinear in library size: inside the core package, question
// evaluation must go through the index-aware inference entry points
// (EstimateSimilarityIndexed, RunFeedbackIndexed, EvaluateAllIndexed,
// EvaluateAllIndexedParallel), never the plain linear ones.
//
// The indexed variants are byte-identical to the linear scan — the
// candidate index only skips questions whose match set is provably
// empty — so a direct linear call in core is never a correctness fix;
// it silently reverts the engine to O(rules × centroids) per epoch,
// exactly the scaling wall the question index exists to remove. Other
// packages (experiments' threshold sweeps, tests, tools) evaluate
// however they like.
package linearscan

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the linearscan checker.
var Analyzer = &analysis.Analyzer{
	Name: "linearscan",
	Doc:  "forbid linear question evaluation in the core controller hot path",
	Run:  run,
}

// linearNames are the inference entry points that scan every question
// or centroid unconditionally; each maps to the index-aware
// replacement core must use instead.
var linearNames = map[string]string{
	"EstimateSimilarity":  "EstimateSimilarityIndexed",
	"RunFeedback":         "RunFeedbackIndexed",
	"EvaluateAll":         "EvaluateAllIndexed",
	"EvaluateAllParallel": "EvaluateAllIndexedParallel",
}

func run(pass *analysis.Pass) error {
	if !isCorePath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isInferencePath(fn.Pkg().Path()) {
				return true
			}
			if indexed, bad := linearNames[fn.Name()]; bad {
				pass.Reportf(call.Pos(),
					"linear inference.%s in the core hot path scans every question each epoch; use inference.%s with the controller's question index",
					fn.Name(), indexed)
			}
			return true
		})
	}
	return nil
}

// isCorePath matches the controller package: the real tree
// (repro/internal/core) and analysistest fixture paths (core).
func isCorePath(path string) bool {
	return path == "core" || strings.HasSuffix(path, "/core")
}

func isInferencePath(path string) bool {
	return path == "inference" || strings.HasSuffix(path, "/inference")
}
