// Positive linearscan fixture: this package's last path element is
// "core", so every direct linear inference call must be flagged.
package core

import (
	"repro/internal/inference"
	"repro/internal/rules"
)

func epoch(agg *inference.Aggregate, qs []*rules.Question, ix *rules.QuestionIndex) {
	q := qs[0]
	_ = inference.EstimateSimilarity(agg, q)                                   // want `linear inference\.EstimateSimilarity in the core hot path`
	_ = inference.EvaluateAll(agg, qs)                                         // want `linear inference\.EvaluateAll in the core hot path`
	_ = inference.EvaluateAllParallel(agg, qs, 4)                              // want `linear inference\.EvaluateAllParallel in the core hot path`
	_, _ = inference.RunFeedback(agg, q, inference.FeedbackConfig{}, nil, nil) // want `linear inference\.RunFeedback in the core hot path`

	// The index-aware entry points are the sanctioned path.
	cs := inference.Candidates(agg, ix)
	_ = inference.EstimateSimilarityIndexed(agg, q, cs.Contains(0))
	_, _ = inference.RunFeedbackIndexed(agg, q, inference.FeedbackConfig{}, nil, nil, true)
	_ = inference.EvaluateAllIndexed(agg, qs, ix)
	_ = inference.EvaluateAllIndexedParallel(agg, qs, ix, 4)
}
