// Negative linearscan fixture: outside the core package, linear
// evaluation is legitimate — experiments sweep thresholds and the
// equivalence tests need the reference scan — so nothing is flagged.
package experiments

import (
	"repro/internal/inference"
	"repro/internal/rules"
)

func sweep(agg *inference.Aggregate, qs []*rules.Question) {
	_ = inference.EstimateSimilarity(agg, qs[0])
	_ = inference.EvaluateAll(agg, qs)
	_ = inference.EvaluateAllParallel(agg, qs, 4)
	_, _ = inference.RunFeedback(agg, qs[0], inference.FeedbackConfig{}, nil, nil)
}
