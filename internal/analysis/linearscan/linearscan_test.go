package linearscan_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/linearscan"
)

func TestLinearScan(t *testing.T) {
	analysistest.Run(t, linearscan.Analyzer, "testdata", "core", "experiments")
}
