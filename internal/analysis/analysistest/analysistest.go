// Package analysistest runs an analyzer over fixture packages and
// checks its findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the local framework.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/ — the package
// directory name becomes the fixture's import path, which is how a
// fixture lands inside (or outside) the deterministic package set that
// detrand and mapiter key on. A fixture line expecting a finding
// carries a trailing comment with one double-quoted regexp per
// expected finding on that line:
//
//	t := time.Now() // want `wall clock`
//
// Unmatched expectations and unexpected findings both fail the test.
// Suppression comments (//jaalvet:ignore) are honored inside fixtures,
// so the suppression mechanics are testable too.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one // want clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package under testdata/src, applies the
// analyzer, and reports mismatches through t.
func Run(t *testing.T, analyzer *analysis.Analyzer, testdata string, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, analyzer, filepath.Join(testdata, "src", pkg), pkg)
		})
	}
}

func runOne(t *testing.T, analyzer *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("import path %s: %v", imp.Path.Value, err)
			}
			importSet[p] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)

	exports, err := analysis.ExportData(dir, imports...)
	if err != nil {
		t.Fatalf("export data: %v", err)
	}
	tpkg, info, err := analysis.TypeCheck(pkgPath, fset, files, analysis.NewImporter(fset, exports))
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", pkgPath, err)
	}

	findings, err := analysis.Run([]*analysis.Package{{
		Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info,
	}}, []*analysis.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("run %s: %v", analyzer.Name, err)
	}

	expects := collectWants(t, fset, files)
	for _, f := range findings {
		if !claim(expects, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmatched expectation covering f and reports
// whether one existed.
func claim(expects []*expectation, f analysis.Finding) bool {
	for _, e := range expects {
		if !e.matched && e.file == f.Position.Filename && e.line == f.Position.Line && e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts every // want clause. The clause body is one
// or more Go string literals (quoted or backquoted), each a regexp.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lits := wantRE.FindAllString(text, -1)
				if len(lits) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, lit := range lits {
					s, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}
