// Positive obshot fixture: unguarded hot-path obs calls whose
// arguments allocate even while collection is disabled.
package hot

import (
	"fmt"

	"repro/internal/obs"
)

// Cold-path constructors may allocate freely.
var (
	reqs = obs.NewCounter("hot_reqs_total", "requests")
	load = obs.NewGauge("hot_load", "load")
	lat  = obs.NewHistogram("hot_latency_seconds", "latency", nil)
)

func unguarded(l *obs.EpochLogger, epoch uint64, n int64, name string) {
	l.Log("collector", epoch, obs.KV{K: "n", V: n}) // want `composite literal argument to obs\.Log allocates on the disabled path`
	l.Log(fmt.Sprintf("mon-%d", n), epoch)          // want `fmt\.Sprintf in argument to obs\.Log allocates on the disabled path`
	l.Log("mon-"+name, epoch)                       // want `string concatenation in argument to obs\.Log allocates on the disabled path`
	load.Set(float64(len(make([]int, n))))          // want `make in argument to obs\.Set allocates on the disabled path`
}

// Scalar arguments are free: the gate inside obs is enough.
func scalars(v float64) {
	reqs.Inc()
	reqs.Add(1)
	load.Set(v)
	lat.Observe(v)
}

// An Enabled() condition guards the whole if body.
func enabledGuard(l *obs.EpochLogger, epoch uint64, n int64) {
	if obs.Enabled() {
		l.Log("collector", epoch, obs.KV{K: "n", V: n})
	}
}

// The nil-safe epoch-logger convention guards too.
func nilGuard(l *obs.EpochLogger, epoch uint64, n int64) {
	if l != nil {
		l.Log("collector", epoch, obs.KV{K: "n", V: n})
	}
}

// After an early `if !obs.Enabled() { return }` the block tail is hot
// only when collection is on.
func earlyReturn(l *obs.EpochLogger, epoch uint64, n int64) {
	if !obs.Enabled() {
		return
	}
	l.Log("collector", epoch, obs.KV{K: "n", V: n})
}

// A reviewed exception is silenced with the convention.
func suppressed(l *obs.EpochLogger, epoch uint64, n int64) {
	//jaalvet:ignore obshot — fixture: startup-only call, never on the epoch path
	l.Log("boot", epoch, obs.KV{K: "n", V: n})
}
