// Negative obshot fixture: the package path is "obs", and the
// analyzer never checks the obs package itself — that is where the
// enablement gate lives, so its internal calls are trusted.
package obs

import (
	ro "repro/internal/obs"
)

func internalPlumbing(l *ro.EpochLogger, epoch uint64, n int64) {
	l.Log("self", epoch, ro.KV{K: "n", V: n})
}
