package obshot_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obshot"
)

func TestObshot(t *testing.T) {
	analysistest.Run(t, obshot.Analyzer, "testdata", "hot", "obs")
}
