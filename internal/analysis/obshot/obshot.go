// Package obshot preserves the observability layer's disabled-path
// guarantee: every hot-path instrumentation call costs one atomic load
// and a branch with zero heap allocations when collection is off
// (internal/obs package doc; BenchmarkObsOverhead).
//
// The gate inside obs (`if on.Load()`) cannot protect the *arguments*:
// Go evaluates them before the call, so an argument that allocates —
// fmt.Sprintf, a composite literal like obs.KV{…}, string
// concatenation, or boxing a scalar into an interface parameter —
// pays its cost even while metrics are disabled. The analyzer flags
// such arguments at call sites of the obs hot-path primitives
// (Counter/Gauge Add/Inc/Set, Histogram.Observe, StartSpan,
// Span.End, EpochLogger.Log) unless the call is lexically guarded:
//
//   - inside `if obs.Enabled() { … }` (or any condition containing an
//     Enabled() call),
//   - inside `if x != nil { … }` (the epoch-logger convention), or
//   - after an early return `if !obs.Enabled() { return }`.
//
// Cold-path obs calls (New* constructors at init, Write*/Reset
// exporters) may allocate freely and are not checked.
package obshot

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the obshot checker.
var Analyzer = &analysis.Analyzer{
	Name: "obshot",
	Doc:  "forbid allocating arguments to unguarded obs hot-path calls",
	Run:  run,
}

// hotNames are the obs methods/functions whose call sites sit on data
// paths and must stay allocation-free when collection is disabled.
var hotNames = map[string]bool{
	"Add":       true,
	"Inc":       true,
	"Set":       true,
	"Observe":   true,
	"StartSpan": true,
	"End":       true,
	"Log":       true,
}

func run(pass *analysis.Pass) error {
	if isObsPath(pass.Pkg.Path()) {
		// The obs package itself is where the gate lives.
		return nil
	}
	for _, f := range pass.Files {
		guards := collectGuards(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := obsCallee(pass, call)
			if fn == nil || !hotNames[fn.Name()] || guards.covers(call.Pos()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				checkArg(pass, fn, sig, i, arg)
			}
			return true
		})
	}
	return nil
}

func isObsPath(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// obsCallee resolves call's callee when it is a function or method
// belonging to the obs package (directly, or a method on an obs type).
func obsCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !isObsPath(fn.Pkg().Path()) {
		return nil
	}
	return fn
}

// checkArg reports allocation hazards in one argument expression.
func checkArg(pass *analysis.Pass, fn *types.Func, sig *types.Signature, i int, arg ast.Expr) {
	// Boxing: a non-interface value passed to an interface parameter
	// allocates at the call site, before obs can gate it.
	if pt := paramType(sig, i); pt != nil && types.IsInterface(pt) {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil &&
			!types.IsInterface(tv.Type) && !tv.IsNil() {
			pass.Reportf(arg.Pos(),
				"argument to obs.%s boxes %s into %s on the disabled path; guard the call with obs.Enabled()",
				fn.Name(), tv.Type, pt)
		}
	}
	ast.Inspect(arg, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(e.Pos(),
				"composite literal argument to obs.%s allocates on the disabled path; guard the call with obs.Enabled()",
				fn.Name())
			return false
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[e]; ok && isString(tv.Type) {
					pass.Reportf(e.Pos(),
						"string concatenation in argument to obs.%s allocates on the disabled path; precompute it or guard the call",
						fn.Name())
					return false
				}
			}
		case *ast.CallExpr:
			if callee, ok := e.Fun.(*ast.SelectorExpr); ok {
				if pkgName, ok := pass.TypesInfo.Uses[pkgIdent(callee)].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
					pass.Reportf(e.Pos(),
						"fmt.%s in argument to obs.%s allocates on the disabled path; guard the call with obs.Enabled()",
						callee.Sel.Name, fn.Name())
					return false
				}
			}
			if id, ok := e.Fun.(*ast.Ident); ok && (id.Name == "append" || id.Name == "make") {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					pass.Reportf(e.Pos(),
						"%s in argument to obs.%s allocates on the disabled path; guard the call with obs.Enabled()",
						id.Name, fn.Name())
					return false
				}
			}
		}
		return true
	})
}

func pkgIdent(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id
	}
	return nil
}

func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// guardSet is the source intervals within which obs calls are known to
// run only when collection (or the epoch log) is enabled.
type guardSet struct{ intervals [][2]token.Pos }

func (g *guardSet) add(lo, hi token.Pos) { g.intervals = append(g.intervals, [2]token.Pos{lo, hi}) }

func (g *guardSet) covers(p token.Pos) bool {
	for _, iv := range g.intervals {
		if iv[0] <= p && p < iv[1] {
			return true
		}
	}
	return false
}

// collectGuards finds guarded regions: bodies of if statements whose
// condition establishes enablement, and block tails following an
// early `if !obs.Enabled() { return }`.
func collectGuards(pass *analysis.Pass, f *ast.File) *guardSet {
	g := &guardSet{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if isEnableCond(pass, s.Cond) {
				g.add(s.Body.Pos(), s.Body.End())
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				ifs, ok := st.(*ast.IfStmt)
				if !ok || ifs.Else != nil {
					continue
				}
				not, ok := ifs.Cond.(*ast.UnaryExpr)
				if !ok || not.Op != token.NOT || !isEnableCond(pass, not.X) {
					continue
				}
				if endsInReturn(ifs.Body) {
					g.add(ifs.End(), s.End())
				}
			}
		}
		return true
	})
	return g
}

// isEnableCond reports whether cond contains an obs Enabled() call or
// a `!= nil` comparison (the nil-safe epoch-logger guard).
func isEnableCond(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Name() == "Enabled" && fn.Pkg() != nil && isObsPath(fn.Pkg().Path()) {
					found = true
					return false
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.NEQ && (isNil(pass, e.X) || isNil(pass, e.Y)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}
